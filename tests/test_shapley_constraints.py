"""Unit tests for constraint-level Shapley explanations (the paper's Figure 1 values)."""

import pytest

from repro.dataset.examples import FIGURE1_SHAPLEY_VALUES
from repro.dataset.table import CellRef
from repro.repair.base import BinaryRepairOracle
from repro.shapley.constraints import (
    ConstraintShapleyExplainer,
    constraint_shapley_from_subsets,
)


@pytest.fixture
def oracle(algorithm, constraints, dirty_table, cell_of_interest):
    return BinaryRepairOracle(algorithm, constraints, dirty_table, cell_of_interest)


def test_exact_values_match_figure1(oracle):
    result = ConstraintShapleyExplainer(oracle).explain()
    for name, expected in FIGURE1_SHAPLEY_VALUES.items():
        assert result[name] == pytest.approx(expected, abs=1e-9), name


def test_efficiency_values_sum_to_one(oracle):
    result = ConstraintShapleyExplainer(oracle).explain()
    assert result.total() == pytest.approx(1.0)


def test_ranking_places_c3_first_and_c4_last(oracle):
    explainer = ConstraintShapleyExplainer(oracle)
    ranking = explainer.ranking()
    assert ranking[0][0] == "C3"
    assert ranking[-1][0] == "C4"


def test_explain_subset_of_constraints(oracle):
    result = ConstraintShapleyExplainer(oracle).explain(constraints=["C3"])
    assert set(result.values) == {"C3"}
    assert result["C3"] == pytest.approx(2 / 3)


def test_sampled_estimate_close_to_exact(oracle):
    explainer = ConstraintShapleyExplainer(oracle)
    sampled = explainer.explain_sampled(n_permutations=400, rng=3)
    exact = explainer.explain()
    for name in exact.values:
        assert sampled[name] == pytest.approx(exact[name], abs=0.08)


def test_minimal_winning_subsets_match_paper_narrative(oracle):
    explainer = ConstraintShapleyExplainer(oracle)
    winning = explainer.minimal_winning_subsets()
    assert frozenset({"C3"}) in winning
    assert frozenset({"C1", "C2"}) in winning
    assert len(winning) == 2


def test_game_value_queries_oracle(oracle):
    game = ConstraintShapleyExplainer(oracle).as_game()
    assert game.value(frozenset({"C3"})) == 1.0
    assert game.value(frozenset({"C1"})) == 0.0
    assert game.value(frozenset()) == 0.0
    assert set(game.players) == {"C1", "C2", "C3", "C4"}


def test_constraint_shapley_from_subsets_closed_form():
    result = constraint_shapley_from_subsets(
        ["C1", "C2", "C3", "C4"], [frozenset({"C3"}), frozenset({"C1", "C2"})]
    )
    for name, expected in FIGURE1_SHAPLEY_VALUES.items():
        assert result[name] == pytest.approx(expected)


def test_end_to_end_agrees_with_closed_form(oracle):
    pipeline = ConstraintShapleyExplainer(oracle).explain()
    closed_form = constraint_shapley_from_subsets(
        ["C1", "C2", "C3", "C4"], [frozenset({"C3"}), frozenset({"C1", "C2"})]
    )
    for name in closed_form.values:
        assert pipeline[name] == pytest.approx(closed_form[name])


def test_oracle_query_count_is_bounded_by_subset_count(oracle):
    oracle.reset_counters()
    ConstraintShapleyExplainer(oracle).explain()
    # at most 2^4 = 16 distinct repair runs thanks to coalition memoisation
    assert oracle.repair_runs <= 16


def test_explaining_city_cell_gives_all_credit_to_c1(algorithm, constraints, dirty_table):
    oracle = BinaryRepairOracle(algorithm, constraints, dirty_table, CellRef(4, "City"))
    result = ConstraintShapleyExplainer(oracle).explain()
    assert result["C1"] == pytest.approx(1.0)
    assert result["C2"] == pytest.approx(0.0)
    assert result["C3"] == pytest.approx(0.0)
    assert result["C4"] == pytest.approx(0.0)
