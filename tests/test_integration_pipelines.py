"""Cross-module integration tests on the synthetic benchmark datasets.

These exercise the full pipeline the original demo runs — generate / load a
table, inject errors, repair with each black-box algorithm, explain a repaired
cell — on datasets other than the paper's running example, and check the
explanation invariants that must hold regardless of dataset or algorithm.
"""

import pytest

from repro.config import TRexConfig
from repro.constraints.violations import find_all_violations
from repro.dataset.errors import inject_errors
from repro.dataset.generators import FlightsGenerator, HospitalGenerator, TaxGenerator
from repro.explain.explainer import TRExExplainer
from repro.explain.ranking import ranking_overlap
from repro.repair.greedy import GreedyHolisticRepair
from repro.repair.holoclean import HoloCleanRepair
from repro.repair.simple import SimpleRuleRepair


def _dirty_hospital(seed=13, n_rows=30):
    dataset = HospitalGenerator(seed=seed).generate(n_rows)
    constraints = dataset.constraints()
    dirty, report = inject_errors(
        dataset.table,
        rate=0.0,
        error_types=["swap"],
        attributes=["State"],
        seed=seed,
        n_errors=2,
    )
    return dataset, constraints, dirty, report


@pytest.mark.parametrize(
    "algorithm_factory",
    [SimpleRuleRepair, GreedyHolisticRepair, HoloCleanRepair],
    ids=["simple", "greedy", "holoclean"],
)
def test_each_algorithm_supports_the_explanation_pipeline(algorithm_factory):
    dataset, constraints, dirty, report = _dirty_hospital()
    algorithm = algorithm_factory()
    explainer = TRExExplainer(
        algorithm, constraints, dirty, TRexConfig(seed=1, cell_samples=15)
    )
    repaired_cells = explainer.repaired_cells()
    if not repaired_cells:
        pytest.skip(f"{algorithm.name} made no repairs on this instance")
    explanation = explainer.explain_constraints(repaired_cells[0])
    values = explanation.constraint_shapley.values
    assert set(values) == {c.name for c in constraints}
    assert all(value >= -1e-9 for value in values.values())
    # efficiency: the values must sum to v(full set) which is 1 for a repaired cell
    assert sum(values.values()) == pytest.approx(1.0, abs=1e-9)


def test_simple_repair_fixes_injected_hospital_errors_and_explains_them():
    from collections import Counter

    from repro.dataset.table import CellRef

    dataset = HospitalGenerator(seed=21).generate(40)
    constraints = dataset.constraints()
    # corrupt the State of a row whose City has a clear majority elsewhere, so
    # the conditional repair rule (State given City) can restore the truth
    city_counts = Counter(dataset.table.column("City"))
    majority_city = city_counts.most_common(1)[0][0]
    assert city_counts[majority_city] >= 3
    target_row = next(
        row for row in range(dataset.table.n_rows)
        if dataset.table.value(row, "City") == majority_city
    )
    cell = CellRef(target_row, "State")
    truth = dataset.table[cell]
    dirty = dataset.table.with_values({cell: "ZZ"})

    explainer = TRExExplainer(SimpleRuleRepair(), constraints, dirty, TRexConfig(seed=3, cell_samples=10))
    assert explainer.clean_table[cell] == truth
    explanation = explainer.explain_constraints(cell)
    # the City->State constraint (C1 of the hospital set) must get all the credit
    assert explanation.constraint_ranking.items()[0] == "C1"
    assert explanation.constraint_shapley.values["C1"] == pytest.approx(1.0)


def test_constraint_credit_goes_to_constraints_touching_the_attribute():
    dataset = FlightsGenerator(seed=5).generate(30)
    constraints = dataset.constraints()
    dirty, report = inject_errors(
        dataset.table, rate=0.0, error_types=["swap"], attributes=["Origin"], seed=5, n_errors=1
    )
    explainer = TRExExplainer(SimpleRuleRepair(), constraints, dirty, TRexConfig(seed=1, cell_samples=10))
    cell = report.cells()[0]
    if cell not in explainer.delta:
        pytest.skip("the injected error was not repaired on this instance")
    explanation = explainer.explain_constraints(cell)
    values = explanation.constraint_shapley.values
    # only the Flight->Origin constraint mentions Origin, so it takes all the credit
    origin_constraints = [
        c.name for c in constraints if "Origin" in c.attributes()
    ]
    for name, value in values.items():
        if name in origin_constraints:
            assert value == pytest.approx(1.0)
        else:
            assert value == pytest.approx(0.0)


def test_tax_dataset_single_error_explanation():
    dataset = TaxGenerator(seed=9).generate(40)
    constraints = dataset.constraints()
    dirty, report = inject_errors(
        dataset.table, rate=0.0, error_types=["numeric"], attributes=["Rate"], seed=9, n_errors=1
    )
    explainer = TRExExplainer(SimpleRuleRepair(), constraints, dirty, TRexConfig(seed=2, cell_samples=10))
    cell = report.cells()[0]
    assert cell in explainer.delta
    assert explainer.clean_table[cell] == report.truth()[cell]
    explanation = explainer.explain_constraints(cell)
    assert explanation.constraint_shapley.values["C1"] == pytest.approx(1.0)
    assert explanation.constraint_shapley.values["C2"] == pytest.approx(0.0)


def test_algorithm_agnosticism_rankings_overlap_on_running_example(
    algorithm, constraints, dirty_table, cell_of_interest
):
    """T-REx's central claim (E9): the pipeline works unchanged across repairers,
    and on the running example they broadly agree on which constraints matter."""
    config = TRexConfig(seed=4, cell_samples=10)
    rankings = {}
    for repairer in (algorithm, GreedyHolisticRepair(), HoloCleanRepair()):
        explainer = TRExExplainer(repairer, constraints, dirty_table, config)
        if cell_of_interest not in explainer.delta:
            continue
        explanation = explainer.explain_constraints(cell_of_interest)
        rankings[repairer.name] = explanation.constraint_ranking
    assert len(rankings) >= 2, "at least two algorithms repair the cell of interest"
    names = list(rankings)
    overlap = ranking_overlap(rankings[names[0]], rankings[names[1]], k=2)
    assert overlap > 0.0
    # every repairer that fixes t5[Country] agrees that C3 (League -> Country)
    # is among the most influential constraints
    for ranking in rankings.values():
        assert "C3" in ranking.top(2)


def test_violations_never_increase_after_repair_across_datasets():
    for generator in (HospitalGenerator(seed=2), FlightsGenerator(seed=2), TaxGenerator(seed=2)):
        dataset = generator.generate(30)
        constraints = dataset.constraints()
        dirty, _ = inject_errors(dataset.table, rate=0.05, seed=2)
        before = len(find_all_violations(dirty, constraints))
        for algorithm in (SimpleRuleRepair(), GreedyHolisticRepair()):
            repaired = algorithm.repair_table(constraints, dirty)
            after = len(find_all_violations(repaired, constraints))
            assert after <= before
