"""Unit tests for counterfactual repair explanations."""

import pytest

from repro.dataset.table import CellRef
from repro.explain.counterfactual import (
    counterfactual_report,
    minimal_cell_counterfactuals,
    minimal_constraint_counterfactuals,
)
from repro.repair.base import BinaryRepairOracle, FunctionRepairAlgorithm


@pytest.fixture
def oracle(algorithm, constraints, dirty_table, cell_of_interest):
    return BinaryRepairOracle(algorithm, constraints, dirty_table, cell_of_interest)


def test_constraint_counterfactuals_match_winning_structure(oracle):
    """The repair happens iff C3 or {C1, C2} is present, so the minimal removal
    sets are {C3, C1} and {C3, C2}."""
    counterfactuals = minimal_constraint_counterfactuals(oracle)
    assert frozenset({"C3", "C1"}) in counterfactuals
    assert frozenset({"C3", "C2"}) in counterfactuals
    assert len(counterfactuals) == 2
    # minimality: removing C3 alone is not enough (the C1+C2 path remains)
    assert frozenset({"C3"}) not in counterfactuals


def test_constraint_counterfactuals_respect_max_size(oracle):
    assert minimal_constraint_counterfactuals(oracle, max_size=1) == []


def test_constraint_counterfactuals_single_path(algorithm, constraints, dirty_table):
    """For t5[City] only C1 matters, so removing {C1} is the unique counterfactual."""
    oracle = BinaryRepairOracle(algorithm, constraints, dirty_table, CellRef(4, "City"))
    counterfactuals = minimal_constraint_counterfactuals(oracle)
    assert counterfactuals == [frozenset({"C1"})]


def test_no_counterfactual_when_repair_is_constraint_independent(dirty_table, constraints):
    """A degenerate black box that always rewrites the cell has no constraint counterfactual."""

    def always_rewrite(cs, table):
        return table.with_values({CellRef(4, "Country"): "Spain"})

    algorithm = FunctionRepairAlgorithm(always_rewrite, name="always")
    oracle = BinaryRepairOracle(algorithm, constraints, dirty_table, CellRef(4, "Country"))
    assert minimal_constraint_counterfactuals(oracle) == []


def test_cell_counterfactuals_contain_the_league_cell(oracle, dirty_table):
    """Nulling t5[League] together with a city/team cell breaks both repair paths."""
    candidates = [
        CellRef(4, "League"), CellRef(4, "Team"), CellRef(4, "City"), CellRef(2, "Team"),
    ]
    counterfactuals = minimal_cell_counterfactuals(oracle, candidate_cells=candidates, max_size=2)
    assert counterfactuals, "expected at least one cell counterfactual"
    assert all(len(subset) <= 2 for subset in counterfactuals)
    assert any(CellRef(4, "League") in subset for subset in counterfactuals)
    # every reported set genuinely undoes the repair
    for subset in counterfactuals:
        perturbed = dirty_table.with_cells_nulled(subset)
        assert oracle.query_table(perturbed) == 0


def test_cell_counterfactuals_exclude_cell_of_interest(oracle, cell_of_interest):
    counterfactuals = minimal_cell_counterfactuals(
        oracle, candidate_cells=[cell_of_interest, CellRef(4, "League")], max_size=1
    )
    assert all(cell_of_interest not in subset for subset in counterfactuals)


def test_cell_counterfactuals_empty_when_cell_not_repaired(algorithm, constraints, dirty_table):
    oracle = BinaryRepairOracle(
        algorithm, constraints, dirty_table, CellRef(0, "Team"), target_value="Nonsense"
    )
    assert minimal_cell_counterfactuals(oracle, max_size=1) == []


def test_counterfactual_report_rendering(oracle):
    constraint_sets = minimal_constraint_counterfactuals(oracle)
    text = counterfactual_report(oracle, constraint_sets, [frozenset({CellRef(4, "League")})])
    assert "t5[Country]" in text
    assert "{C1, C3}" in text or "{C3, C1}" in text.replace("C1, C3", "C3, C1")
    assert "t5[League]" in text


def test_counterfactual_report_without_constraint_sets(oracle):
    text = counterfactual_report(oracle, [])
    assert "No constraint-removal counterfactual" in text
