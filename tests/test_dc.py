"""Unit tests for denial constraints."""

import pytest

from repro.constraints.dc import DenialConstraint, constraint_set_names
from repro.constraints.predicates import Operator, Predicate
from repro.dataset.table import CellRef
from repro.errors import ConstraintError


def make_fd_style_dc():
    return DenialConstraint(
        "C1",
        [
            Predicate.between_tuples("Team", Operator.EQ),
            Predicate.between_tuples("City", Operator.NE),
        ],
        description="same team implies same city",
    )


def test_constructor_validation():
    with pytest.raises(ConstraintError):
        DenialConstraint("", [Predicate.between_tuples("A", Operator.EQ)])
    with pytest.raises(ConstraintError):
        DenialConstraint("C1", [])


def test_arity_and_attribute_introspection():
    dc = make_fd_style_dc()
    assert dc.arity == 2
    assert not dc.is_single_tuple
    assert dc.attributes() == {"Team", "City"}
    assert dc.equality_attributes() == ("Team",)
    assert dc.inequality_attributes() == ("City",)


def test_single_tuple_constraint():
    dc = DenialConstraint(
        "S1",
        [
            Predicate.with_constant("t1", "Year", Operator.LT, 1900),
        ],
    )
    assert dc.is_single_tuple
    assert dc.arity == 1
    assert dc.is_violated_by({"Year": 1850})
    assert not dc.is_violated_by({"Year": 1990})


def test_two_tuple_violation_requires_second_row():
    dc = make_fd_style_dc()
    with pytest.raises(ConstraintError):
        dc.is_violated_by({"Team": "Real", "City": "Madrid"})


def test_violation_semantics_all_predicates_must_hold():
    dc = make_fd_style_dc()
    real_madrid = {"Team": "Real", "City": "Madrid"}
    real_capital = {"Team": "Real", "City": "Capital"}
    barca = {"Team": "Barca", "City": "Barcelona"}
    assert dc.is_violated_by(real_madrid, real_capital)
    assert not dc.is_violated_by(real_madrid, real_madrid)
    assert not dc.is_violated_by(real_madrid, barca)


def test_cells_involved_lists_each_cell_once():
    dc = make_fd_style_dc()
    cells = dc.cells_involved(0, 4)
    assert CellRef(0, "Team") in cells
    assert CellRef(4, "Team") in cells
    assert CellRef(0, "City") in cells
    assert CellRef(4, "City") in cells
    assert len(cells) == len(set(cells)) == 4


def test_predicates_on_filters_by_attribute():
    dc = make_fd_style_dc()
    assert len(dc.predicates_on("City")) == 1
    assert len(dc.predicates_on("Team")) == 1
    assert dc.predicates_on("Country") == ()


def test_renamed_and_with_description():
    dc = make_fd_style_dc()
    renamed = dc.renamed("C9")
    assert renamed.name == "C9"
    assert renamed.predicates == dc.predicates
    described = dc.with_description("new text")
    assert described.description == "new text"


def test_equality_and_hash_use_name_and_predicates():
    first = make_fd_style_dc()
    second = make_fd_style_dc()
    assert first == second
    assert hash(first) == hash(second)
    assert first != first.renamed("Cx")
    assert len({first, second}) == 1


def test_str_rendering_mentions_quantifier():
    dc = make_fd_style_dc()
    assert "forall t1, t2" in str(dc)
    assert "not(" in str(dc)


def test_constraint_set_names_preserves_order():
    names = constraint_set_names([make_fd_style_dc().renamed(n) for n in ("B", "A", "C")])
    assert names == ("B", "A", "C")
