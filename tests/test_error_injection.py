"""Unit tests for synthetic error injection."""

import pytest

from repro.dataset.errors import ErrorInjector, ErrorSpec, inject_errors
from repro.dataset.generators import SoccerLeagueGenerator
from repro.dataset.table import Table
from repro.errors import TRexError


def make_clean():
    return SoccerLeagueGenerator(seed=2).generate(25).table


def test_error_spec_validation():
    with pytest.raises(TRexError):
        ErrorSpec(rate=1.5)
    with pytest.raises(TRexError):
        ErrorSpec(error_types=("bogus",))
    with pytest.raises(TRexError):
        ErrorSpec(error_types=())


def test_injection_changes_exactly_n_cells():
    clean = make_clean()
    dirty, report = ErrorInjector(ErrorSpec(rate=0.1), seed=4).inject(clean, n_errors=5)
    assert len(report) == 5
    delta = clean.diff(dirty)
    assert len(delta) == 5
    assert set(delta.cells()) == set(report.cells())


def test_injected_values_differ_from_originals():
    clean = make_clean()
    dirty, report = inject_errors(clean, rate=0.1, seed=8)
    for change in report.injected:
        assert dirty[change.cell] != clean[change.cell]
        assert change.old_value == clean[change.cell]
        assert change.new_value == dirty[change.cell]


def test_injection_respects_attribute_restriction():
    clean = make_clean()
    dirty, report = inject_errors(clean, rate=0.2, attributes=["City", "Country"], seed=3)
    assert report.injected
    assert all(change.cell.attribute in {"City", "Country"} for change in report.injected)


def test_injection_is_deterministic_given_seed():
    clean = make_clean()
    dirty_a, report_a = inject_errors(clean, rate=0.1, seed=42)
    dirty_b, report_b = inject_errors(clean, rate=0.1, seed=42)
    assert dirty_a.equals(dirty_b)
    assert report_a.cells() == report_b.cells()


def test_null_errors_produce_nulls():
    clean = make_clean()
    dirty, report = inject_errors(clean, rate=0.1, error_types=["null"], seed=6, n_errors=4)
    assert all(dirty.is_null(cell) for cell in report.cells())


def test_numeric_errors_shift_numbers():
    clean = make_clean()
    dirty, report = inject_errors(
        clean, rate=0.1, error_types=["numeric"], attributes=["Place"], seed=6, n_errors=3
    )
    for change in report.injected:
        assert isinstance(dirty[change.cell], int)
        assert dirty[change.cell] != clean[change.cell]


def test_report_truth_and_delta():
    clean = make_clean()
    dirty, report = inject_errors(clean, rate=0.05, seed=9, n_errors=3)
    truth = report.truth()
    assert set(truth) == set(report.cells())
    delta = report.as_delta()
    for cell in report.cells():
        # the delta maps dirty value back to the clean value
        assert delta.new_value(cell) == clean[cell]


def test_injection_on_table_with_no_eligible_cells():
    table = Table(["A"], [[None], [None]])
    dirty, report = ErrorInjector(seed=1).inject(table)
    assert len(report) == 0
    assert dirty.equals(table)


def test_rate_zero_injects_nothing():
    clean = make_clean()
    dirty, report = inject_errors(clean, rate=0.0, seed=1)
    assert len(report) == 0
    assert dirty.equals(clean)
