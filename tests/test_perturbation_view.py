"""PerturbationView: the copy-on-write overlay must be indistinguishable from
a materialised ``with_values`` copy on every read method."""

from __future__ import annotations

import pytest

from repro import CellRef, PerturbationView, Table
from repro.engine.storage import NULL, Fingerprint
from repro.errors import UnknownAttributeError, UnknownRowError


def make_table():
    return Table(
        ["Team", "City", "Points"],
        [
            ("Real", "Madrid", 3),
            ("Barca", "Barcelona", 1),
            ("Betis", "Seville", 0),
            ("Atletico", "Madrid", None),
        ],
        name="league",
    )


DELTA = {
    CellRef(0, "City"): "Lisbon",
    CellRef(2, "Points"): 9,
    CellRef(3, "Team"): NULL,
}


def assert_reads_equal(view: Table, reference: Table):
    assert view.n_rows == reference.n_rows
    assert view.n_columns == reference.n_columns
    assert view.n_cells == reference.n_cells
    assert view.attributes == reference.attributes
    assert list(view.cells()) == list(reference.cells())
    for cell in reference.cells():
        assert view[cell] == reference[cell] or (
            view.is_null(cell) and reference.is_null(cell)
        )
        assert view.is_null(cell) == reference.is_null(cell)
    for row in range(reference.n_rows):
        assert view.row(row) == reference.row(row)
        assert view.row_tuple(row) == reference.row_tuple(row)
    for attribute in reference.attributes:
        assert list(view.column(attribute)) == list(reference.column(attribute))
    assert view.cell_values() == reference.cell_values()
    assert view.to_records() == reference.to_records()
    assert view.to_text() == reference.to_text()
    assert view.equals(reference) and reference.equals(view)
    assert not view.diff(reference) and not reference.diff(view)


def test_view_reads_match_materialized_copy():
    base = make_table()
    view = base.perturbed(DELTA)
    reference = base.with_values(DELTA)
    assert isinstance(view, PerturbationView)
    assert not isinstance(reference, PerturbationView)
    assert_reads_equal(view, reference)
    # the base is untouched
    assert base.value(0, "City") == "Madrid"
    assert base.value(2, "Points") == 0


def test_view_delta_is_normalised():
    base = make_table()
    view = base.perturbed({CellRef(0, "City"): "Madrid",    # equals base
                           CellRef(1, "Points"): 7})
    assert view.delta == {CellRef(1, "Points"): 7}
    # null-to-null assignments are no-ops too
    view2 = base.perturbed({CellRef(3, "Points"): None})
    assert view2.delta == {}
    assert view2.fingerprint() == base.perturbed({}).fingerprint()


def test_view_composition_reroots_on_the_plain_base():
    base = make_table()
    first = base.perturbed({CellRef(0, "City"): "Lisbon"})
    second = first.with_values({CellRef(1, "City"): "Girona"})
    third = second.perturbed({CellRef(0, "City"): "Madrid"})  # back to base value
    assert second.base is base
    assert third.base is base
    assert second.delta == {CellRef(0, "City"): "Lisbon", CellRef(1, "City"): "Girona"}
    assert third.delta == {CellRef(1, "City"): "Girona"}
    # the paper's coalition helper flows through views as well
    nulled = first.with_cells_nulled([CellRef(2, "Team")])
    assert isinstance(nulled, PerturbationView)
    assert nulled.is_null(CellRef(2, "Team"))
    assert nulled.value(0, "City") == "Lisbon"


def test_view_set_value_is_copy_on_write_and_renormalises():
    base = make_table()
    view = base.perturbed({CellRef(0, "City"): "Lisbon"})
    view.set_value(1, "Points", 42)
    assert view.value(1, "Points") == 42
    assert base.value(1, "Points") == 1
    # writing the base value back removes the delta entry
    view.set_value(0, "City", "Madrid")
    assert view.delta == {CellRef(1, "Points"): 42}
    with pytest.raises(UnknownAttributeError):
        view.set_value(0, "Stadium", "x")
    with pytest.raises(UnknownRowError):
        view.set_value(99, "City", "x")


def test_view_mutable_snapshot_is_isolated():
    base = make_table()
    view = base.perturbed(DELTA)
    snapshot = view.mutable_snapshot(name="scratch")
    snapshot.set_value(1, "City", "Valencia")
    assert view.value(1, "City") == "Barcelona"
    assert snapshot.value(1, "City") == "Valencia"
    assert snapshot.base is base
    assert snapshot.name == "scratch"


def test_view_copy_materialises_to_plain_table():
    base = make_table()
    view = base.perturbed(DELTA)
    copy = view.copy()
    assert type(copy) is Table
    assert_reads_equal(view, copy)


def test_view_fingerprints_delta_based():
    base = make_table()
    view_a = base.perturbed({CellRef(0, "City"): "Lisbon"})
    view_b = base.perturbed({CellRef(0, "City"): "Lisbon"})
    view_c = base.perturbed({CellRef(0, "City"): "Porto"})
    assert isinstance(view_a.fingerprint(), Fingerprint)
    assert view_a.fingerprint() == view_b.fingerprint()
    assert view_a.fingerprint() != view_c.fingerprint()
    assert view_a.fingerprint() != base.fingerprint()
    assert hash(view_a.fingerprint()) == hash(view_b.fingerprint())
    # equal content reached through different construction orders
    view_d = base.perturbed({CellRef(1, "Points"): 5}).with_values(
        {CellRef(0, "City"): "Lisbon", CellRef(1, "Points"): 1}  # Points back to base
    )
    assert view_d.fingerprint() == view_a.fingerprint()


def test_view_stats_match_materialized_stats():
    base = make_table()
    view = base.perturbed(DELTA)
    reference = base.with_values(DELTA)
    for attribute in base.attributes:
        view_marginal = view.stats.marginal(attribute)
        ref_marginal = reference.stats.marginal(attribute)
        assert dict(view_marginal.items()) == dict(ref_marginal.items())
        assert view_marginal.total == ref_marginal.total
        assert view_marginal.most_common() == ref_marginal.most_common()
    assert view.stats.most_probable_given("City", "Team", "Real") == \
        reference.stats.most_probable_given("City", "Team", "Real")


def test_view_validates_assignment_addresses():
    base = make_table()
    with pytest.raises(UnknownAttributeError):
        base.perturbed({CellRef(0, "Stadium"): "x"})
    with pytest.raises(UnknownRowError):
        base.perturbed({CellRef(99, "City"): "x"})


def test_restricted_to_coalition_on_view_stays_a_view():
    base = make_table()
    view = base.perturbed({CellRef(0, "City"): "Lisbon"})
    keep = {CellRef(0, "City"), CellRef(1, "Team")}
    restricted = view.restricted_to_coalition(keep)
    assert isinstance(restricted, PerturbationView)
    reference = base.with_values({CellRef(0, "City"): "Lisbon"}).restricted_to_coalition(keep)
    assert_reads_equal(restricted, reference)
