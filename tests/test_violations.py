"""Unit tests for the violation detection engine."""

from repro.constraints.parser import parse_dc
from repro.constraints.violations import (
    ViolationSet,
    cells_in_violations,
    find_all_violations,
    find_violations,
    is_clean,
    violating_rows,
)
from repro.dataset.table import CellRef, Table


def make_table():
    return Table(
        ["Team", "City", "Country"],
        [
            ["Real", "Madrid", "Spain"],
            ["Real", "Capital", "Spain"],
            ["Barca", "Barcelona", "Spain"],
            ["Liverpool", "Liverpool", "England"],
        ],
    )


C_TEAM_CITY = parse_dc("not(t1.Team == t2.Team and t1.City != t2.City)", name="C1")
C_CITY_COUNTRY = parse_dc("not(t1.City == t2.City and t1.Country != t2.Country)", name="C2")


def test_find_violations_detects_fd_breach():
    violations = find_violations(make_table(), C_TEAM_CITY)
    pairs = {v.rows for v in violations}
    assert (0, 1) in pairs and (1, 0) in pairs  # both orders reported
    assert len(violations) == 2


def test_find_violations_none_when_clean():
    assert find_violations(make_table(), C_CITY_COUNTRY) == []
    assert is_clean(make_table(), [C_CITY_COUNTRY])
    assert not is_clean(make_table(), [C_TEAM_CITY])


def test_violation_cells_listing():
    violations = find_violations(make_table(), C_TEAM_CITY)
    cells = violations[0].cells()
    assert CellRef(0, "Team") in cells
    assert CellRef(1, "City") in cells


def test_single_tuple_constraint_violations():
    dc = parse_dc("not(t1.Country == 'England')", name="S1")
    violations = find_violations(make_table(), dc)
    assert [v.rows for v in violations] == [(3,)]
    assert violations[0].row2 is None


def test_order_constraint_without_equality_attributes():
    table = Table(["Salary", "Rate"], [[100, 5.0], [200, 3.0], [150, 6.0]])
    dc = parse_dc("not(t1.Salary > t2.Salary and t1.Rate < t2.Rate)", name="O1")
    violations = find_violations(table, dc)
    pairs = {v.rows for v in violations}
    assert (1, 0) in pairs  # salary 200 > 100 but rate 3.0 < 5.0
    assert (1, 2) in pairs
    assert (0, 1) not in pairs


def test_nulls_do_not_trigger_equality_violations():
    table = make_table().with_cells_nulled([CellRef(1, "Team")])
    assert find_violations(table, C_TEAM_CITY) == []


def test_null_inequality_still_counts_as_difference():
    # Row 1's City is nulled: Team still matches row 0 and a null city differs
    # from a concrete one, so the violation remains (this is what lets repair
    # algorithms fill blanked-out cells; see Operator.evaluate).
    table = make_table().with_cells_nulled([CellRef(1, "City")])
    violations = find_violations(table, C_TEAM_CITY)
    assert {v.rows for v in violations} == {(0, 1), (1, 0)}


def test_find_all_violations_and_indexes():
    table = make_table()
    result = find_all_violations(table, [C_TEAM_CITY, C_CITY_COUNTRY])
    assert len(result) == 2
    assert result.constraints_violated() == ["C1"]
    assert result.count_by_constraint() == {"C1": 2}
    assert result.for_constraint("C1")
    assert result.for_constraint("C2") == []
    assert result.rows_involved() == [0, 1]
    assert result.for_row(0) and result.for_row(2) == []
    assert result.count_for_cell(CellRef(0, "Team")) == 2
    assert result.count_for_cell(CellRef(2, "Team")) == 0


def test_violating_rows_and_cells_helpers():
    table = make_table()
    assert violating_rows(table, [C_TEAM_CITY]) == {0, 1}
    cells = cells_in_violations(table, [C_TEAM_CITY])
    assert CellRef(0, "City") in cells and CellRef(1, "City") in cells
    assert CellRef(2, "City") not in cells


def test_violation_set_incremental_add():
    table = make_table()
    violations = find_violations(table, C_TEAM_CITY)
    collection = ViolationSet()
    assert not collection
    for violation in violations:
        collection.add(violation)
    assert len(collection) == 2
    assert collection.constraints_violated() == ["C1"]
    assert str(violations[0]).startswith("C1(")
