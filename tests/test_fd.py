"""Unit tests for functional dependencies and CFDs."""

import pytest

from repro.constraints.fd import ConditionalFunctionalDependency, FunctionalDependency, fds_to_dcs
from repro.constraints.violations import find_violations
from repro.dataset.table import Table
from repro.errors import ConstraintError


def make_table():
    return Table(
        ["City", "State", "Zip"],
        [
            ["Austin", "TX", "787"],
            ["Austin", "TX", "787"],
            ["Austin", "CA", "787"],
            ["Boston", "MA", "021"],
        ],
    )


def test_fd_validation():
    with pytest.raises(ConstraintError):
        FunctionalDependency([], "State")
    with pytest.raises(ConstraintError):
        FunctionalDependency(["City"], "")
    with pytest.raises(ConstraintError):
        FunctionalDependency(["City", "State"], "State")


def test_fd_to_dc_shape():
    dc = FunctionalDependency(["City"], "State").to_dc(name="C1")
    assert dc.name == "C1"
    assert dc.equality_attributes() == ("City",)
    assert dc.inequality_attributes() == ("State",)
    assert dc.arity == 2


def test_fd_violations_detected_via_dc():
    dc = FunctionalDependency(["City"], "State").to_dc()
    violations = find_violations(make_table(), dc)
    violating_pairs = {v.rows for v in violations}
    assert (0, 2) in violating_pairs and (2, 0) in violating_pairs
    assert (0, 1) not in violating_pairs


def test_multi_attribute_lhs():
    dc = FunctionalDependency(["City", "Zip"], "State").to_dc()
    assert set(dc.equality_attributes()) == {"City", "Zip"}


def test_fds_to_dcs_names():
    fds = [FunctionalDependency(["City"], "State"), FunctionalDependency(["Zip"], "City")]
    dcs = fds_to_dcs(fds)
    assert [dc.name for dc in dcs] == ["C1", "C2"]


def test_fd_str():
    fd = FunctionalDependency(["City"], "State")
    assert "City -> State" in str(fd)


def test_cfd_requires_rhs_and_some_lhs():
    with pytest.raises(ConstraintError):
        ConditionalFunctionalDependency([], "State", pattern={})
    with pytest.raises(ConstraintError):
        ConditionalFunctionalDependency(["City"], "", pattern={"City": "Austin"})


def test_cfd_with_pattern_only_fires_on_matching_tuples():
    cfd = ConditionalFunctionalDependency(["City"], "State", pattern={"City": "Austin"})
    dc = cfd.to_dc(name="K1")
    violations = find_violations(make_table(), dc)
    rows_involved = {row for v in violations for row in v.rows}
    assert rows_involved == {0, 1, 2}  # only the Austin tuples participate
    assert "Austin" in str(cfd)


def test_cfd_pattern_attribute_outside_lhs_is_added():
    cfd = ConditionalFunctionalDependency(["Zip"], "State", pattern={"City": "Austin"})
    assert "City" in cfd.lhs


def test_cfd_description_mentions_condition():
    dc = ConditionalFunctionalDependency(["City"], "State", pattern={"City": "Austin"}).to_dc()
    assert "when" in dc.description
