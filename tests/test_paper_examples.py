"""Integration tests reproducing the paper's figures and worked examples.

Each test corresponds to an entry of the experiment index in DESIGN.md:

* Figure 2  — the repair of the La Liga table (E2),
* Figure 1 / Example 2.3 — exact DC Shapley values (E1/E3),
* Example 1.1 / 2.4 — the relative influence of table cells (E4),
* Example 2.2 — the binary view of the repair algorithm,
* Example 2.5 — convergence of the sampling estimator (E5),
* Section 4 — the demo scenario loop (E6).
"""

import pytest

from repro.config import TRexConfig
from repro.dataset.examples import (
    CELL_OF_INTEREST,
    FIGURE1_SHAPLEY_VALUES,
    LA_LIGA_DIRTY_CELLS,
)
from repro.dataset.table import CellRef
from repro.explain.session import RepairSession
from repro.explain.explainer import TRExExplainer
from repro.repair.base import BinaryRepairOracle
from repro.shapley.cells import CellShapleyExplainer
from repro.shapley.constraints import ConstraintShapleyExplainer
from repro.shapley.convergence import ConvergenceTracker


def test_figure2_dirty_cells_are_the_documented_ones(dirty_table, clean_table):
    delta = dirty_table.diff(clean_table)
    assert set(delta.cells()) == set(LA_LIGA_DIRTY_CELLS)
    for cell, (dirty_value, clean_value) in LA_LIGA_DIRTY_CELLS.items():
        assert dirty_table[cell] == dirty_value
        assert clean_table[cell] == clean_value


def test_figure2_repair_reproduced_by_algorithm1(algorithm, constraints, dirty_table, clean_table):
    repaired = algorithm.repair_table(constraints, dirty_table)
    assert repaired.equals(clean_table)


def test_example_2_2_binary_view(algorithm, constraints, dirty_table):
    """Alg|t5[City]({C1,C2,C3}) = 1 while Alg|t5[City]({C2,C3}) = 0."""
    by_name = {c.name: c for c in constraints}
    oracle = BinaryRepairOracle(algorithm, constraints, dirty_table, CellRef(4, "City"))
    assert oracle.query_constraint_subset([by_name["C1"], by_name["C2"], by_name["C3"]]) == 1
    assert oracle.query_constraint_subset([by_name["C2"], by_name["C3"]]) == 0


def test_figure1_and_example_2_3_constraint_shapley(algorithm, constraints, dirty_table):
    oracle = BinaryRepairOracle(algorithm, constraints, dirty_table, CELL_OF_INTEREST)
    result = ConstraintShapleyExplainer(oracle).explain()
    for name, expected in FIGURE1_SHAPLEY_VALUES.items():
        assert result[name] == pytest.approx(expected, abs=1e-9)
    # the paper's narrative: C3's value is double the value of the pair {C1, C2}
    assert result["C3"] == pytest.approx(2 * (result["C1"] + result["C2"]))


def test_example_2_4_cell_influence_ordering(algorithm, constraints, dirty_table):
    """t5[League] most influential; more than t6[City]; t1[Place] contributes nothing."""
    oracle = BinaryRepairOracle(algorithm, constraints, dirty_table, CELL_OF_INTEREST)
    explainer = CellShapleyExplainer(oracle, policy="null", rng=17)
    probes = [
        CellRef(4, "League"),   # t5[League]
        CellRef(5, "City"),     # t6[City]
        CellRef(0, "Place"),    # t1[Place]
        CellRef(2, "Country"),  # t3[Country]
    ]
    result = explainer.explain(cells=probes, n_samples=200)
    assert result[CellRef(4, "League")] > result[CellRef(5, "City")]
    assert result[CellRef(4, "League")] > result[CellRef(2, "Country")]
    assert result[CellRef(0, "Place")] == pytest.approx(0.0, abs=1e-12)
    ranking = [cell for cell, _ in result.ranking()]
    assert ranking[0] == CellRef(4, "League")


def test_example_2_5_sampling_estimate_converges(algorithm, constraints, dirty_table):
    """The running estimate for one cell stabilises as m grows."""
    oracle = BinaryRepairOracle(algorithm, constraints, dirty_table, CELL_OF_INTEREST)
    explainer = CellShapleyExplainer(oracle, policy="null", rng=23)
    target = CellRef(4, "City")  # the paper's Example 2.5 probes t5[City]
    small = explainer.estimate_cell(target, n_samples=40)
    large = explainer.estimate_cell(target, n_samples=400)
    assert large.standard_error < small.standard_error
    tracker = ConvergenceTracker(tolerance=0.1, min_samples=50)
    for _ in range(300):
        with_cell, without_cell = explainer.sampler.sample_pair(target)
        sample = oracle.query_table(with_cell) - oracle.query_table(without_cell)
        tracker.update(float(sample))
    assert tracker.converged()
    assert tracker.estimate == pytest.approx(large.value, abs=0.15)


def test_section4_demo_scenario_loop(algorithm, constraints, dirty_table):
    """Repair → explain → act on the top-ranked DC → the repair outcome changes."""
    session = RepairSession(
        algorithm,
        constraints,
        dirty_table,
        cell_of_interest=CELL_OF_INTEREST,
        expected_value="Spain",
        config=TRexConfig(seed=5, cell_samples=10),
    )
    session.run_repair()
    assert session.cell_of_interest_is_correct() is True

    explanation = session.explain(constraints_only=True)
    top_constraint = explanation.constraint_ranking.items()[0]
    assert top_constraint == "C3"

    # Removing the most influential DC still leaves the C1+C2 repair path.
    session.remove_constraint(top_constraint)
    assert session.cell_of_interest_is_correct() is True

    # A second explanation on the reduced set shifts all credit to C1 and C2.
    second = session.explain(constraints_only=True)
    scores = second.constraint_shapley.values
    assert scores["C1"] == pytest.approx(0.5)
    assert scores["C2"] == pytest.approx(0.5)
    assert scores["C4"] == pytest.approx(0.0)

    # Acting on the cell explanation instead: fixing the influential dirty city
    # by hand and then removing C2 as well finally breaks the repair.
    session.remove_constraint("C2")
    assert session.cell_of_interest_is_correct() is False
    assert [step.action for step in session.history()][:3] == ["repair", "explain", "remove-constraint"]


def test_explainer_facade_reproduces_everything_at_once(algorithm, constraints, dirty_table):
    explainer = TRExExplainer(
        algorithm, constraints, dirty_table, TRexConfig(seed=2, cell_samples=25, replacement_policy="null")
    )
    explanation = explainer.explain(CELL_OF_INTEREST)
    assert explanation.constraint_ranking.items()[0] == "C3"
    top_cells = explanation.top_cells(3)
    assert CellRef(4, "League") in top_cells
