"""Unit tests for FD / DC discovery."""

from repro.constraints.discovery import discover_dcs, discover_fds, verify_constraints
from repro.constraints.parser import parse_dc
from repro.dataset.generators import HospitalGenerator
from repro.dataset.table import Table


def make_table():
    # City -> State holds; State -> City does not (TX has two cities).
    return Table(
        ["City", "State", "Pop"],
        [
            ["Austin", "TX", 1],
            ["Austin", "TX", 2],
            ["Dallas", "TX", 3],
            ["Boston", "MA", 4],
        ],
    )


def test_discover_fds_finds_city_to_state():
    fds = discover_fds(make_table(), max_lhs_size=1)
    found = {(fd.lhs, fd.rhs) for fd in fds}
    assert (("City",), "State") in found
    assert (("State",), "City") not in found


def test_discover_fds_minimality():
    fds = discover_fds(make_table(), max_lhs_size=2)
    # City -> State already holds, so (City, Pop) -> State must not be reported
    lhs_for_state = [fd.lhs for fd in fds if fd.rhs == "State"]
    assert ("City",) in lhs_for_state
    assert all(set(lhs) == {"City"} or "City" not in lhs for lhs in lhs_for_state)


def test_discovered_fds_hold_on_the_table():
    table = make_table()
    for fd in discover_fds(table, max_lhs_size=2):
        dc = fd.to_dc()
        assert verify_constraints(table, [dc])[dc.name]


def test_discover_fds_ignores_null_groups():
    table = Table(["A", "B"], [["x", 1], ["x", 1], [None, 2], [None, 3]])
    fds = discover_fds(table, max_lhs_size=1)
    assert (("A",), "B") in {(fd.lhs, fd.rhs) for fd in fds}


def test_discover_dcs_reports_valid_minimal_constraints():
    table = make_table()
    dcs = discover_dcs(table, max_predicates=2)
    assert dcs, "expected at least one discovered DC"
    # every reported DC must hold on the table
    results = verify_constraints(table, dcs)
    assert all(results.values())
    # the FD City -> State must appear in DC form
    shapes = {(dc.equality_attributes(), dc.inequality_attributes()) for dc in dcs}
    assert (("City",), ("State",)) in shapes


def test_discover_dcs_excludes_violated_candidates():
    table = make_table()
    dcs = discover_dcs(table, max_predicates=2)
    # State -> City is violated by the data, so its DC shape must be absent
    shapes = {(dc.equality_attributes(), dc.inequality_attributes()) for dc in dcs}
    assert (("State",), ("City",)) not in shapes


def test_discovery_scales_to_generated_dataset():
    dataset = HospitalGenerator(seed=3).generate(30)
    fds = discover_fds(dataset.table, max_lhs_size=1)
    found = {(fd.lhs, fd.rhs) for fd in fds}
    assert (("MeasureCode",), "MeasureName") in found


def test_verify_constraints_flags_violated_constraint():
    table = make_table()
    held = parse_dc("not(t1.City == t2.City and t1.State != t2.State)", name="good")
    broken = parse_dc("not(t1.State == t2.State and t1.City != t2.City)", name="bad")
    results = verify_constraints(table, [held, broken])
    assert results == {"good": True, "bad": False}
