"""The array-native coalition pipeline must be invisible in the numbers.

PR 8's bulk layers each have a per-object reference twin that stays in the
tree, and the contract is bit-identity, not approximation:

* **bulk delta encoding** (hypothesis) — :meth:`ColumnDictionary.encode_bulk`
  must translate any random value array exactly like the per-value
  :meth:`encode_values` loop *and* grow the dictionary identically (novel
  values appended mid-overlay in first-appearance order, NULL/NaN to code 0);
  :meth:`TableEncoding.encode_delta` must agree with the per-value
  :meth:`OverlayStore.encoded_delta` dict on random override sets;
* **zero-object degree ranking** (hypothesis) — the walk's
  :meth:`cell_degrees_arrays` parallel arrays must carry exactly the degree
  map the ``CellRef``-dict :meth:`cell_degrees` builds, on random deltas and
  post-prime write sequences, in the object path's (row, attribute) order;
* **speculative adaptive sharding** (property over seeds) — adaptive runs
  with ``speculate=True`` must be bit-identical to the ``speculate=False``
  reference across ``n_jobs`` in {None, 1, 2} and warm/cold pools, with the
  overshoot visible only in the ``chunks_speculated`` / ``chunks_discarded``
  counters.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CellRef,
    SimpleRuleRepair,
    SoccerLeagueGenerator,
    la_liga_dirty_table,
)
from repro.constraints.incremental import repair_walk_for
from repro.engine.encoding import NULL_CODE, ColumnDictionary
from repro.engine.storage import NULL, null_mask

# ---------------------------------------------------------------------------
# bulk delta encoding ≡ per-value encoding (hypothesis)
# ---------------------------------------------------------------------------

#: hashable, sortable-in-mixed-company candidate values plus both null forms
_VALUES = st.one_of(
    st.integers(min_value=-3, max_value=3),
    st.sampled_from(["a", "b", "c", "ab"]),
    st.just(NULL),
    st.just(float("nan")),
)


def _seeded_dictionaries(preseed):
    """Two dictionaries grown identically through the per-value entry point."""
    reference, bulk = ColumnDictionary(), ColumnDictionary()
    for value in preseed:
        if not (value is None or value != value):
            reference.code_for(value, is_null=lambda v: False)
            bulk.code_for(value, is_null=lambda v: False)
    return reference, bulk


@settings(max_examples=100, deadline=None)
@given(preseed=st.lists(_VALUES, max_size=5), values=st.lists(_VALUES, max_size=12))
def test_encode_bulk_matches_per_value_loop(preseed, values):
    reference, bulk = _seeded_dictionaries(preseed)
    column = np.empty(len(values), dtype=object)
    column[:] = values
    mask = null_mask(column)
    out_reference = np.empty(len(values), dtype=np.int32)
    out_bulk = np.empty(len(values), dtype=np.int32)
    reference.encode_values(column, mask, out_reference)
    bulk.encode_bulk(column, mask, out_bulk)
    assert out_bulk.tolist() == out_reference.tolist()
    # identical dictionary growth: same decode table (novel values appended
    # in first-appearance order) and same value→code map
    assert bulk._values == reference._values
    assert bulk._code_of == reference._code_of
    for value, code in zip(values, out_bulk.tolist()):
        if value is None or value != value:
            assert code == NULL_CODE


def test_encode_bulk_unsortable_mixed_types_fall_back():
    # ints and strings do not sort together; the hash loop must take over
    column = np.empty(4, dtype=object)
    column[:] = [1, "x", 1, NULL]
    reference, bulk = _seeded_dictionaries([])
    out_reference = np.empty(4, dtype=np.int32)
    out_bulk = np.empty(4, dtype=np.int32)
    reference.encode_values(column, null_mask(column), out_reference)
    bulk.encode_bulk(column, null_mask(column), out_bulk)
    assert out_bulk.tolist() == out_reference.tolist()
    assert bulk._values == reference._values


def test_encode_bulk_unhashable_leaves_dictionary_consistent():
    column = np.empty(3, dtype=object)
    column[:] = [[1], [2], [1]]
    dictionary = ColumnDictionary()
    out = np.empty(3, dtype=np.int32)
    with pytest.raises(TypeError):
        dictionary.encode_bulk(column, null_mask(column), out)
    # every code handed out before the failure must still decode
    assert len(dictionary._values) == 1 + len(dictionary._code_of)


@st.composite
def _override_sets(draw, table):
    overrides = {}
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        row = draw(st.integers(min_value=0, max_value=table.n_rows - 1))
        attribute = draw(st.sampled_from(table.attributes))
        overrides[CellRef(row, attribute)] = draw(_VALUES)
    return overrides


_TABLE = la_liga_dirty_table()


@settings(max_examples=50, deadline=None)
@given(overrides=_override_sets(_TABLE))
def test_encode_delta_matches_per_value_encoded_delta(overrides):
    # two fresh views over fresh bases: one asks the bulk array entry point,
    # the other the per-value dict reference — same rows, same codes
    view_bulk = la_liga_dirty_table().perturbed(overrides)
    view_reference = la_liga_dirty_table().perturbed(overrides)
    for attribute in _TABLE.attributes:
        arrays = view_bulk._store.encoded_delta_arrays(attribute)
        encoded = view_reference._store.encoded_delta(attribute)
        assert arrays is not None and encoded is not None
        rows, codes = arrays
        assert rows.tolist() == sorted(encoded)
        assert codes.tolist() == [encoded[row] for row in rows.tolist()]
        # and both dictionaries grew the same decode tables (lazily created,
        # so an untouched column is absent from both)
        bulk_dict = view_bulk._store._base.encoding()._dicts.get(attribute)
        ref_dict = view_reference._store._base.encoding()._dicts.get(attribute)
        assert (bulk_dict._values if bulk_dict else None) == \
            (ref_dict._values if ref_dict else None)


# ---------------------------------------------------------------------------
# zero-object degree ranking ≡ CellRef-dict degrees (hypothesis)
# ---------------------------------------------------------------------------

_DATASET = SoccerLeagueGenerator(seed=83).generate(30)
_CONSTRAINTS = _DATASET.constraints()
_BASE = _DATASET.table
_ATTRS = _BASE.attributes
_POOLS = {
    attribute: sorted(
        {_BASE.value(row, attribute) for row in range(_BASE.n_rows)}, key=repr
    )
    for attribute in _ATTRS
}


@st.composite
def _cell_writes(draw, max_size: int):
    writes = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_size))):
        row = draw(st.integers(min_value=0, max_value=_BASE.n_rows - 1))
        attribute = draw(st.sampled_from(_ATTRS))
        source = draw(st.sampled_from(_ATTRS))
        value = draw(st.one_of(st.just(NULL), st.sampled_from(_POOLS[source])))
        writes.append((row, attribute, value))
    return writes


def _assert_degrees_agree(walk):
    total_ref, degrees = walk.cell_degrees()
    total, rows, attr_codes, counts, attrs = walk.cell_degrees_arrays()
    assert total == total_ref
    cells = [CellRef(int(row), attrs[code])
             for row, code in zip(rows.tolist(), attr_codes.tolist())]
    assert dict(zip(cells, counts.tolist())) == degrees
    # the arrays must already ascend in the greedy tie-break order
    assert cells == sorted(cells, key=lambda c: (c.row, c.attribute))


@settings(max_examples=25, deadline=None)
@given(delta=_cell_writes(max_size=6), writes=_cell_writes(max_size=4))
def test_degree_arrays_match_cell_dict_on_random_walks(delta, writes):
    overrides = {CellRef(row, attribute): value for row, attribute, value in delta}
    view = _BASE.perturbed(overrides).mutable_snapshot()
    walk = repair_walk_for(view, _CONSTRAINTS, vectorized=True)
    _assert_degrees_agree(walk)
    for row, attribute, value in writes:
        view.set_value(row, attribute, value)
        _assert_degrees_agree(walk)


# ---------------------------------------------------------------------------
# speculative adaptive sharding ≡ the non-speculative reference
# ---------------------------------------------------------------------------

_PROBES = [CellRef(4, "City"), CellRef(0, "Country")]


def _adaptive_estimates(n_jobs, speculate, warm_pool, seed, tolerance=0.05,
                        min_samples=8):
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from test_parallel_scheduler import make_explainer

    explainer, oracle = make_explainer(n_jobs or 1, rng=seed,
                                       warm_pool=warm_pool)
    explainer.speculate = speculate
    with explainer:
        estimates = [
            explainer.estimate_cell_converged(cell, tolerance=tolerance,
                                              min_samples=min_samples,
                                              max_samples=40)
            for cell in _PROBES
        ]
    return estimates, oracle


def _assert_estimates_equal(reference, speculative):
    for a, b in zip(reference, speculative):
        assert (a.value, a.standard_error, a.n_samples) == \
            (b.value, b.standard_error, b.n_samples)
        assert not math.isnan(a.value)


@pytest.mark.parametrize("warm_pool", [True, False])
@pytest.mark.parametrize("n_jobs", [None, 1])
def test_speculation_is_bit_identical_in_process(n_jobs, warm_pool):
    reference, _ = _adaptive_estimates(n_jobs, False, warm_pool, seed=23)
    speculative, oracle = _adaptive_estimates(n_jobs, True, warm_pool, seed=23)
    _assert_estimates_equal(reference, speculative)
    # width collapses to 1 in-process: nothing speculated, nothing discarded
    assert oracle.chunks_speculated == 0
    assert oracle.chunks_discarded == 0


@pytest.mark.parallel
@pytest.mark.parametrize("warm_pool", [True, False])
@settings(max_examples=3, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_speculation_is_bit_identical_across_workers(warm_pool, seed):
    reference, _ = _adaptive_estimates(2, False, warm_pool, seed=seed)
    speculative, oracle = _adaptive_estimates(2, True, warm_pool, seed=seed)
    _assert_estimates_equal(reference, speculative)
    assert oracle.chunks_speculated > 0


@pytest.mark.parallel
def test_speculation_overshoot_is_discarded_and_counted():
    # a loose tolerance stops each cell at its first 4-sample chunk, so the
    # second chunk of the round is pure overshoot: drawn, returned,
    # deterministically dropped
    reference, _ = _adaptive_estimates(2, False, True, seed=23, tolerance=10.0,
                                       min_samples=4)
    speculative, oracle = _adaptive_estimates(2, True, True, seed=23,
                                              tolerance=10.0, min_samples=4)
    _assert_estimates_equal(reference, speculative)
    assert oracle.chunks_speculated > 0
    assert oracle.chunks_discarded > 0


def test_speculate_flag_reaches_the_scheduler():
    from repro import CellShapleyExplainer
    from repro.repair.base import BinaryRepairOracle
    from repro import la_liga_constraints

    oracle = BinaryRepairOracle(
        SimpleRuleRepair(), la_liga_constraints(), la_liga_dirty_table(),
        CellRef(4, "Country"),
    )
    with CellShapleyExplainer(oracle, rng=23, n_jobs=1,
                              speculate=True) as explainer:
        assert explainer._scheduler(1).speculate is True
