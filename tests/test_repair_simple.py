"""Unit tests for Algorithm 1 (SimpleRuleRepair)."""

import pytest

from repro.constraints.parser import parse_dc, parse_dcs
from repro.constraints.violations import is_clean
from repro.dataset.table import CellRef, Table
from repro.errors import RepairError
from repro.repair.simple import (
    CONDITIONAL,
    MOST_COMMON,
    RepairRule,
    SimpleRuleRepair,
    default_rules_for,
    paper_algorithm_1,
)


def test_repair_rule_validation():
    with pytest.raises(RepairError):
        RepairRule(target="City", strategy="magic")
    with pytest.raises(RepairError):
        RepairRule(target="City", strategy=CONDITIONAL)  # missing 'given'


def test_simple_repair_rejects_bad_iterations():
    with pytest.raises(RepairError):
        SimpleRuleRepair(max_iterations=0)


def test_paper_algorithm_repairs_figure2(dirty_table, clean_table, constraints):
    algorithm = paper_algorithm_1()
    repaired = algorithm.repair_table(constraints, dirty_table)
    assert repaired.equals(clean_table)
    assert repaired.value(4, "City") == "Madrid"
    assert repaired.value(4, "Country") == "Spain"


def test_paper_algorithm_makes_table_clean(dirty_table, constraints):
    repaired = paper_algorithm_1().repair_table(constraints, dirty_table)
    assert is_clean(repaired, constraints)


def test_input_table_is_not_mutated(dirty_table, constraints):
    paper_algorithm_1().repair_table(constraints, dirty_table)
    assert dirty_table.value(4, "City") == "Capital"
    assert dirty_table.value(4, "Country") == "España"


def test_subsets_of_constraints_change_the_outcome(dirty_table, constraints):
    algorithm = paper_algorithm_1()
    by_name = {c.name: c for c in constraints}
    only_c1 = algorithm.repair_table([by_name["C1"]], dirty_table)
    assert only_c1.value(4, "City") == "Madrid"
    assert only_c1.value(4, "Country") == "España"  # country untouched without C2/C3
    only_c2 = algorithm.repair_table([by_name["C2"]], dirty_table)
    assert only_c2.equals(dirty_table)  # "Capital" is unique, so C2 alone sees no violation
    only_c3 = algorithm.repair_table([by_name["C3"]], dirty_table)
    assert only_c3.value(4, "Country") == "Spain"
    assert only_c3.value(4, "City") == "Capital"


def test_no_constraints_is_identity(dirty_table):
    repaired = paper_algorithm_1().repair_table([], dirty_table)
    assert repaired.equals(dirty_table)


def test_most_common_rule_replacement_value():
    table = Table(["City"], [["Madrid"], ["Madrid"], ["Capital"]])
    rule = RepairRule(target="City", strategy=MOST_COMMON)
    assert rule.replacement_value(table, 2) == "Madrid"


def test_conditional_rule_replacement_value():
    table = Table(
        ["City", "Country"],
        [["Madrid", "Spain"], ["Madrid", "Spain"], ["Madrid", "España"]],
    )
    rule = RepairRule(target="Country", strategy=CONDITIONAL, given="City")
    assert rule.replacement_value(table, 2) == "Spain"


def test_conditional_rule_returns_none_when_given_is_null():
    table = Table(["City", "Country"], [["Madrid", "Spain"], [None, "España"]])
    rule = RepairRule(target="Country", strategy=CONDITIONAL, given="City")
    assert rule.replacement_value(table, 1) is None


def test_default_rules_for_fd_with_single_equality_is_conditional():
    dc = parse_dc("not(t1.City == t2.City and t1.Country != t2.Country)")
    rule = default_rules_for(dc)
    assert rule.target == "Country"
    assert rule.strategy == CONDITIONAL
    assert rule.given == "City"


def test_default_rules_for_multi_equality_is_most_common():
    dc = parse_dc(
        "not(t1.A == t2.A and t1.B == t2.B and t1.C != t2.C)"
    )
    rule = default_rules_for(dc)
    assert rule.target == "C"
    assert rule.strategy == MOST_COMMON


def test_default_rules_for_order_constraint_is_none():
    dc = parse_dc("not(t1.Salary > t2.Salary and t1.Rate < t2.Rate)")
    assert default_rules_for(dc) is None


def test_derived_rules_repair_generic_fd_dataset():
    table = Table(
        ["Code", "Name"],
        [["A1", "Aspirin"], ["A1", "Aspirin"], ["A1", "Asprin"], ["B2", "Beta"]],
    )
    constraints = parse_dcs(["not(t1.Code == t2.Code and t1.Name != t2.Name)"])
    repaired = SimpleRuleRepair().repair_table(constraints, table)
    assert repaired.value(2, "Name") == "Aspirin"
    assert is_clean(repaired, constraints)


def test_rules_without_matching_attribute_are_skipped():
    table = Table(["A"], [["x"], ["y"]])
    constraints = parse_dcs(["not(t1.A == t2.A and t1.A != t2.A)"])
    algorithm = SimpleRuleRepair(rules={"C1": RepairRule(target="Missing")}, derive_missing=False)
    repaired = algorithm.repair_table(constraints, table)
    assert repaired.equals(table)


def test_fixpoint_terminates_within_iteration_budget(dirty_table, constraints):
    algorithm = paper_algorithm_1(max_iterations=1)
    repaired = algorithm.repair_table(constraints, dirty_table)
    # One pass already fixes both cells because C1 precedes C2 in the rule order.
    assert repaired.value(4, "Country") == "Spain"
