"""The sharded scheduler must be invisible in the numbers.

Three contracts are pinned here:

* **worker-count invariance** — for a fixed job seed the per-cell coalition
  draws (and therefore the Shapley values, standard errors and sample counts)
  are bit-identical for ``n_jobs ∈ {1, 2, 4}``, across both bundled black
  boxes, all three replacement policies and the engine flag grid
  (property-based over seeds);
* **sequential-path preservation** — ``n_jobs=None`` runs the exact PR 3
  sequential engine (same values as before the subsystem existed);
* **merged early stopping** — adaptive runs decide convergence on the merged
  cross-shard accumulator, so the stopping point matches the in-process run
  for every worker count;
* **pool-lifecycle invariance** — the warm pool (resident worker stacks,
  cache-diff shipping) and the cold rebuild-per-round pool produce
  bit-identical estimates across the engine flag grid (property-based over
  seeds), and a cached scheduler reusing its pool across calls changes
  counters only, never values.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BinaryRepairOracle,
    CellRef,
    CellShapleyExplainer,
    GreedyHolisticRepair,
    ShardedExplainScheduler,
    SimpleRuleRepair,
    la_liga_constraints,
    la_liga_dirty_table,
)
from repro.parallel import partition_samples, shard_rng
from repro.shapley.convergence import ConvergenceTracker, RunningMean
from repro.shapley.permutation import permutation_shapley

pytestmark = pytest.mark.parallel

CELL_OF_INTEREST = CellRef(4, "Country")
PROBES = [CellRef(4, "City"), CellRef(0, "Country")]


def make_explainer(n_jobs, policy="sample", rng=23, algorithm=None,
                   samples_per_shard=4, flags=(True, True, True, True),
                   warm_pool=True):
    incremental, paired, shared_stats, batched_pairs = flags
    oracle = BinaryRepairOracle(
        algorithm or SimpleRuleRepair(),
        la_liga_constraints(),
        la_liga_dirty_table(),
        CELL_OF_INTEREST,
        incremental=incremental, paired=paired,
        shared_stats=shared_stats, batched_pairs=batched_pairs,
    )
    explainer = CellShapleyExplainer(
        oracle, policy=policy, rng=rng,
        incremental=incremental, paired=paired,
        shared_stats=shared_stats, batched_pairs=batched_pairs,
        n_jobs=n_jobs, samples_per_shard=samples_per_shard,
        warm_pool=warm_pool,
    )
    return explainer, oracle


def explain_with(n_jobs, **kwargs):
    n_samples = kwargs.pop("n_samples", 10)
    explainer, oracle = make_explainer(n_jobs, **kwargs)
    return explainer.explain(cells=PROBES, n_samples=n_samples), oracle


# ---------------------------------------------------------------------------
# deterministic seed partitioning: n_jobs ∈ {1, 2, 4} bit-identical


@pytest.mark.parametrize("policy", ["null", "mode", "sample"])
@pytest.mark.parametrize("algorithm_factory,label", [
    (SimpleRuleRepair, "simple"),
    (lambda: GreedyHolisticRepair(max_changes=20), "greedy"),
])
@settings(max_examples=3, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_draws_identical_across_worker_counts(policy, algorithm_factory, label, seed):
    """Per-cell coalition draws must not depend on the worker count."""
    results = {}
    for n_jobs in (1, 2, 4):
        results[n_jobs], _ = explain_with(
            n_jobs, policy=policy, rng=seed, algorithm=algorithm_factory(),
            n_samples=8, samples_per_shard=3,
        )
    for n_jobs in (2, 4):
        assert results[n_jobs].values == results[1].values, (label, policy, n_jobs)
        assert results[n_jobs].standard_errors == results[1].standard_errors, \
            (label, policy, n_jobs)
        assert results[n_jobs].n_samples == results[1].n_samples, (label, policy, n_jobs)


@pytest.mark.parametrize("flags", [
    (False, False, False, False),
    (True, False, False, False),
    (True, True, False, False),
    (True, True, True, False),
    (True, True, False, True),
    (True, True, True, True),
])
def test_worker_count_invariance_across_flag_grid(flags):
    """n_jobs=2 equals n_jobs=1 on every engine flag combination."""
    sequentially_sharded, _ = explain_with(1, flags=flags, policy="null")
    fanned_out, oracle = explain_with(2, flags=flags, policy="null")
    assert fanned_out.values == sequentially_sharded.values, flags
    assert fanned_out.standard_errors == sequentially_sharded.standard_errors, flags
    assert fanned_out.n_samples == sequentially_sharded.n_samples, flags
    assert oracle.parallel_workers == 2
    assert oracle.parallel_shards > 0


def test_estimate_cell_routes_through_scheduler():
    explainer, oracle = make_explainer(2, policy="null")
    estimate = explainer.estimate_cell(CellRef(4, "City"), n_samples=9)
    reference, _ = make_explainer(1, policy="null")
    assert estimate == reference.estimate_cell(CellRef(4, "City"), n_samples=9)
    assert estimate.n_samples == 9
    # the shard chunking (4+4+1) is invisible in the estimate
    assert oracle.parallel_shards == 3


def test_sequential_path_is_untouched_by_the_subsystem():
    """n_jobs=None must reproduce the pre-subsystem sequential stream."""
    modern, _ = explain_with(None, policy="sample", rng=23)
    explainer, _ = make_explainer(None, policy="sample", rng=23,
                                  samples_per_shard=None)
    # a second sequential run with the same seed is the strongest available
    # reference: the stream is serial across cells, so any accidental
    # rerouting through the scheduler would change the draws
    again = explainer.explain(cells=PROBES, n_samples=10)
    assert modern.values == again.values
    assert modern.standard_errors == again.standard_errors


def test_scheduler_counters_and_cache_are_absorbed():
    explainer, oracle = make_explainer(2, policy="null")
    explainer.explain(cells=PROBES, n_samples=10)
    statistics = oracle.statistics()
    # the parent oracle never ran a query itself (only the reference repair);
    # every counter below arrived through absorb_statistics / cache.merge
    assert statistics["oracle_calls"] == 2 * 10 * len(PROBES)
    assert statistics["parallel_workers"] == 2
    assert statistics["parallel_shards"] == 6
    assert oracle.cache is not None and len(oracle.cache) > 0
    assert statistics["cache_misses"] > 0


def test_standalone_scheduler_returns_merged_cache():
    explainer, oracle = make_explainer(1, policy="null")
    scheduler = ShardedExplainScheduler.from_explainer(explainer, n_jobs=2,
                                                       samples_per_shard=4)
    outcome = scheduler.run(PROBES, 8)
    assert set(outcome.estimates) == set(PROBES)
    assert outcome.n_shards == 4
    assert outcome.cache is not None and len(outcome.cache) > 0
    # nothing was absorbed: the parent oracle still only counts the reference repair
    assert oracle.calls == 0


# ---------------------------------------------------------------------------
# warm pool: resident worker state must be invisible in the numbers


@pytest.mark.parametrize("flags", [
    (False, False, False, False),
    (True, False, False, False),
    (True, True, True, True),
])
@settings(max_examples=3, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_warm_and_cold_pools_bit_identical(flags, seed):
    """Resident stacks + diff shipping vs rebuild-per-round: same bits."""
    warm, warm_oracle = explain_with(2, flags=flags, rng=seed, warm_pool=True)
    cold, _ = explain_with(2, flags=flags, rng=seed, warm_pool=False)
    inline, _ = explain_with(1, flags=flags, rng=seed)
    assert warm.values == cold.values == inline.values, flags
    assert warm.standard_errors == cold.standard_errors == inline.standard_errors
    assert warm_oracle.parallel_workers == 2


def test_cached_scheduler_reuses_warm_pool_across_calls():
    """One explainer = one pool; only the first round builds worker stacks."""
    explainer, oracle = make_explainer(2, policy="null")
    with explainer:
        first = explainer.estimate_cell(CellRef(4, "City"), n_samples=8)
        second = explainer.estimate_cell(CellRef(4, "City"), n_samples=8)
        scheduler = explainer._scheduler(2)
        assert explainer._scheduler(2) is scheduler  # cached, not rebuilt
    # identical chunk seeds -> identical repeat estimate, warm or not
    assert second == first
    assert len(scheduler.round_log) == 2
    assert scheduler.round_log[0]["worker_rebuilds"] == 2
    assert scheduler.round_log[1]["worker_rebuilds"] == 0
    assert oracle.statistics()["worker_rebuilds"] == 2
    # the second call hit the workers' resident caches: nothing new to ship
    assert (scheduler.round_log[1]["cache_entries_shipped"]
            < scheduler.round_log[1]["cache_entries_resident"])


def test_close_shuts_the_pool_down_and_the_next_call_respawns():
    explainer, _ = make_explainer(2, policy="null")
    first = explainer.estimate_cell(CellRef(4, "City"), n_samples=8)
    scheduler = explainer._scheduler(2)
    assert scheduler._pool is not None
    explainer.close()
    assert scheduler._pool is None
    # a fresh scheduler (and pool) serves later calls with identical values
    again = explainer.estimate_cell(CellRef(4, "City"), n_samples=8)
    assert again == first
    explainer.close()


def test_reusing_a_closed_scheduler_stays_parallel(recwarn):
    """close() must drop the residency map: fresh workers need the payload.

    A stale map would dispatch payload-free tasks to the respawned (empty)
    workers, silently degrading every round to in-process execution with a
    warning per worker — values would stay right, parallelism would not.
    """
    explainer, oracle = make_explainer(2, policy="null")
    scheduler = explainer._scheduler(2)
    first = scheduler.run(PROBES, 8, absorb_into=oracle)
    scheduler.close()
    again = scheduler.run(PROBES, 8, absorb_into=oracle)
    scheduler.close()
    assert again.estimates == first.estimates
    assert not [w for w in recwarn if "no resident oracle stack" in str(w.message)]
    statistics = oracle.statistics()
    assert statistics["shards_requeued"] == 0
    # both pool lifetimes rebuilt their two worker stacks, nothing degraded
    assert statistics["worker_rebuilds"] == 4


def test_cold_pool_rebuilds_every_round():
    explainer, oracle = make_explainer(2, policy="null", warm_pool=False)
    with explainer:
        explainer.estimate_cell(CellRef(4, "City"), n_samples=8)
        explainer.estimate_cell(CellRef(4, "City"), n_samples=8)
    assert oracle.statistics()["worker_rebuilds"] == 4  # 2 workers x 2 rounds


# ---------------------------------------------------------------------------
# adaptive early stopping: merged cross-shard counts


def adaptive_estimate(n_jobs, **kwargs):
    explainer, oracle = make_explainer(n_jobs, policy="sample", rng=11,
                                       samples_per_shard=4)
    estimate = explainer.estimate_cell_converged(
        CellRef(0, "Country"), tolerance=kwargs.get("tolerance", 0.15),
        min_samples=kwargs.get("min_samples", 10),
        max_samples=kwargs.get("max_samples", 40),
    )
    return estimate, oracle


def test_convergence_decisions_match_the_sequential_run():
    """Early stopping must consume merged counts: same stop point for every n_jobs."""
    sequential, _ = adaptive_estimate(1)
    for n_jobs in (2, 4):
        parallel, _ = adaptive_estimate(n_jobs)
        assert parallel.n_samples == sequential.n_samples, n_jobs
        assert parallel.value == sequential.value, n_jobs
        assert parallel.standard_error == sequential.standard_error, n_jobs


def test_convergence_waits_for_merged_min_samples():
    """A single 4-sample shard never satisfies min_samples=10 on its own."""
    estimate, _ = adaptive_estimate(2, min_samples=10)
    assert estimate.n_samples >= 10


def test_convergence_tracker_merge_matches_serial_feed():
    samples = [0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0]
    serial = ConvergenceTracker(tolerance=0.5, min_samples=10)
    for sample in samples:
        serial.update(sample)
    merged = ConvergenceTracker(tolerance=0.5, min_samples=10)
    for start in range(0, len(samples), 4):
        block = RunningMean()
        for sample in samples[start:start + 4]:
            block.update(sample)
        merged.merge(block)
    assert merged.accumulator.count == serial.accumulator.count
    assert merged.converged() == serial.converged()
    assert merged.estimate == pytest.approx(serial.estimate)
    assert merged.half_width == pytest.approx(serial.half_width)


# ---------------------------------------------------------------------------
# plan plumbing


def test_partition_samples():
    assert partition_samples(10, 4) == [4, 4, 2]
    assert partition_samples(8, 4) == [4, 4]
    assert partition_samples(3, 8) == [3]
    assert partition_samples(0, 8) == []
    with pytest.raises(ValueError):
        partition_samples(10, 0)


def test_shard_rng_streams_are_reproducible_and_distinct():
    first = shard_rng(23, 0, 0).integers(0, 2**32, size=4)
    again = shard_rng(23, 0, 0).integers(0, 2**32, size=4)
    other_chunk = shard_rng(23, 0, 1).integers(0, 2**32, size=4)
    other_cell = shard_rng(23, 1, 0).integers(0, 2**32, size=4)
    assert list(first) == list(again)
    assert list(first) != list(other_chunk)
    assert list(first) != list(other_cell)


def test_n_jobs_validation():
    with pytest.raises(ValueError):
        make_explainer(0)
    from repro.shapley.game import CallableGame

    with pytest.raises(ValueError):
        permutation_shapley(CallableGame(("a",), _squared_size),
                            n_permutations=4, n_jobs=0)
    explainer, _ = make_explainer(1)
    with pytest.raises(ValueError):
        ShardedExplainScheduler.from_explainer(explainer, n_jobs=0)
    with pytest.raises(ValueError):
        ShardedExplainScheduler.from_explainer(explainer, n_jobs=2,
                                               samples_per_shard=0)


def test_unpicklable_spec_degrades_in_process():
    """A closure-holding black box cannot fan out; the plan still runs."""
    from repro.repair.base import FunctionRepairAlgorithm

    def build(n_jobs):
        algorithm = FunctionRepairAlgorithm(
            lambda constraints, table: SimpleRuleRepair().repair_table(
                constraints, table),
            name="lambda-repair",
        )
        return make_explainer(n_jobs, policy="null", algorithm=algorithm)

    reference, _ = build(1)
    reference_result = reference.explain(cells=PROBES, n_samples=6)
    fanned, _ = build(2)
    with pytest.warns(RuntimeWarning, match="not picklable"):
        fallback_result = fanned.explain(cells=PROBES, n_samples=6)
    assert fallback_result.values == reference_result.values
    assert fallback_result.standard_errors == reference_result.standard_errors


def test_generator_seed_draws_one_job_seed():
    import numpy as np

    explainer, _ = make_explainer(2, rng=np.random.default_rng(5))
    seed = explainer.job_seed()
    assert explainer.job_seed() == seed  # stable across calls
    fresh, _ = make_explainer(2, rng=np.random.default_rng(5))
    assert fresh.job_seed() == seed  # deterministic in the generator state


# ---------------------------------------------------------------------------
# sharded permutation estimator


def _squared_size(coalition) -> float:
    return float(len(coalition) ** 2)


def test_permutation_shapley_sharded_is_worker_count_invariant():
    from repro.shapley.game import CallableGame

    # module-level value function: the game pickles, so n_jobs > 1 fans out
    game = CallableGame(("a", "b", "c", "d"), _squared_size)
    results = {
        n_jobs: permutation_shapley(game, n_permutations=24, rng=9,
                                    n_jobs=n_jobs, permutations_per_shard=5)
        for n_jobs in (1, 2, 4)
    }
    for n_jobs in (2, 4):
        assert results[n_jobs].values == results[1].values
        assert results[n_jobs].standard_errors == results[1].standard_errors
        assert results[n_jobs].n_samples == results[1].n_samples


def test_permutation_shapley_unpicklable_game_degrades_in_process():
    from repro.shapley.game import CallableGame

    game = CallableGame(("a", "b", "c"), lambda s: float(len(s)))
    reference = permutation_shapley(game, n_permutations=12, rng=9,
                                    n_jobs=1, permutations_per_shard=4)
    with pytest.warns(RuntimeWarning, match="not picklable"):
        fallback = permutation_shapley(game, n_permutations=12, rng=9,
                                       n_jobs=2, permutations_per_shard=4)
    assert fallback.values == reference.values
