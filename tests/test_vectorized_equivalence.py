"""The dictionary-encoded engine must be invisible in the numbers.

``vectorized=True`` evaluates FD re-checks, mixed-group detection, greedy
``count_if`` trials and batched co-occurrence scoring over ``int32`` code
arrays; ``vectorized=False`` is the per-cell object reference path.  The
contract is bit-identity, not approximation:

* walk-level (hypothesis): randomised perturbation deltas and post-prime
  write sequences must yield identical violations, identical cell degrees
  and identical candidate-trial counts on both engines;
* explain-level: full cell-Shapley runs — both bundled black boxes, all
  three replacement policies, every engine-flag path — must produce equal
  value dictionaries with the flag on and off.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BinaryRepairOracle,
    CellRef,
    CellShapleyExplainer,
    GreedyHolisticRepair,
    SimpleRuleRepair,
    SoccerLeagueGenerator,
    la_liga_constraints,
    la_liga_dirty_table,
)
from repro.constraints.incremental import repair_walk_for
from repro.engine.storage import NULL

# ---------------------------------------------------------------------------
# walk-level equivalence on randomised deltas (hypothesis)
# ---------------------------------------------------------------------------

_DATASET = SoccerLeagueGenerator(seed=47).generate(30)
_CONSTRAINTS = _DATASET.constraints()
_BASE = _DATASET.table
_ATTRS = _BASE.attributes
_POOLS = {
    attribute: sorted(
        {_BASE.value(row, attribute) for row in range(_BASE.n_rows)}, key=repr
    )
    for attribute in _ATTRS
}


def _violation_multiset(violations):
    return Counter((v.constraint.name, v.rows) for v in violations)


@st.composite
def _cell_writes(draw, max_size: int):
    """Up to ``max_size`` cell writes: same-column values, foreign values
    (exercising dictionary growth) and nulls."""
    writes = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_size))):
        row = draw(st.integers(min_value=0, max_value=_BASE.n_rows - 1))
        attribute = draw(st.sampled_from(_ATTRS))
        source = draw(st.sampled_from(_ATTRS))
        value = draw(st.one_of(st.just(NULL), st.sampled_from(_POOLS[source])))
        writes.append((row, attribute, value))
    return writes


def _paired_walks(delta):
    overrides = {CellRef(row, attribute): value for row, attribute, value in delta}
    view_vec = _BASE.perturbed(overrides).mutable_snapshot()
    view_obj = _BASE.perturbed(overrides).mutable_snapshot()
    walk_vec = repair_walk_for(view_vec, _CONSTRAINTS, vectorized=True)
    walk_obj = repair_walk_for(view_obj, _CONSTRAINTS, vectorized=False)
    return view_vec, walk_vec, view_obj, walk_obj


def _assert_walks_agree(walk_vec, walk_obj):
    violations = walk_obj.all_violations()
    assert _violation_multiset(walk_vec.all_violations()) == \
        _violation_multiset(violations)
    total, degrees = walk_vec.cell_degrees()
    assert total == len(violations)
    assert degrees == {
        cell: violations.count_for_cell(cell)
        for cell in violations.cells_involved()
    }


@settings(max_examples=25, deadline=None)
@given(delta=_cell_writes(max_size=6), writes=_cell_writes(max_size=4),
       data=st.data())
def test_walk_matches_object_path_on_random_deltas(delta, writes, data):
    view_vec, walk_vec, view_obj, walk_obj = _paired_walks(delta)
    _assert_walks_agree(walk_vec, walk_obj)
    # post-prime writes: the walk's own second-order maintenance
    for row, attribute, value in writes:
        view_vec.set_value(row, attribute, value)
        view_obj.set_value(row, attribute, value)
        _assert_walks_agree(walk_vec, walk_obj)
    # candidate trials: the batched pass must equal one scalar count_if per
    # candidate — on both engines
    row = data.draw(st.integers(min_value=0, max_value=_BASE.n_rows - 1))
    attribute = data.draw(st.sampled_from(_ATTRS))
    cell = CellRef(row, attribute)
    pool = _POOLS[attribute][:5]
    totals = walk_vec.count_if_many(cell, pool)
    assert totals == [walk_obj.count_if(cell, value) for value in pool]
    assert totals == [walk_vec.count_if(cell, value) for value in pool]


# ---------------------------------------------------------------------------
# explain-level equivalence (cell Shapley, both black boxes, all policies)
# ---------------------------------------------------------------------------

_CELL_OF_INTEREST = CellRef(4, "Country")
_PROBES = [CellRef(4, "City"), CellRef(0, "Country")]

#: (incremental, paired, second_order, shared_stats, batched_pairs)
_FLAG_PATHS = {
    "full": (False, False, False, False, False),
    "incremental": (True, False, False, False, False),
    "paired_nobatch": (True, True, True, False, False),
    "paired_batched": (True, True, True, True, True),
}


def _make_algorithm(name: str, second_order: bool, vectorized: bool):
    if name == "simple":
        return SimpleRuleRepair(second_order=second_order, vectorized=vectorized)
    return GreedyHolisticRepair(max_changes=20, second_order=second_order,
                                vectorized=vectorized)


def _explain(algorithm: str, policy: str, path: str, vectorized: bool):
    incremental, paired, second_order, shared_stats, batched_pairs = \
        _FLAG_PATHS[path]
    oracle = BinaryRepairOracle(
        _make_algorithm(algorithm, second_order, vectorized),
        la_liga_constraints(), la_liga_dirty_table(), _CELL_OF_INTEREST,
        incremental=incremental, paired=paired,
        shared_stats=shared_stats, batched_pairs=batched_pairs,
        vectorized=vectorized,
    )
    with CellShapleyExplainer(
        oracle, policy=policy, rng=11,
        incremental=incremental, paired=paired,
        shared_stats=shared_stats, batched_pairs=batched_pairs,
    ) as explainer:
        result = explainer.explain(cells=_PROBES, n_samples=8)
    return result.values, oracle.statistics()


@pytest.mark.parametrize("policy", ["mode", "sample", "null"])
@pytest.mark.parametrize("algorithm", ["simple", "greedy"])
def test_explain_vectorized_bit_identical(algorithm, policy):
    values_on, stats_on = _explain(algorithm, policy, "paired_batched", True)
    values_off, stats_off = _explain(algorithm, policy, "paired_batched", False)
    assert values_on == values_off
    # the vectorised engine actually engaged (and never silently fell back)
    encoding = stats_on["encoding"]
    assert encoding["vectorized_checks"] > 0
    assert encoding["fallback_checks"] == 0
    assert set(encoding["dictionary_sizes"]) == set(
        la_liga_dirty_table().attributes
    )


@pytest.mark.slow
@pytest.mark.parametrize("policy", ["mode", "sample", "null"])
@pytest.mark.parametrize("path", sorted(_FLAG_PATHS))
@pytest.mark.parametrize("algorithm", ["simple", "greedy"])
def test_explain_vectorized_bit_identical_full_grid(algorithm, path, policy):
    values_on, _ = _explain(algorithm, policy, path, True)
    values_off, _ = _explain(algorithm, policy, path, False)
    assert values_on == values_off
