"""Unit tests for explanation reports (the textual stand-in for the web GUI)."""

import pytest

from repro.dataset.table import CellRef
from repro.explain.report import ExplanationReport, render_table_with_highlights, repair_summary


@pytest.fixture
def explanation(explainer, cell_of_interest):
    return explainer.explain(cell_of_interest, n_samples=10)


def test_text_report_mentions_cell_and_repair(explanation, constraints, dirty_table):
    report = ExplanationReport(explanation, constraints=constraints, dirty_table=dirty_table)
    text = report.to_text()
    assert "t5[Country]" in text
    assert "'España' -> 'Spain'" in text
    assert "Constraint contributions" in text
    assert "Cell contributions" in text
    assert "C3" in text
    assert str(report) == text


def test_text_report_orders_constraints_by_value(explanation, constraints):
    text = ExplanationReport(explanation, constraints=constraints).to_text()
    assert text.index("C3") < text.index("C4")


def test_text_report_includes_dc_rendering(explanation, constraints):
    text = ExplanationReport(explanation, constraints=constraints).to_text()
    assert "¬(" in text  # the unicode DC rendering is attached to each ranked constraint


def test_shade_buckets_present(explanation, constraints):
    text = ExplanationReport(explanation, constraints=constraints).to_text()
    assert "[dark]" in text
    assert "[none]" in text  # C4 contributes nothing


def test_markdown_report_structure(explanation, constraints, dirty_table):
    markdown = ExplanationReport(
        explanation, constraints=constraints, dirty_table=dirty_table
    ).to_markdown()
    assert markdown.startswith("## T-REx explanation for `t5[Country]`")
    assert "| rank | constraint | Shapley | shade |" in markdown
    assert "| rank | cell | Shapley | shade |" in markdown
    assert "| 1 | C3 |" in markdown


def test_constraint_only_report(explainer, cell_of_interest, constraints):
    explanation = explainer.explain_constraints(cell_of_interest)
    text = ExplanationReport(explanation, constraints=constraints).to_text()
    assert "Constraint contributions" in text
    assert "Cell contributions" not in text


def test_cell_report_top_k_limits_rows(explanation, dirty_table):
    report = ExplanationReport(explanation, dirty_table=dirty_table)
    text_full = report.to_text(top_k_cells=None)
    text_short = report.to_text(top_k_cells=3)
    assert len(text_short) < len(text_full)


def test_render_table_with_highlights(dirty_table):
    rendered = render_table_with_highlights(
        dirty_table, [CellRef(4, "Country")], title="Dirty table:"
    )
    assert rendered.startswith("Dirty table:")
    assert "*España*" in rendered


def test_repair_summary_lists_changes(dirty_table, clean_table):
    summary = repair_summary(dirty_table, clean_table)
    assert "2 cell(s) repaired." in summary
    assert "t5[Country]: 'España' -> 'Spain'" in summary
    assert "*Spain*" in summary  # repaired value highlighted in the table rendering


def test_report_surfaces_oracle_statistics(explainer, cell_of_interest, constraints):
    explanation = explainer.explain_cells(cell_of_interest, n_samples=5)
    text = ExplanationReport(explanation, constraints=constraints).to_text()
    assert "Oracle statistics:" in text
    assert "repair_runs=" in text
    assert "cache_hits=" in text


def test_report_flags_deadline_expired_partial_results(dirty_table):
    # a deadline-expired run returns completed=False; both renderings must
    # carry a loud notice so partial estimates are never read as converged
    from repro.explain.explainer import Explanation
    from repro.shapley.game import ShapleyResult

    partial = ShapleyResult(
        values={CellRef(4, "City"): 0.5}, n_samples=3, completed=False
    )
    explanation = Explanation(
        cell=CellRef(4, "Country"), old_value="España", new_value="Spain",
        cell_shapley=partial,
    )
    report = ExplanationReport(explanation, dirty_table=dirty_table)
    text = report.to_text()
    assert "!! INCOMPLETE: deadline expired after 3 cell sample(s)" in text
    markdown = report.to_markdown()
    assert "> **INCOMPLETE: deadline expired" in markdown


def test_report_stays_silent_when_sampling_completed(explanation, constraints):
    report = ExplanationReport(explanation, constraints=constraints)
    assert "INCOMPLETE" not in report.to_text()
    assert "INCOMPLETE" not in report.to_markdown()


def test_report_statistics_include_batch_counters(explainer, cell_of_interest, constraints):
    # explain() nests per-scope counter dicts; batch-scheduler counters from
    # the cell loop (batches, pairs) must be rendered when non-zero
    explanation = explainer.explain(cell_of_interest, n_samples=5)
    report = ExplanationReport(explanation, constraints=constraints)
    text = report.to_text()
    assert "constraints" in text and "cells" in text
    assert "batches=" in text
    assert "Oracle statistics:" in report.to_markdown()


def _explanation_with_statistics(statistics):
    from repro.explain.explainer import Explanation

    return Explanation(
        cell=CellRef(4, "Country"), old_value="España", new_value="Spain",
        oracle_statistics=statistics,
    )


def test_report_renders_nested_counter_groups_flat_scope():
    # a single-scope statistics dict carrying a nested telemetry group: the
    # group gets its own indented line with the per-column leaf dict inline
    explanation = _explanation_with_statistics({
        "oracle_calls": 7,
        "repair_runs": 3,
        "cache_hits": 1,
        "cache_misses": 2,
        "encoding": {"codes_built": 4, "dictionary_sizes": {"City": 5, "Team": 3}},
    })
    report = ExplanationReport(explanation)
    text = report.to_text()
    assert "oracle_calls=7" in text
    assert "encoding: codes_built=4 dictionary_sizes=[City:5,Team:3]" in text
    markdown = report.to_markdown()
    assert "encoding: codes_built=4 dictionary_sizes=[City:5,Team:3]" in markdown


def test_report_renders_nested_counter_groups_scoped():
    # explain() nests one counter dict per scope; a telemetry group inside a
    # scope renders under the dotted "scope.group" label in both formats
    explanation = _explanation_with_statistics({
        "constraints": {"oracle_calls": 7, "repair_runs": 3,
                        "cache_hits": 0, "cache_misses": 0},
        "cells": {"oracle_calls": 9, "repair_runs": 4,
                  "cache_hits": 2, "cache_misses": 2,
                  "encoding": {"dictionary_sizes": {"Country": 4}}},
    })
    report = ExplanationReport(explanation)
    for rendering in (report.to_text(), report.to_markdown()):
        assert "cells.encoding: dictionary_sizes=[Country:4]" in rendering
        assert "oracle_calls=7" in rendering
        assert "oracle_calls=9" in rendering


def test_report_incomplete_notice_precedes_statistics():
    # the INCOMPLETE banner must come before the statistics block in both
    # renderings so partial counters are never read without the warning
    from repro.shapley.game import ShapleyResult

    partial = ShapleyResult(values={CellRef(4, "City"): 0.5},
                            n_samples=12, completed=False)
    explanation = _explanation_with_statistics({
        "oracle_calls": 7, "repair_runs": 3, "cache_hits": 0, "cache_misses": 0,
    })
    explanation.cell_shapley = partial
    report = ExplanationReport(explanation)
    text = report.to_text()
    assert text.index("INCOMPLETE: deadline expired after 12") < text.index("Oracle statistics:")
    markdown = report.to_markdown()
    assert markdown.index("INCOMPLETE") < markdown.index("Oracle statistics:")
