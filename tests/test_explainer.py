"""Unit tests for the TRExExplainer facade."""

import pytest

from repro.dataset.table import CellRef
from repro.errors import ExplanationError, NotRepairedError
from repro.explain.explainer import TRExExplainer
from repro.repair.greedy import GreedyHolisticRepair


def test_repair_is_cached_and_refreshable(explainer):
    first = explainer.repair()
    second = explainer.repair()
    assert first is second
    third = explainer.repair(force=True)
    assert third is not first
    assert third.clean.equals(first.clean)


def test_repaired_cells_listing(explainer):
    assert set(explainer.repaired_cells()) == {CellRef(4, "City"), CellRef(4, "Country")}
    assert explainer.clean_table.value(4, "Country") == "Spain"
    assert len(explainer.delta) == 2


def test_duplicate_constraint_names_rejected(algorithm, constraints, dirty_table):
    duplicated = constraints + [constraints[0]]
    with pytest.raises(ExplanationError):
        TRExExplainer(algorithm, duplicated, dirty_table)


def test_explaining_unrepaired_cell_raises(explainer):
    with pytest.raises(NotRepairedError):
        explainer.explain_constraints(CellRef(0, "Team"))


def test_explain_constraints_returns_figure1_ranking(explainer, cell_of_interest):
    explanation = explainer.explain_constraints(cell_of_interest)
    assert explanation.old_value == "España"
    assert explanation.new_value == "Spain"
    ranking = explanation.constraint_ranking
    assert ranking.items()[0] == "C3"
    assert explanation.top_constraints(1) == ["C3"]
    assert explanation.cell_ranking is None
    assert explanation.oracle_statistics["repair_runs"] >= 1


def test_explain_constraints_sampled_mode(explainer, cell_of_interest):
    explanation = explainer.explain_constraints(cell_of_interest, exact=False, n_permutations=200)
    assert explanation.constraint_shapley.method.startswith("permutation")
    assert explanation.constraint_ranking.items()[0] == "C3"


def test_explain_cells_returns_ranking(explainer, cell_of_interest):
    explanation = explainer.explain_cells(cell_of_interest, n_samples=15)
    assert explanation.cell_shapley is not None
    assert explanation.constraint_shapley is None
    assert len(explanation.cell_ranking) > 0
    assert explanation.top_cells(3)


def test_explain_cells_with_explicit_cell_list(explainer, cell_of_interest):
    probes = [CellRef(4, "League"), CellRef(0, "Place")]
    explanation = explainer.explain_cells(cell_of_interest, n_samples=10, cells=probes)
    assert set(explanation.cell_shapley.values) == set(probes)


def test_full_explain_combines_both_parts(explainer, cell_of_interest):
    explanation = explainer.explain(cell_of_interest, n_samples=8)
    assert explanation.constraint_shapley is not None
    assert explanation.cell_shapley is not None
    assert set(explanation.oracle_statistics) == {"constraints", "cells"}


def test_with_constraints_builds_new_explainer(explainer, constraints, cell_of_interest):
    reduced = explainer.with_constraints(constraints[:2])
    assert reduced is not explainer
    assert len(reduced.constraints) == 2
    # with only C1 and C2 the country is still repaired (via the C1+C2 path)
    assert reduced.clean_table.value(4, "Country") == "Spain"


def test_with_table_and_with_algorithm(explainer, dirty_table, cell_of_interest):
    edited = dirty_table.with_values({CellRef(4, "League"): "Serie A"})
    updated = explainer.with_table(edited)
    assert updated.dirty_table is not explainer.dirty_table
    swapped = explainer.with_algorithm(GreedyHolisticRepair())
    assert swapped.algorithm is not explainer.algorithm
    assert swapped.constraints == explainer.constraints


def test_explain_counterfactuals_facade(explainer, cell_of_interest):
    result = explainer.explain_counterfactuals(
        cell_of_interest,
        candidate_cells=[CellRef(4, "League"), CellRef(4, "Team"), CellRef(2, "Team")],
    )
    assert result["cell"] == cell_of_interest
    assert frozenset({"C3", "C1"}) in result["constraint_sets"]
    assert frozenset({"C3", "C2"}) in result["constraint_sets"]
    assert result["oracle_statistics"]["repair_runs"] >= 1


def test_explanations_are_deterministic_given_config(explainer, cell_of_interest):
    first = explainer.explain_cells(cell_of_interest, n_samples=12)
    second = explainer.explain_cells(cell_of_interest, n_samples=12)
    assert first.cell_shapley.values == second.cell_shapley.values
