"""Unit tests for exact Shapley computation."""

import pytest

from repro.shapley.exact import exact_shapley, exact_shapley_single
from repro.shapley.game import CallableGame


def test_symmetric_majority_game_splits_equally():
    game = CallableGame(("a", "b", "c"), lambda s: 1.0 if len(s) >= 2 else 0.0)
    result = exact_shapley(game)
    for player in game.players:
        assert result[player] == pytest.approx(1 / 3)
    assert result.total() == pytest.approx(1.0)


def test_additive_game_gives_individual_values():
    worth = {"a": 3.0, "b": 1.0, "c": 0.5}
    game = CallableGame(tuple(worth), lambda s: sum(worth[p] for p in s))
    result = exact_shapley(game)
    for player, value in worth.items():
        assert result[player] == pytest.approx(value)


def test_dummy_player_gets_zero():
    # 'd' never changes the value of any coalition
    game = CallableGame(("a", "b", "d"), lambda s: 1.0 if {"a", "b"} <= s else 0.0)
    result = exact_shapley(game)
    assert result["d"] == pytest.approx(0.0)
    assert result["a"] == pytest.approx(0.5)
    assert result["b"] == pytest.approx(0.5)


def test_glove_game_classic_values():
    # players a,b own left gloves, c owns a right glove; a pair is worth 1
    def value(coalition):
        lefts = len(coalition & {"a", "b"})
        rights = len(coalition & {"c"})
        return float(min(lefts, rights))

    result = exact_shapley(CallableGame(("a", "b", "c"), value))
    assert result["c"] == pytest.approx(2 / 3)
    assert result["a"] == pytest.approx(1 / 6)
    assert result["b"] == pytest.approx(1 / 6)


def test_paper_example_2_3_structure():
    """Figure 1 values from the winning-structure alone: {C3} or {C1, C2} repair the cell."""
    def value(coalition):
        return 1.0 if ("C3" in coalition or {"C1", "C2"} <= coalition) else 0.0

    result = exact_shapley(CallableGame(("C1", "C2", "C3", "C4"), value))
    assert result["C1"] == pytest.approx(1 / 6)
    assert result["C2"] == pytest.approx(1 / 6)
    assert result["C3"] == pytest.approx(2 / 3)
    assert result["C4"] == pytest.approx(0.0)


def test_efficiency_axiom_holds():
    game = CallableGame(("x", "y", "z"), lambda s: len(s) ** 2 / 9.0)
    result = exact_shapley(game)
    assert result.total() == pytest.approx(game.grand_coalition_value())


def test_single_player_game():
    game = CallableGame(("only",), lambda s: 5.0 if "only" in s else 0.0)
    result = exact_shapley(game)
    assert result["only"] == pytest.approx(5.0)


def test_requested_player_subset():
    game = CallableGame(("a", "b", "c"), lambda s: float(len(s)))
    result = exact_shapley(game, players=["b"])
    assert list(result.values) == ["b"]
    assert result["b"] == pytest.approx(1.0)


def test_exact_shapley_single_matches_full_run():
    game = CallableGame(("a", "b", "c"), lambda s: 1.0 if {"a", "c"} <= s else 0.0)
    full = exact_shapley(game)
    assert exact_shapley_single(game, "a") == pytest.approx(full["a"])
    with pytest.raises(KeyError):
        exact_shapley_single(game, "missing")


def test_evaluation_count_is_bounded_by_2_to_n():
    game = CallableGame(tuple("abcde"), lambda s: float(len(s)))
    result = exact_shapley(game)
    assert result.n_evaluations <= 2 ** 5
    assert result.method == "exact-enumeration"
