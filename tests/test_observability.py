"""The observability layer: registry semantics, tracing, events.

Three contracts are pinned here:

* the **metrics registry** is the oracle's single counter sink — kinds
  decide merge semantics, the descriptor surface keeps every historical
  attribute spelling working, and ``statistics()`` key order is stable;
* **tracing** observes the run without feeding it — estimates are
  bit-identical with tracing on or off, span ids derive deterministically
  from seed coordinates, worker spans stitch onto parent cell spans, and a
  forked child never records into the parent's tracer;
* the **event log** reconciles exactly with the health counters (the
  emission sites sit next to the counter bumps), including across real
  worker faults.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro import (
    BinaryRepairOracle,
    CellRef,
    CellShapleyExplainer,
    SimpleRuleRepair,
    la_liga_constraints,
    la_liga_dirty_table,
)
from repro.observability import trace as otrace
from repro.observability.events import EventLog
from repro.observability.metrics import (
    HISTOGRAM,
    MAX,
    SUM,
    TIMER,
    Metric,
    MetricsRegistry,
    NullMetricsRegistry,
    ORACLE_METRICS,
    histogram_bucket,
)
from repro.observability.trace import Span, Tracer, coordinate_span_id
from repro.parallel import RetryPolicy, ShardedExplainScheduler, WorkerFault
from repro.repair.cache import aggregate_oracle_statistics

CELL_OF_INTEREST = CellRef(4, "Country")
PROBES = [CellRef(4, "City"), CellRef(0, "Country")]
N_SAMPLES = 12
SAMPLES_PER_SHARD = 4
FAST_RETRY = dict(backoff_base=0.0)


def make_scheduler(fault_injector=None, n_jobs=2, retry_policy=None,
                   deadline_seconds=None, worker_timeout=None):
    oracle = BinaryRepairOracle(
        SimpleRuleRepair(), la_liga_constraints(), la_liga_dirty_table(),
        CELL_OF_INTEREST,
    )
    explainer = CellShapleyExplainer(oracle, policy="null", rng=23)
    scheduler = ShardedExplainScheduler.from_explainer(
        explainer, n_jobs=n_jobs, samples_per_shard=SAMPLES_PER_SHARD,
        fault_injector=fault_injector, worker_timeout=worker_timeout,
        retry_policy=(retry_policy if retry_policy is not None
                      else RetryPolicy(**FAST_RETRY)),
        deadline_seconds=deadline_seconds,
    )
    return scheduler, oracle


@pytest.fixture(autouse=True)
def _no_tracer_leak():
    """Every test starts and ends with tracing disabled."""
    otrace.disable()
    yield
    otrace.disable()


# -- metrics registry --------------------------------------------------------------------


def test_registry_declares_in_order_and_defaults_to_zero():
    registry = MetricsRegistry(ORACLE_METRICS)
    names = list(registry.as_dict())
    assert names == [metric.name for metric in ORACLE_METRICS]
    assert all(value == 0 for value in registry.as_dict().values())
    assert "oracle_calls" in registry
    assert len(registry) == len(ORACLE_METRICS)


def test_registry_rejects_undeclared_metrics():
    registry = MetricsRegistry((Metric("a"),))
    with pytest.raises(KeyError):
        registry.set("nope", 1)
    with pytest.raises(KeyError):
        registry.get("nope")
    with pytest.raises(ValueError):
        registry.declare("a")  # double declaration
    with pytest.raises(ValueError):
        registry.declare("b", kind="bogus")


def test_registry_kind_merge_semantics():
    registry = MetricsRegistry((
        Metric("adds"), Metric("peak", MAX), Metric("clock", TIMER),
    ))
    registry.add("adds", 2)
    registry.add("adds", 3)
    registry.merge_value("peak", 5)
    registry.merge_value("peak", 3)   # lower observation: no change
    registry.add("clock", 0.25)
    registry.add("clock", 0.5)
    snapshot = registry.as_dict()
    assert snapshot["adds"] == 5
    assert snapshot["peak"] == 5
    assert snapshot["clock"] == pytest.approx(0.75)


def test_registry_absorb_respects_kinds_and_absorbed_flag():
    registry = MetricsRegistry(ORACLE_METRICS)
    registry.set("oracle_calls", 10)
    registry.set("max_batch_size", 8)
    registry.set("parallel_workers", 2)
    registry.absorb({
        "oracle_calls": 5,
        "max_batch_size": 6,      # lower high-water: ignored
        "parallel_workers": 99,   # absorbed=False: scheduler-owned, ignored
        "unknown_counter": 3,     # not declared: ignored, not an error
    })
    snapshot = registry.as_dict()
    assert snapshot["oracle_calls"] == 15
    assert snapshot["max_batch_size"] == 8
    assert snapshot["parallel_workers"] == 2


def test_registry_histogram_buckets_merge_bucketwise():
    registry = MetricsRegistry((Metric("sizes", HISTOGRAM),))
    for value in (1, 2, 3, 9):
        registry.observe("sizes", value)
    other = MetricsRegistry((Metric("sizes", HISTOGRAM),))
    other.observe("sizes", 9)
    registry.absorb(other.as_dict())
    buckets = registry.as_dict()["sizes"]
    assert buckets[histogram_bucket(1)] == 1
    assert buckets[histogram_bucket(2)] + buckets[histogram_bucket(3)] == 2
    assert buckets[histogram_bucket(9)] == 2


def test_null_registry_is_a_silent_sink():
    registry = NullMetricsRegistry()
    registry.declare("anything")
    registry.add("anything", 5)
    registry.observe("anything", 5)
    registry.merge_value("anything", 5)
    registry.absorb({"anything": 5})
    assert "anything" not in registry
    assert len(registry) == 0
    assert registry.as_dict() == {}


def test_oracle_descriptors_proxy_into_the_registry():
    oracle = BinaryRepairOracle(
        SimpleRuleRepair(), la_liga_constraints(), la_liga_dirty_table(),
        CELL_OF_INTEREST,
    )
    before = oracle.calls
    oracle.calls += 3
    assert oracle.metrics.get("oracle_calls") == before + 3
    oracle.workers_restarted = 2
    assert oracle.metrics.get("workers_restarted") == 2
    # statistics() keeps the historical key order: cache counters spliced in
    keys = list(oracle.statistics())
    assert keys[:6] == ["oracle_calls", "repair_runs", "pair_walks",
                       "cache_hits", "cache_misses", "cache_evictions"]


# -- dictionary_sizes high-water union (regression) --------------------------------------


def test_encoding_absorb_counters_unions_dictionary_columns():
    """A column only one worker encoded must survive the telemetry merge."""
    table = la_liga_dirty_table()
    encoding = table.store.encoding()
    encoding.codes(table.store, "Country")
    own = encoding.dictionary_sizes()
    assert "Country" in own
    encoding.absorb_counters({
        "encode_seconds": 0.0, "vectorized_checks": 0, "fallback_checks": 0,
        # the worker encoded a column the parent never touched, plus a
        # higher high-water for a shared one
        "dictionary_sizes": {"Stadium": 7, "Country": own["Country"] + 5},
    })
    merged = encoding.dictionary_sizes()
    assert merged["Stadium"] == 7                      # union, not intersection
    assert merged["Country"] == own["Country"] + 5     # per-column max
    # absorbing a *lower* high-water changes nothing
    encoding.absorb_counters({"dictionary_sizes": {"Stadium": 2}})
    assert encoding.dictionary_sizes()["Stadium"] == 7


def test_encoding_pickle_roundtrip_keeps_absorbed_sizes():
    table = la_liga_dirty_table()
    encoding = table.store.encoding()
    encoding.absorb_counters({"dictionary_sizes": {"Ghost": 11}})
    clone = pickle.loads(pickle.dumps(encoding))
    assert clone.dictionary_sizes()["Ghost"] == 11


def test_aggregate_statistics_unions_dictionary_sizes():
    base = {"oracle_calls": 1, "encoding": {"dictionary_sizes": {"A": 3}}}
    worker = {"oracle_calls": 2, "encoding": {"dictionary_sizes": {"A": 5, "B": 2}}}
    merged = aggregate_oracle_statistics([base, worker])
    assert merged["oracle_calls"] == 3
    assert merged["encoding"]["dictionary_sizes"] == {"A": 5, "B": 2}


# -- tracer mechanics --------------------------------------------------------------------


def test_coordinate_span_id_is_deterministic_and_distinct():
    assert coordinate_span_id(23, "cell", 0) == coordinate_span_id(23, "cell", 0)
    assert coordinate_span_id(23, "cell", 0) != coordinate_span_id(23, "cell", 1)
    assert coordinate_span_id(23, "cell", 0) != coordinate_span_id(24, "cell", 0)
    assert coordinate_span_id(23, "shard", 0, 1) != coordinate_span_id(23, "cell", 0)


def test_tracer_stack_gives_implicit_parents():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert inner.parent_id == outer.span_id
    assert [span.name for span in tracer.spans] == ["inner", "outer"]
    assert tracer.spans[1].parent_id is None
    assert all(span.duration >= 0 for span in tracer.spans)


def test_tracer_explicit_ids_override_the_stack():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("shard", span_id=1234, parent_id=777) as span:
            pass
    assert span.span_id == 1234
    assert span.parent_id == 777


def test_current_rejects_a_foreign_pid_tracer():
    tracer = otrace.enable()
    assert otrace.current() is tracer
    tracer.pid = os.getpid() + 1  # simulate the fork-inherited parent tracer
    assert otrace.current() is None
    tracer.pid = os.getpid()
    assert otrace.current() is tracer
    otrace.disable()
    assert otrace.current() is None


def test_drain_adopt_stamps_worker_provenance():
    worker_side = Tracer()
    with worker_side.span("shard", span_id=9, parent_id=2):
        pass
    shipped = worker_side.drain()
    assert worker_side.spans == []
    shipped = pickle.loads(pickle.dumps(shipped))  # the report hop
    parent = Tracer()
    parent.adopt(shipped, worker=1)
    assert parent.spans[0].worker == 1
    assert parent.spans[0].span_id == 9


def test_summary_and_chrome_events(tmp_path):
    tracer = Tracer()
    with tracer.span("phase", pairs=3):
        pass
    tracer.events.append({"kind": "worker_restart", "ts": 0.5, "worker": 0})
    summary = tracer.summary()
    assert summary["phase"]["count"] == 1
    path = tmp_path / "trace.json"
    tracer.write_chrome_trace(path)
    import json

    payload = json.loads(path.read_text(encoding="utf-8"))
    phases = {event["ph"] for event in payload["traceEvents"]}
    assert phases == {"X", "i"}
    span_event = next(e for e in payload["traceEvents"] if e["ph"] == "X")
    assert span_event["args"]["pairs"] == 3


# -- bit-identity and stitching ----------------------------------------------------------


def _sequential_result():
    oracle = BinaryRepairOracle(
        SimpleRuleRepair(), la_liga_constraints(), la_liga_dirty_table(),
        CELL_OF_INTEREST,
    )
    explainer = CellShapleyExplainer(oracle, policy="null", rng=23)
    return explainer.explain(cells=PROBES, n_samples=N_SAMPLES)


def test_sequential_explain_is_bit_identical_with_tracing_on():
    baseline = _sequential_result()
    with otrace.tracing() as tracer:
        traced = _sequential_result()
    assert traced.values == baseline.values
    assert traced.standard_errors == baseline.standard_errors
    names = {span.name for span in tracer.spans}
    assert {"explain_job", "cell", "pair_eval"} <= names
    # cell span ids derive from (seed, "cell", position)
    cell_ids = {span.span_id for span in tracer.spans if span.name == "cell"}
    assert coordinate_span_id(23, "cell", 0) in cell_ids


def test_sharded_run_is_bit_identical_and_stitches_worker_spans():
    scheduler, _ = make_scheduler()
    with scheduler:
        baseline = scheduler.run(PROBES, N_SAMPLES)
    with otrace.tracing() as tracer:
        scheduler, _ = make_scheduler()
        with scheduler:
            traced = scheduler.run(PROBES, N_SAMPLES)
    assert traced.estimates == baseline.estimates

    job_spans = [span for span in tracer.spans if span.name == "explain_job"]
    cell_spans = [span for span in tracer.spans if span.name == "cell"]
    shard_spans = [span for span in tracer.spans if span.name == "shard"]
    assert len(job_spans) == 1
    assert len(cell_spans) == len(PROBES)
    # shard spans ran on worker processes and were shipped home
    assert {span.worker for span in shard_spans} <= {0, 1}
    assert all(span.worker is not None for span in shard_spans)
    # every shard parents onto a synthesised cell span with the same
    # coordinate-derived id, and every cell onto the job span
    cell_ids = {span.span_id for span in cell_spans}
    assert {span.parent_id for span in shard_spans} == cell_ids
    assert {span.parent_id for span in cell_spans} == {job_spans[0].span_id}
    assert cell_ids == {coordinate_span_id(23, "cell", position)
                        for position in range(len(PROBES))}
    # each cell span covers its shards' timeline extent
    for cell_span in cell_spans:
        mine = [s for s in shard_spans if s.parent_id == cell_span.span_id]
        assert cell_span.start == min(s.start for s in mine)
        assert cell_span.end == max(s.end for s in mine)
    # nested engine spans came home inside the shard spans
    names = {span.name for span in tracer.spans}
    assert {"walk_prime", "repair_pass", "pair_eval"} <= names
    # the job span covers (almost) the whole traced run; the tight >=0.95
    # coverage acceptance is asserted on the real bench workload, where the
    # fixed spawn overhead is amortised — this tiny 12-sample job gets a
    # looser bound
    assert job_spans[0].duration >= 0.85 * tracer.extent()


def test_worker_count_does_not_change_span_identities():
    """Cell span ids are coordinate-derived: identical for 1 and 2 workers."""
    ids = {}
    for n_jobs in (1, 2):
        with otrace.tracing() as tracer:
            scheduler, _ = make_scheduler(n_jobs=n_jobs)
            with scheduler:
                scheduler.run(PROBES, N_SAMPLES)
        ids[n_jobs] = {span.span_id for span in tracer.spans
                       if span.name == "cell"}
    assert ids[1] == ids[2]


def test_trace_toggle_mid_scheduler_keeps_bits_and_residency():
    """Tracing toggled between runs re-fingerprints the spec safely."""
    scheduler, _ = make_scheduler()
    with scheduler:
        plain = scheduler.run(PROBES, N_SAMPLES)
        tracer = otrace.enable()
        traced = scheduler.run(PROBES, N_SAMPLES)
        otrace.disable()
        plain_again = scheduler.run(PROBES, N_SAMPLES)
    assert traced.estimates == plain.estimates
    assert plain_again.estimates == plain.estimates
    assert any(span.name == "shard" for span in tracer.spans)


# -- event log ---------------------------------------------------------------------------


def test_event_log_emit_filter_count_and_jsonl(tmp_path):
    log = EventLog()
    log.emit("worker_spawn", worker=0, pid=123)
    log.emit("worker_restart", worker=0, reason="dead")
    log.emit("worker_restart", worker=1, reason="deadline")
    assert len(log) == 3
    assert log.count("worker_restart") == 2
    assert log.count("worker_restart", worker=0) == 1
    assert [record["kind"] for record in log.filter()] == [
        "worker_spawn", "worker_restart", "worker_restart"]
    assert log.kinds() == {"worker_spawn": 1, "worker_restart": 2}
    path = tmp_path / "events.jsonl"
    log.write(path)
    import json

    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 3
    assert json.loads(lines[1])["reason"] == "dead"


def test_healthy_run_emits_only_spawn_events():
    scheduler, oracle = make_scheduler()
    with scheduler:
        scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert scheduler.events.kinds() == {"worker_spawn": 2}


def test_restart_events_reconcile_with_counters():
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index == 0:
            return WorkerFault(die_after_shards=1)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector)
    with scheduler, pytest.warns(RuntimeWarning, match="died mid-task"):
        scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    statistics = oracle.statistics()
    events = scheduler.events
    assert events.count("worker_restart") == statistics["workers_restarted"] == 1
    assert sum(record["n_shards"] for record in events.filter("shard_requeued")) \
        == statistics["shards_requeued"]
    restart = events.filter("worker_restart")[0]
    assert restart["worker"] == 0
    assert restart["reason"] in ("dead", "pipe-closed")
    assert restart["generation"] >= 1


def test_warm_restart_and_seed_events_reconcile():
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index == 0:
            return WorkerFault(die_after_shards=0)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector)
    with scheduler, pytest.warns(RuntimeWarning, match="died mid-task"):
        scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
        scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    statistics = oracle.statistics()
    events = scheduler.events
    assert events.count("warm_restart") == statistics["warm_restarts"] == 1
    assert sum(record["entries"] for record in events.filter("snapshot_seeded")) \
        == statistics["cache_entries_seeded"] > 0


def test_poison_events_reconcile_with_counters():
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index < 2:
            return WorkerFault(die_after_shards=0)
        return None

    retry = RetryPolicy(max_shard_attempts=2, max_worker_restarts=None,
                        **FAST_RETRY)
    scheduler, oracle = make_scheduler(fault_injector=injector,
                                       retry_policy=retry)
    with scheduler:
        with pytest.warns(RuntimeWarning, match="died mid-task"):
            scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
        with pytest.warns(RuntimeWarning):
            scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    statistics = oracle.statistics()
    events = scheduler.events
    assert events.count("shard_poisoned") == statistics["shards_poisoned"] == 3
    poisoned = events.filter("shard_poisoned")
    assert all(record["attempts"] == 2 for record in poisoned)
    assert len({(record["cell_position"], record["chunk_index"])
                for record in poisoned}) == 3


def test_abandonment_events_reconcile_with_the_restart_cap():
    def injector(worker_index, round_index):
        if worker_index == 0:
            return WorkerFault(die_after_shards=0)
        return None

    retry = RetryPolicy(max_worker_restarts=1, max_shard_attempts=None,
                        **FAST_RETRY)
    scheduler, oracle = make_scheduler(fault_injector=injector,
                                       retry_policy=retry)
    with scheduler:
        with pytest.warns(RuntimeWarning, match="died mid-task"):
            scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
        with pytest.warns(RuntimeWarning):
            scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    events = scheduler.events
    assert oracle.statistics()["workers_restarted"] == \
        events.count("worker_restart") == 1
    abandoned = events.filter("worker_abandoned")
    assert len(abandoned) == 1
    assert abandoned[0]["worker"] == 0


def test_deadline_events_reconcile_with_counters():
    scheduler, oracle = make_scheduler(deadline_seconds=0.0)
    with scheduler:
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert outcome.completed is False
    events = scheduler.events
    assert events.count("deadline_expired") == \
        oracle.statistics()["deadline_expired"] == 1
    assert events.filter("deadline_expired")[0]["budget_seconds"] == 0.0


def test_pool_task_expiry_events_reconcile():
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index == 0:
            return WorkerFault(hang_seconds=60.0)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector,
                                       deadline_seconds=2.0)
    with scheduler, pytest.warns(RuntimeWarning, match="ran past the job deadline"):
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
        pool = scheduler._pool
        assert pool is not None and pool.events is scheduler.events
        tasks_expired = pool.tasks_expired
    assert outcome.completed is False
    assert scheduler.events.count("task_deadline_expired") == tasks_expired >= 1
