"""The incremental violation detector must agree with the full-rescan path.

Hand-built cases cover each constraint shape (equality-join FDs, constants,
order predicates, single-tuple constraints, constraints with no equality
join), and a hypothesis property test drives random tables × constraints ×
cell deltas through both paths.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CellRef,
    DenialConstraint,
    GreedyHolisticRepair,
    IncrementalViolationDetector,
    PerturbationView,
    SimpleRuleRepair,
    Table,
    find_all_violations,
    la_liga_constraints,
    la_liga_dirty_table,
)
from repro.constraints.incremental import (
    detector_for,
    find_all_violations_auto,
    find_all_violations_fast,
)
from repro.constraints.predicates import Operator, Predicate
from repro.engine.storage import NULL


def violation_multiset(violations):
    return Counter((v.constraint.name, v.rows) for v in violations)


def assert_paths_agree(base: Table, delta: dict, constraints):
    view = base.perturbed(delta)
    incremental = detector_for(base).violations_for_view(view, list(constraints))
    reference = find_all_violations(view.copy(), constraints)
    assert violation_multiset(incremental) == violation_multiset(reference)
    return incremental


# ---------------------------------------------------------------------------
# hand-built cases on the paper's running example


def test_empty_delta_returns_base_violations():
    base = la_liga_dirty_table()
    constraints = la_liga_constraints()
    incremental = assert_paths_agree(base, {}, constraints)
    reference = find_all_violations(base, constraints)
    assert violation_multiset(incremental) == violation_multiset(reference)


@pytest.mark.parametrize("delta", [
    {CellRef(4, "Country"): "Spain"},                  # repairs the injected error
    {CellRef(4, "City"): NULL},                        # null leaves the eq-group
    {CellRef(0, "City"): "Seville"},                   # moves a row between groups
    {CellRef(0, "Team"): "Betis", CellRef(2, "Team"): "Betis"},  # creates a group
    {CellRef(1, "Country"): "France", CellRef(3, "Country"): "France",
     CellRef(4, "City"): "Barcelona"},                 # multi-row, multi-attr
])
def test_la_liga_deltas(delta):
    assert_paths_agree(la_liga_dirty_table(), delta, la_liga_constraints())


def test_single_tuple_and_constant_constraints():
    base = Table(["A", "B"], [(1, "x"), (5, "y"), (9, "x"), (5, NULL)])
    constraints = [
        DenialConstraint("neg", [Predicate.with_constant("t1", "A", Operator.GT, 6)]),
        DenialConstraint("pair", [
            Predicate.between_tuples("B", Operator.EQ),
            Predicate.with_constant("t1", "A", Operator.LT, 5),
        ]),
    ]
    for delta in (
        {},
        {CellRef(0, "A"): 7},
        {CellRef(2, "A"): 2, CellRef(3, "B"): "x"},
        {CellRef(0, "B"): NULL},
    ):
        assert_paths_agree(base, delta, constraints)


def test_no_equality_join_falls_back_to_full_rescan():
    base = Table(["Rank", "Points"], [(1, 10), (2, 20), (3, 5)])
    order = DenialConstraint("C_ord", [
        Predicate.between_tuples("Rank", Operator.LT),
        Predicate.between_tuples("Points", Operator.LT),
    ])
    for delta in ({}, {CellRef(0, "Points"): 50}, {CellRef(2, "Rank"): NULL}):
        assert_paths_agree(base, delta, [order])


def test_detector_reuses_index_and_restores_it():
    base = la_liga_dirty_table()
    constraints = la_liga_constraints()
    detector = detector_for(base)
    first = detector.violations_for_view(base.perturbed({CellRef(0, "City"): NULL}),
                                         constraints)
    # after the delta run the indexes must be back to base state: an
    # empty-delta query returns exactly the base violations again
    second = detector.violations_for_view(base.perturbed({}), constraints)
    assert violation_multiset(second) == violation_multiset(find_all_violations(base, constraints))
    assert detector is detector_for(base)  # cached per snapshot
    assert first is not second


def test_detector_invalidated_by_base_mutation():
    base = la_liga_dirty_table()
    constraints = la_liga_constraints()
    before = detector_for(base)
    base.set_value(4, "Country", "Spain")
    after = detector_for(base)
    assert after is not before
    assert violation_multiset(after.base_violations(constraints)) == \
        violation_multiset(find_all_violations(base, constraints))


def test_find_all_violations_auto_dispatch():
    base = la_liga_dirty_table()
    constraints = la_liga_constraints()
    plain = find_all_violations_auto(base, constraints)
    view = find_all_violations_auto(base.perturbed({}), constraints)
    fast = find_all_violations_fast(base, constraints)
    expected = violation_multiset(find_all_violations(base, constraints))
    for result in (plain, view, fast):
        assert violation_multiset(result) == expected


def test_violations_for_delta_convenience():
    base = la_liga_dirty_table()
    constraints = la_liga_constraints()
    detector = IncrementalViolationDetector(base, constraints)
    delta = {CellRef(4, "City"): "Barcelona"}
    result = detector.violations_for_delta(delta, constraints)
    reference = find_all_violations(base.with_values(delta), constraints)
    assert violation_multiset(result) == violation_multiset(reference)


# ---------------------------------------------------------------------------
# repair algorithms must give identical repairs on views and on copies


def _repair_agrees(algorithm, base, delta, constraints):
    view = base.perturbed(delta)
    materialized = base.with_values(delta)
    clean_view = algorithm.repair_table(constraints, view)
    clean_copy = algorithm.repair_table(constraints, materialized)
    assert clean_view.to_records() == clean_copy.to_records()


@pytest.mark.parametrize("delta", [
    {},
    {CellRef(4, "City"): NULL, CellRef(2, "Country"): NULL},
    {CellRef(0, "Country"): "France"},
])
def test_simple_repair_identical_on_views(delta):
    _repair_agrees(SimpleRuleRepair(), la_liga_dirty_table(), delta, la_liga_constraints())


@pytest.mark.parametrize("delta", [
    {},
    {CellRef(4, "City"): NULL},
    {CellRef(1, "Country"): "France"},
])
def test_greedy_repair_identical_on_views(delta):
    _repair_agrees(GreedyHolisticRepair(max_changes=20), la_liga_dirty_table(), delta,
                   la_liga_constraints())


# ---------------------------------------------------------------------------
# hypothesis: random tables × constraints × deltas

ATTRS = ("A", "B", "C")
VALUES = st.sampled_from(["x", "y", "z", 1, 2, None])


@st.composite
def table_and_delta(draw):
    n_rows = draw(st.integers(min_value=1, max_value=7))
    rows = [tuple(draw(VALUES) for _ in ATTRS) for _ in range(n_rows)]
    table = Table(ATTRS, rows)
    n_changes = draw(st.integers(min_value=0, max_value=6))
    delta = {}
    for _ in range(n_changes):
        row = draw(st.integers(min_value=0, max_value=n_rows - 1))
        attr = draw(st.sampled_from(ATTRS))
        delta[CellRef(row, attr)] = draw(VALUES)
    return table, delta


CONSTRAINT_POOL = [
    # FD shape: eq-join + same-attribute !=
    DenialConstraint("fd", [Predicate.between_tuples("A", Operator.EQ),
                            Predicate.between_tuples("B", Operator.NE)]),
    # two eq-joins + !=
    DenialConstraint("fd2", [Predicate.between_tuples("A", Operator.EQ),
                             Predicate.between_tuples("C", Operator.EQ),
                             Predicate.between_tuples("B", Operator.NE)]),
    # eq-join + order residual
    DenialConstraint("ord", [Predicate.between_tuples("B", Operator.EQ),
                             Predicate.between_tuples("C", Operator.LT)]),
    # eq-join + constant residual
    DenialConstraint("const", [Predicate.between_tuples("C", Operator.EQ),
                               Predicate.with_constant("t1", "A", Operator.EQ, "x")]),
    # eq-join + two != residuals (not the single-NE fast path)
    DenialConstraint("nene", [Predicate.between_tuples("A", Operator.EQ),
                              Predicate.between_tuples("B", Operator.NE),
                              Predicate.between_tuples("C", Operator.NE)]),
    # no equality join: fallback path
    DenialConstraint("pairs", [Predicate.between_tuples("A", Operator.LT),
                               Predicate.between_tuples("B", Operator.GT)]),
    # single tuple
    DenialConstraint("single", [Predicate.with_constant("t1", "A", Operator.EQ, 1),
                                Predicate.with_constant("t1", "B", Operator.NE, "y")]),
    # pure eq-join (empty residual: every same-key ordered pair violates)
    DenialConstraint("pure", [Predicate.between_tuples("B", Operator.EQ)]),
]


@settings(max_examples=120, deadline=None)
@given(data=table_and_delta(), constraint_mask=st.integers(min_value=1, max_value=2 ** len(CONSTRAINT_POOL) - 1))
def test_incremental_equals_full_rescan_randomised(data, constraint_mask):
    table, delta = data
    constraints = [c for i, c in enumerate(CONSTRAINT_POOL) if constraint_mask >> i & 1]
    view = table.perturbed(delta)
    incremental = detector_for(table).violations_for_view(view, constraints)
    reference = find_all_violations(view.copy(), constraints)
    assert violation_multiset(incremental) == violation_multiset(reference)


@settings(max_examples=60, deadline=None)
@given(data=table_and_delta())
def test_view_reads_equal_materialized_randomised(data):
    table, delta = data
    view = table.perturbed(delta)
    reference = table.with_values(delta)
    assert isinstance(view, PerturbationView)
    assert view.to_records() == reference.to_records()
    for row in range(table.n_rows):
        assert view.row_tuple(row) == reference.row_tuple(row)
    for attribute in table.attributes:
        assert list(view.column(attribute)) == list(reference.column(attribute))
    assert view.equals(reference)
    assert not view.diff(reference)
    # delta-updated statistics equal rebuilt statistics
    for attribute in table.attributes:
        assert dict(view.stats.marginal(attribute).items()) == \
            dict(reference.stats.marginal(attribute).items())


@settings(max_examples=40, deadline=None)
@given(data=table_and_delta())
def test_simple_repair_identical_on_views_randomised(data):
    table, delta = data
    constraints = [CONSTRAINT_POOL[0], CONSTRAINT_POOL[2]]
    algorithm = SimpleRuleRepair(max_iterations=4)
    view_clean = algorithm.repair_table(constraints, table.perturbed(delta))
    copy_clean = algorithm.repair_table(constraints, table.with_values(delta))
    assert view_clean.to_records() == copy_clean.to_records()
