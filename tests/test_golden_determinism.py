"""Golden-determinism snapshot: cell-Shapley values pinned across the grid.

Every engine lever this library has grown — incremental views, paired walks,
second-order walks, shared statistics, batched pairs, the sharded scheduler,
and now the warm worker pool — is contractually *invisible in the numbers*.
This test pins the actual numbers: the cell-Shapley values of both bundled
black boxes across the engine flag grid × ``n_jobs`` ∈ {None, 1, 2} ×
{warm, cold} pool, against a committed JSON fixture
(``tests/fixtures/golden_shapley.json``).

Two invariants are asserted on top of the snapshot itself:

* ``n_jobs=1`` ≡ ``n_jobs=2`` ≡ warm ≡ cold, bit-for-bit (the sharded plan
  is worker-count- and pool-lifecycle-invariant);
* ``n_jobs=None`` is its own pinned stream (serial draws differ from the
  sharded partition by design — the fixture records both).

On failure the report names every drifted entry with its old and new value.
To regenerate after an *intentional* sampling change::

    PYTHONPATH=src python tests/test_golden_determinism.py --regenerate

(or set ``TREX_REGEN_GOLDEN=1`` for one pytest run).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

from repro import (
    BinaryRepairOracle,
    CellRef,
    CellShapleyExplainer,
    GreedyHolisticRepair,
    RepairSession,
    SimpleRuleRepair,
    TRexConfig,
    la_liga_constraints,
    la_liga_dirty_table,
)

# the full grid spawns 2-worker pools for half its 32 entries: it runs in
# the dedicated CI soak job, not in every fast-set matrix job
pytestmark = [pytest.mark.parallel, pytest.mark.slow]

FIXTURE = Path(__file__).parent / "fixtures" / "golden_shapley.json"

CELL_OF_INTEREST = CellRef(4, "Country")
PROBES = [CellRef(4, "City"), CellRef(0, "Country")]
N_SAMPLES = 6
SAMPLES_PER_SHARD = 3
SEED = 23
POLICY = "mode"  # deterministic replacement values: drift means drift

#: (incremental, paired, second_order, shared_stats, batched_pairs,
#: vectorized) — the same ladder the engine benchmark cross-checks, plus the
#: dictionary-encoded engine toggled off on the fully-flagged path
ENGINE_PATHS = {
    "full": (False, False, False, False, False, True),
    "incremental": (True, False, False, False, False, True),
    "paired_nobatch": (True, True, True, False, False, True),
    "paired_batched": (True, True, True, True, True, True),
    "paired_batched_novec": (True, True, True, True, True, False),
}

ALGORITHMS = {
    "simple": lambda second_order, vectorized: SimpleRuleRepair(
        second_order=second_order, vectorized=vectorized),
    "greedy": lambda second_order, vectorized: GreedyHolisticRepair(
        max_changes=20, second_order=second_order, vectorized=vectorized),
}

#: the scheduler/pool axis: (n_jobs, warm_pool)
EXECUTION_MODES = {
    "njobs=None": (None, True),
    "njobs=1": (1, True),
    "njobs=2/warm": (2, True),
    "njobs=2/cold": (2, False),
}

#: the updated-session axis: a live session explains, takes this base-table
#: write mid-stream, and explains again — the post-update values are pinned
#: (and must equal a fresh session built on the post-update table)
UPDATE_CELL = CellRef(0, "City")
UPDATE_VALUE = "Seville"


def run_grid_entry(algorithm_name: str, path_name: str,
                   mode_name: str) -> dict[str, float]:
    incremental, paired, second_order, shared_stats, batched_pairs, \
        vectorized = ENGINE_PATHS[path_name]
    n_jobs, warm_pool = EXECUTION_MODES[mode_name]
    oracle = BinaryRepairOracle(
        ALGORITHMS[algorithm_name](second_order, vectorized),
        la_liga_constraints(), la_liga_dirty_table(), CELL_OF_INTEREST,
        incremental=incremental, paired=paired,
        shared_stats=shared_stats, batched_pairs=batched_pairs,
        vectorized=vectorized,
    )
    with CellShapleyExplainer(
        oracle, policy=POLICY, rng=SEED,
        incremental=incremental, paired=paired,
        shared_stats=shared_stats, batched_pairs=batched_pairs,
        n_jobs=n_jobs, samples_per_shard=SAMPLES_PER_SHARD,
        warm_pool=warm_pool,
    ) as explainer:
        result = explainer.explain(cells=PROBES, n_samples=N_SAMPLES)
    return {str(cell): value for cell, value in result.values.items()}


def run_updated_session_entry(algorithm_name: str, mode_name: str,
                              fresh: bool = False) -> dict[str, float]:
    """The updated-session axis: explain → base update → explain again.

    With ``fresh`` the session is built directly on the post-update table
    and explains once — the rebuild reference the live update path must
    reproduce bit for bit.
    """
    n_jobs, warm_pool = EXECUTION_MODES[mode_name]
    config = TRexConfig(seed=SEED, cell_samples=N_SAMPLES,
                        replacement_policy=POLICY,
                        n_jobs=n_jobs, warm_pool=warm_pool)
    table = la_liga_dirty_table()
    if fresh:
        table = table.with_values({UPDATE_CELL: UPDATE_VALUE})
    session = RepairSession(
        ALGORITHMS[algorithm_name](False, True), la_liga_constraints(), table,
        cell_of_interest=CELL_OF_INTEREST, config=config,
    )
    with session:
        if not fresh:
            session.explain(n_samples=N_SAMPLES)
            session.update(UPDATE_CELL, UPDATE_VALUE)
        explanation = session.explain(n_samples=N_SAMPLES)
    values = explanation.cell_shapley.values
    return {str(cell): values[cell] for cell in PROBES}


def compute_grid() -> dict[str, dict[str, float]]:
    grid: dict[str, dict[str, float]] = {}
    for algorithm_name in ALGORITHMS:
        for path_name in ENGINE_PATHS:
            for mode_name in EXECUTION_MODES:
                key = f"{algorithm_name}/{path_name}/{mode_name}"
                grid[key] = run_grid_entry(algorithm_name, path_name, mode_name)
        for mode_name in EXECUTION_MODES:
            key = f"{algorithm_name}/updated_session/{mode_name}"
            grid[key] = run_updated_session_entry(algorithm_name, mode_name)
    return grid


def write_fixture(grid: dict) -> None:
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "_comment": "Golden cell-Shapley values; regenerate with "
                    "`PYTHONPATH=src python tests/test_golden_determinism.py "
                    "--regenerate` after an intentional sampling change.",
        "config": {"probes": [str(cell) for cell in PROBES],
                   "n_samples": N_SAMPLES,
                   "samples_per_shard": SAMPLES_PER_SHARD,
                   "seed": SEED, "policy": POLICY},
        "values": grid,
    }
    FIXTURE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def grid():
    return compute_grid()


def test_worker_count_and_pool_lifecycle_are_invisible(grid):
    """njobs=1 ≡ njobs=2 ≡ warm ≡ cold, bit-for-bit, on every grid row."""
    for algorithm_name in ALGORITHMS:
        for path_name in ENGINE_PATHS:
            prefix = f"{algorithm_name}/{path_name}"
            reference = grid[f"{prefix}/njobs=1"]
            for mode_name in ("njobs=2/warm", "njobs=2/cold"):
                assert grid[f"{prefix}/{mode_name}"] == reference, \
                    f"{prefix}/{mode_name} drifted from the in-process plan"


def test_updated_session_matches_fresh_rebuild(grid):
    """update() + explain() ≡ a fresh session on the post-update table.

    The live update path — delta-maintained detector/statistics/encoding,
    rebased caches, patched resident workers, selectively refreshed
    estimates — must be numerically invisible on every execution mode.
    """
    for algorithm_name in ALGORITHMS:
        for mode_name in EXECUTION_MODES:
            reference = run_updated_session_entry(
                algorithm_name, mode_name, fresh=True)
            key = f"{algorithm_name}/updated_session/{mode_name}"
            assert grid[key] == reference, \
                f"{key} drifted from the fresh post-update session"


def test_updated_session_worker_count_is_invisible(grid):
    """The updated-session axis obeys the njobs=1 ≡ njobs=2 invariant too."""
    for algorithm_name in ALGORITHMS:
        prefix = f"{algorithm_name}/updated_session"
        reference = grid[f"{prefix}/njobs=1"]
        for mode_name in ("njobs=2/warm", "njobs=2/cold"):
            assert grid[f"{prefix}/{mode_name}"] == reference, \
                f"{prefix}/{mode_name} drifted from the in-process plan"


def test_engine_paths_agree_per_execution_mode(grid):
    """Every engine-flag combination yields the same values (per mode)."""
    for algorithm_name in ALGORITHMS:
        for mode_name in EXECUTION_MODES:
            suffix = f"{algorithm_name}/%s/{mode_name}"
            reference = grid[suffix % "full"]
            for path_name in ("incremental", "paired_nobatch", "paired_batched",
                              "paired_batched_novec"):
                assert grid[suffix % path_name] == reference, \
                    f"{suffix % path_name} drifted from the full-rescan path"


def test_values_match_the_committed_golden_fixture(grid):
    if os.environ.get("TREX_REGEN_GOLDEN"):
        write_fixture(grid)
        pytest.skip(f"regenerated {FIXTURE}")
    assert FIXTURE.exists(), (
        f"golden fixture {FIXTURE} is missing — generate it with "
        "`PYTHONPATH=src python tests/test_golden_determinism.py --regenerate` "
        "and commit the file"
    )
    golden = json.loads(FIXTURE.read_text())["values"]
    drifted: list[str] = []
    for key in sorted(set(golden) | set(grid)):
        if key not in grid:
            drifted.append(f"  {key}: in fixture but no longer computed")
            continue
        if key not in golden:
            drifted.append(f"  {key}: computed but missing from fixture")
            continue
        for cell in sorted(set(golden[key]) | set(grid[key])):
            old = golden[key].get(cell)
            new = grid[key].get(cell)
            if old != new:
                drifted.append(f"  {key} :: {cell}: fixture={old!r} now={new!r}")
    assert not drifted, (
        "cell-Shapley values drifted from the golden fixture:\n"
        + "\n".join(drifted)
        + "\n\nIf this change is intentional, regenerate with\n"
        "  PYTHONPATH=src python tests/test_golden_determinism.py --regenerate\n"
        "and commit the updated fixture."
    )


def main(argv: "list[str]") -> int:
    if "--regenerate" not in argv:
        print(__doc__)
        return 2
    grid = compute_grid()
    write_fixture(grid)
    print(f"wrote {len(grid)} golden grid entries to {FIXTURE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
