"""Unit tests for the black-box repair interface (oracle, cache, adapters)."""

import pytest

from repro.dataset.table import CellRef, Table
from repro.repair.base import BinaryRepairOracle, FunctionRepairAlgorithm
from repro.repair.cache import OracleCache, memoised_oracle_stats
from repro.repair.simple import paper_algorithm_1


def test_function_repair_algorithm_adapter(dirty_table, constraints):
    calls = []

    def fake_repair(cs, table):
        calls.append(len(cs))
        return table.copy()

    algorithm = FunctionRepairAlgorithm(fake_repair, name="identity")
    result = algorithm.repair(constraints, dirty_table)
    assert algorithm.name == "identity"
    assert len(result.delta) == 0
    assert calls == [4]
    assert result.clean.equals(dirty_table)


def test_repair_result_bookkeeping(dirty_table, constraints, algorithm):
    result = algorithm.repair(constraints, dirty_table)
    assert result.was_repaired(CellRef(4, "Country"))
    assert not result.was_repaired(CellRef(0, "Team"))
    assert set(result.repaired_cells) == {CellRef(4, "City"), CellRef(4, "Country")}


def test_oracle_target_value_derived_from_full_repair(dirty_table, constraints, algorithm):
    oracle = BinaryRepairOracle(algorithm, constraints, dirty_table, CellRef(4, "Country"))
    assert oracle.target_value == "Spain"
    assert oracle.repair_runs == 1  # the reference repair


def test_oracle_query_constraint_subsets_match_paper(dirty_table, constraints, algorithm, cell_of_interest):
    oracle = BinaryRepairOracle(algorithm, constraints, dirty_table, cell_of_interest)
    by_name = {c.name: c for c in constraints}
    # Example 2.2 / 2.3: the repair happens with {C3} or with {C1, C2}
    assert oracle.query_constraint_subset([by_name["C3"]]) == 1
    assert oracle.query_constraint_subset([by_name["C1"], by_name["C2"]]) == 1
    assert oracle.query_constraint_subset([by_name["C1"]]) == 0
    assert oracle.query_constraint_subset([by_name["C2"]]) == 0
    assert oracle.query_constraint_subset([by_name["C4"]]) == 0
    assert oracle.query_constraint_subset([]) == 0
    assert oracle.query_constraint_subset(constraints) == 1


def test_oracle_query_cell_coalition(dirty_table, constraints, algorithm, cell_of_interest):
    oracle = BinaryRepairOracle(algorithm, constraints, dirty_table, cell_of_interest)
    all_cells = set(dirty_table.cells())
    assert oracle.query_cell_coalition(all_cells) == 1
    assert oracle.query_cell_coalition(set()) == 0


def test_oracle_cache_avoids_repeated_repair_runs(dirty_table, constraints, algorithm, cell_of_interest):
    oracle = BinaryRepairOracle(algorithm, constraints, dirty_table, cell_of_interest)
    runs_after_init = oracle.repair_runs
    oracle.query_constraint_subset(constraints[:2])
    runs_after_first = oracle.repair_runs
    oracle.query_constraint_subset(constraints[:2])
    assert oracle.repair_runs == runs_after_first  # second query served from cache
    assert oracle.cache_hits == 1
    assert oracle.calls == 2
    assert runs_after_first == runs_after_init + 1


def test_oracle_without_cache_reruns_repairs(dirty_table, constraints, algorithm, cell_of_interest):
    oracle = BinaryRepairOracle(
        algorithm, constraints, dirty_table, cell_of_interest, use_cache=False
    )
    oracle.query_constraint_subset(constraints[:2])
    oracle.query_constraint_subset(constraints[:2])
    assert oracle.repair_runs >= 3  # reference + two uncached queries
    assert oracle.cache_hits == 0


def test_oracle_explicit_target_value(dirty_table, constraints, algorithm, cell_of_interest):
    oracle = BinaryRepairOracle(
        algorithm, constraints, dirty_table, cell_of_interest, target_value="France"
    )
    # Nothing repairs the cell to France, so every query answers 0.
    assert oracle.query_constraint_subset(constraints) == 0
    assert oracle.repair_runs == 1  # no reference repair was needed


def test_oracle_validates_cell(dirty_table, constraints, algorithm):
    with pytest.raises(Exception):
        BinaryRepairOracle(algorithm, constraints, dirty_table, CellRef(99, "Country"))


def test_oracle_reset_counters(dirty_table, constraints, algorithm, cell_of_interest):
    oracle = BinaryRepairOracle(algorithm, constraints, dirty_table, cell_of_interest)
    oracle.query_constraint_subset(constraints)
    oracle.reset_counters()
    stats = oracle.statistics()
    assert stats["oracle_calls"] == 0
    assert stats["repair_runs"] == 0
    assert stats["cache_hits"] == 0


def test_oracle_statistics_helper(dirty_table, constraints, algorithm, cell_of_interest):
    oracle = BinaryRepairOracle(algorithm, constraints, dirty_table, cell_of_interest)
    oracle.query_constraint_subset(constraints)
    oracle.query_constraint_subset(constraints)
    stats = memoised_oracle_stats(oracle)
    assert 0.0 <= stats["cache_hit_rate"] <= 1.0
    assert stats["repair_runs_per_call"] <= 1.0 + 1e-9


def test_oracle_cache_lru_eviction():
    cache = OracleCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 0)
    assert cache.get("a") == 1  # refresh 'a'
    cache.put("c", 1)  # evicts 'b'
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert len(cache) == 2


def test_oracle_cache_counters_and_clear():
    cache = OracleCache()
    assert cache.get("missing") is None
    cache.put("k", 1)
    assert cache.get("k") == 1
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == pytest.approx(0.5)
    cache.clear()
    assert len(cache) == 0 and cache.hits == 0


def test_oracle_cache_rejects_nonpositive_bound():
    with pytest.raises(ValueError):
        OracleCache(max_entries=0)


def test_deterministic_algorithm_contract(dirty_table, constraints):
    algorithm = paper_algorithm_1()
    first = algorithm.repair_table(constraints, dirty_table)
    second = algorithm.repair_table(constraints, dirty_table)
    assert first.equals(second)
    # the input table is never mutated
    assert dirty_table.value(4, "Country") == "España"
