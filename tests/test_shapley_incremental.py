"""The Shapley explainers must be bit-identical on both evaluation paths.

The incremental engine (copy-on-write views + delta-maintained violation
detection) changes how perturbed instances are represented and evaluated, but
never what the black-box oracle answers: for a fixed seed the cell and
constraint explainers produce exactly the same values, standard errors and
rankings as the materialise-and-rescan reference path.
"""

from __future__ import annotations

import pytest

from repro import (
    BinaryRepairOracle,
    CellRef,
    CellShapleyExplainer,
    ConstraintShapleyExplainer,
    GreedyHolisticRepair,
    SimpleRuleRepair,
    la_liga_constraints,
    la_liga_dirty_table,
    paper_algorithm_1,
)

CELL_OF_INTEREST = CellRef(4, "Country")


def make_oracle(incremental: bool, algorithm=None, paired: bool = False,
                shared_stats: bool = False, batched_pairs: bool = False):
    return BinaryRepairOracle(
        algorithm or paper_algorithm_1(),
        la_liga_constraints(),
        la_liga_dirty_table(),
        CELL_OF_INTEREST,
        incremental=incremental,
        paired=paired,
        shared_stats=shared_stats,
        batched_pairs=batched_pairs,
    )


#: (incremental, paired, shared_stats, batched_pairs) — the full engine grid,
#: from the materialise-and-rescan reference up to this PR's batched path
FLAG_GRID = [
    (False, False, False, False),
    (True, False, False, False),
    (True, True, False, False),
    (True, True, True, False),
    (True, True, False, True),
    (True, True, True, True),
]


@pytest.mark.parametrize("policy", ["null", "sample", "mode"])
def test_cell_explainer_identical_across_paths(policy):
    probes = [CellRef(4, "City"), CellRef(0, "Country"), CellRef(2, "Team")]
    results = {}
    for flags in FLAG_GRID:
        incremental, paired, shared_stats, batched_pairs = flags
        explainer = CellShapleyExplainer(
            make_oracle(incremental, paired=paired, shared_stats=shared_stats,
                        batched_pairs=batched_pairs),
            policy=policy, rng=23, incremental=incremental, paired=paired,
            shared_stats=shared_stats, batched_pairs=batched_pairs,
        )
        results[flags] = explainer.explain(cells=probes, n_samples=25)
    reference = results[FLAG_GRID[0]]
    for flags in FLAG_GRID[1:]:
        assert results[flags].values == reference.values, flags
        assert results[flags].standard_errors == reference.standard_errors, flags
        assert results[flags].n_samples == reference.n_samples, flags


def test_cell_estimates_identical_with_greedy_black_box():
    results = {}
    for incremental, paired in [(False, False), (True, False), (True, True)]:
        oracle = make_oracle(incremental, algorithm=GreedyHolisticRepair(max_changes=20),
                             paired=paired)
        explainer = CellShapleyExplainer(oracle, policy="null", rng=7,
                                         incremental=incremental, paired=paired)
        results[(incremental, paired)] = explainer.estimate_cell(
            CellRef(4, "City"), n_samples=15)
    reference = results[(False, False)]
    for key in [(True, False), (True, True)]:
        assert results[key].value == reference.value
        assert results[key].standard_error == reference.standard_error


def test_paired_flag_off_forces_independent_queries():
    oracle = make_oracle(True, paired=False)
    explainer = CellShapleyExplainer(oracle, policy="null", rng=5,
                                     incremental=True, paired=True)
    explainer.estimate_cell(CellRef(4, "City"), n_samples=5)
    # the explainer submitted pairs, but the oracle's paired=False forced
    # two independent repairs per pair — no shared walks
    assert oracle.pair_walks == 0

    shared = make_oracle(True, paired=True)
    explainer = CellShapleyExplainer(shared, policy="null", rng=5,
                                     incremental=True, paired=True)
    explainer.estimate_cell(CellRef(4, "City"), n_samples=5)
    assert shared.pair_walks > 0


def test_constraint_explainer_identical_across_paths():
    results = {}
    for incremental in (False, True):
        explainer = ConstraintShapleyExplainer(make_oracle(incremental))
        results[incremental] = explainer.explain()
    assert results[True].values == results[False].values
    assert results[True].ranking() == results[False].ranking()


def test_constraint_explainer_sampled_identical_across_paths():
    results = {}
    for incremental in (False, True):
        explainer = ConstraintShapleyExplainer(make_oracle(incremental))
        results[incremental] = explainer.explain_sampled(n_permutations=40, rng=11)
    assert results[True].values == results[False].values


def test_exact_cell_value_identical_across_paths():
    results = {}
    for incremental in (False, True):
        oracle = BinaryRepairOracle(
            SimpleRuleRepair(),
            la_liga_constraints()[:2],
            la_liga_dirty_table(),
            CELL_OF_INTEREST,
            incremental=incremental,
        )
        explainer = CellShapleyExplainer(oracle, policy="null", rng=3,
                                         incremental=incremental)
        # tiny probe table is too wide for full enumeration, so restrict to a
        # 2x2 slice through the coalition API instead: compare raw coalition
        # queries on both paths
        coalition = [CellRef(4, "City"), CellRef(4, "Country"), CellRef(2, "City")]
        results[incremental] = (
            oracle.query_cell_coalition(coalition),
            oracle.query_cell_coalition([]),
            oracle.query_constraint_subset(oracle.constraints),
            explainer.oracle.target_value,
        )
    assert results[True] == results[False]
