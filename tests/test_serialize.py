"""Unit tests for explanation serialisation."""

import json

import pytest

from repro.dataset.table import CellRef
from repro.errors import ExplanationError
from repro.explain.serialize import (
    explanation_from_dict,
    explanation_to_dict,
    load_explanation,
    save_explanation,
    shapley_result_from_dict,
    shapley_result_to_dict,
)
from repro.shapley.game import ShapleyResult


@pytest.fixture
def explanation(explainer, cell_of_interest):
    return explainer.explain(cell_of_interest, n_samples=8)


def test_shapley_result_roundtrip_with_constraint_keys():
    result = ShapleyResult(
        values={"C1": 0.5, "C2": 0.25},
        standard_errors={"C1": 0.01, "C2": 0.02},
        n_samples=10,
        n_evaluations=40,
        method="exact-enumeration",
    )
    restored = shapley_result_from_dict(shapley_result_to_dict(result))
    assert restored.values == result.values
    assert restored.standard_errors == result.standard_errors
    assert restored.n_samples == 10 and restored.n_evaluations == 40
    assert restored.method == result.method


def test_shapley_result_roundtrip_with_cell_keys():
    result = ShapleyResult(values={CellRef(4, "League"): 0.3, CellRef(0, "Place"): 0.0})
    restored = shapley_result_from_dict(shapley_result_to_dict(result))
    assert restored.values == result.values
    assert isinstance(next(iter(restored.values)), CellRef)


def test_explanation_dict_roundtrip(explanation):
    payload = explanation_to_dict(explanation)
    restored = explanation_from_dict(payload)
    assert restored.cell == explanation.cell
    assert restored.old_value == explanation.old_value
    assert restored.new_value == explanation.new_value
    assert restored.constraint_shapley.values == explanation.constraint_shapley.values
    assert restored.cell_shapley.values == explanation.cell_shapley.values
    # rankings keep working after a round trip
    assert restored.constraint_ranking.items() == explanation.constraint_ranking.items()


def test_explanation_dict_is_json_compatible(explanation):
    payload = explanation_to_dict(explanation)
    text = json.dumps(payload, default=str)
    assert "t5" not in text or True  # serialisation never raises
    assert json.loads(text)["cell"] == {"row": 4, "attribute": "Country"}


def test_save_and_load_explanation(tmp_path, explanation):
    path = save_explanation(explanation, tmp_path / "nested" / "explanation.json")
    assert path.exists()
    restored = load_explanation(path)
    assert restored.cell == explanation.cell
    assert restored.constraint_shapley.values == explanation.constraint_shapley.values


def test_unsupported_format_version_rejected(explanation):
    payload = explanation_to_dict(explanation)
    payload["format_version"] = 999
    with pytest.raises(ExplanationError):
        explanation_from_dict(payload)


def test_decode_unknown_key_kind_rejected():
    with pytest.raises(ExplanationError):
        shapley_result_from_dict({"values": {"bogus:stuff": 1.0}})


def test_constraint_only_explanation_roundtrip(explainer, cell_of_interest):
    explanation = explainer.explain_constraints(cell_of_interest)
    restored = explanation_from_dict(explanation_to_dict(explanation))
    assert restored.cell_shapley is None
    assert restored.constraint_shapley.values == explanation.constraint_shapley.values
