"""Unit tests for column / co-occurrence statistics."""

import numpy as np
import pytest

from repro.engine.stats import ColumnStatistics, CooccurrenceStatistics, TableStatistics
from repro.engine.storage import ColumnStore


def make_store():
    return ColumnStore(
        {
            "City": ["Madrid", "Madrid", "Barcelona", "Madrid", None],
            "Country": ["Spain", "Spain", "Spain", "France", "Spain"],
        }
    )


def test_marginal_counts_and_frequency():
    stats = ColumnStatistics(make_store(), "City")
    assert stats.total == 4
    assert stats.count("Madrid") == 3
    assert stats.frequency("Madrid") == pytest.approx(0.75)
    assert stats.frequency("Paris") == 0.0


def test_most_common_and_domain():
    stats = ColumnStatistics(make_store(), "City")
    assert stats.most_common() == "Madrid"
    assert stats.domain() == ["Barcelona", "Madrid"]


def test_most_common_tie_is_deterministic():
    store = ColumnStore({"A": ["b", "a", "a", "b"]})
    stats = ColumnStatistics(store, "A")
    assert stats.most_common() == "a"  # ties broken by repr order


def test_most_common_on_all_null_column_returns_default():
    store = ColumnStore({"A": [None, None]})
    stats = ColumnStatistics(store, "A")
    assert stats.most_common(default="fallback") == "fallback"
    assert stats.frequency("x") == 0.0


def test_sampling_follows_column_distribution():
    stats = ColumnStatistics(make_store(), "City")
    rng = np.random.default_rng(3)
    samples = stats.sample(rng=rng, size=2000)
    assert set(samples) <= {"Madrid", "Barcelona"}
    madrid_share = samples.count("Madrid") / len(samples)
    assert 0.65 < madrid_share < 0.85  # true probability 0.75


def test_sampling_empty_column_returns_none():
    store = ColumnStore({"A": [None]})
    stats = ColumnStatistics(store, "A")
    assert stats.sample() is None
    assert stats.sample(size=3) == [None, None, None]


def test_entropy_zero_for_constant_column():
    store = ColumnStore({"A": ["x", "x", "x"]})
    assert ColumnStatistics(store, "A").entropy() == pytest.approx(0.0)


def test_entropy_positive_for_mixed_column():
    assert ColumnStatistics(make_store(), "City").entropy() > 0


def test_conditional_probability():
    stats = CooccurrenceStatistics(make_store())
    assert stats.conditional_probability("Country", "Spain", "City", "Madrid") == pytest.approx(2 / 3)
    assert stats.conditional_probability("Country", "France", "City", "Madrid") == pytest.approx(1 / 3)
    assert stats.conditional_probability("Country", "Spain", "City", "Unknown") == 0.0


def test_most_probable_given():
    stats = CooccurrenceStatistics(make_store())
    assert stats.most_probable("Country", "City", "Madrid") == "Spain"
    assert stats.most_probable("Country", "City", "Nowhere", default="?") == "?"


def test_cooccurrence_count():
    stats = CooccurrenceStatistics(make_store())
    assert stats.cooccurrence_count("City", "Madrid", "Country", "Spain") == 2
    assert stats.cooccurrence_count("City", "Barcelona", "Country", "France") == 0


def test_table_statistics_bundle():
    stats = TableStatistics(make_store())
    assert stats.most_common("City") == "Madrid"
    assert stats.most_probable_given("Country", "City", "Madrid") == "Spain"
    # marginal objects are cached per attribute
    assert stats.marginal("City") is stats.marginal("City")


def test_table_statistics_fork_equals_rebuild():
    """A fork moved to new contents by cell updates equals a fresh build."""
    store = make_store()
    stats = TableStatistics(store)
    stats.marginal("City")
    stats.cooccurrence.warm("City", "Country")

    # the "sibling" store differs in one cell; fork + apply the diff
    sibling = store.copy()
    old_value = sibling.value(3, "City")
    sibling.set_value(3, "City", "Barcelona")
    forked = stats.fork(sibling)
    forked.apply_cell_update(3, "City", old_value, "Barcelona")

    rebuilt = TableStatistics(sibling)
    for attribute in ("City", "Country"):
        assert dict(forked.marginal(attribute).items()) == \
            dict(rebuilt.marginal(attribute).items())
        assert forked.most_common(attribute) == rebuilt.most_common(attribute)
    for city in ("Madrid", "Barcelona"):
        assert forked.most_probable_given("Country", "City", city) == \
            rebuilt.most_probable_given("Country", "City", city)


def test_table_statistics_fork_is_independent():
    store = make_store()
    stats = TableStatistics(store)
    stats.marginal("City")
    forked = stats.fork(store.copy())
    forked.apply_cell_update(0, "City", "Madrid", "Paris")
    assert stats.most_common("City") == "Madrid"
    assert stats.marginal("City").count("Paris") == 0
    assert forked.marginal("City").count("Paris") == 1
