"""Unit tests for column / co-occurrence statistics."""

import numpy as np
import pytest

from repro.engine.stats import ColumnStatistics, CooccurrenceStatistics, TableStatistics
from repro.engine.storage import ColumnStore


def make_store():
    return ColumnStore(
        {
            "City": ["Madrid", "Madrid", "Barcelona", "Madrid", None],
            "Country": ["Spain", "Spain", "Spain", "France", "Spain"],
        }
    )


def test_marginal_counts_and_frequency():
    stats = ColumnStatistics(make_store(), "City")
    assert stats.total == 4
    assert stats.count("Madrid") == 3
    assert stats.frequency("Madrid") == pytest.approx(0.75)
    assert stats.frequency("Paris") == 0.0


def test_most_common_and_domain():
    stats = ColumnStatistics(make_store(), "City")
    assert stats.most_common() == "Madrid"
    assert stats.domain() == ["Barcelona", "Madrid"]


def test_most_common_tie_is_deterministic():
    store = ColumnStore({"A": ["b", "a", "a", "b"]})
    stats = ColumnStatistics(store, "A")
    assert stats.most_common() == "a"  # ties broken by repr order


def test_most_common_on_all_null_column_returns_default():
    store = ColumnStore({"A": [None, None]})
    stats = ColumnStatistics(store, "A")
    assert stats.most_common(default="fallback") == "fallback"
    assert stats.frequency("x") == 0.0


def test_sampling_follows_column_distribution():
    stats = ColumnStatistics(make_store(), "City")
    rng = np.random.default_rng(3)
    samples = stats.sample(rng=rng, size=2000)
    assert set(samples) <= {"Madrid", "Barcelona"}
    madrid_share = samples.count("Madrid") / len(samples)
    assert 0.65 < madrid_share < 0.85  # true probability 0.75


def test_sampling_empty_column_returns_none():
    store = ColumnStore({"A": [None]})
    stats = ColumnStatistics(store, "A")
    assert stats.sample() is None
    assert stats.sample(size=3) == [None, None, None]


def test_entropy_zero_for_constant_column():
    store = ColumnStore({"A": ["x", "x", "x"]})
    assert ColumnStatistics(store, "A").entropy() == pytest.approx(0.0)


def test_entropy_positive_for_mixed_column():
    assert ColumnStatistics(make_store(), "City").entropy() > 0


def test_conditional_probability():
    stats = CooccurrenceStatistics(make_store())
    assert stats.conditional_probability("Country", "Spain", "City", "Madrid") == pytest.approx(2 / 3)
    assert stats.conditional_probability("Country", "France", "City", "Madrid") == pytest.approx(1 / 3)
    assert stats.conditional_probability("Country", "Spain", "City", "Unknown") == 0.0


def test_most_probable_given():
    stats = CooccurrenceStatistics(make_store())
    assert stats.most_probable("Country", "City", "Madrid") == "Spain"
    assert stats.most_probable("Country", "City", "Nowhere", default="?") == "?"


def test_cooccurrence_count():
    stats = CooccurrenceStatistics(make_store())
    assert stats.cooccurrence_count("City", "Madrid", "Country", "Spain") == 2
    assert stats.cooccurrence_count("City", "Barcelona", "Country", "France") == 0


def test_table_statistics_bundle():
    stats = TableStatistics(make_store())
    assert stats.most_common("City") == "Madrid"
    assert stats.most_probable_given("Country", "City", "Madrid") == "Spain"
    # marginal objects are cached per attribute
    assert stats.marginal("City") is stats.marginal("City")


def test_table_statistics_fork_equals_rebuild():
    """A fork moved to new contents by cell updates equals a fresh build."""
    store = make_store()
    stats = TableStatistics(store)
    stats.marginal("City")
    stats.cooccurrence.warm("City", "Country")

    # the "sibling" store differs in one cell; fork + apply the diff
    sibling = store.copy()
    old_value = sibling.value(3, "City")
    sibling.set_value(3, "City", "Barcelona")
    forked = stats.fork(sibling)
    forked.apply_cell_update(3, "City", old_value, "Barcelona")

    rebuilt = TableStatistics(sibling)
    for attribute in ("City", "Country"):
        assert dict(forked.marginal(attribute).items()) == \
            dict(rebuilt.marginal(attribute).items())
        assert forked.most_common(attribute) == rebuilt.most_common(attribute)
    for city in ("Madrid", "Barcelona"):
        assert forked.most_probable_given("Country", "City", city) == \
            rebuilt.most_probable_given("Country", "City", city)


def test_table_statistics_fork_is_independent():
    store = make_store()
    stats = TableStatistics(store)
    stats.marginal("City")
    forked = stats.fork(store.copy())
    forked.apply_cell_update(0, "City", "Madrid", "Paris")
    assert stats.most_common("City") == "Madrid"
    assert stats.marginal("City").count("Paris") == 0
    assert forked.marginal("City").count("Paris") == 1


# ---------------------------------------------------------------------------
# the revertible delta protocol (apply_delta / revert_delta)


def _stats_equal(left: TableStatistics, right: TableStatistics,
                 attributes, pairs) -> None:
    for attribute in attributes:
        assert dict(left.marginal(attribute).items()) == \
            dict(right.marginal(attribute).items())
    for given, target in pairs:
        left_counts = left.cooccurrence._counts_for(given, target)
        right_counts = right.cooccurrence._counts_for(given, target)
        assert {k: dict(v) for k, v in left_counts.items()} == \
            {k: dict(v) for k, v in right_counts.items()}


def test_column_statistics_apply_and_revert_delta_roundtrip():
    stats = ColumnStatistics(make_store(), "City")
    before = dict(stats._counts)
    updates = [("Madrid", "Barcelona"), ("Barcelona", None), (None, "Paris")]
    stats.apply_delta(updates)
    assert stats.count("Madrid") == 2
    assert stats.count("Paris") == 1
    stats.revert_delta(updates)
    assert dict(stats._counts) == before
    assert stats.most_common() == "Madrid"


def test_table_statistics_apply_delta_matches_fresh_build():
    from repro.engine.view import OverlayStore

    base = make_store()
    stats = TableStatistics(base)
    stats.marginal("City")
    stats.marginal("Country")
    stats.cooccurrence.warm("City", "Country")
    # a multi-cell delta touching both cells of one row (the case per-cell
    # sequential application cannot express)
    delta = {(0, "City"): "Paris", (0, "Country"): "France",
             (3, "Country"): None}
    changes = {cell: (base.value(cell[0], cell[1]), value)
               for cell, value in delta.items()}
    overlay = OverlayStore(base, dict(delta))
    stats.apply_delta(changes, overlay)
    fresh = TableStatistics(overlay)
    _stats_equal(stats, fresh, ["City", "Country"], [("City", "Country")])
    # argmax and mode memos answer from the moved counts
    assert stats.most_probable_given("Country", "City", "Madrid") == \
        fresh.most_probable_given("Country", "City", "Madrid")
    stats.revert_delta(changes, base)
    _stats_equal(stats, TableStatistics(base), ["City", "Country"],
                 [("City", "Country")])


def test_table_statistics_revert_covers_structures_built_under_delta():
    from repro.engine.view import OverlayStore

    base = make_store()
    stats = TableStatistics(base)
    delta = {(1, "Country"): "Italy"}
    changes = {cell: (base.value(cell[0], cell[1]), value)
               for cell, value in delta.items()}
    overlay = OverlayStore(base, dict(delta))
    stats.apply_delta(changes, overlay)
    # built while the delta is applied: describes the overlay contents
    assert stats.marginal("Country").count("Italy") == 1
    stats.cooccurrence.warm("City", "Country")
    stats.revert_delta(changes, base)
    _stats_equal(stats, TableStatistics(base), ["City", "Country"],
                 [("City", "Country")])


# ---------------------------------------------------------------------------
# the shared statistics engine


def _make_table():
    from repro.dataset.table import Table

    return Table(
        ["City", "Country", "Team"],
        [
            ("Madrid", "Spain", "RM"),
            ("Madrid", "Spain", "ATM"),
            ("Barcelona", "Spain", "FCB"),
            ("Madrid", "France", "PSG"),
            (None, "Spain", "RM"),
        ],
    )


def test_shared_statistics_lease_matches_fresh_build():
    from repro.dataset.table import CellRef
    from repro.engine.stats import SharedStatistics

    table = _make_table()
    engine = SharedStatistics(table)
    view_a = table.perturbed({CellRef(0, "City"): None, CellRef(2, "Country"): "France"})
    view_b = table.perturbed({CellRef(1, "Country"): None})

    leased = engine.lease(view_a)
    fresh = TableStatistics(view_a.store)
    _stats_equal(leased, fresh, ["City", "Country"], [("City", "Country")])

    # moving the same instance onto a sibling view re-derives it exactly
    leased = engine.lease(view_b)
    fresh = TableStatistics(view_b.store)
    _stats_equal(leased, fresh, ["City", "Country"], [("City", "Country")])
    assert engine.leases >= 2


def test_shared_statistics_threads_through_view_stats_and_writes():
    from repro.dataset.table import CellRef
    from repro.engine.stats import SharedStatistics

    table = _make_table()
    engine = SharedStatistics(table)
    view = table.perturbed({CellRef(0, "Country"): None})
    view._stats_engine = engine
    working = view.mutable_snapshot()  # inherits the engine
    assert working._stats_engine is engine

    stats = working.stats
    assert stats is engine.lease(working)  # transparently leased
    # in-place writes keep the leased instance maintained
    working.set_value(3, "Country", "Spain")
    assert dict(stats.marginal("Country").items()) == \
        dict(TableStatistics(working.store).marginal("Country").items())

    # leasing elsewhere invalidates the stale holder, which re-leases on use
    other = view.mutable_snapshot()
    other_stats = other.stats
    assert other_stats is stats  # the one shared instance moved over
    assert working._stats is None
    _stats_equal(working.stats, TableStatistics(working.store),
                 ["Country"], [])


def test_shared_statistics_release_returns_to_base():
    from repro.dataset.table import CellRef
    from repro.engine.stats import SharedStatistics

    table = _make_table()
    engine = SharedStatistics(table)
    view = table.perturbed({CellRef(0, "City"): None})
    leased = engine.lease(view)
    leased.marginal("City")
    engine.release()
    _stats_equal(engine._stats, TableStatistics(table.store), ["City"], [])


def test_shared_statistics_drops_structure_when_parked_view_is_written():
    from repro.dataset.table import CellRef
    from repro.engine.stats import SharedStatistics

    table = _make_table()
    engine = SharedStatistics(table)
    view_a = table.perturbed({CellRef(0, "City"): None})
    view_b = table.perturbed({})
    stats = engine.lease(view_a)
    stats.marginal("City")
    engine.lease(view_b)           # parks the City marginal on view_a
    view_a.set_value(1, "City", "Sevilla")  # the parked snapshot moves on
    # the exact diff is lost: the structure must be rebuilt, not moved
    assert dict(engine._stats.marginal("City").items()) == \
        dict(TableStatistics(view_b.store).marginal("City").items())


def test_shared_statistics_rebuilds_after_base_mutation():
    from repro.dataset.table import CellRef
    from repro.engine.stats import SharedStatistics

    table = _make_table()
    engine = SharedStatistics(table)
    view = table.perturbed({CellRef(0, "City"): None})
    engine.lease(view).marginal("City")
    table.set_value(0, "City", "Valencia")  # base mutated: version moved
    fresh_view = table.perturbed({})
    leased = engine.lease(fresh_view)
    assert dict(leased.marginal("City").items()) == \
        dict(TableStatistics(fresh_view.store).marginal("City").items())
