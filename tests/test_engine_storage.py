"""Unit tests for the columnar storage layer."""

import pytest

from repro.engine.storage import NULL, ColumnStore, is_null
from repro.errors import SchemaError, UnknownAttributeError, UnknownRowError


def make_store():
    return ColumnStore({"a": [1, 2, 3], "b": ["x", "y", "z"]})


def test_basic_shape():
    store = make_store()
    assert store.n_rows == 3
    assert store.n_columns == 2
    assert len(store) == 3
    assert store.column_names == ("a", "b")
    assert "a" in store and "c" not in store


def test_from_rows_roundtrip():
    store = ColumnStore.from_rows(["a", "b"], [(1, "x"), (2, "y")])
    assert store.row(0) == (1, "x")
    assert store.row(1) == (2, "y")
    assert list(store.iter_rows()) == [(1, "x"), (2, "y")]


def test_from_rows_empty():
    store = ColumnStore.from_rows(["a", "b"], [])
    assert store.n_rows == 0
    assert store.column_names == ("a", "b")


def test_from_rows_wrong_width():
    with pytest.raises(SchemaError):
        ColumnStore.from_rows(["a", "b"], [(1, 2, 3)])


def test_inconsistent_column_lengths():
    with pytest.raises(SchemaError):
        ColumnStore({"a": [1, 2], "b": [1]})


def test_empty_columns_rejected():
    with pytest.raises(SchemaError):
        ColumnStore({})


def test_value_access_and_errors():
    store = make_store()
    assert store.value(1, "b") == "y"
    with pytest.raises(UnknownAttributeError):
        store.value(0, "nope")
    with pytest.raises(UnknownRowError):
        store.value(9, "a")
    with pytest.raises(UnknownRowError):
        store.value(-1, "a")


def test_set_value_mutates_only_target():
    store = make_store()
    store.set_value(0, "a", 99)
    assert store.value(0, "a") == 99
    assert store.value(1, "a") == 2


def test_copy_is_independent():
    store = make_store()
    clone = store.copy()
    clone.set_value(0, "a", 42)
    assert store.value(0, "a") == 1
    assert clone.value(0, "a") == 42
    assert store.equals(make_store())


def test_column_view_is_read_only():
    store = make_store()
    view = store.column("a")
    with pytest.raises(ValueError):
        view[0] = 10


def test_fingerprint_changes_with_content():
    store = make_store()
    before = store.fingerprint()
    assert before == make_store().fingerprint()
    store.set_value(2, "b", "w")
    assert store.fingerprint() != before
    assert hash(store.fingerprint())  # usable as a dict key


def test_equals_detects_differences():
    store = make_store()
    other = make_store()
    assert store.equals(other)
    other.set_value(0, "b", "q")
    assert not store.equals(other)


def test_is_null_semantics():
    assert is_null(None)
    assert is_null(float("nan"))
    assert not is_null(0)
    assert not is_null("")
    assert NULL is None
