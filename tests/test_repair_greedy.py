"""Unit tests for the greedy holistic repairer."""

import pytest

from repro.constraints.parser import parse_dcs
from repro.constraints.violations import find_all_violations, is_clean
from repro.dataset.errors import inject_errors
from repro.dataset.generators import HospitalGenerator
from repro.dataset.table import CellRef, Table
from repro.errors import RepairError
from repro.repair.greedy import GreedyHolisticRepair


def test_parameter_validation():
    with pytest.raises(RepairError):
        GreedyHolisticRepair(max_changes=0)
    with pytest.raises(RepairError):
        GreedyHolisticRepair(max_candidates=0)


def test_repairs_single_fd_breach():
    table = Table(
        ["Code", "Name"],
        [["A1", "Aspirin"], ["A1", "Aspirin"], ["A1", "Asprin"], ["B2", "Beta"]],
    )
    constraints = parse_dcs(["not(t1.Code == t2.Code and t1.Name != t2.Name)"])
    repaired = GreedyHolisticRepair().repair_table(constraints, table)
    assert repaired.value(2, "Name") == "Aspirin"
    assert is_clean(repaired, constraints)


def test_repairs_la_liga_country(dirty_table, constraints):
    repaired = GreedyHolisticRepair().repair_table(constraints, dirty_table)
    assert repaired.value(4, "Country") == "Spain"
    violations_after = find_all_violations(repaired, constraints)
    violations_before = find_all_violations(dirty_table, constraints)
    assert len(violations_after) < len(violations_before)


def test_no_constraints_is_identity(dirty_table):
    repaired = GreedyHolisticRepair().repair_table([], dirty_table)
    assert repaired.equals(dirty_table)


def test_clean_table_is_left_untouched(clean_table, constraints):
    repaired = GreedyHolisticRepair().repair_table(constraints, clean_table)
    assert repaired.equals(clean_table)


def test_deterministic(dirty_table, constraints):
    first = GreedyHolisticRepair().repair_table(constraints, dirty_table)
    second = GreedyHolisticRepair().repair_table(constraints, dirty_table)
    assert first.equals(second)


def test_input_not_mutated(dirty_table, constraints):
    GreedyHolisticRepair().repair_table(constraints, dirty_table)
    assert dirty_table.value(4, "Country") == "España"


def test_max_changes_bounds_work():
    table = Table(
        ["Code", "Name"],
        [["A1", "x"], ["A1", "y"], ["B2", "p"], ["B2", "q"], ["C3", "r"], ["C3", "s"]],
    )
    constraints = parse_dcs(["not(t1.Code == t2.Code and t1.Name != t2.Name)"])
    limited = GreedyHolisticRepair(max_changes=1).repair_table(constraints, table)
    delta = table.diff(limited)
    assert len(delta) <= 1


def test_reduces_violations_on_injected_hospital_errors():
    dataset = HospitalGenerator(seed=6).generate(40)
    constraints = dataset.constraints()
    dirty, report = inject_errors(
        dataset.table, rate=0.03, error_types=["swap"], attributes=["State"], seed=6
    )
    assert report.injected, "the test needs at least one injected error"
    repaired = GreedyHolisticRepair().repair_table(constraints, dirty)
    assert len(find_all_violations(repaired, constraints)) <= len(
        find_all_violations(dirty, constraints)
    )


def test_null_cell_gets_filled_when_constrained():
    table = Table(
        ["Code", "Name"],
        [["A1", "Aspirin"], ["A1", "Aspirin"], ["A1", None]],
    )
    constraints = parse_dcs(["not(t1.Code == t2.Code and t1.Name != t2.Name)"])
    repaired = GreedyHolisticRepair().repair_table(constraints, table)
    assert repaired.value(2, "Name") == "Aspirin"
