"""Unit tests for the HoloClean-style repair pipeline (detect/domain/featurize/infer/model)."""

import numpy as np
import pytest

from repro.constraints.parser import parse_dcs
from repro.constraints.violations import find_all_violations
from repro.dataset.errors import inject_errors
from repro.dataset.generators import HospitalGenerator
from repro.dataset.schema import AttributeSpec, INTEGER, Schema
from repro.dataset.table import CellRef, Table
from repro.repair.holoclean import (
    DomainGenerator,
    ErrorDetector,
    Featurizer,
    FEATURE_NAMES,
    HoloCleanRepair,
    PseudoLikelihoodInference,
)


@pytest.fixture
def fd_table():
    return Table(
        ["Code", "Name"],
        [["A1", "Aspirin"], ["A1", "Aspirin"], ["A1", "Asprin"], ["B2", "Beta"], ["B2", "Beta"]],
    )


@pytest.fixture
def fd_constraints():
    return parse_dcs(["not(t1.Code == t2.Code and t1.Name != t2.Name)"])


# -- detection ---------------------------------------------------------------------


def test_detector_flags_violation_cells(fd_table, fd_constraints):
    detection = ErrorDetector().detect(fd_table, fd_constraints)
    assert CellRef(2, "Name") in detection.constraint_cells
    assert CellRef(3, "Name") not in detection.constraint_cells
    assert detection.is_noisy(CellRef(2, "Name"))
    assert detection.summary()["total_noisy"] >= 1


def test_detector_flags_null_cells(fd_constraints):
    table = Table(["Code", "Name"], [["A1", "Aspirin"], ["A1", None]])
    detection = ErrorDetector().detect(table, fd_constraints)
    assert CellRef(1, "Name") in detection.null_cells


def test_detector_flags_numeric_outliers():
    schema = Schema([AttributeSpec("Code"), AttributeSpec("Value", dtype=INTEGER, categorical=False)])
    rows = [["A", 10], ["B", 11], ["C", 9], ["D", 10], ["E", 11], ["F", 9], ["G", 500]]
    table = Table(schema, rows)
    detection = ErrorDetector(z_threshold=2.0).detect(table, [])
    assert CellRef(6, "Value") in detection.outlier_cells


def test_detector_flags_non_numeric_value_in_numeric_column():
    schema = Schema([AttributeSpec("Value", dtype=INTEGER, categorical=False)])
    table = Table(schema, [[1], [2], ["oops"], [3]])
    detection = ErrorDetector().detect(table, [])
    assert CellRef(2, "Value") in detection.outlier_cells


def test_detector_clean_cells_complement(fd_table, fd_constraints):
    detection = ErrorDetector().detect(fd_table, fd_constraints)
    clean = set(detection.clean_cells(fd_table))
    assert clean.isdisjoint(detection.noisy_cells)
    assert len(clean) + len(detection.noisy_cells) == fd_table.n_cells


# -- domain generation ----------------------------------------------------------------


def test_domain_contains_current_value_and_cooccurring_value(fd_table):
    domain = DomainGenerator().domain_for(fd_table, CellRef(2, "Name"))
    assert "Asprin" in domain
    assert "Aspirin" in domain


def test_domain_size_is_capped(fd_table):
    generator = DomainGenerator(max_domain_size=2)
    domain = generator.domain_for(fd_table, CellRef(2, "Name"))
    assert len(domain) <= 2


def test_domains_for_builds_all_requested(fd_table):
    cells = [CellRef(2, "Name"), CellRef(0, "Code")]
    domains = DomainGenerator().domains_for(fd_table, cells)
    assert set(domains) == set(cells)


# -- featurization -------------------------------------------------------------------------


def test_feature_vector_shape_and_ranges(fd_table, fd_constraints):
    featurizer = Featurizer(fd_constraints)
    vector = featurizer.features(fd_table, CellRef(2, "Name"), "Aspirin")
    assert vector.shape == (len(FEATURE_NAMES),)
    assert 0.0 <= vector[0] <= 1.0  # cooccurrence
    assert 0.0 <= vector[1] <= 1.0  # frequency
    assert 0.0 <= vector[2] <= 1.0  # violations
    assert vector[3] in (0.0, 1.0)  # minimality


def test_violation_feature_distinguishes_candidates(fd_table, fd_constraints):
    featurizer = Featurizer(fd_constraints)
    bad = featurizer.features(fd_table, CellRef(2, "Name"), "Asprin")
    good = featurizer.features(fd_table, CellRef(2, "Name"), "Aspirin")
    assert bad[2] > good[2]  # keeping the typo violates the FD, fixing it does not
    assert bad[3] == 1.0 and good[3] == 0.0


def test_featurize_domain_matrix(fd_table, fd_constraints):
    featurizer = Featurizer(fd_constraints)
    domain = DomainGenerator().domain_for(fd_table, CellRef(2, "Name"))
    matrix = featurizer.featurize_domain(fd_table, domain)
    assert matrix.shape == (len(domain), len(FEATURE_NAMES))


# -- inference -----------------------------------------------------------------------------


def test_inference_default_weights_prefer_consistent_candidate(fd_table, fd_constraints):
    featurizer = Featurizer(fd_constraints)
    domain = DomainGenerator().domain_for(fd_table, CellRef(2, "Name"))
    matrix = featurizer.featurize_domain(fd_table, domain)
    inference = PseudoLikelihoodInference()
    chosen = inference.choose(domain, matrix, "Asprin")
    assert chosen == "Aspirin"


def test_inference_fit_learns_finite_weights(fd_table, fd_constraints):
    featurizer = Featurizer(fd_constraints)
    examples = []
    for row in (0, 1, 3, 4):
        cell = CellRef(row, "Name")
        domain = DomainGenerator().domain_for(fd_table, cell)
        matrix = featurizer.featurize_domain(fd_table, domain)
        examples.append((matrix, domain.candidates.index(fd_table[cell])))
    inference = PseudoLikelihoodInference(epochs=10)
    weights = inference.fit(examples)
    assert weights.shape == (len(FEATURE_NAMES),)
    assert np.all(np.isfinite(weights))
    assert inference.trained


def test_inference_fit_without_examples_keeps_defaults():
    inference = PseudoLikelihoodInference()
    weights = inference.fit([])
    assert not inference.trained
    assert np.all(np.isfinite(weights))


def test_posterior_sums_to_one(fd_table, fd_constraints):
    featurizer = Featurizer(fd_constraints)
    domain = DomainGenerator().domain_for(fd_table, CellRef(2, "Name"))
    matrix = featurizer.featurize_domain(fd_table, domain)
    posterior = PseudoLikelihoodInference().posterior(matrix)
    assert posterior.sum() == pytest.approx(1.0)
    assert (posterior >= 0).all()


def test_describe_weights_names():
    description = PseudoLikelihoodInference().describe_weights()
    assert set(description) == set(FEATURE_NAMES)


# -- end-to-end model -------------------------------------------------------------------------


def test_holoclean_fixes_fd_typo(fd_table, fd_constraints):
    repaired = HoloCleanRepair().repair_table(fd_constraints, fd_table)
    assert repaired.value(2, "Name") == "Aspirin"


def test_holoclean_repairs_la_liga_country(dirty_table, constraints):
    repaired = HoloCleanRepair().repair_table(constraints, dirty_table)
    assert repaired.value(4, "Country") == "Spain"


def test_holoclean_is_deterministic(dirty_table, constraints):
    first = HoloCleanRepair().repair_table(constraints, dirty_table)
    second = HoloCleanRepair().repair_table(constraints, dirty_table)
    assert first.equals(second)


def test_holoclean_no_constraints_is_identity(dirty_table):
    repaired = HoloCleanRepair().repair_table([], dirty_table)
    assert repaired.equals(dirty_table)


def test_holoclean_leaves_clean_table_unchanged(clean_table, constraints):
    repaired = HoloCleanRepair(use_outlier_detector=False).repair_table(constraints, clean_table)
    assert repaired.equals(clean_table)


def test_holoclean_reduces_violations_on_hospital_dataset():
    dataset = HospitalGenerator(seed=11).generate(40)
    constraints = dataset.constraints()
    dirty, _ = inject_errors(
        dataset.table, rate=0.02, error_types=["swap"], attributes=["State", "County"], seed=11
    )
    repaired = HoloCleanRepair().repair_table(constraints, dirty)
    assert len(find_all_violations(repaired, constraints)) <= len(
        find_all_violations(dirty, constraints)
    )


# -- pair-fallback warning ---------------------------------------------------------


def test_pair_fallback_warns_once_and_matches_independent_repairs(
    dirty_table, constraints, caplog, monkeypatch
):
    """The one-time ``repair_pair`` fallback notice fires exactly once per
    process, and the fallback's outputs are the paired reference: exactly
    what two independent ``repair_table`` calls produce."""
    monkeypatch.setattr(HoloCleanRepair, "_pair_fallback_warned", False)
    algorithm = HoloCleanRepair()
    with_table = dirty_table.perturbed({CellRef(4, "Country"): "Spain"})
    without_table = dirty_table

    import logging

    with caplog.at_level(logging.WARNING, logger="repro.repair.holoclean.model"):
        first = algorithm.repair_pair(constraints, with_table, without_table,
                                      [CellRef(4, "Country")])
        second = algorithm.repair_pair(constraints, with_table, without_table,
                                       [CellRef(4, "Country")])
    fallback_records = [record for record in caplog.records
                        if "falls back" in record.getMessage()]
    assert len(fallback_records) == 1
    assert HoloCleanRepair._pair_fallback_warned is True

    clean_with = algorithm.repair_table(list(constraints), with_table)
    clean_without = algorithm.repair_table(list(constraints), without_table)
    for pair in (first, second):
        assert pair[0].equals(clean_with)
        assert pair[1].equals(clean_without)
