"""Unit tests for the predicate-evaluation query layer."""

from repro.engine.query import count_distinct, pairs_matching, rows_with_value, select_rows
from repro.engine.storage import ColumnStore


def make_store():
    return ColumnStore(
        {
            "Team": ["Real", "Barca", "Real", None],
            "Place": [1, 2, 3, 1],
        }
    )


def test_select_rows_with_predicate():
    store = make_store()
    rows = select_rows(store, lambda r: store.value(r, "Place") >= 2)
    assert rows == [1, 2]


def test_rows_with_value_ignores_nulls():
    store = make_store()
    assert rows_with_value(store, "Team", "Real") == [0, 2]
    assert rows_with_value(store, "Team", None) == []


def test_pairs_matching_equality_attribute():
    store = make_store()
    pairs = set(pairs_matching(store, ["Team"]))
    assert (0, 2) in pairs and (2, 0) in pairs
    assert all(store.value(i, "Team") == store.value(j, "Team") for i, j in pairs)


def test_pairs_matching_unordered():
    store = make_store()
    pairs = list(pairs_matching(store, ["Team"], ordered=False))
    assert pairs == [(0, 2)]


def test_pairs_matching_with_pair_predicate():
    store = make_store()
    pairs = set(
        pairs_matching(
            store,
            [],
            pair_predicate=lambda i, j: store.value(i, "Place") < store.value(j, "Place"),
        )
    )
    # asymmetric predicate: only ordered pairs with increasing place
    assert (0, 1) in pairs and (1, 0) not in pairs
    assert (0, 3) not in pairs  # equal places


def test_pairs_matching_no_equality_attributes_enumerates_all():
    store = make_store()
    pairs = set(pairs_matching(store, [], ordered=False))
    assert len(pairs) == 6  # C(4, 2)


def test_count_distinct_excludes_nulls():
    store = make_store()
    assert count_distinct(store, "Team") == 2
    assert count_distinct(store, "Place") == 3
