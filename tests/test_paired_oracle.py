"""``query_pair`` must answer exactly like two independent ``query`` calls.

The paired oracle shares one repair walk (and one row cache, one statistics
fork) between the with/without instances of a Monte-Carlo sample; these tests
pin the contract that sharing is invisible in the answers, the call
accounting (modulo the shared walk itself) and the cache contents.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BinaryRepairOracle,
    CellRef,
    GreedyHolisticRepair,
    SimpleRuleRepair,
    Table,
    la_liga_constraints,
    la_liga_dirty_table,
)
from repro.repair.cache import OracleCache
from repro.shapley.sampling import CellCoalitionSampler

CELL_OF_INTEREST = CellRef(4, "Country")


def make_oracle(algorithm=None, **kwargs):
    return BinaryRepairOracle(
        algorithm or SimpleRuleRepair(),
        la_liga_constraints(),
        la_liga_dirty_table(),
        CELL_OF_INTEREST,
        **kwargs,
    )


def sample_pairs(oracle, n_pairs, policy="null", rng=7):
    sampler = CellCoalitionSampler(oracle.dirty_table, policy=policy, rng=rng,
                                   batched=True)
    return [sampler.sample_pair(CellRef(0, "City")) for _ in range(n_pairs)]


# ---------------------------------------------------------------------------
# answer equivalence


@pytest.mark.parametrize("algorithm_factory", [SimpleRuleRepair,
                                               lambda: GreedyHolisticRepair(max_changes=20)])
@pytest.mark.parametrize("use_cache", [True, False])
def test_query_pair_equals_two_queries(algorithm_factory, use_cache):
    paired = make_oracle(algorithm_factory(), use_cache=use_cache)
    unpaired = make_oracle(algorithm_factory(), use_cache=use_cache, paired=False)
    for with_table, without_table in sample_pairs(paired, 8):
        pair = paired.query_pair(paired.constraints, with_table, without_table)
        independent = (
            unpaired.query_table(with_table),
            unpaired.query_table(without_table),
        )
        assert pair == independent


def test_query_pair_identical_under_sample_policy():
    paired = make_oracle()
    unpaired = make_oracle(paired=False)
    for with_table, without_table in sample_pairs(paired, 6, policy="sample", rng=11):
        assert paired.query_pair(paired.constraints, with_table, without_table) == (
            unpaired.query_table(with_table),
            unpaired.query_table(without_table),
        )


def test_repair_pair_equals_two_repairs():
    constraints = la_liga_constraints()
    algorithm = SimpleRuleRepair()
    oracle = make_oracle(algorithm)
    for with_table, without_table in sample_pairs(oracle, 6):
        differing = with_table.differing_cells(without_table)
        clean_with, clean_without = algorithm.repair_pair(
            constraints, with_table, without_table, differing
        )
        assert clean_with.to_records() == \
            algorithm.repair_table(constraints, with_table).to_records()
        assert clean_without.to_records() == \
            algorithm.repair_table(constraints, without_table).to_records()


# ---------------------------------------------------------------------------
# accounting


def test_query_pair_accounting():
    oracle = make_oracle(use_cache=False)
    runs_before = oracle.repair_runs
    (with_table, without_table), = sample_pairs(oracle, 1)
    oracle.query_pair(oracle.constraints, with_table, without_table)
    assert oracle.calls == 2                       # one pair == two oracle queries
    assert oracle.repair_runs == runs_before + 2   # both instances were repaired
    assert oracle.pair_walks == 1                  # ...in one shared walk
    assert "pair_walks" in oracle.statistics()


def test_query_pair_falls_back_without_pairing():
    oracle = make_oracle(use_cache=False, paired=False)
    (with_table, without_table), = sample_pairs(oracle, 1)
    oracle.query_pair(oracle.constraints, with_table, without_table)
    assert oracle.pair_walks == 0
    assert oracle.calls == 2


def test_pair_walks_not_counted_for_unshared_repairs():
    """An algorithm that cannot share a walk must not inflate pair_walks."""
    oracle = make_oracle(SimpleRuleRepair(second_order=False), use_cache=False)
    (with_table, without_table), = sample_pairs(oracle, 1)
    answers = oracle.query_pair(oracle.constraints, with_table, without_table)
    reference = make_oracle(use_cache=False, paired=False)
    assert answers == (reference.query_table(with_table),
                       reference.query_table(without_table))
    assert oracle.pair_walks == 0
    assert oracle.repair_runs == 3  # reference repair + the two instances


def test_query_pair_memoises_pair_results():
    oracle = make_oracle()
    (with_table, without_table), = sample_pairs(oracle, 1)
    first = oracle.query_pair(oracle.constraints, with_table, without_table)
    runs = oracle.repair_runs
    second = oracle.query_pair(oracle.constraints, with_table, without_table)
    assert first == second
    assert oracle.repair_runs == runs  # served from the pair memo
    # the individual answers are also cached: a plain query costs no repair
    assert oracle.query_table(with_table) == first[0]
    assert oracle.repair_runs == runs


def test_query_pair_with_multi_cell_same_row_difference():
    """Pairs differing in several cells of one row must still match two repairs.

    Regression guard for the statistics fork: multi-cell same-row diffs
    cannot be applied as independent per-cell updates, so the pair path must
    fall back to fresh statistics there.
    """
    paired = make_oracle(use_cache=False)
    unpaired = make_oracle(use_cache=False, paired=False)
    base_delta = {CellRef(0, "City"): None, CellRef(2, "Team"): None}
    with_view = paired.dirty_table.perturbed(base_delta, trusted=True)
    without_view = with_view.perturbed(
        {CellRef(1, "City"): "Seville", CellRef(1, "Country"): "France"}, trusted=True
    )
    assert paired.query_pair(paired.constraints, with_view, without_view) == (
        unpaired.query_table(with_view),
        unpaired.query_table(without_view),
    )


def test_query_pair_with_identical_instances():
    oracle = make_oracle(use_cache=False)
    view = oracle.dirty_table.perturbed({CellRef(0, "City"): None}, trusted=True)
    sibling = view.perturbed({}, trusted=True)
    value_with, value_without = oracle.query_pair(oracle.constraints, view, sibling)
    assert value_with == value_without


# ---------------------------------------------------------------------------
# cache bounds (satellite: LRU limit + eviction counter)


def test_oracle_cache_eviction_counter():
    cache = OracleCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 0)
    assert cache.evictions == 0
    cache.put("c", 1)
    cache.put("d", 0)
    assert cache.evictions == 2
    assert len(cache) == 2
    cache.reset_counters()
    assert cache.evictions == 0


def test_oracle_cache_size_is_configurable():
    oracle = make_oracle(cache_size=2)
    pairs = sample_pairs(oracle, 4)
    for with_table, without_table in pairs:
        oracle.query_pair(oracle.constraints, with_table, without_table)
    assert oracle.cache_evictions > 0
    assert oracle.statistics()["cache_evictions"] == oracle.cache_evictions


def test_oracle_cache_rejects_bad_bound():
    with pytest.raises(ValueError):
        OracleCache(max_entries=0)


# ---------------------------------------------------------------------------
# differing_cells (the pair sub-delta derivation)


def test_differing_cells_between_siblings():
    base = la_liga_dirty_table()
    with_view = base.perturbed({CellRef(0, "City"): None, CellRef(1, "Team"): "X"},
                               trusted=True)
    without_view = with_view.perturbed({CellRef(0, "Country"): "France"}, trusted=True)
    assert with_view.differing_cells(without_view) == [CellRef(0, "Country")]
    assert without_view.differing_cells(with_view) == [CellRef(0, "Country")]
    assert with_view.differing_cells(with_view.perturbed({}, trusted=True)) == []


def test_differing_cells_requires_shared_base():
    base = la_liga_dirty_table()
    other = la_liga_dirty_table()
    with pytest.raises(Exception):
        base.perturbed({}).differing_cells(other.perturbed({}))


# ---------------------------------------------------------------------------
# hypothesis: random tables, random coalitions, both black boxes

ATTRS = ("A", "B", "C")
VALUES = st.sampled_from(["x", "y", "z", 1, 2, None])


@st.composite
def pair_scenario(draw):
    n_rows = draw(st.integers(min_value=2, max_value=6))
    rows = [tuple(draw(VALUES) for _ in ATTRS) for _ in range(n_rows)]
    table = Table(ATTRS, rows)
    delta = {}
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        row = draw(st.integers(min_value=0, max_value=n_rows - 1))
        attr = draw(st.sampled_from(ATTRS))
        delta[CellRef(row, attr)] = draw(VALUES)
    target = CellRef(draw(st.integers(min_value=0, max_value=n_rows - 1)),
                     draw(st.sampled_from(ATTRS)))
    target_value = draw(VALUES)
    return table, delta, target, target_value


@settings(max_examples=50, deadline=None)
@given(data=pair_scenario())
def test_query_pair_equals_two_queries_randomised(data):
    from repro.constraints.predicates import Operator, Predicate
    from repro.constraints.dc import DenialConstraint

    table, delta, target, target_value = data
    constraints = [
        DenialConstraint("fd", [Predicate.between_tuples("A", Operator.EQ),
                                Predicate.between_tuples("B", Operator.NE)]),
        DenialConstraint("ord", [Predicate.between_tuples("B", Operator.EQ),
                                 Predicate.between_tuples("C", Operator.LT)]),
    ]
    with_view = table.perturbed(delta)
    without_view = with_view.with_values({target: target_value})

    paired = BinaryRepairOracle(SimpleRuleRepair(), constraints, table,
                                CellRef(0, "B"), use_cache=False)
    unpaired = BinaryRepairOracle(SimpleRuleRepair(), constraints, table,
                                  CellRef(0, "B"), use_cache=False, paired=False)
    assert paired.query_pair(constraints, with_view, without_view) == (
        unpaired.query(constraints, with_view),
        unpaired.query(constraints, without_view),
    )
