"""Unit tests for Shapley interaction indices and Banzhaf values."""

import pytest

from repro.dataset.table import CellRef
from repro.repair.base import BinaryRepairOracle
from repro.shapley.constraints import ConstraintShapleyExplainer
from repro.shapley.exact import exact_shapley
from repro.shapley.game import CallableGame
from repro.shapley.interaction import (
    all_pairwise_interactions,
    banzhaf_values,
    shapley_interaction_index,
)
from repro.errors import TRexError


def paper_game():
    """The constraint game of Example 2.3: winning sets {C3} and {C1, C2}."""
    return CallableGame(
        ("C1", "C2", "C3", "C4"),
        lambda s: 1.0 if ("C3" in s or {"C1", "C2"} <= s) else 0.0,
    )


def test_interaction_validation():
    game = paper_game()
    with pytest.raises(TRexError):
        shapley_interaction_index(game, "C1", "C1")
    with pytest.raises(TRexError):
        shapley_interaction_index(game, "C1", "missing")


def test_complementary_pair_has_positive_interaction():
    game = paper_game()
    assert shapley_interaction_index(game, "C1", "C2") > 0


def test_dummy_player_has_zero_interactions():
    game = paper_game()
    for other in ("C1", "C2", "C3"):
        assert shapley_interaction_index(game, "C4", other) == pytest.approx(0.0)


def test_substitute_pair_has_negative_interaction():
    # C3 can achieve the repair alone, so adding C1 (half of the alternative
    # path) on top of C3 is redundant: they are substitutes.
    game = paper_game()
    assert shapley_interaction_index(game, "C1", "C3") < 0
    assert shapley_interaction_index(game, "C2", "C3") < 0


def test_interaction_is_symmetric():
    game = paper_game()
    assert shapley_interaction_index(game, "C1", "C2") == pytest.approx(
        shapley_interaction_index(game, "C2", "C1")
    )


def test_additive_game_has_no_interactions():
    worth = {"a": 1.0, "b": 2.0, "c": 3.0}
    game = CallableGame(tuple(worth), lambda s: sum(worth[p] for p in s))
    for pair, value in all_pairwise_interactions(game).items():
        assert value == pytest.approx(0.0), pair


def test_all_pairwise_interactions_covers_every_pair():
    game = paper_game()
    interactions = all_pairwise_interactions(game)
    assert len(interactions) == 6  # C(4, 2)
    assert frozenset({"C1", "C2"}) in interactions


def test_banzhaf_additive_game_equals_shapley():
    worth = {"a": 1.5, "b": 0.5}
    game = CallableGame(tuple(worth), lambda s: sum(worth[p] for p in s))
    banzhaf = banzhaf_values(game)
    shapley = exact_shapley(game)
    for player in worth:
        assert banzhaf[player] == pytest.approx(shapley[player])


def test_banzhaf_paper_game_ranking_matches_shapley_ranking():
    game = paper_game()
    banzhaf = banzhaf_values(game)
    # Banzhaf of the paper's game: C3 = 6/8, C1 = C2 = 2/8, C4 = 0
    assert banzhaf["C3"] == pytest.approx(6 / 8)
    assert banzhaf["C1"] == pytest.approx(2 / 8)
    assert banzhaf["C2"] == pytest.approx(2 / 8)
    assert banzhaf["C4"] == pytest.approx(0.0)
    assert [name for name, _ in banzhaf.ranking()] == ["C3", "C1", "C2", "C4"]
    assert banzhaf.method == "banzhaf-exact"


def test_explainer_interaction_and_banzhaf_on_running_example(
    algorithm, constraints, dirty_table, cell_of_interest
):
    oracle = BinaryRepairOracle(algorithm, constraints, dirty_table, cell_of_interest)
    explainer = ConstraintShapleyExplainer(oracle)
    interactions = explainer.explain_interactions()
    assert interactions[frozenset({"C1", "C2"})] > 0
    assert interactions[frozenset({"C1", "C4"})] == pytest.approx(0.0)
    banzhaf = explainer.explain_banzhaf()
    assert banzhaf.ranking()[0][0] == "C3"
