"""Unit tests for ranking utilities."""

import pytest

from repro.explain.ranking import (
    Ranking,
    kendall_tau,
    normalised_scores,
    rank_items,
    ranking_overlap,
    top_k,
)


def test_ranking_orders_by_decreasing_score():
    ranking = Ranking({"a": 0.1, "b": 0.9, "c": 0.5})
    assert ranking.items() == ["b", "c", "a"]
    assert ranking[0].rank == 1 and ranking[0].item == "b"
    assert len(ranking) == 3


def test_ranking_tie_break_is_deterministic():
    ranking = Ranking({"z": 0.5, "a": 0.5})
    assert ranking.items() == ["a", "z"]


def test_ranking_lookups():
    ranking = Ranking({"a": 0.1, "b": 0.9})
    assert ranking.rank_of("b") == 1
    assert ranking.rank_of("missing") is None
    assert ranking.score_of("a") == pytest.approx(0.1)
    assert ranking.score_of("missing", default=-1.0) == -1.0
    assert ranking.top(1) == ["b"]
    assert ranking.scores() == {"a": 0.1, "b": 0.9}


def test_ranking_nonzero_filter():
    ranking = Ranking({"a": 0.0, "b": 0.4, "c": 1e-15})
    assert ranking.nonzero().items() == ["b"]


def test_rank_items_and_top_k_helpers():
    scores = {"x": 3.0, "y": 1.0, "z": 2.0}
    assert rank_items(scores).items() == ["x", "z", "y"]
    assert top_k(scores, 2) == ["x", "z"]


def test_normalised_scores():
    scores = normalised_scores({"a": 2.0, "b": 1.0, "c": 0.0})
    assert scores["a"] == pytest.approx(1.0)
    assert scores["b"] == pytest.approx(0.5)
    assert scores["c"] == 0.0
    assert normalised_scores({}) == {}
    assert normalised_scores({"a": 0.0}) == {"a": 0.0}


def test_kendall_tau_identical_and_reversed():
    assert kendall_tau(["a", "b", "c"], ["a", "b", "c"]) == pytest.approx(1.0)
    assert kendall_tau(["a", "b", "c"], ["c", "b", "a"]) == pytest.approx(-1.0)


def test_kendall_tau_partial_agreement():
    tau = kendall_tau(["a", "b", "c", "d"], ["a", "c", "b", "d"])
    assert 0.0 < tau < 1.0


def test_kendall_tau_ignores_missing_items_and_small_sets():
    assert kendall_tau(["a", "b", "x"], ["b", "a", "y"]) == pytest.approx(-1.0)
    assert kendall_tau(["a"], ["a"]) == 0.0
    assert kendall_tau([], []) == 0.0


def test_kendall_tau_accepts_ranking_objects():
    first = Ranking({"a": 3.0, "b": 2.0, "c": 1.0})
    second = Ranking({"a": 1.0, "b": 2.0, "c": 3.0})
    assert kendall_tau(first, second) == pytest.approx(-1.0)


def test_ranking_overlap():
    assert ranking_overlap(["a", "b", "c"], ["a", "b", "d"], k=2) == pytest.approx(1.0)
    assert ranking_overlap(["a", "b", "c"], ["c", "d", "e"], k=2) == pytest.approx(0.0)
    assert ranking_overlap(["a", "b"], ["a", "c"], k=2) == pytest.approx(1 / 3)
    assert ranking_overlap([], [], k=3) == 1.0
