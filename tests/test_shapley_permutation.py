"""Unit tests for permutation-sampling Shapley estimation."""

import pytest

from repro.shapley.exact import exact_shapley
from repro.shapley.game import CallableGame
from repro.shapley.permutation import permutation_shapley, stratified_permutation_shapley


def glove_game():
    def value(coalition):
        lefts = len(coalition & {"a", "b"})
        rights = len(coalition & {"c"})
        return float(min(lefts, rights))

    return CallableGame(("a", "b", "c"), value)


def test_estimates_close_to_exact_values():
    game = glove_game()
    exact = exact_shapley(game)
    estimate = permutation_shapley(game, n_permutations=600, rng=1)
    for player in game.players:
        assert estimate[player] == pytest.approx(exact[player], abs=0.06)


def test_estimator_is_deterministic_given_seed():
    game = glove_game()
    first = permutation_shapley(game, n_permutations=50, rng=7)
    second = permutation_shapley(game, n_permutations=50, rng=7)
    assert first.values == second.values


def test_different_seeds_differ():
    game = glove_game()
    first = permutation_shapley(game, n_permutations=25, rng=1)
    second = permutation_shapley(game, n_permutations=25, rng=2)
    assert first.values != second.values


def test_per_permutation_efficiency_property():
    """Each permutation's marginals telescope, so the estimate sums to v(N) - v(∅)."""
    game = glove_game()
    estimate = permutation_shapley(game, n_permutations=40, rng=3)
    assert estimate.total() == pytest.approx(game.grand_coalition_value(), abs=1e-9)


def test_standard_errors_shrink_with_more_samples():
    game = glove_game()
    small = permutation_shapley(game, n_permutations=30, rng=5)
    large = permutation_shapley(game, n_permutations=500, rng=5)
    assert large.standard_errors["a"] <= small.standard_errors["a"]


def test_antithetic_option_runs_and_reports_double_samples():
    game = glove_game()
    plain = permutation_shapley(game, n_permutations=50, rng=9)
    anti = permutation_shapley(game, n_permutations=50, rng=9, antithetic=True)
    assert anti.n_samples == 2 * plain.n_samples
    assert "antithetic" in anti.method
    exact = exact_shapley(game)
    for player in game.players:
        assert anti[player] == pytest.approx(exact[player], abs=0.1)


def test_requested_player_subset_only_reported():
    game = glove_game()
    estimate = permutation_shapley(game, n_permutations=20, rng=2, players=["c"])
    assert set(estimate.values) == {"c"}


def test_dummy_player_estimated_at_zero():
    game = CallableGame(("a", "b", "dummy"), lambda s: 1.0 if {"a", "b"} <= s else 0.0)
    estimate = permutation_shapley(game, n_permutations=200, rng=4)
    assert estimate["dummy"] == pytest.approx(0.0, abs=1e-12)


def test_stratified_estimator_close_to_exact():
    game = glove_game()
    exact = exact_shapley(game)
    estimate = stratified_permutation_shapley(game, n_permutations_per_position=150, rng=6)
    for player in game.players:
        assert estimate[player] == pytest.approx(exact[player], abs=0.08)
    assert estimate.method == "stratified-sampling"


def test_stratified_single_player():
    game = glove_game()
    estimate = stratified_permutation_shapley(game, n_permutations_per_position=80, player="c", rng=6)
    assert set(estimate.values) == {"c"}
