"""Update soak: 50 seeded update/explain cycles on a warm two-worker pool.

The acceptance bar for the live-update subsystem: a long-lived session
absorbing a stream of base-table writes must never rebuild a resident worker
stack after the first round — every update reaches the workers as an
in-place :func:`~repro.parallel.worker.run_base_update_worker` patch, so
``worker_rebuilds`` stays at exactly ``n_jobs`` (one build per worker,
ever) across all 50 cycles.  Spot rounds and the final state are checked
bit-identical against fresh sessions on the then-current table, and the
update counters must reconcile at the end.

The write stream is seeded: values are drawn from per-attribute pools with a
fixed generator, so every run walks the same 50-step trajectory.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CellRef,
    RepairSession,
    TRexConfig,
    la_liga_constraints,
    la_liga_dirty_table,
    paper_algorithm_1,
)

pytestmark = [pytest.mark.parallel, pytest.mark.slow]

CELL_OF_INTEREST = CellRef(4, "Country")
N_JOBS = 2
N_CYCLES = 50
N_SAMPLES = 4
SOAK_SEED = 4_2020

#: the soak writes only to rows/attributes that keep t5[Country] repaired,
#: so all 50 cycles exercise the refresh path (never the unrepair teardown)
WRITE_POOLS = {
    ("City", 0): ["Barcelona", "Seville", "Girona"],
    ("City", 1): ["Madrid", "Barcelona", "Toledo"],
    ("Country", 0): ["Spain", "Portugal"],
    ("Year", 3): [2019, 2018, 2016, None],
    ("Place", 2): [2, 4, 5],
}
#: cycles whose post-update explanation is compared against a fresh session
#: (every cycle would square the soak's cost; the ends and a midpoint do)
SPOT_CHECKS = frozenset({0, 24, N_CYCLES - 1})


def _key(explanation):
    cells = explanation.cell_shapley
    return sorted((str(cell), value, cells.standard_errors[cell])
                  for cell, value in cells.values.items())


def _config():
    return TRexConfig(seed=SOAK_SEED, cell_samples=N_SAMPLES,
                      replacement_policy="sample", n_jobs=N_JOBS,
                      warm_pool=True)


def _fresh_key(table):
    session = RepairSession(paper_algorithm_1(), la_liga_constraints(), table,
                            cell_of_interest=CELL_OF_INTEREST,
                            config=_config())
    with session:
        return _key(session.explain())


def test_fifty_update_cycles_zero_rebuilds_after_round_one():
    rng = np.random.default_rng(SOAK_SEED)
    slots = sorted(WRITE_POOLS)
    table = la_liga_dirty_table()
    session = RepairSession(paper_algorithm_1(), la_liga_constraints(), table,
                            cell_of_interest=CELL_OF_INTEREST,
                            config=_config())
    with session:
        session.explain()  # round one: both workers build their stacks
        oracle = session._live.oracle
        assert oracle.statistics()["worker_rebuilds"] == N_JOBS
        for cycle in range(N_CYCLES):
            attribute, row = slots[int(rng.integers(len(slots)))]
            pool = WRITE_POOLS[(attribute, row)]
            value = pool[int(rng.integers(len(pool)))]
            session.update(CellRef(row, attribute), value)
            explanation = session.explain()
            if cycle in SPOT_CHECKS:
                assert _key(explanation) == _fresh_key(table.copy()), \
                    f"cycle {cycle} drifted from a fresh session"
        statistics = oracle.statistics()
    # the headline: zero stack rebuilds after round one — every one of the
    # 50 updates was absorbed by an in-place worker patch
    assert statistics["worker_rebuilds"] == N_JOBS
    assert statistics["workers_restarted"] == 0
    # counter reconciliation: no-op draws (value already in place) are
    # logged but not applied, so applied == cells actually written
    assert statistics["base_updates_applied"] == len(session.update_log) \
        - sum(1 for delta in session.update_log if len(delta) == 0)
    assert len(session.update_log) == N_CYCLES
    assert statistics["base_updates_applied"] > 0
    assert session.update_log.cells_written \
        == statistics["base_updates_applied"]
