"""Property-based tests (hypothesis) on the core data structures and invariants.

Covered invariants:

* Shapley axioms on randomly generated monotone binary games — efficiency,
  symmetry of interchangeable players, dummy players get zero, and the
  permutation estimator telescopes to the same total;
* the combinatorial identity behind the Shapley weights;
* Table transformation laws (nulling, value replacement, diff/apply round trip);
* parser/formatter round-tripping for arbitrary FD-style constraints;
* null-aware comparison semantics of the predicate operators;
* Welford accumulator vs. numpy on arbitrary float samples.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.constraints.parser import format_dc, parse_dc
from repro.constraints.predicates import Operator
from repro.dataset.table import CellRef, Table
from repro.shapley.convergence import RunningMean
from repro.shapley.exact import exact_shapley
from repro.shapley.game import CallableGame, shapley_weight
from repro.shapley.permutation import permutation_shapley

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

_PLAYERS = ("p0", "p1", "p2", "p3", "p4")


@st.composite
def monotone_binary_games(draw):
    """A random monotone binary game given by 1–3 minimal winning subsets."""
    n_players = draw(st.integers(min_value=2, max_value=5))
    players = _PLAYERS[:n_players]
    n_winning = draw(st.integers(min_value=1, max_value=3))
    winning = []
    for _ in range(n_winning):
        subset = draw(
            st.sets(st.sampled_from(players), min_size=1, max_size=n_players)
        )
        winning.append(frozenset(subset))

    def value(coalition: frozenset) -> float:
        return 1.0 if any(w <= coalition for w in winning) else 0.0

    return CallableGame(tuple(players), value), winning


@st.composite
def small_tables(draw):
    n_rows = draw(st.integers(min_value=1, max_value=5))
    n_cols = draw(st.integers(min_value=1, max_value=4))
    attributes = [f"A{i}" for i in range(n_cols)]
    values = st.one_of(st.integers(min_value=0, max_value=5), st.sampled_from(["x", "y", "z"]))
    rows = [[draw(values) for _ in range(n_cols)] for _ in range(n_rows)]
    return Table(attributes, rows)


_IDENTIFIERS = st.from_regex(r"[A-Z][a-zA-Z0-9_]{0,8}", fullmatch=True)


# ---------------------------------------------------------------------------
# Shapley axioms
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(monotone_binary_games())
def test_shapley_efficiency_on_monotone_binary_games(game_and_winning):
    game, _ = game_and_winning
    result = exact_shapley(game)
    assert math.isclose(result.total(), game.grand_coalition_value(), abs_tol=1e-9)
    assert all(value >= -1e-12 for value in result.values.values())


@settings(max_examples=40, deadline=None)
@given(monotone_binary_games())
def test_shapley_dummy_player_axiom(game_and_winning):
    game, winning = game_and_winning
    result = exact_shapley(game)
    needed = set().union(*winning)
    for player in game.players:
        if player not in needed:
            assert math.isclose(result[player], 0.0, abs_tol=1e-12)


@settings(max_examples=30, deadline=None)
@given(monotone_binary_games())
def test_shapley_symmetry_axiom(game_and_winning):
    """Players appearing in exactly the same winning subsets are interchangeable."""
    game, winning = game_and_winning
    result = exact_shapley(game)
    signature = {
        player: frozenset(i for i, w in enumerate(winning) if player in w)
        for player in game.players
    }
    for first in game.players:
        for second in game.players:
            if signature[first] == signature[second]:
                assert math.isclose(result[first], result[second], abs_tol=1e-9)


@settings(max_examples=20, deadline=None)
@given(monotone_binary_games(), st.integers(min_value=10, max_value=60))
def test_permutation_estimator_total_matches_grand_coalition(game_and_winning, n_permutations):
    game, _ = game_and_winning
    estimate = permutation_shapley(game, n_permutations=n_permutations, rng=0)
    assert math.isclose(estimate.total(), game.grand_coalition_value(), abs_tol=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=10))
def test_shapley_weights_sum_to_one(n_players):
    total = sum(
        math.comb(n_players - 1, size) * shapley_weight(size, n_players)
        for size in range(n_players)
    )
    assert math.isclose(total, 1.0, abs_tol=1e-12)


# ---------------------------------------------------------------------------
# Table transformation laws
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(small_tables(), st.data())
def test_nulling_then_restricting_is_idempotent(table, data):
    cells = list(table.cells())
    chosen = data.draw(st.sets(st.sampled_from(cells), max_size=len(cells)))
    nulled = table.with_cells_nulled(chosen)
    for cell in cells:
        if cell in chosen:
            assert nulled.is_null(cell)
        else:
            assert nulled[cell] == table[cell]
    # the original table is never modified
    assert not any(table.is_null(cell) for cell in chosen if table[cell] is not None)


@settings(max_examples=40, deadline=None)
@given(small_tables(), st.data())
def test_diff_and_apply_roundtrip(table, data):
    """Applying the new values of a diff to the dirty table reproduces the clean table."""
    cells = list(table.cells())
    chosen = data.draw(st.sets(st.sampled_from(cells), min_size=1, max_size=len(cells)))
    modified = table.with_values({cell: "CHANGED" for cell in chosen})
    delta = table.diff(modified)
    reapplied = table.with_values({change.cell: change.new_value for change in delta})
    assert reapplied.equals(modified)
    # the diff only mentions cells whose value actually changed
    for change in delta:
        assert table[change.cell] != modified[change.cell]


@settings(max_examples=40, deadline=None)
@given(small_tables())
def test_coalition_restriction_complement(table):
    coalition = set(list(table.cells())[:: 2])
    restricted = table.restricted_to_coalition(coalition)
    for cell in table.cells():
        if cell in coalition:
            assert restricted[cell] == table[cell]
        else:
            assert restricted.is_null(cell)


# ---------------------------------------------------------------------------
# parser / formatter round trip
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.lists(_IDENTIFIERS, min_size=1, max_size=3, unique=True),
    _IDENTIFIERS,
)
def test_fd_style_constraint_roundtrips_through_text(lhs_attributes, rhs_attribute):
    if rhs_attribute in lhs_attributes:
        rhs_attribute = rhs_attribute + "R"
    body = " and ".join(f"t1.{a} == t2.{a}" for a in lhs_attributes)
    text = f"not({body} and t1.{rhs_attribute} != t2.{rhs_attribute})"
    constraint = parse_dc(text, name="G1")
    reparsed = parse_dc(format_dc(constraint), name="G1")
    assert reparsed == constraint
    assert set(constraint.equality_attributes()) == set(lhs_attributes)
    assert constraint.inequality_attributes() == (rhs_attribute,)


# ---------------------------------------------------------------------------
# operator semantics
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(list(Operator)), st.integers(-5, 5), st.integers(-5, 5))
def test_operator_negation_partitions_outcomes(op, left, right):
    """On non-null operands an operator and its negation disagree everywhere."""
    assert op.evaluate(left, right) != op.negate().evaluate(left, right)


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(list(Operator)), st.integers(-5, 5))
def test_operator_null_never_satisfies_anything_but_ne(op, value):
    assert op.evaluate(None, value) == (op is Operator.NE)
    assert op.evaluate(value, None) == (op is Operator.NE)
    assert op.evaluate(None, None) is False


# ---------------------------------------------------------------------------
# Welford accumulator
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=2, max_size=50))
def test_running_mean_matches_numpy_on_arbitrary_samples(samples):
    tracker = RunningMean()
    for sample in samples:
        tracker.update(sample)
    assert math.isclose(tracker.mean, float(np.mean(samples)), rel_tol=1e-9, abs_tol=1e-9)
    assert math.isclose(
        tracker.variance, float(np.var(samples, ddof=1)), rel_tol=1e-7, abs_tol=1e-7
    )
