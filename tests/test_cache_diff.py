"""Property suite for cache-diff shipping (warm-pool wire protocol).

The warm pool ships home only the :class:`~repro.repair.cache.OracleCache`
entries inserted since each worker's last sync, cut by a per-worker
high-water mark (:meth:`~repro.repair.cache.OracleCache.high_water_mark` /
:meth:`~repro.repair.cache.OracleCache.entries_since`).  For random entry
sequences, cache sizes and round partitions this must be indistinguishable
from shipping the whole cache:

* replaying the per-round diffs reconstructs exactly what whole-cache
  merging reconstructs (same keys, same values), with each insertion
  travelling once — never lost, never duplicated;
* high-water marks survive evictions: a bounded cache that cycles entries
  still cuts every diff correctly, and an entry evicted *and recomputed*
  after a sync is shipped again (its re-insertion is new information);
* the scheduler's counter protocol (reset at round entry, ship the delta,
  sum at home) reproduces the whole-run hit/miss/eviction counters.

The oracle's determinism is simulated by deriving each value from its key,
mirroring the real contract (same key ⇒ same answer).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.repair.cache import OracleCache

#: a key universe small enough that puts collide and evictions re-cycle keys
keys = st.integers(min_value=0, max_value=23)

#: one simulated workload: a sequence of (key, is_put) operations
operations = st.lists(st.tuples(keys, st.booleans()), min_size=0, max_size=120)

#: where the round boundaries fall inside the workload
round_cuts = st.lists(st.integers(min_value=0, max_value=120),
                      min_size=0, max_size=6)


def value_of(key: int) -> int:
    """The deterministic 'oracle answer' for a key."""
    return key * 2 + 1


def run_rounds(cache: OracleCache, ops, cuts):
    """Drive ``ops`` through ``cache`` and ship a diff at every round cut.

    Returns the per-round diffs plus the per-round counter deltas, exactly
    as a warm worker produces them (mark at sync, reset counters at entry).
    """
    boundaries = sorted(set(min(cut, len(ops)) for cut in cuts)) + [len(ops)]
    diffs, counter_deltas = [], []
    mark = cache.high_water_mark()
    start = 0
    for boundary in boundaries:
        cache.reset_counters()
        for key, is_put in ops[start:boundary]:
            if is_put:
                cache.put(key, value_of(key))
            else:
                cache.get(key)
        diffs.append(cache.entries_since(mark))
        mark = cache.high_water_mark()
        counter_deltas.append({"hits": cache.hits, "misses": cache.misses,
                               "evictions": cache.evictions})
        start = boundary
    return diffs, counter_deltas


@settings(max_examples=200, deadline=None)
@given(ops=operations, cuts=round_cuts)
def test_diffs_reconstruct_exactly_the_whole_cache_merge(ops, cuts):
    """Diff-merging and whole-cache merging reach the same parent state."""
    worker = OracleCache()  # unbounded in practice (the 1M default)
    diffs, _ = run_rounds(worker, ops, cuts)

    parent_from_diffs = OracleCache()
    for diff in diffs:
        for key, value in diff:
            parent_from_diffs.put(key, value)
    parent_from_whole = OracleCache()
    parent_from_whole.merge_entries(worker)

    assert dict(parent_from_diffs.entries()) == dict(parent_from_whole.entries())
    assert dict(parent_from_diffs.entries()) == dict(worker.entries())
    # every insertion travelled exactly once: without evictions the diff
    # volume is exactly the number of *distinct* keys ever put
    put_keys = {key for key, is_put in ops if is_put}
    assert sum(len(diff) for diff in diffs) == len(put_keys)
    # and the diffs are pairwise disjoint — nothing ships twice
    shipped = [key for diff in diffs for key, _ in diff]
    assert len(shipped) == len(set(shipped))


@settings(max_examples=200, deadline=None)
@given(ops=operations, cuts=round_cuts,
       cache_size=st.integers(min_value=2, max_value=8))
def test_high_water_marks_survive_evictions(ops, cuts, cache_size):
    """Bounded worker caches cycle entries; the marks must keep cutting true."""
    worker = OracleCache(max_entries=cache_size)
    inserted_at: dict[int, int] = {}     # key -> round of latest insertion
    boundaries = sorted(set(min(cut, len(ops)) for cut in cuts)) + [len(ops)]
    mark = worker.high_water_mark()
    start = 0
    parent = OracleCache()
    for round_index, boundary in enumerate(boundaries):
        present_before = {key for key, _ in worker.entries()}
        for key, is_put in ops[start:boundary]:
            if is_put:
                if key not in worker:
                    inserted_at[key] = round_index
                worker.put(key, value_of(key))
            else:
                worker.get(key)
        diff = worker.entries_since(mark)
        mark = worker.high_water_mark()
        start = boundary
        diff_keys = {key for key, _ in diff}
        # a diff ships exactly the still-present entries whose latest
        # insertion happened this round: refreshed old entries never ship,
        # evicted-and-recomputed keys always do
        surviving = {key for key, _ in worker.entries()}
        expected = {key for key in surviving
                    if inserted_at.get(key) == round_index}
        assert diff_keys == expected
        # entries that were already resident before the round never re-ship
        assert not {key for key in diff_keys
                    if key in present_before
                    and inserted_at.get(key) != round_index}
        for key, value in diff:
            assert value == value_of(key)
            parent.put(key, value)
    # nothing the worker still holds was lost on the way home
    for key, value in worker.entries():
        assert key in parent
        assert dict(parent.entries())[key] == value


@settings(max_examples=150, deadline=None)
@given(ops=operations, cuts=round_cuts,
       cache_size=st.integers(min_value=2, max_value=8))
def test_round_counter_deltas_sum_to_the_whole_run(ops, cuts, cache_size):
    """Reset-at-entry deltas (what reports carry) add up to one long run."""
    per_round = OracleCache(max_entries=cache_size)
    _, deltas = run_rounds(per_round, ops, cuts)

    continuous = OracleCache(max_entries=cache_size)
    for key, is_put in ops:
        if is_put:
            continuous.put(key, value_of(key))
        else:
            continuous.get(key)

    assert sum(delta["hits"] for delta in deltas) == continuous.hits
    assert sum(delta["misses"] for delta in deltas) == continuous.misses
    assert sum(delta["evictions"] for delta in deltas) == continuous.evictions
    # the caches themselves evolved identically (counters never affect state)
    assert per_round.entries() == continuous.entries()


@settings(max_examples=100, deadline=None)
@given(ops=operations, cuts=round_cuts)
def test_marks_are_monotone_and_clear_safe(ops, cuts):
    """Marks never rewind — not across rounds, evictions, or clear()."""
    cache = OracleCache(max_entries=3)
    marks = [cache.high_water_mark()]
    boundaries = sorted(set(min(cut, len(ops)) for cut in cuts)) + [len(ops)]
    start = 0
    for boundary in boundaries:
        for key, is_put in ops[start:boundary]:
            if is_put:
                cache.put(key, value_of(key))
            else:
                cache.get(key)
        marks.append(cache.high_water_mark())
        start = boundary
    assert marks == sorted(marks)
    stale_mark = cache.high_water_mark()
    cache.clear()
    assert cache.high_water_mark() >= stale_mark
    cache.put(99, value_of(99))
    # the pre-clear mark still cuts correctly: only the new entry is newer
    assert [key for key, _ in cache.entries_since(stale_mark)] == [99]


def test_entries_since_orders_by_insertion():
    """Diffs replay in insertion order, not LRU order."""
    cache = OracleCache()
    mark = cache.high_water_mark()
    for key in (3, 1, 2):
        cache.put(key, value_of(key))
    cache.get(3)  # refresh 3's recency; its insertion position must not move
    assert [key for key, _ in cache.entries_since(mark)] == [3, 1, 2]
    assert [key for key, _ in cache.entries()] == [1, 2, 3]  # LRU order differs
