"""Property suite for cache-diff shipping (warm-pool wire protocol).

The warm pool ships home only the :class:`~repro.repair.cache.OracleCache`
entries inserted since each worker's last sync, cut by a per-worker
high-water mark (:meth:`~repro.repair.cache.OracleCache.high_water_mark` /
:meth:`~repro.repair.cache.OracleCache.entries_since`).  For random entry
sequences, cache sizes and round partitions this must be indistinguishable
from shipping the whole cache:

* replaying the per-round diffs reconstructs exactly what whole-cache
  merging reconstructs (same keys, same values), with each insertion
  travelling once — never lost, never duplicated;
* high-water marks survive evictions: a bounded cache that cycles entries
  still cuts every diff correctly, and an entry evicted *and recomputed*
  after a sync is shipped again (its re-insertion is new information);
* the scheduler's counter protocol (reset at round entry, ship the delta,
  sum at home) reproduces the whole-run hit/miss/eviction counters.

The oracle's determinism is simulated by deriving each value from its key,
mirroring the real contract (same key ⇒ same answer).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.repair.cache import OracleCache

#: a key universe small enough that puts collide and evictions re-cycle keys
keys = st.integers(min_value=0, max_value=23)

#: one simulated workload: a sequence of (key, is_put) operations
operations = st.lists(st.tuples(keys, st.booleans()), min_size=0, max_size=120)

#: where the round boundaries fall inside the workload
round_cuts = st.lists(st.integers(min_value=0, max_value=120),
                      min_size=0, max_size=6)


def value_of(key: int) -> int:
    """The deterministic 'oracle answer' for a key."""
    return key * 2 + 1


def run_rounds(cache: OracleCache, ops, cuts):
    """Drive ``ops`` through ``cache`` and ship a diff at every round cut.

    Returns the per-round diffs plus the per-round counter deltas, exactly
    as a warm worker produces them (mark at sync, reset counters at entry).
    """
    boundaries = sorted(set(min(cut, len(ops)) for cut in cuts)) + [len(ops)]
    diffs, counter_deltas = [], []
    mark = cache.high_water_mark()
    start = 0
    for boundary in boundaries:
        cache.reset_counters()
        for key, is_put in ops[start:boundary]:
            if is_put:
                cache.put(key, value_of(key))
            else:
                cache.get(key)
        diffs.append(cache.entries_since(mark))
        mark = cache.high_water_mark()
        counter_deltas.append({"hits": cache.hits, "misses": cache.misses,
                               "evictions": cache.evictions})
        start = boundary
    return diffs, counter_deltas


@settings(max_examples=200, deadline=None)
@given(ops=operations, cuts=round_cuts)
def test_diffs_reconstruct_exactly_the_whole_cache_merge(ops, cuts):
    """Diff-merging and whole-cache merging reach the same parent state."""
    worker = OracleCache()  # unbounded in practice (the 1M default)
    diffs, _ = run_rounds(worker, ops, cuts)

    parent_from_diffs = OracleCache()
    for diff in diffs:
        for key, value in diff:
            parent_from_diffs.put(key, value)
    parent_from_whole = OracleCache()
    parent_from_whole.merge_entries(worker)

    assert dict(parent_from_diffs.entries()) == dict(parent_from_whole.entries())
    assert dict(parent_from_diffs.entries()) == dict(worker.entries())
    # every insertion travelled exactly once: without evictions the diff
    # volume is exactly the number of *distinct* keys ever put
    put_keys = {key for key, is_put in ops if is_put}
    assert sum(len(diff) for diff in diffs) == len(put_keys)
    # and the diffs are pairwise disjoint — nothing ships twice
    shipped = [key for diff in diffs for key, _ in diff]
    assert len(shipped) == len(set(shipped))


@settings(max_examples=200, deadline=None)
@given(ops=operations, cuts=round_cuts,
       cache_size=st.integers(min_value=2, max_value=8))
def test_high_water_marks_survive_evictions(ops, cuts, cache_size):
    """Bounded worker caches cycle entries; the marks must keep cutting true."""
    worker = OracleCache(max_entries=cache_size)
    inserted_at: dict[int, int] = {}     # key -> round of latest insertion
    boundaries = sorted(set(min(cut, len(ops)) for cut in cuts)) + [len(ops)]
    mark = worker.high_water_mark()
    start = 0
    parent = OracleCache()
    for round_index, boundary in enumerate(boundaries):
        present_before = {key for key, _ in worker.entries()}
        for key, is_put in ops[start:boundary]:
            if is_put:
                if key not in worker:
                    inserted_at[key] = round_index
                worker.put(key, value_of(key))
            else:
                worker.get(key)
        diff = worker.entries_since(mark)
        mark = worker.high_water_mark()
        start = boundary
        diff_keys = {key for key, _ in diff}
        # a diff ships exactly the still-present entries whose latest
        # insertion happened this round: refreshed old entries never ship,
        # evicted-and-recomputed keys always do
        surviving = {key for key, _ in worker.entries()}
        expected = {key for key in surviving
                    if inserted_at.get(key) == round_index}
        assert diff_keys == expected
        # entries that were already resident before the round never re-ship
        assert not {key for key in diff_keys
                    if key in present_before
                    and inserted_at.get(key) != round_index}
        for key, value in diff:
            assert value == value_of(key)
            parent.put(key, value)
    # nothing the worker still holds was lost on the way home
    for key, value in worker.entries():
        assert key in parent
        assert dict(parent.entries())[key] == value


@settings(max_examples=150, deadline=None)
@given(ops=operations, cuts=round_cuts,
       cache_size=st.integers(min_value=2, max_value=8))
def test_round_counter_deltas_sum_to_the_whole_run(ops, cuts, cache_size):
    """Reset-at-entry deltas (what reports carry) add up to one long run."""
    per_round = OracleCache(max_entries=cache_size)
    _, deltas = run_rounds(per_round, ops, cuts)

    continuous = OracleCache(max_entries=cache_size)
    for key, is_put in ops:
        if is_put:
            continuous.put(key, value_of(key))
        else:
            continuous.get(key)

    assert sum(delta["hits"] for delta in deltas) == continuous.hits
    assert sum(delta["misses"] for delta in deltas) == continuous.misses
    assert sum(delta["evictions"] for delta in deltas) == continuous.evictions
    # the caches themselves evolved identically (counters never affect state)
    assert per_round.entries() == continuous.entries()


@settings(max_examples=100, deadline=None)
@given(ops=operations, cuts=round_cuts)
def test_marks_are_monotone_and_clear_safe(ops, cuts):
    """Marks never rewind — not across rounds, evictions, or clear()."""
    cache = OracleCache(max_entries=3)
    marks = [cache.high_water_mark()]
    boundaries = sorted(set(min(cut, len(ops)) for cut in cuts)) + [len(ops)]
    start = 0
    for boundary in boundaries:
        for key, is_put in ops[start:boundary]:
            if is_put:
                cache.put(key, value_of(key))
            else:
                cache.get(key)
        marks.append(cache.high_water_mark())
        start = boundary
    assert marks == sorted(marks)
    stale_mark = cache.high_water_mark()
    cache.clear()
    assert cache.high_water_mark() >= stale_mark
    cache.put(99, value_of(99))
    # the pre-clear mark still cuts correctly: only the new entry is newer
    assert [key for key, _ in cache.entries_since(stale_mark)] == [99]


def test_entries_since_orders_by_insertion():
    """Diffs replay in insertion order, not LRU order."""
    cache = OracleCache()
    mark = cache.high_water_mark()
    for key in (3, 1, 2):
        cache.put(key, value_of(key))
    cache.get(3)  # refresh 3's recency; its insertion position must not move
    assert [key for key, _ in cache.entries_since(mark)] == [3, 1, 2]
    assert [key for key, _ in cache.entries()] == [1, 2, 3]  # LRU order differs


# -- snapshot / restore (the warm-restart wire format) ---------------------------------


def drive(cache: OracleCache, ops) -> None:
    for key, is_put in ops:
        if is_put:
            cache.put(key, value_of(key))
        else:
            cache.get(key)


@settings(max_examples=200, deadline=None)
@given(ops=operations, bound=st.integers(min_value=1, max_value=30))
def test_snapshot_restore_round_trips_entries_and_clock(ops, bound):
    """A restored cache is a twin: same entries, same clock, same diff cuts."""
    donor = OracleCache()
    drive(donor, ops)

    clone = OracleCache()
    restored = clone.restore(donor.snapshot())
    assert restored == len(donor)
    assert dict(clone.entries()) == dict(donor.entries())
    # the insertion clock travels with the image, so marks agree...
    assert clone.high_water_mark() == donor.high_water_mark()
    # ...and any historical cut yields the same diff on either side
    assert clone.entries_since(0) == donor.entries_since(0)

    # a bounded image keeps exactly the newest entries, in insertion order
    bounded = OracleCache()
    bounded.restore(donor.snapshot(max_entries=bound))
    newest = donor.entries_since(0)[-bound:]
    assert bounded.entries_since(0) == newest
    assert bounded.high_water_mark() == donor.high_water_mark()


@settings(max_examples=150, deadline=None)
@given(ops=operations, crash=st.integers(min_value=0, max_value=120))
def test_restore_then_diff_matches_the_never_crashed_merge(ops, crash):
    """A replacement seeded from the parent merge converges on the same parent.

    Scenario: a worker ships one diff, crashes; its replacement restores a
    snapshot of the parent's merged cache, takes its sync mark *after* the
    restore, finishes the workload and ships its diff.  The parent must end
    exactly where a never-crashed worker would have put it — and none of the
    seeded entries may travel back home.
    """
    crash = min(crash, len(ops))
    # the never-crashed twin: one worker, one mid-run sync
    twin = OracleCache()
    twin_diffs, _ = run_rounds(twin, ops, [crash])
    parent_twin = OracleCache()
    for diff in twin_diffs:
        for key, value in diff:
            parent_twin.put(key, value)

    # the crashing run: segment one ships, the worker dies
    worker = OracleCache()
    first_diffs, _ = run_rounds(worker, ops[:crash], [])
    parent = OracleCache()
    for key, value in first_diffs[0]:
        parent.put(key, value)
    # warm restart: the replacement resumes from the parent's snapshot
    replacement = OracleCache()
    seeded = replacement.restore(parent.snapshot())
    assert seeded == len(parent)
    mark = replacement.high_water_mark()
    drive(replacement, ops[crash:])
    second_diff = replacement.entries_since(mark)

    # seeded entries never re-ship (no evictions here: re-puts refresh in place)
    assert not {key for key, _ in second_diff} & {key for key, _ in parent.entries()}
    for key, value in second_diff:
        parent.put(key, value)
    assert dict(parent.entries()) == dict(parent_twin.entries())


@settings(max_examples=150, deadline=None)
@given(ops=operations, crash=st.integers(min_value=0, max_value=120),
       cache_size=st.integers(min_value=2, max_value=8))
def test_restore_under_eviction_pressure_keeps_marks_true(ops, crash, cache_size):
    """A bounded replacement cycles seeded entries; marks must keep cutting.

    When the parent snapshot exceeds the replacement's bound only the newest
    entries survive the restore; later evictions may recycle seeded keys.  The
    invariants that must hold anyway: the first post-restore mark is above
    every seeded sequence number, every diff shipped home carries correct
    values, and the parent ends up holding everything the replacement holds.
    """
    crash = min(crash, len(ops))
    parent = OracleCache()
    feeder = OracleCache()
    feeder_diffs, _ = run_rounds(feeder, ops[:crash], [])
    for key, value in feeder_diffs[0]:
        parent.put(key, value)

    replacement = OracleCache(max_entries=cache_size)
    restored = replacement.restore(parent.snapshot())
    assert restored == min(len(parent), cache_size)
    mark = replacement.high_water_mark()
    # the mark clears the whole snapshot clock: no seeded entry is >= mark
    assert mark >= parent.high_water_mark()
    assert replacement.entries_since(mark) == []
    # the survivors are exactly the parent's newest entries
    assert (replacement.entries_since(0)
            == parent.entries_since(0)[-cache_size:])

    drive(replacement, ops[crash:])
    diff = replacement.entries_since(mark)
    for key, value in diff:
        assert value == value_of(key)
        parent.put(key, value)
    # a seeded key only re-ships after it was evicted and re-inserted — i.e.
    # with a fresh sequence number above the mark; either way the parent now
    # holds everything the replacement still does
    parent_entries = dict(parent.entries())
    for key, value in replacement.entries():
        assert parent_entries.get(key) == value
