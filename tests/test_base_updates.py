"""Live base-table updates: the update-path ≡ fresh-rebuild equivalence suite.

The contract of :meth:`repro.explain.session.RepairSession.update` is exact:
applying base-table writes to a live session — delta-maintained violation
detector, statistics engines, encodings, rebased oracle caches, patched
resident workers, selectively refreshed Shapley estimates — and then
explaining must be **bit-identical** to building a fresh session on the
post-update table.  This module property-tests that invariant over random
single- and multi-cell update sequences (values that create, resolve and
move violations between constraint groups, null writes, no-op writes) and
over the engine flag grid, and pins the satellite regressions: a base
mutation must invalidate the cached table fingerprint and the lazily-built
column null masks.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BaseCellUpdate,
    BaseUpdateDelta,
    BinaryRepairOracle,
    CellRef,
    CellShapleyExplainer,
    NotRepairedError,
    RepairSession,
    SimpleRuleRepair,
    TRexConfig,
    la_liga_constraints,
    la_liga_dirty_table,
    paper_algorithm_1,
)
from repro.config import make_rng
from repro.shapley.convergence import RunningMean

CELL = CellRef(4, "Country")
N_SAMPLES = 8
SEED = 17

#: per-attribute value pools for random updates: existing column values (the
#: moves), values from other groups (the creates), novel values, and nulls
VALUE_POOLS = {
    "Team": ["FC Barcelona", "Real Madrid", "Liverpool", "Valencia CF", None],
    "City": ["Barcelona", "Madrid", "Liverpool", "Capital", "Seville", None],
    "Country": ["Spain", "England", "España", "Portugal", None],
    "League": ["La Liga", "Premier League", "Serie A", None],
    "Year": [2016, 2017, 2018, 2019, None],
    "Place": [1, 2, 3, 4, None],
}

ATTRIBUTES = list(VALUE_POOLS)
N_ROWS = 6


def _session(table, config):
    return RepairSession(paper_algorithm_1(), la_liga_constraints(), table,
                         cell_of_interest=CELL, config=config)


def _explain_key(explanation):
    """The equivalence contract: per-cell (value, stderr, n) + constraint part."""
    cells = explanation.cell_shapley
    return (
        sorted((str(cell), value, cells.standard_errors[cell])
               for cell, value in cells.values.items()),
        cells.n_samples,
        sorted((name, value)
               for name, value in explanation.constraint_shapley.values.items()),
    )


def _fresh_key(table, config):
    """Explain on a fresh session over ``table``; None if the cell of
    interest is not repaired there."""
    session = _session(table, config)
    with session:
        try:
            return _explain_key(session.explain(n_samples=N_SAMPLES))
        except NotRepairedError:
            return None


@st.composite
def update_batches(draw):
    """1–3 update batches of 1–2 cell writes each."""
    n_batches = draw(st.integers(min_value=1, max_value=3))
    batches = []
    for _ in range(n_batches):
        n_cells = draw(st.integers(min_value=1, max_value=2))
        batch = {}
        for _ in range(n_cells):
            attribute = draw(st.sampled_from(ATTRIBUTES))
            row = draw(st.integers(min_value=0, max_value=N_ROWS - 1))
            value = draw(st.sampled_from(VALUE_POOLS[attribute]))
            batch[CellRef(row, attribute)] = value
        batches.append(batch)
    return batches


@settings(max_examples=12, deadline=None)
@given(
    batches=update_batches(),
    policy=st.sampled_from(["sample", "null", "mode"]),
    n_jobs=st.sampled_from([None, 1]),
    vectorized=st.booleans(),
    explain_between=st.booleans(),
)
def test_update_sequences_match_fresh_rebuild(batches, policy, n_jobs,
                                              vectorized, explain_between):
    """Random update sequences: live path ≡ fresh session on the final table.

    Covers updates that create violations (novel values against an FD
    group), resolve them (writing the clean value back), move rows between
    constraint groups (existing values from other groups), null writes and
    no-op writes — whatever the draw produces, the post-update explanation
    must be what a fresh session computes, or both sides must agree the cell
    of interest is no longer repaired.
    """
    config = dict(seed=SEED, cell_samples=N_SAMPLES, replacement_policy=policy,
                  n_jobs=n_jobs, vectorized=vectorized)
    live = _session(la_liga_dirty_table(), TRexConfig(**config))
    final = la_liga_dirty_table()
    with live:
        live.explain(n_samples=N_SAMPLES)
        for batch in batches:
            live.update_many(batch)
            final = final.with_values(batch)
            if explain_between:
                try:
                    live.explain(n_samples=N_SAMPLES)
                except NotRepairedError:
                    pass
        try:
            live_key = _explain_key(live.explain(n_samples=N_SAMPLES))
        except NotRepairedError:
            live_key = None
    assert live_key == _fresh_key(final, TRexConfig(**config))


@settings(max_examples=8, deadline=None)
@given(
    batches=update_batches(),
    policy=st.sampled_from(["sample", "mode"]),
)
def test_rebuild_reference_path_matches_incremental(batches, policy):
    """``incremental_updates=False`` and the live path agree on every sequence."""
    keys = []
    for incremental in (True, False):
        config = TRexConfig(seed=SEED, cell_samples=N_SAMPLES,
                            replacement_policy=policy,
                            incremental_updates=incremental)
        session = _session(la_liga_dirty_table(), config)
        with session:
            session.explain(n_samples=N_SAMPLES)
            for batch in batches:
                session.update_many(batch)
            try:
                keys.append(_explain_key(session.explain(n_samples=N_SAMPLES)))
            except NotRepairedError:
                keys.append(None)
    assert keys[0] == keys[1]


# -- the n_jobs=2 pool grid (one deterministic sequence, every pool mode) ------------

pytestmark_pool = pytest.mark.parallel

#: a sequence exercising violation creation (Portugal against the La Liga
#: C3 group), group moves (row 1 City Madrid → Barcelona) and a null write
POOL_SEQUENCE = [
    {CellRef(0, "Country"): "Portugal"},
    {CellRef(1, "City"): "Barcelona", CellRef(3, "Year"): None},
    {CellRef(0, "Country"): "Spain"},
]


@pytest.mark.parallel
@pytest.mark.parametrize("warm_pool", [True, False], ids=["warm", "cold"])
@pytest.mark.parametrize("vectorized", [True, False], ids=["vec", "novec"])
def test_update_sequence_on_two_workers(warm_pool, vectorized):
    config = dict(seed=SEED, cell_samples=N_SAMPLES, n_jobs=2,
                  warm_pool=warm_pool, vectorized=vectorized)
    live = _session(la_liga_dirty_table(), TRexConfig(**config))
    final = la_liga_dirty_table()
    with live:
        live.explain(n_samples=N_SAMPLES)
        for batch in POOL_SEQUENCE:
            live.update_many(batch)
            final = final.with_values(batch)
        live_key = _explain_key(live.explain(n_samples=N_SAMPLES))
        oracle = live._live.oracle
        assert oracle.base_updates_applied == len(POOL_SEQUENCE)
    assert live_key == _fresh_key(final, TRexConfig(**config))


@pytest.mark.parallel
def test_warm_workers_are_patched_not_rebuilt():
    """Across explain/update rounds each warm worker builds its stack once."""
    config = TRexConfig(seed=SEED, cell_samples=N_SAMPLES, n_jobs=2,
                        warm_pool=True)
    live = _session(la_liga_dirty_table(), config)
    with live:
        live.explain(n_samples=N_SAMPLES)
        for batch in POOL_SEQUENCE:
            live.update_many(batch)
            live.explain(n_samples=N_SAMPLES)
        statistics = live._live.oracle.statistics()
    assert statistics["worker_rebuilds"] == 2  # one build per worker, ever


# -- the oracle-level paired/batched flag grid ---------------------------------------

def _sequential_estimates(explainer, cells, n_samples):
    explainer.sampler.reseed(make_rng(SEED))
    out = {}
    for cell in cells:
        tracker = RunningMean()
        explainer._accumulate_cell(cell, n_samples, tracker)
        out[cell] = (tracker.mean, tracker.standard_error, tracker.count)
    return out


@pytest.mark.parametrize("paired", [True, False], ids=["paired", "unpaired"])
@pytest.mark.parametrize("batched", [True, False], ids=["batched", "unbatched"])
@pytest.mark.parametrize("vectorized", [True, False], ids=["vec", "novec"])
def test_oracle_apply_base_update_across_flag_grid(paired, batched, vectorized):
    """``BinaryRepairOracle.apply_base_update`` preserves estimates across the
    paired × batched × vectorized grid (the cache-rebase key shapes differ
    per combination: pair-memo, fingerprint-pair and single-instance keys)."""
    probes = [CellRef(4, "City"), CellRef(0, "Country"), CellRef(2, "City")]
    updates = {CellRef(0, "City"): "Seville", CellRef(1, "Country"): None}
    constraints = la_liga_constraints()
    algorithm = SimpleRuleRepair(vectorized=vectorized)
    updated = la_liga_dirty_table().with_values(updates)
    new_target = algorithm.repair(constraints, updated).clean[CELL]

    live_oracle = BinaryRepairOracle(
        algorithm, constraints, la_liga_dirty_table(), CELL,
        paired=paired, batched_pairs=batched, vectorized=vectorized,
    )
    live = CellShapleyExplainer(live_oracle, policy="mode", rng=SEED,
                                paired=paired, batched_pairs=batched)
    _sequential_estimates(live, probes, N_SAMPLES)  # warm the memo first
    table = live_oracle.dirty_table
    delta = BaseUpdateDelta(
        updates=tuple(BaseCellUpdate(cell=cell, old_value=table[cell],
                                     new_value=value)
                      for cell, value in updates.items()),
        target_value=new_target,
    )
    assert live_oracle.apply_base_update(delta) == len(updates)
    assert live_oracle.base_updates_applied == 1
    live.sampler.invalidate_overlay()
    after = _sequential_estimates(live, probes, N_SAMPLES)

    fresh_oracle = BinaryRepairOracle(
        algorithm, constraints, updated, CELL,
        paired=paired, batched_pairs=batched, vectorized=vectorized,
    )
    fresh = CellShapleyExplainer(fresh_oracle, policy="mode", rng=SEED,
                                 paired=paired, batched_pairs=batched)
    assert after == _sequential_estimates(fresh, probes, N_SAMPLES)


# -- targeted violation lifecycle cases ----------------------------------------------

@pytest.mark.parametrize("updates", [
    {CellRef(0, "Country"): "Portugal"},            # creates C2/C3 violations
    {CellRef(1, "City"): "Barcelona"},              # moves row between C2 groups
    {CellRef(3, "League"): "La Liga"},              # merges C3/C4 groups
    {CellRef(4, "City"): "Madrid"},                 # resolves the C1 violation
    {CellRef(4, "City"): "Capital"},                # no-op write (same value)
], ids=["create", "move", "merge", "resolve", "noop"])
def test_violation_lifecycle_updates_match_fresh(updates):
    config = dict(seed=SEED, cell_samples=N_SAMPLES)
    live = _session(la_liga_dirty_table(), TRexConfig(**config))
    with live:
        live.explain(n_samples=N_SAMPLES)
        step = live.update_many(updates)
        try:
            live_key = _explain_key(live.explain(n_samples=N_SAMPLES))
        except NotRepairedError:
            live_key = None
    final = la_liga_dirty_table().with_values(updates)
    assert live_key == _fresh_key(final, TRexConfig(**config))
    assert step.action == "update"


def test_noop_update_invalidates_nothing():
    config = TRexConfig(seed=SEED, cell_samples=N_SAMPLES)
    live = _session(la_liga_dirty_table(), config)
    with live:
        first = live.explain(n_samples=N_SAMPLES)
        live.update(CellRef(4, "City"), "Capital")  # value already there
        oracle = live._live.oracle
        assert oracle.base_updates_applied == 0
        assert oracle.estimates_invalidated == 0
        assert not live._live.pending
        second = live.explain(n_samples=N_SAMPLES)
    assert _explain_key(first) == _explain_key(second)
    assert len(live.update_log) == 1 and live.update_log.cells_written == 0


def test_update_that_unrepairs_the_cell_of_interest():
    """Writing the clean values back un-repairs t5[Country]; the live session
    must then behave exactly like a fresh one: NotRepairedError on explain."""
    config = TRexConfig(seed=SEED, cell_samples=N_SAMPLES)
    live = _session(la_liga_dirty_table(), config)
    with live:
        live.explain(n_samples=N_SAMPLES)
        live.update_many({CellRef(4, "City"): "Madrid",
                          CellRef(4, "Country"): "Spain"})
        assert live._live is None  # the live state had nothing left to serve
        with pytest.raises(NotRepairedError):
            live.explain(n_samples=N_SAMPLES)


# -- satellite regressions: mutation must invalidate derived caches ------------------

def test_set_value_invalidates_cached_fingerprint():
    table = la_liga_dirty_table()
    before = table.fingerprint()
    table.set_value(0, "City", "Seville")
    after = table.fingerprint()
    assert before != after, "stale fingerprint survived a base mutation"
    rebuilt = la_liga_dirty_table().with_values({CellRef(0, "City"): "Seville"})
    assert after == rebuilt.fingerprint(), "fingerprint is content-addressed"
    # and a no-op roundtrip restores the original content fingerprint
    table.set_value(0, "City", "Barcelona")
    assert table.fingerprint() == la_liga_dirty_table().fingerprint()


def test_set_value_invalidates_cached_null_masks():
    table = la_liga_dirty_table()
    store = table._store
    mask = store.null_mask("City")
    assert not mask.any()
    table.set_value(2, "City", None)
    fresh_mask = store.null_mask("City")
    assert fresh_mask is not mask, "stale null mask survived a base mutation"
    assert fresh_mask[2] and fresh_mask.sum() == 1
    table.set_value(2, "City", "Madrid")
    assert not store.null_mask("City").any()
    # masks of untouched columns survive (no gratuitous rebuilds)
    country = store.null_mask("Country")
    table.set_value(2, "City", "Seville")
    assert store.null_mask("Country") is country
