"""Unit tests for the Table / CellRef / RepairDelta data model."""

import pytest

from repro.dataset.schema import Schema
from repro.dataset.table import CellRef, Table
from repro.errors import SchemaError, UnknownAttributeError, UnknownRowError


def make_table():
    return Table(
        ["Team", "City"],
        [["Real", "Madrid"], ["Barca", "Barcelona"], ["Real", "Capital"]],
        name="demo",
    )


def test_shape_properties():
    table = make_table()
    assert table.n_rows == 3
    assert table.n_columns == 2
    assert table.n_cells == 6
    assert table.attributes == ("Team", "City")
    assert len(table) == 3


def test_cell_access_and_rows():
    table = make_table()
    assert table.value(0, "City") == "Madrid"
    assert table[CellRef(2, "City")] == "Capital"
    assert table.row(1) == {"Team": "Barca", "City": "Barcelona"}
    assert table.row_tuple(1) == ("Barca", "Barcelona")


def test_cells_iteration_is_row_major():
    table = make_table()
    cells = list(table.cells())
    assert cells[0] == CellRef(0, "Team")
    assert cells[1] == CellRef(0, "City")
    assert cells[2] == CellRef(1, "Team")
    assert len(cells) == 6


def test_from_columns_constructor():
    table = Table.from_columns({"A": [1, 2], "B": [3, 4]})
    assert table.n_rows == 2
    assert table.value(1, "B") == 4


def test_with_values_returns_independent_copy():
    table = make_table()
    updated = table.with_values({CellRef(2, "City"): "Madrid"})
    assert updated.value(2, "City") == "Madrid"
    assert table.value(2, "City") == "Capital"


def test_with_cells_nulled_and_is_null():
    table = make_table()
    nulled = table.with_cells_nulled([CellRef(0, "Team"), CellRef(1, "City")])
    assert nulled.is_null(CellRef(0, "Team"))
    assert nulled.is_null(CellRef(1, "City"))
    assert not nulled.is_null(CellRef(0, "City"))


def test_restricted_to_coalition_nulls_everything_else():
    table = make_table()
    coalition = {CellRef(0, "Team"), CellRef(2, "City")}
    restricted = table.restricted_to_coalition(coalition)
    for cell in restricted.cells():
        if cell in coalition:
            assert restricted[cell] == table[cell]
        else:
            assert restricted.is_null(cell)


def test_diff_produces_repair_delta():
    dirty = make_table()
    clean = dirty.with_values({CellRef(2, "City"): "Madrid"})
    delta = dirty.diff(clean)
    assert len(delta) == 1
    assert CellRef(2, "City") in delta
    change = delta.change_for(CellRef(2, "City"))
    assert change.old_value == "Capital"
    assert change.new_value == "Madrid"
    assert delta.new_value(CellRef(2, "City")) == "Madrid"
    assert delta.new_value(CellRef(0, "Team")) is None


def test_diff_requires_same_shape():
    table = make_table()
    other = Table(["Team", "City"], [["Real", "Madrid"]])
    with pytest.raises(SchemaError):
        table.diff(other)


def test_diff_ignores_null_to_null():
    dirty = make_table().with_cells_nulled([CellRef(0, "Team")])
    clean = make_table().with_cells_nulled([CellRef(0, "Team")])
    assert len(dirty.diff(clean)) == 0


def test_validate_cell():
    table = make_table()
    assert table.validate_cell(CellRef(0, "Team")) == CellRef(0, "Team")
    with pytest.raises(UnknownAttributeError):
        table.validate_cell(CellRef(0, "Stadium"))
    with pytest.raises(UnknownRowError):
        table.validate_cell(CellRef(10, "Team"))


def test_stats_cache_invalidated_on_set_value():
    table = make_table()
    # all three cities are distinct, so the tie is broken alphabetically
    assert table.stats.most_common("City") == "Barcelona"
    table.set_value(0, "City", "Madrid")
    table.set_value(2, "City", "Madrid")
    assert table.stats.most_common("City") == "Madrid"


def test_cellref_str_and_parse_roundtrip():
    cell = CellRef(4, "Country")
    assert str(cell) == "t5[Country]"
    assert CellRef.parse("t5[Country]") == cell
    assert CellRef.parse(" t1[City] ") == CellRef(0, "City")


def test_cellref_parse_rejects_garbage():
    with pytest.raises(SchemaError):
        CellRef.parse("row5.Country")
    with pytest.raises(SchemaError):
        CellRef.parse("t0[Country]")
    with pytest.raises(SchemaError):
        CellRef.parse("tX[Country]")


def test_cellref_parse_rejects_empty_attribute():
    with pytest.raises(SchemaError, match="empty attribute"):
        CellRef.parse("t5[]")


def test_cellref_parse_rejects_trailing_characters():
    with pytest.raises(SchemaError, match="trailing characters"):
        CellRef.parse("t5[A]extra")
    with pytest.raises(SchemaError, match="trailing characters"):
        CellRef.parse("t5[A][B]")


def test_cellref_parse_rejects_malformed_brackets():
    for text in ("t5[A", "t5A]", "t5[[A]]", "t[A]", "5[A]", "t5"):
        with pytest.raises(SchemaError):
            CellRef.parse(text)


def test_to_text_highlights_cells():
    table = make_table()
    text = table.to_text(highlight=[CellRef(2, "City")])
    assert "*Capital*" in text
    assert "Madrid" in text


def test_to_records_and_equals():
    table = make_table()
    assert table.to_records()[0] == {"Team": "Real", "City": "Madrid"}
    assert table.equals(make_table())
    assert not table.equals(make_table().with_values({CellRef(0, "Team"): "X"}))


def test_schema_object_accepted():
    schema = Schema(["A", "B"])
    table = Table(schema, [[1, 2]])
    assert table.schema is schema
