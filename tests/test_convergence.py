"""Unit tests for Monte-Carlo convergence bookkeeping."""

import numpy as np
import pytest

from repro.shapley.convergence import (
    ConvergenceTracker,
    RunningMean,
    absolute_errors,
    mean_absolute_error,
)


def test_running_mean_matches_numpy():
    samples = [1.0, 2.0, 4.0, 8.0, -3.0]
    tracker = RunningMean()
    for sample in samples:
        tracker.update(sample)
    assert tracker.count == len(samples)
    assert tracker.mean == pytest.approx(np.mean(samples))
    assert tracker.variance == pytest.approx(np.var(samples, ddof=1))
    assert tracker.standard_error == pytest.approx(np.std(samples, ddof=1) / np.sqrt(len(samples)))


def test_running_mean_edge_cases():
    tracker = RunningMean()
    assert tracker.variance == 0.0
    assert tracker.standard_error == float("inf")
    tracker.update(5.0)
    assert tracker.mean == 5.0
    assert tracker.variance == 0.0


def test_running_mean_merge_equals_sequential():
    samples = list(np.random.default_rng(0).normal(size=40))
    left, right, merged_reference = RunningMean(), RunningMean(), RunningMean()
    for sample in samples[:25]:
        left.update(sample)
        merged_reference.update(sample)
    for sample in samples[25:]:
        right.update(sample)
        merged_reference.update(sample)
    left.merge(right)
    assert left.count == merged_reference.count
    assert left.mean == pytest.approx(merged_reference.mean)
    assert left.variance == pytest.approx(merged_reference.variance)


def test_running_mean_merge_with_empty():
    tracker = RunningMean()
    tracker.update(1.0)
    tracker.merge(RunningMean())
    assert tracker.count == 1
    empty = RunningMean()
    empty.merge(tracker)
    assert empty.count == 1 and empty.mean == 1.0


def test_confidence_interval_contains_true_mean_for_large_samples():
    rng = np.random.default_rng(1)
    tracker = RunningMean()
    for sample in rng.normal(loc=0.3, scale=1.0, size=5000):
        tracker.update(float(sample))
    low, high = tracker.confidence_interval()
    assert low < 0.3 < high


def test_convergence_tracker_flow():
    tracker = ConvergenceTracker(tolerance=0.5, min_samples=10)
    rng = np.random.default_rng(2)
    for sample in rng.normal(loc=1.0, scale=0.5, size=9):
        tracker.update(float(sample))
    assert not tracker.converged()  # below min_samples
    for sample in rng.normal(loc=1.0, scale=0.5, size=200):
        tracker.update(float(sample), record_history=True)
    assert tracker.converged()
    assert tracker.half_width < 0.5
    assert tracker.estimate == pytest.approx(1.0, abs=0.2)
    assert tracker.history  # history recorded when requested
    assert tracker.required_samples() >= 10


def test_convergence_tracker_zero_variance():
    tracker = ConvergenceTracker(tolerance=0.01, min_samples=5)
    for _ in range(10):
        tracker.update(2.0)
    assert tracker.converged()
    assert tracker.required_samples() == tracker.accumulator.count


def test_error_helpers():
    estimates = {"a": 0.5, "b": 0.3}
    reference = {"a": 0.6, "b": 0.3, "c": 1.0}
    errors = absolute_errors(estimates, reference)
    assert errors == {"a": pytest.approx(0.1), "b": 0.0}
    assert mean_absolute_error(estimates, reference) == pytest.approx(0.05)
    assert np.isnan(mean_absolute_error({}, {"x": 1.0}))
