"""Unit tests for the cell-coalition sampler (Example 2.5 machinery)."""

import numpy as np
import pytest

from repro.dataset.table import CellRef, Table
from repro.errors import TRexError
from repro.shapley.sampling import CellCoalitionSampler, ReplacementPolicy, SampledShapleyEstimate


def make_table():
    return Table(
        ["Team", "City"],
        [["Real", "Madrid"], ["Barca", "Barcelona"], ["Real", "Capital"]],
    )


def test_replacement_policy_parsing():
    assert ReplacementPolicy.from_name("sample") is ReplacementPolicy.SAMPLE
    assert ReplacementPolicy.from_name("NULL") is ReplacementPolicy.NULL
    assert ReplacementPolicy.from_name(ReplacementPolicy.MODE) is ReplacementPolicy.MODE
    with pytest.raises(TRexError):
        ReplacementPolicy.from_name("bogus")


def test_cell_vectorisation_order_matches_paper():
    sampler = CellCoalitionSampler(make_table(), rng=0)
    assert sampler.cells[0] == CellRef(0, "Team")
    assert sampler.cells[1] == CellRef(0, "City")
    assert sampler.cells[2] == CellRef(1, "Team")
    assert len(sampler.cells) == 6


def test_null_policy_replacement_is_none():
    sampler = CellCoalitionSampler(make_table(), policy="null", rng=0)
    assert sampler.replacement_value(CellRef(0, "City")) is None


def test_mode_policy_replacement_is_most_common():
    table = Table(["City"], [["Madrid"], ["Madrid"], ["Capital"]])
    sampler = CellCoalitionSampler(table, policy="mode", rng=0)
    assert sampler.replacement_value(CellRef(2, "City")) == "Madrid"


def test_sample_policy_draws_from_column_distribution():
    sampler = CellCoalitionSampler(make_table(), policy="sample", rng=3)
    values = {sampler.replacement_value(CellRef(0, "Team")) for _ in range(50)}
    assert values <= {"Real", "Barca"}
    assert len(values) == 2  # both values appear across 50 draws


def test_coalition_before_respects_permutation_order():
    sampler = CellCoalitionSampler(make_table(), rng=0)
    target = CellRef(1, "Team")  # index 2 in the cell vector
    permutation = np.array([4, 2, 0, 1, 3, 5])
    coalition = sampler.coalition_before(target, permutation)
    assert coalition == {sampler.cells[4]}  # only the cell before the target


def test_coalition_before_unknown_cell_raises():
    sampler = CellCoalitionSampler(make_table(), rng=0)
    with pytest.raises(TRexError):
        sampler.coalition_before(CellRef(9, "Team"), np.arange(6))


def test_build_instances_differ_only_in_target_cell():
    sampler = CellCoalitionSampler(make_table(), policy="sample", rng=5)
    target = CellRef(2, "City")
    coalition = {CellRef(0, "Team"), CellRef(0, "City")}
    with_target, without_target = sampler.build_instances(target, coalition)
    differing = [
        cell
        for cell in with_target.cells()
        if with_target[cell] != without_target[cell]
    ]
    assert differing in ([], [target])  # the random replacement may coincide
    # coalition cells keep their original values in both instances
    for cell in coalition:
        assert with_target[cell] == sampler.table[cell]
        assert without_target[cell] == sampler.table[cell]
    # the target keeps its original value only in the first instance
    assert with_target[target] == "Capital"


def test_build_instances_null_policy_nulls_non_coalition_cells():
    sampler = CellCoalitionSampler(make_table(), policy="null", rng=5)
    target = CellRef(2, "City")
    with_target, without_target = sampler.build_instances(target, coalition=set())
    for cell in sampler.cells:
        if cell == target:
            continue
        assert with_target.is_null(cell)
        assert without_target.is_null(cell)
    assert with_target[target] == "Capital"
    assert without_target.is_null(target)


def test_sample_pair_is_reproducible_with_seed():
    first = CellCoalitionSampler(make_table(), policy="sample", rng=11)
    second = CellCoalitionSampler(make_table(), policy="sample", rng=11)
    target = CellRef(0, "City")
    pair_a = first.sample_pair(target)
    pair_b = second.sample_pair(target)
    assert pair_a[0].equals(pair_b[0])
    assert pair_a[1].equals(pair_b[1])


def test_enumerate_coalitions_counts():
    sampler = CellCoalitionSampler(make_table(), policy="null", rng=0)
    coalitions = sampler.enumerate_coalitions(CellRef(0, "Team"))
    assert len(coalitions) == 2 ** 5


def test_enumerate_coalitions_refuses_large_tables():
    table = Table(["A", "B", "C"], [[1, 2, 3]] * 10)
    sampler = CellCoalitionSampler(table, policy="null", rng=0)
    with pytest.raises(TRexError):
        sampler.enumerate_coalitions(CellRef(0, "A"))


def test_sampled_estimate_confidence_interval():
    estimate = SampledShapleyEstimate(CellRef(0, "A"), value=0.5, standard_error=0.1, n_samples=100)
    low, high = estimate.confidence_interval()
    assert low == pytest.approx(0.5 - 1.96 * 0.1)
    assert high == pytest.approx(0.5 + 1.96 * 0.1)
