"""Fault injection: the warm pool must absorb failures without changing bits.

Three environmental failures are injected into real worker processes via
:class:`~repro.parallel.job.WorkerFault`:

* a worker **killed mid-shard** (hard ``os._exit`` after one shard) — the
  parent sees EOF, restarts the worker and requeues its shards onto the
  surviving worker;
* a worker **hanging past the pool timeout** — the parent terminates and
  replaces it, then requeues;
* a worker whose report is **unpicklable** (a poisoned resident-state
  update) — the worker answers with an error and the shards degrade to an
  in-process run, which needs no pickling.

In every case the Shapley values, standard errors and sample counts must be
bit-identical to a fault-free run (shard draws are seeded by coordinates, so
re-execution lands on the same numbers wherever it happens), a
``RuntimeWarning`` must surface, and the health counters
(``shards_requeued``, ``workers_restarted``) must appear in
``oracle.statistics()``.
"""

from __future__ import annotations

import pytest

from repro import (
    BinaryRepairOracle,
    CellRef,
    CellShapleyExplainer,
    SimpleRuleRepair,
    la_liga_constraints,
    la_liga_dirty_table,
)
from repro.parallel import ShardedExplainScheduler, WorkerFault, WorkerPool

pytestmark = pytest.mark.parallel

CELL_OF_INTEREST = CellRef(4, "Country")
PROBES = [CellRef(4, "City"), CellRef(0, "Country")]
N_SAMPLES = 12
SAMPLES_PER_SHARD = 4


def make_scheduler(fault_injector=None, worker_timeout=None, n_jobs=2):
    oracle = BinaryRepairOracle(
        SimpleRuleRepair(), la_liga_constraints(), la_liga_dirty_table(),
        CELL_OF_INTEREST,
    )
    explainer = CellShapleyExplainer(oracle, policy="null", rng=23)
    scheduler = ShardedExplainScheduler.from_explainer(
        explainer, n_jobs=n_jobs, samples_per_shard=SAMPLES_PER_SHARD,
        worker_timeout=worker_timeout, fault_injector=fault_injector,
    )
    return scheduler, oracle


@pytest.fixture(scope="module")
def reference():
    """The fault-free outcome every injected run must reproduce exactly."""
    scheduler, _ = make_scheduler()
    with scheduler:
        return scheduler.run(PROBES, N_SAMPLES)


def assert_bit_identical(outcome, reference) -> None:
    assert outcome.estimates == reference.estimates
    for cell in PROBES:
        assert outcome.estimates[cell].n_samples == reference.estimates[cell].n_samples


def test_worker_killed_mid_shard_requeues_bit_identically(reference):
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index == 0:
            return WorkerFault(die_after_shards=1)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector)
    with scheduler, pytest.warns(RuntimeWarning, match="died mid-task"):
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert_bit_identical(outcome, reference)
    # worker 0 held half the 6-shard plan; all of it was re-executed
    assert outcome.statistics["shards_requeued"] == 3
    assert outcome.statistics["workers_restarted"] == 1
    # the counter surface reaches the parent oracle's statistics()
    statistics = oracle.statistics()
    assert statistics["shards_requeued"] == 3
    assert statistics["workers_restarted"] == 1


def test_worker_timeout_requeues_bit_identically(reference):
    def injector(worker_index, round_index):
        if worker_index == 1 and round_index == 0:
            return WorkerFault(hang_seconds=60.0)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector,
                                       worker_timeout=2.0)
    with scheduler, pytest.warns(RuntimeWarning, match="timed out"):
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert_bit_identical(outcome, reference)
    assert oracle.statistics()["shards_requeued"] == 3
    assert oracle.statistics()["workers_restarted"] == 1


def test_unpicklable_report_degrades_in_process_bit_identically(reference):
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index == 0:
            return WorkerFault(unpicklable_report=True)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector)
    with scheduler, pytest.warns(RuntimeWarning, match="not picklable"):
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert_bit_identical(outcome, reference)
    statistics = oracle.statistics()
    assert statistics["shards_requeued"] == 3
    # the worker answered (it is alive and sane) — nothing was restarted,
    # the shards simply ran in the parent process instead
    assert statistics["workers_restarted"] == 0


def test_fault_free_runs_report_clean_counters(reference):
    scheduler, oracle = make_scheduler()
    with scheduler:
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert_bit_identical(outcome, reference)
    statistics = oracle.statistics()
    assert statistics["shards_requeued"] == 0
    assert statistics["workers_restarted"] == 0
    assert statistics["worker_rebuilds"] == 2


def test_fault_during_adaptive_round_keeps_stop_points(reference):
    """A round-1 crash must not move run_adaptive's stopping decisions."""
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index == 1:
            return WorkerFault(die_after_shards=0)
        return None

    kwargs = dict(tolerance=1e-9, min_samples=8, max_samples=12)
    clean_scheduler, _ = make_scheduler()
    with clean_scheduler:
        clean = clean_scheduler.run_adaptive(PROBES, **kwargs)
    faulty_scheduler, oracle = make_scheduler(fault_injector=injector)
    with faulty_scheduler, pytest.warns(RuntimeWarning, match="died mid-task"):
        faulty = faulty_scheduler.run_adaptive(PROBES, **kwargs, absorb_into=oracle)
    assert faulty.estimates == clean.estimates
    assert oracle.statistics()["workers_restarted"] == 1
    assert oracle.statistics()["shards_requeued"] >= 1


def test_pool_requeues_onto_surviving_warm_worker():
    """The requeue target is the live worker, not a cold in-process run."""
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index == 0:
            return WorkerFault(die_after_shards=0)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector)
    with scheduler, pytest.warns(RuntimeWarning, match="died mid-task"):
        scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
        # worker 1 ran its own task and the requeued one: its stack was built
        # once, the replacement for worker 0 never ran anything
        assert oracle.statistics()["worker_rebuilds"] == 1
        # the next round reuses the restarted worker 0, which rebuilds once
        scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    statistics = oracle.statistics()
    assert statistics["worker_rebuilds"] == 2
    assert statistics["workers_restarted"] == 1


def test_double_death_requeues_onto_the_surviving_warm_worker(reference):
    """With two of three workers dead, both requeues land on the survivor.

    Regression for the requeue candidate scan: an outcome produced *by* a
    requeue must not vouch for the (restarted, cold) slot it was originally
    assigned to — only a worker that itself answered is a valid target.
    """
    def injector(worker_index, round_index):
        if round_index == 1 and worker_index in (0, 1):
            return WorkerFault(die_after_shards=0)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector, n_jobs=3)
    with scheduler:
        scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)  # round 0: clean
        with pytest.warns(RuntimeWarning, match="died mid-task"):
            outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert_bit_identical(outcome, reference)
    statistics = oracle.statistics()
    assert statistics["workers_restarted"] == 2
    assert statistics["shards_requeued"] == 4  # both dead workers' 2-shard lists
    # the survivor's resident stack served every requeue: stacks were built
    # exactly once per original worker, in round 0, and never again
    assert statistics["worker_rebuilds"] == 3


def _boom(x):
    raise ValueError(f"bad input {x}")


def _die_in_child(x):
    import multiprocessing
    import os

    if x == 7 and multiprocessing.parent_process() is not None:
        os._exit(3)  # crash only inside pool workers, never in the parent
    return x * 2


def test_run_worker_tasks_surfaces_health_events():
    """The transient (cold-path) pool reports restarts and requeued tasks."""
    from repro.parallel import run_worker_tasks

    health: dict = {}
    with pytest.warns(RuntimeWarning, match="died mid-task"):
        results = run_worker_tasks(_die_in_child, [(7,), (1,)], 2, health=health)
    # the crashing task degraded to the parent process and still answered
    assert results == [14, 2]
    assert health["requeued_tasks"] == [0]
    # both the original worker and the requeue candidate died on x == 7
    assert health["workers_restarted"] == 2


def test_cold_scheduler_counts_health_events_from_the_transient_pool():
    """worker_timeout and health counters reach the cold path too."""
    scheduler, oracle = make_scheduler(n_jobs=2)
    scheduler.warm_pool = False
    with scheduler:
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    statistics = oracle.statistics()
    assert statistics["shards_requeued"] == 0
    assert statistics["workers_restarted"] == 0
    assert statistics["worker_rebuilds"] == 2
    assert outcome.estimates  # sanity: the run produced estimates


def test_worker_pool_task_error_degrades_with_default_fallback():
    """A deterministic task exception surfaces in the parent, like inline."""
    from repro.parallel.pool import PoolTask

    with WorkerPool(2) as pool:
        with pytest.warns(RuntimeWarning, match="could not complete"):
            with pytest.raises(ValueError, match="bad input 7"):
                pool.run_tasks([PoolTask(_boom, (7,))])
