"""Fault injection: the warm pool must absorb failures without changing bits.

Three environmental failures are injected into real worker processes via
:class:`~repro.parallel.job.WorkerFault`:

* a worker **killed mid-shard** (hard ``os._exit`` after one shard) — the
  parent sees EOF, restarts the worker and requeues its shards onto the
  surviving worker;
* a worker **hanging past the pool timeout** — the parent terminates and
  replaces it, then requeues;
* a worker whose report is **unpicklable** (a poisoned resident-state
  update) — the worker answers with an error and the shards degrade to an
  in-process run, which needs no pickling.

In every case the Shapley values, standard errors and sample counts must be
bit-identical to a fault-free run (shard draws are seeded by coordinates, so
re-execution lands on the same numbers wherever it happens), a
``RuntimeWarning`` must surface, and the health counters
(``shards_requeued``, ``workers_restarted``) must appear in
``oracle.statistics()``.
"""

from __future__ import annotations

import pytest

from repro import (
    BinaryRepairOracle,
    CellRef,
    CellShapleyExplainer,
    SimpleRuleRepair,
    la_liga_constraints,
    la_liga_dirty_table,
)
from repro.parallel import (
    PoolTask,
    RetryPolicy,
    ShardedExplainScheduler,
    WorkerFault,
    WorkerPool,
)

pytestmark = pytest.mark.parallel

CELL_OF_INTEREST = CellRef(4, "Country")
PROBES = [CellRef(4, "City"), CellRef(0, "Country")]
N_SAMPLES = 12
SAMPLES_PER_SHARD = 4

#: no backoff in tests — the delays only slow the suite down
FAST_RETRY = dict(backoff_base=0.0)


def make_scheduler(fault_injector=None, worker_timeout=None, n_jobs=2,
                   retry_policy=None, deadline_seconds=None):
    oracle = BinaryRepairOracle(
        SimpleRuleRepair(), la_liga_constraints(), la_liga_dirty_table(),
        CELL_OF_INTEREST,
    )
    explainer = CellShapleyExplainer(oracle, policy="null", rng=23)
    scheduler = ShardedExplainScheduler.from_explainer(
        explainer, n_jobs=n_jobs, samples_per_shard=SAMPLES_PER_SHARD,
        worker_timeout=worker_timeout, fault_injector=fault_injector,
        retry_policy=(retry_policy if retry_policy is not None
                      else RetryPolicy(**FAST_RETRY)),
        deadline_seconds=deadline_seconds,
    )
    return scheduler, oracle


@pytest.fixture(scope="module")
def reference():
    """The fault-free outcome every injected run must reproduce exactly."""
    scheduler, _ = make_scheduler()
    with scheduler:
        return scheduler.run(PROBES, N_SAMPLES)


def assert_bit_identical(outcome, reference) -> None:
    assert outcome.estimates == reference.estimates
    for cell in PROBES:
        assert outcome.estimates[cell].n_samples == reference.estimates[cell].n_samples


def test_worker_killed_mid_shard_requeues_bit_identically(reference):
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index == 0:
            return WorkerFault(die_after_shards=1)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector)
    with scheduler, pytest.warns(RuntimeWarning, match="died mid-task"):
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert_bit_identical(outcome, reference)
    # worker 0 held half the 6-shard plan; all of it was re-executed
    assert outcome.statistics["shards_requeued"] == 3
    assert outcome.statistics["workers_restarted"] == 1
    # the counter surface reaches the parent oracle's statistics()
    statistics = oracle.statistics()
    assert statistics["shards_requeued"] == 3
    assert statistics["workers_restarted"] == 1


def test_worker_timeout_requeues_bit_identically(reference):
    def injector(worker_index, round_index):
        if worker_index == 1 and round_index == 0:
            return WorkerFault(hang_seconds=60.0)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector,
                                       worker_timeout=2.0)
    with scheduler, pytest.warns(RuntimeWarning, match="timed out"):
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert_bit_identical(outcome, reference)
    assert oracle.statistics()["shards_requeued"] == 3
    assert oracle.statistics()["workers_restarted"] == 1


def test_unpicklable_report_degrades_in_process_bit_identically(reference):
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index == 0:
            return WorkerFault(unpicklable_report=True)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector)
    with scheduler, pytest.warns(RuntimeWarning, match="not picklable"):
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert_bit_identical(outcome, reference)
    statistics = oracle.statistics()
    assert statistics["shards_requeued"] == 3
    # the worker answered (it is alive and sane) — nothing was restarted,
    # the shards simply ran in the parent process instead
    assert statistics["workers_restarted"] == 0


def test_fault_free_runs_report_clean_counters(reference):
    scheduler, oracle = make_scheduler()
    with scheduler:
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert_bit_identical(outcome, reference)
    statistics = oracle.statistics()
    assert statistics["shards_requeued"] == 0
    assert statistics["workers_restarted"] == 0
    assert statistics["worker_rebuilds"] == 2


def test_fault_during_adaptive_round_keeps_stop_points(reference):
    """A round-1 crash must not move run_adaptive's stopping decisions."""
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index == 1:
            return WorkerFault(die_after_shards=0)
        return None

    kwargs = dict(tolerance=1e-9, min_samples=8, max_samples=12)
    clean_scheduler, _ = make_scheduler()
    with clean_scheduler:
        clean = clean_scheduler.run_adaptive(PROBES, **kwargs)
    faulty_scheduler, oracle = make_scheduler(fault_injector=injector)
    with faulty_scheduler, pytest.warns(RuntimeWarning, match="died mid-task"):
        faulty = faulty_scheduler.run_adaptive(PROBES, **kwargs, absorb_into=oracle)
    assert faulty.estimates == clean.estimates
    assert oracle.statistics()["workers_restarted"] == 1
    assert oracle.statistics()["shards_requeued"] >= 1


def test_pool_requeues_onto_surviving_warm_worker():
    """The requeue target is the live worker, not a cold in-process run."""
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index == 0:
            return WorkerFault(die_after_shards=0)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector)
    with scheduler, pytest.warns(RuntimeWarning, match="died mid-task"):
        scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
        # worker 1 ran its own task and the requeued one: its stack was built
        # once, the replacement for worker 0 never ran anything
        assert oracle.statistics()["worker_rebuilds"] == 1
        # the next round reuses the restarted worker 0, which rebuilds once
        scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    statistics = oracle.statistics()
    assert statistics["worker_rebuilds"] == 2
    assert statistics["workers_restarted"] == 1


def test_double_death_requeues_onto_the_surviving_warm_worker(reference):
    """With two of three workers dead, both requeues land on the survivor.

    Regression for the requeue candidate scan: an outcome produced *by* a
    requeue must not vouch for the (restarted, cold) slot it was originally
    assigned to — only a worker that itself answered is a valid target.
    """
    def injector(worker_index, round_index):
        if round_index == 1 and worker_index in (0, 1):
            return WorkerFault(die_after_shards=0)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector, n_jobs=3)
    with scheduler:
        scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)  # round 0: clean
        with pytest.warns(RuntimeWarning, match="died mid-task"):
            outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert_bit_identical(outcome, reference)
    statistics = oracle.statistics()
    assert statistics["workers_restarted"] == 2
    assert statistics["shards_requeued"] == 4  # both dead workers' 2-shard lists
    # the survivor's resident stack served every requeue: stacks were built
    # exactly once per original worker, in round 0, and never again
    assert statistics["worker_rebuilds"] == 3


def _boom(x):
    raise ValueError(f"bad input {x}")


def _die_in_child(x):
    import multiprocessing
    import os

    if x == 7 and multiprocessing.parent_process() is not None:
        os._exit(3)  # crash only inside pool workers, never in the parent
    return x * 2


def test_run_worker_tasks_surfaces_health_events():
    """The transient (cold-path) pool reports restarts and requeued tasks."""
    from repro.parallel import run_worker_tasks

    health: dict = {}
    with pytest.warns(RuntimeWarning, match="died mid-task"):
        results = run_worker_tasks(_die_in_child, [(7,), (1,)], 2, health=health)
    # the crashing task degraded to the parent process and still answered
    assert results == [14, 2]
    assert health["requeued_tasks"] == [0]
    # both the original worker and the requeue candidate died on x == 7
    assert health["workers_restarted"] == 2


def test_cold_scheduler_counts_health_events_from_the_transient_pool():
    """worker_timeout and health counters reach the cold path too."""
    scheduler, oracle = make_scheduler(n_jobs=2)
    scheduler.warm_pool = False
    with scheduler:
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    statistics = oracle.statistics()
    assert statistics["shards_requeued"] == 0
    assert statistics["workers_restarted"] == 0
    assert statistics["worker_rebuilds"] == 2
    assert outcome.estimates  # sanity: the run produced estimates


def test_worker_pool_task_error_degrades_with_default_fallback():
    """A deterministic task exception surfaces in the parent, like inline."""
    from repro.parallel.pool import PoolTask

    with WorkerPool(2) as pool:
        with pytest.warns(RuntimeWarning, match="could not complete"):
            with pytest.raises(ValueError, match="bad input 7"):
                pool.run_tasks([PoolTask(_boom, (7,))])


# -- warm restarts from parent snapshots -----------------------------------------------


def test_replacement_worker_is_seeded_from_the_merged_cache(reference):
    """A crash replacement rebuilds *warm*: snapshot in, no full cache ship."""
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index == 0:
            return WorkerFault(die_after_shards=0)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector)
    with scheduler:
        with pytest.warns(RuntimeWarning, match="died mid-task"):
            scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
        # round 0: the crash itself — no seed cache existed yet, the requeue
        # landed on the survivor, the replacement never ran anything
        assert scheduler.round_log[0]["warm_restarts"] == 0
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert_bit_identical(outcome, reference)
    # round 1: the replacement's first task carried the job payload plus a
    # snapshot of the scheduler's merged cache — it rebuilt, but warm
    round_one = scheduler.round_log[1]
    assert round_one["worker_rebuilds"] == 1
    assert round_one["warm_restarts"] == 1
    assert round_one["cache_entries_seeded"] > 0
    # seeded entries are accounted separately from diff shipping: the
    # replacement must not ship the seed back home as if it were new work
    assert round_one["cache_entries_shipped"] < round_one["cache_entries_seeded"]
    statistics = oracle.statistics()
    assert statistics["warm_restarts"] == 1
    assert statistics["cache_entries_seeded"] == round_one["cache_entries_seeded"]


def test_requeued_task_without_payload_lands_on_a_resident_worker(reference):
    """Resident-round requeues carry no payload; the target must hold the stack.

    Regression for the requeue-without-payload edge: from round one on, tasks
    to resident workers ship bare shard lists.  When such a worker dies, the
    requeue must land on a worker that answered ok this round (and therefore
    holds the resident stack) — never raise the missing-payload RuntimeError.
    """
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index == 1:
            return WorkerFault(die_after_shards=0)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector)
    with scheduler:
        scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)  # round 0: clean
        with pytest.warns(RuntimeWarning, match="died mid-task"):
            outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert_bit_identical(outcome, reference)
    statistics = oracle.statistics()
    assert statistics["workers_restarted"] == 1
    assert statistics["shards_requeued"] == 3
    # the survivor served the requeue from its resident stack: no rebuild
    assert scheduler.round_log[1]["worker_rebuilds"] == 0


def test_resident_worker_without_payload_or_stack_raises():
    """The worker-side guard behind the requeue contract, tested directly."""
    from repro.parallel.worker import run_resident_worker

    with pytest.raises(RuntimeError, match="no resident oracle stack"):
        run_resident_worker(None, "some-job", [], 0, resident={})


# -- crash-loop containment ------------------------------------------------------------


def test_restart_cap_leaves_the_slot_dead(reference):
    """A slot that keeps dying is abandoned, its work requeued — not respawned."""
    def injector(worker_index, round_index):
        if worker_index == 0:
            return WorkerFault(die_after_shards=0)
        return None

    retry = RetryPolicy(max_worker_restarts=1, max_shard_attempts=None,
                        **FAST_RETRY)
    scheduler, oracle = make_scheduler(fault_injector=injector,
                                       retry_policy=retry)
    with scheduler:
        with pytest.warns(RuntimeWarning, match="died mid-task"):
            scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)  # restart 1
        # the second death emits both the death and the cap warning
        with pytest.warns(RuntimeWarning) as record:
            scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)  # slot dies
        assert any("exceeded its restart cap" in str(w.message) for w in record)
        # the slot is now permanently dead; later rounds requeue immediately
        # without warning about a fresh death
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert_bit_identical(outcome, reference)
    statistics = oracle.statistics()
    assert statistics["workers_restarted"] == 1  # the cap held
    assert statistics["shards_requeued"] == 9    # 3 shards x 3 runs


def test_backoff_is_applied_and_accounted():
    """Restarts sleep the policy's delay and sum it into the statistics."""
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index == 0:
            return WorkerFault(die_after_shards=0)
        return None

    retry = RetryPolicy(backoff_base=0.01, backoff_factor=2.0, backoff_max=0.05)
    scheduler, oracle = make_scheduler(fault_injector=injector,
                                       retry_policy=retry)
    with scheduler, pytest.warns(RuntimeWarning, match="died mid-task"):
        scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    statistics = oracle.statistics()
    assert statistics["workers_restarted"] == 1
    assert statistics["restart_backoff_seconds"] == pytest.approx(0.01)


def test_poison_shards_are_quarantined_in_process(reference):
    """Shards that keep failing across workers stop being retried on workers."""
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index < 2:
            return WorkerFault(die_after_shards=0)
        return None

    retry = RetryPolicy(max_shard_attempts=2, max_worker_restarts=None,
                        **FAST_RETRY)
    scheduler, oracle = make_scheduler(fault_injector=injector,
                                       retry_policy=retry)
    with scheduler:
        with pytest.warns(RuntimeWarning, match="died mid-task"):
            scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)  # attempts: 1
        # the second death emits both the death and the quarantine warning
        with pytest.warns(RuntimeWarning) as record:
            scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)  # attempts: 2
        assert any("quarantining" in str(w.message) for w in record)
        # worker 0's three shard coordinates are now poisoned: they run
        # in-process up front and never reach a worker again
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert_bit_identical(outcome, reference)
    final_round = scheduler.round_log[-1]
    assert final_round["shards_quarantined"] == 3
    statistics = oracle.statistics()
    assert statistics["shards_poisoned"] == 3
    # quarantine is an event counter: it fired once per coordinate, in run 2
    assert sum(entry["shards_poisoned"] for entry in scheduler.round_log) == 3


# -- deadline budgets ------------------------------------------------------------------


def test_zero_deadline_returns_empty_partial_result_immediately():
    """deadline_seconds=0 expires before any work: clean partial, no hang."""
    scheduler, oracle = make_scheduler(deadline_seconds=0.0)
    with scheduler:
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert outcome.completed is False
    for cell in PROBES:
        assert outcome.estimates[cell].n_samples == 0
    assert outcome.statistics["deadline_expired"] == 1
    assert oracle.statistics()["deadline_expired"] == 1
    # nothing executed, nothing requeued, no pool ever spawned
    assert scheduler.round_log == []
    assert scheduler._pool is None


def test_zero_deadline_adaptive_returns_partial_result():
    scheduler, oracle = make_scheduler(deadline_seconds=0.0)
    with scheduler:
        outcome = scheduler.run_adaptive(PROBES, max_samples=N_SAMPLES,
                                         absorb_into=oracle)
    assert outcome.completed is False
    assert oracle.statistics()["deadline_expired"] == 1


def test_hung_worker_past_the_deadline_yields_partial_estimates():
    """A deadline cuts through a hang: partial merged estimates, no waiting."""
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index == 0:
            return WorkerFault(hang_seconds=60.0)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector,
                                       deadline_seconds=2.0)
    with scheduler, pytest.warns(RuntimeWarning, match="ran past the job deadline"):
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert outcome.completed is False
    # with a deadline the plan runs in waves of one shard per worker; the
    # hung worker's first shard was dropped, its wave-mate completed, and the
    # run stopped at that round boundary
    total = sum(outcome.estimates[cell].n_samples for cell in PROBES)
    assert 0 < total < len(PROBES) * N_SAMPLES
    statistics = oracle.statistics()
    assert statistics["deadline_expired"] == 1
    assert statistics["workers_restarted"] == 1  # the hung slot was replaced
    assert scheduler.round_log[-1]["shards_dropped"] == 1


def test_explainer_threads_the_deadline_to_its_result():
    """CellShapleyExplainer(deadline_seconds=0) surfaces completed=False."""
    oracle = BinaryRepairOracle(
        SimpleRuleRepair(), la_liga_constraints(), la_liga_dirty_table(),
        CELL_OF_INTEREST,
    )
    with CellShapleyExplainer(oracle, policy="null", rng=23, n_jobs=2,
                              samples_per_shard=SAMPLES_PER_SHARD,
                              deadline_seconds=0.0) as explainer:
        result = explainer.explain(cells=PROBES, n_samples=N_SAMPLES)
    assert result.completed is False
    assert result.n_samples == 0
    assert oracle.statistics()["deadline_expired"] == 1


# -- pool lifecycle hardening ----------------------------------------------------------


def test_pool_close_is_idempotent_and_refuses_new_work():
    pool = WorkerPool(2)
    pool.close()
    pool.close()  # second close is a no-op, not an error
    with pytest.raises(RuntimeError, match="closed"):
        pool.run_tasks([PoolTask(_boom, (1,))])
    assert pool.run_tasks([]) == []  # an empty round on a closed pool is fine


class _FailingContext:
    """A multiprocessing context whose N-th Process() raises (spawn quota)."""

    def __init__(self, inner, allowed: int):
        self._inner = inner
        self._allowed = allowed
        self.spawned = []

    def Pipe(self):
        return self._inner.Pipe()

    def Process(self, *args, **kwargs):
        if self._allowed <= 0:
            raise OSError("process quota exhausted")
        self._allowed -= 1
        process = self._inner.Process(*args, **kwargs)
        self.spawned.append(process)
        return process


def test_pool_construction_failure_cleans_up_spawned_workers():
    """A mid-construction OSError propagates, but no orphan worker survives."""
    from repro.parallel.pool import process_context

    context = _FailingContext(process_context(), allowed=1)
    with pytest.raises(OSError, match="quota"):
        WorkerPool(3, context=context)
    # the one worker that did spawn was shut down by the constructor's cleanup
    assert len(context.spawned) == 1
    context.spawned[0].join(timeout=2.0)
    assert not context.spawned[0].is_alive()


def test_scheduler_runs_again_after_close_with_a_fresh_warm_pool(reference):
    """close() drops pool and residency; the next run rebuilds seeded stacks."""
    scheduler, oracle = make_scheduler()
    with scheduler:
        scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    scheduler.close()  # also exercises double-close via __exit__ + explicit
    outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    scheduler.close()
    assert_bit_identical(outcome, reference)
    # the fresh pool's stacks were rebuilt — but warm, seeded from the merged
    # cache of the first run (a restart-from-snapshot, not a cold start)
    last = scheduler.round_log[-1]
    assert last["worker_rebuilds"] == 2
    assert last["warm_restarts"] == 2
    assert last["cache_entries_seeded"] > 0


# -- corrupt and slow replies ----------------------------------------------------------


def test_corrupt_reply_is_discarded_and_rerun_in_process(reference):
    """A reply that is not a WorkerReport never reaches the merge."""
    def injector(worker_index, round_index):
        if worker_index == 0 and round_index == 0:
            return WorkerFault(corrupt_reply=True)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector)
    with scheduler, pytest.warns(RuntimeWarning, match="instead of a WorkerReport"):
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert_bit_identical(outcome, reference)
    statistics = oracle.statistics()
    assert statistics["shards_requeued"] == 3
    # the worker is alive (it answered, just garbage) — nothing restarted
    assert statistics["workers_restarted"] == 0


def test_slow_reply_below_the_timeout_is_just_slow(reference):
    """A tardy-but-sane worker triggers no health machinery at all."""
    def injector(worker_index, round_index):
        if worker_index == 1 and round_index == 0:
            return WorkerFault(slow_seconds=0.2)
        return None

    scheduler, oracle = make_scheduler(fault_injector=injector,
                                       worker_timeout=10.0)
    with scheduler:
        outcome = scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
    assert_bit_identical(outcome, reference)
    statistics = oracle.statistics()
    assert statistics["workers_restarted"] == 0
    assert statistics["shards_requeued"] == 0


# -- base updates under fire -----------------------------------------------------------


def _session_key(explanation):
    cells = explanation.cell_shapley
    return sorted((str(cell), value, cells.standard_errors[cell])
                  for cell, value in cells.values.items())


def test_worker_crash_after_base_update_reseeds_post_update_state():
    """A worker killed between a base update and the next round: the requeue
    lands post-update shards on the survivor, and the warm replacement is
    re-seeded from the *rebased* snapshot — never from pre-update answers."""
    from repro import RepairSession, TRexConfig, la_liga_constraints, \
        la_liga_dirty_table, paper_algorithm_1

    updates = [(CellRef(0, "City"), "Seville"),
               (CellRef(1, "Country"), "Portugal")]
    config = dict(seed=23, cell_samples=N_SAMPLES, replacement_policy="sample",
                  n_jobs=2, warm_pool=True)

    def fresh_key(n_updates):
        table = la_liga_dirty_table().with_values(dict(updates[:n_updates]))
        session = RepairSession(paper_algorithm_1(), la_liga_constraints(),
                                table, cell_of_interest=CELL_OF_INTEREST,
                                config=TRexConfig(**config))
        with session:
            return _session_key(session.explain())

    armed = {"fire": False}

    def injector(worker_index, round_index):
        if armed["fire"] and worker_index == 0:
            armed["fire"] = False
            return WorkerFault(die_after_shards=0)
        return None

    session = RepairSession(paper_algorithm_1(), la_liga_constraints(),
                            la_liga_dirty_table(),
                            cell_of_interest=CELL_OF_INTEREST,
                            config=TRexConfig(**config))
    with session:
        session.explain()
        live = session._live
        n_cells = len(live.cells)
        scheduler = live.explainer._scheduler(2)
        scheduler.fault_injector = injector
        oracle = live.oracle

        # update #1, then kill worker 0 at the start of the refresh round:
        # its post-update shards requeue onto the survivor, bit-identically
        session.update(*updates[0])
        assert oracle.base_updates_applied == 1
        assert oracle.estimates_invalidated == n_cells  # SAMPLE: everything
        armed["fire"] = True
        with pytest.warns(RuntimeWarning, match="died mid-task"):
            post = session.explain()
        assert _session_key(post) == fresh_key(1)
        statistics = oracle.statistics()
        assert statistics["workers_restarted"] == 1
        assert statistics["shards_requeued"] > 0

        # update #2 reaches the replacement worker too: it holds no resident
        # stack yet, so the next round seeds it from the rebased snapshot —
        # post-update state, asserted by bit-identity against a fresh session
        session.update(*updates[1])
        assert oracle.base_updates_applied == 2
        assert _session_key(session.explain()) == fresh_key(2)
        statistics = oracle.statistics()
        assert statistics["workers_restarted"] == 1  # no further casualties
        assert statistics["warm_restarts"] == 1
        assert statistics["cache_entries_seeded"] > 0

        # the event log reconciles with the update counters, record by record
        events = scheduler.events
        records = events.filter("base_update")
        assert len(records) == 2
        assert all(record["cells"] == 1 for record in records)
        # update #1 patched both residents; update #2 found the replacement
        # stackless (it patches nothing there — the seed cache covers it)
        assert records[0]["workers_patched"] == 2
        assert events.count("worker_restart") == statistics["workers_restarted"]
