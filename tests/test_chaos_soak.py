"""Chaos soak: seeded fault schedules replayed against pinned Shapley values.

The fault-injection suite (``test_parallel_faults.py``) proves each failure
mode in isolation; this soak turns them all loose at once.  A
:class:`~repro.parallel.chaos.FaultPlan` drawn from a fixed seed schedules
kills, hangs, corrupt replies and slow replies across a workers × rounds
grid, and the runs underneath must not budge:

* **bit-identity under fire** — every chaos round's estimates equal the
  fault-free run's, and a golden-grid subset still matches the committed
  fixture values exactly while kill + hang + corrupt events are active;
* **coherent counters** — ``workers_restarted`` equals the number of
  scheduled kill + hang events (each costs exactly one restart, corrupt and
  slow replies none), warm restarts never exceed restarts, and every warm
  restart seeded at least one cache entry;
* **reconciled event log** — the scheduler's structured
  :class:`~repro.observability.events.EventLog` carries one record per
  health incident, and summing/counting those records reproduces the
  lifecycle counters exactly (the emission sites sit next to the bumps);
* **warm-restart acceptance** — after a mid-soak crash the replacement
  worker serves every remaining round from a snapshot-seeded stack: one
  rebuild, diffs-only shipping (never a full resident cache), zero rebuilds
  afterwards.

Everything here is deterministic: the plans depend only on their seeds, the
shard draws only on their coordinates.
"""

from __future__ import annotations

import json
import warnings

import pytest

import test_golden_determinism as golden
from repro import (
    BinaryRepairOracle,
    CellRef,
    CellShapleyExplainer,
    SimpleRuleRepair,
    la_liga_constraints,
    la_liga_dirty_table,
)
from repro.parallel import (
    FaultPlan,
    RetryPolicy,
    ShardedExplainScheduler,
    WorkerFault,
)

pytestmark = [pytest.mark.parallel, pytest.mark.slow]

CELL_OF_INTEREST = CellRef(4, "Country")
PROBES = [CellRef(4, "City"), CellRef(0, "Country")]
N_JOBS = 2
N_SAMPLES = 12
SAMPLES_PER_SHARD = 4
N_ROUNDS = 4
#: the hang fault sleeps well past this, so hung workers are replaced fast
WORKER_TIMEOUT = 1.5
HANG_SECONDS = 6.0
#: chosen so the three plans together cover kill, hang, corrupt and slow
#: while scheduling only one hang (each hang costs one WORKER_TIMEOUT wait)
CHAOS_SEEDS = (2, 3, 9)

#: restart/attempt caps lifted and backoff off: the soak wants the counter
#: arithmetic exact (every kill/hang = one restart, nothing quarantined)
UNBOUNDED = RetryPolicy(max_worker_restarts=None, max_shard_attempts=None,
                        backoff_base=0.0)


def make_scheduler(fault_injector=None, retry=UNBOUNDED):
    oracle = BinaryRepairOracle(
        SimpleRuleRepair(), la_liga_constraints(), la_liga_dirty_table(),
        CELL_OF_INTEREST,
    )
    explainer = CellShapleyExplainer(oracle, policy="sample", rng=11)
    scheduler = ShardedExplainScheduler.from_explainer(
        explainer, n_jobs=N_JOBS, samples_per_shard=SAMPLES_PER_SHARD,
        worker_timeout=WORKER_TIMEOUT, fault_injector=fault_injector,
        retry_policy=retry,
    )
    return scheduler, oracle


@pytest.fixture(scope="module")
def clean_rounds():
    """The fault-free per-round estimates every chaos replay must reproduce."""
    scheduler, _ = make_scheduler()
    with scheduler:
        return [scheduler.run(PROBES, N_SAMPLES).estimates
                for _ in range(N_ROUNDS)]


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_seeded_chaos_rounds_stay_bit_identical(seed, clean_rounds):
    plan = FaultPlan.seeded(seed, n_workers=N_JOBS, n_rounds=N_ROUNDS,
                            rate=0.4, hang_seconds=HANG_SECONDS,
                            slow_seconds=0.02)
    assert len(plan) > 0  # the schedule is live, not a vacuous pass
    scheduler, oracle = make_scheduler(fault_injector=plan)
    with scheduler, warnings.catch_warnings():
        # the health chatter (died / timed out / corrupt reply) is expected
        warnings.simplefilter("ignore", RuntimeWarning)
        outcomes = [scheduler.run(PROBES, N_SAMPLES, absorb_into=oracle)
                    for _ in range(N_ROUNDS)]
    for outcome, clean in zip(outcomes, clean_rounds):
        assert outcome.estimates == clean
    statistics = oracle.statistics()
    # every kill and every hang costs exactly one restart; corrupt and slow
    # replies cost none (the worker stays alive) — with caps lifted the
    # arithmetic is exact
    assert statistics["workers_restarted"] == (plan.count("kill")
                                               + plan.count("hang"))
    assert statistics["warm_restarts"] <= statistics["workers_restarted"]
    # a warm restart that fired seeded at least one entry from the snapshot
    assert statistics["cache_entries_seeded"] >= statistics["warm_restarts"]
    assert statistics["shards_poisoned"] == 0
    assert statistics["deadline_expired"] == 0
    # the structured event log reconciles exactly with the same counters:
    # one worker_restart record per restart, shard_requeued records whose
    # n_shards sum to the requeue counter, seeded-entry records summing to
    # the seed counter, and no poison/deadline records at all
    events = scheduler.events
    assert events.count("worker_restart") == statistics["workers_restarted"]
    assert sum(record["n_shards"] for record in events.filter("shard_requeued")) \
        == statistics["shards_requeued"]
    assert events.count("warm_restart") == statistics["warm_restarts"]
    assert sum(record["entries"] for record in events.filter("snapshot_seeded")) \
        == statistics["cache_entries_seeded"]
    assert events.count("shard_poisoned") == 0
    assert events.count("deadline_expired") == 0
    assert events.count("worker_spawn") == N_JOBS


#: golden-grid rows replayed under chaos, each with its own seeded plan;
#: the seeds together fire kill, hang and corrupt events (asserted below)
GOLDEN_CHAOS_ENTRIES = (
    ("simple", "full", 5),
    ("simple", "paired_batched", 8),
    ("greedy", "paired_batched", 10),
)


def golden_plan(seed: int) -> FaultPlan:
    return FaultPlan.seeded(seed, n_workers=N_JOBS, n_rounds=2, rate=0.6,
                            kinds=("kill", "hang", "corrupt"),
                            hang_seconds=HANG_SECONDS)


def test_golden_chaos_plans_cover_every_hard_fault_kind():
    plans = [golden_plan(seed) for _, _, seed in GOLDEN_CHAOS_ENTRIES]
    for kind in ("kill", "hang", "corrupt"):
        assert sum(plan.count(kind) for plan in plans) > 0, kind


@pytest.mark.parametrize("algorithm_name,path_name,seed", GOLDEN_CHAOS_ENTRIES)
def test_golden_grid_values_survive_seeded_chaos(algorithm_name, path_name,
                                                 seed):
    """Fixture-pinned values, recomputed under kill/hang/corrupt fire."""
    assert golden.FIXTURE.exists(), "golden fixture missing — regenerate it"
    fixture = json.loads(golden.FIXTURE.read_text())
    expected = fixture["values"][f"{algorithm_name}/{path_name}/njobs=2/warm"]

    incremental, paired, second_order, shared_stats, batched_pairs, \
        vectorized = golden.ENGINE_PATHS[path_name]
    oracle = BinaryRepairOracle(
        golden.ALGORITHMS[algorithm_name](second_order, vectorized),
        la_liga_constraints(), la_liga_dirty_table(), golden.CELL_OF_INTEREST,
        incremental=incremental, paired=paired, shared_stats=shared_stats,
        batched_pairs=batched_pairs, vectorized=vectorized,
    )
    explainer = CellShapleyExplainer(
        oracle, policy=golden.POLICY, rng=golden.SEED,
        incremental=incremental, paired=paired, shared_stats=shared_stats,
        batched_pairs=batched_pairs,
    )
    scheduler = ShardedExplainScheduler.from_explainer(
        explainer, n_jobs=N_JOBS,
        samples_per_shard=golden.SAMPLES_PER_SHARD,
        worker_timeout=WORKER_TIMEOUT, fault_injector=golden_plan(seed),
        retry_policy=UNBOUNDED,
    )
    with scheduler, warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        # two rounds so the plan's round-1 coordinates fire too; each run is
        # independently pinned (same plan, same seeds, same values)
        for _ in range(2):
            outcome = scheduler.run(golden.PROBES, golden.N_SAMPLES,
                                    absorb_into=oracle)
            values = {str(cell): estimate.value
                      for cell, estimate in outcome.estimates.items()}
            assert values == expected


def test_warm_restart_soak_replacement_serves_from_snapshot_and_diffs():
    """Acceptance soak: a replaced worker serves every round after its crash
    warm — one snapshot-seeded rebuild, diffs-only shipping, no further
    rebuilds, and bit-identical estimates."""
    kill_round = 1

    def injector(worker_index, round_index):
        if worker_index == 0 and round_index == kill_round:
            return WorkerFault(die_after_shards=0)
        return None

    max_samples = N_ROUNDS * SAMPLES_PER_SHARD
    adaptive = dict(tolerance=1e-12, min_samples=max_samples,
                    max_samples=max_samples)
    clean_scheduler, _ = make_scheduler()
    with clean_scheduler:
        clean = clean_scheduler.run_adaptive(PROBES, **adaptive)
    scheduler, oracle = make_scheduler(fault_injector=injector)
    with scheduler, pytest.warns(RuntimeWarning, match="died mid-task"):
        outcome = scheduler.run_adaptive(PROBES, **adaptive,
                                         absorb_into=oracle)
    assert outcome.estimates == clean.estimates

    rounds = scheduler.round_log
    assert len(rounds) == N_ROUNDS
    assert rounds[0]["worker_rebuilds"] == N_JOBS
    # crash round: the survivor served the requeue from its resident stack
    assert rounds[kill_round]["worker_rebuilds"] == 0
    assert rounds[kill_round]["shards_requeued"] == 1
    # the replacement's first round: exactly one rebuild, seeded warm
    post = rounds[kill_round + 1]
    assert post["worker_rebuilds"] == 1
    assert post["warm_restarts"] == 1
    assert post["cache_entries_seeded"] > 0
    # every round from the crash on ships diffs only — strictly less than the
    # resident cache volume a full-cache ship would have cost
    for entry in rounds[kill_round:]:
        assert entry["cache_entries_shipped"] < entry["cache_entries_resident"], entry
    # and the replaced slot keeps serving: no rebuild in any later round
    for entry in rounds[kill_round + 2:]:
        assert entry["worker_rebuilds"] == 0, entry
    statistics = oracle.statistics()
    assert statistics["workers_restarted"] == 1
    assert statistics["warm_restarts"] == 1
    assert statistics["cache_entries_seeded"] == post["cache_entries_seeded"]
    # the event log tells the same story, record by record: the crash, the
    # requeue it caused, and the snapshot seed the replacement served from
    events = scheduler.events
    assert events.count("worker_restart", worker=0) == 1
    assert sum(record["n_shards"] for record in events.filter("shard_requeued")) \
        == statistics["shards_requeued"] == 1
    assert events.count("warm_restart", worker=0) == 1
    assert sum(record["entries"] for record in events.filter("snapshot_seeded")) \
        == statistics["cache_entries_seeded"]


# -- base updates under fire -----------------------------------------------------------

#: the update cycle the interleaved soak walks: create a violation, resolve
#: it, write a novel value, restore — every explain between steps must match
#: a fresh session on the then-current table while the fault plan fires
UPDATE_SOAK_CYCLE = (
    (CellRef(0, "Country"), "Portugal"),
    (CellRef(0, "Country"), "Spain"),
    (CellRef(0, "City"), "Seville"),
    (CellRef(0, "City"), "Barcelona"),
)
#: seed chosen so rounds 1–4 (the post-attach rounds) schedule 2 kills,
#: 1 corrupt reply and 1 slow reply — asserted below, not trusted
UPDATE_CHAOS_SEED = 27


def test_update_interleaved_chaos_rounds_stay_bit_identical():
    """Base updates interleaved with kills/corrupt/slow replies: every
    post-update explain is bit-identical to a fresh session on the
    then-current table, replacement workers are re-seeded with post-update
    state, and the update/health counters reconcile with the event log."""
    from repro import RepairSession, TRexConfig, paper_algorithm_1

    config = dict(seed=13, cell_samples=8, replacement_policy="sample",
                  n_jobs=N_JOBS, warm_pool=True)

    def session_key(explanation):
        cells = explanation.cell_shapley
        return sorted((str(cell), value, cells.standard_errors[cell])
                      for cell, value in cells.values.items())

    def fresh_key(table):
        session = RepairSession(paper_algorithm_1(), la_liga_constraints(),
                                table, cell_of_interest=CELL_OF_INTEREST,
                                config=TRexConfig(**config))
        with session:
            return session_key(session.explain())

    # the session scheduler has no worker timeout, so no hangs in this plan
    plan = FaultPlan.seeded(UPDATE_CHAOS_SEED, n_workers=N_JOBS,
                            n_rounds=len(UPDATE_SOAK_CYCLE) + 1, rate=0.5,
                            kinds=("kill", "corrupt", "slow"),
                            slow_seconds=0.02)
    # the injector attaches after round 0, so only rounds >= 1 can fire
    fired = [event for event in plan.events() if event.round_index >= 1]
    kills = sum(1 for event in fired
                if event.fault.die_after_shards is not None)
    corrupt = sum(1 for event in fired if event.fault.corrupt_reply)
    assert kills >= 1 and corrupt >= 1  # the schedule is live, not vacuous

    table = la_liga_dirty_table()
    session = RepairSession(paper_algorithm_1(), la_liga_constraints(),
                            table, cell_of_interest=CELL_OF_INTEREST,
                            config=TRexConfig(**config))
    with session, warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        session.explain()  # round 0: warm the pool, build the live state
        live = session._live
        n_cells = len(live.cells)
        scheduler = live.explainer._scheduler(N_JOBS)
        scheduler.fault_injector = plan
        for cell, value in UPDATE_SOAK_CYCLE:
            session.update(cell, value)
            reference = fresh_key(table.copy())  # table mutates in place
            assert session_key(session.explain()) == reference

        oracle = live.oracle
        statistics = oracle.statistics()
        # update counters: one application per cycle step, full invalidation
        # each time (SAMPLE replacements are drawn from mutated statistics)
        assert oracle.base_updates_applied == len(UPDATE_SOAK_CYCLE)
        assert oracle.estimates_invalidated == len(UPDATE_SOAK_CYCLE) * n_cells
        # health counters: every kill cost exactly one restart; corrupt and
        # slow replies none — and the event log tells the same story
        assert statistics["workers_restarted"] == kills
        assert statistics["warm_restarts"] <= kills
        events = scheduler.events
        assert events.count("worker_restart") == kills
        assert events.count("base_update") == len(UPDATE_SOAK_CYCLE)
        assert all(record["cells"] == 1
                   for record in events.filter("base_update"))
        # the counter surface carries the update metrics end to end
        assert statistics["base_updates_applied"] == len(UPDATE_SOAK_CYCLE)
        assert statistics["estimates_invalidated"] == oracle.estimates_invalidated
        assert statistics["cache_entries_invalidated"] \
            == oracle.cache_entries_invalidated
