"""Mergeable oracle caches: LRU-order-preserving merge + counter aggregation.

The sharded scheduler folds per-worker caches back into the parent oracle's
cache; these tests pin the merge semantics the scheduler relies on — entries
land in the receiver in the donor's LRU order, the receiver's bound governs
eviction, counters add up — including merges between caches of different
``cache_size``s.
"""

from __future__ import annotations

import pytest

from repro.repair.cache import OracleCache, aggregate_oracle_statistics


def filled(max_entries, keys, hits=0, misses=0):
    cache = OracleCache(max_entries)
    for key in keys:
        cache.put(key, ord(key[-1]) if isinstance(key, str) else 0)
    cache.hits += hits
    cache.misses += misses
    return cache


def keys_of(cache):
    return [key for key, _ in cache.entries()]


# ---------------------------------------------------------------------------
# entry order


def test_entries_lists_lru_order_oldest_first():
    cache = filled(10, ["a", "b", "c"])
    cache.get("a")  # refresh: a becomes most recent
    assert keys_of(cache) == ["b", "c", "a"]


def test_merge_preserves_donor_recency_order():
    receiver = filled(10, ["a", "b"])
    donor = filled(10, ["x", "y", "z"])
    receiver.merge(donor)
    # donor entries are newer than everything already cached, in donor order
    assert keys_of(receiver) == ["a", "b", "x", "y", "z"]


def test_merge_refreshes_overlapping_keys():
    receiver = filled(10, ["a", "b", "c"])
    donor = filled(10, ["b"])
    receiver.merge(donor)
    assert keys_of(receiver) == ["a", "c", "b"]
    assert len(receiver) == 3


# ---------------------------------------------------------------------------
# eviction order when bounds differ


def test_merge_larger_cache_into_smaller_evicts_oldest_first():
    receiver = filled(3, ["a", "b", "c"])
    donor = filled(5, ["v", "w", "x", "y", "z"])
    receiver.merge(donor)
    # the receiver's bound governs: only the donor's three newest survive,
    # exactly as if its entries had been inserted live
    assert keys_of(receiver) == ["x", "y", "z"]
    assert receiver.evictions == 5  # a, b, c, v, w fell out in age order


def test_merge_smaller_cache_into_larger_keeps_everything():
    receiver = filled(10, ["a", "b"])
    donor = filled(2, ["x", "y"])
    receiver.merge(donor)
    assert keys_of(receiver) == ["a", "b", "x", "y"]
    assert receiver.evictions == 0


@pytest.mark.parametrize("receiver_size,donor_size", [(2, 4), (3, 2), (4, 3)])
def test_merge_equals_live_insertion_across_bounds(receiver_size, donor_size):
    """merge() must reproduce the entry set of one shared live cache."""
    receiver_keys = ["a", "b", "c"][: receiver_size]
    donor_keys = ["w", "x", "y", "z"][: donor_size]
    receiver = filled(receiver_size, receiver_keys)
    donor = filled(donor_size, donor_keys)
    receiver.merge(donor)

    live = filled(receiver_size, receiver_keys)
    for key in donor_keys:
        live.put(key, ord(key))
    assert keys_of(receiver) == keys_of(live)


def test_merged_answers_are_retrievable():
    receiver = filled(10, ["a"])
    donor = OracleCache(10)
    donor.put(("pair", "k"), (1, 0))
    receiver.merge(donor)
    assert receiver.get(("pair", "k")) == (1, 0)


# ---------------------------------------------------------------------------
# counters


def test_merge_sums_counters():
    receiver = filled(10, ["a"], hits=2, misses=3)
    donor = filled(10, ["x"], hits=5, misses=7)
    donor.evictions = 1
    receiver.merge(donor)
    assert (receiver.hits, receiver.misses, receiver.evictions) == (7, 10, 1)


def test_merge_leaves_donor_untouched():
    receiver = filled(2, ["a", "b"])
    donor = filled(10, ["x", "y", "z"], hits=4)
    receiver.merge(donor)
    assert keys_of(donor) == ["x", "y", "z"]
    assert donor.hits == 4 and donor.evictions == 0


def test_aggregate_oracle_statistics_sums_and_maxes():
    aggregated = aggregate_oracle_statistics([
        {"oracle_calls": 10, "repair_runs": 4, "max_batch_size": 5,
         "parallel_workers": 1},
        {"oracle_calls": 7, "repair_runs": 2, "max_batch_size": 9,
         "parallel_workers": 2},
    ])
    assert aggregated["oracle_calls"] == 17
    assert aggregated["repair_runs"] == 6
    assert aggregated["max_batch_size"] == 9  # high-water mark, not a sum
    assert aggregated["parallel_workers"] == 2


def test_aggregate_oracle_statistics_empty():
    assert aggregate_oracle_statistics([]) == {}
