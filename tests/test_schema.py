"""Unit tests for schemas and attribute specs."""

import pytest

from repro.dataset.schema import FLOAT, INTEGER, STRING, AttributeSpec, Schema
from repro.errors import SchemaError, UnknownAttributeError


def test_attribute_spec_validation():
    with pytest.raises(SchemaError):
        AttributeSpec("")
    with pytest.raises(SchemaError):
        AttributeSpec("A", dtype="datetime")


def test_attribute_coercion_integer():
    spec = AttributeSpec("Year", dtype=INTEGER)
    assert spec.coerce("2019") == 2019
    assert spec.coerce(2019) == 2019
    assert spec.coerce("") is None
    assert spec.coerce(None) is None
    assert spec.coerce("not-a-number") == "not-a-number"  # kept raw, flagged later


def test_attribute_coercion_float_and_string():
    assert AttributeSpec("Rate", dtype=FLOAT).coerce("4.5") == pytest.approx(4.5)
    assert AttributeSpec("Name", dtype=STRING).coerce(42) == "42"


def test_schema_from_strings():
    schema = Schema(["A", "B"])
    assert schema.attribute_names == ("A", "B")
    assert schema["A"].dtype == STRING
    assert len(schema) == 2
    assert "A" in schema and "C" not in schema


def test_schema_rejects_duplicates_and_empty():
    with pytest.raises(SchemaError):
        Schema(["A", "A"])
    with pytest.raises(SchemaError):
        Schema([])


def test_schema_index_and_unknown_attribute():
    schema = Schema(["A", "B", "C"])
    assert schema.index_of("B") == 1
    with pytest.raises(UnknownAttributeError):
        schema.index_of("Z")
    with pytest.raises(UnknownAttributeError):
        schema["Z"]


def test_schema_equality_and_hash():
    first = Schema([AttributeSpec("A"), AttributeSpec("B", dtype=INTEGER)])
    second = Schema([AttributeSpec("A"), AttributeSpec("B", dtype=INTEGER)])
    third = Schema(["A", "B"])
    assert first == second
    assert hash(first) == hash(second)
    assert first != third


def test_categorical_and_numeric_listing():
    schema = Schema(
        [
            AttributeSpec("Name"),
            AttributeSpec("Salary", dtype=INTEGER, categorical=False),
            AttributeSpec("Rate", dtype=FLOAT),
        ]
    )
    assert schema.categorical_attributes() == ("Name", "Rate")
    assert schema.numeric_attributes() == ("Salary", "Rate")
