"""Unit tests for the denial-constraint parser and formatter."""

import pytest

from repro.constraints.parser import format_dc, parse_dc, parse_dcs
from repro.constraints.predicates import Operator
from repro.errors import ConstraintParseError


def test_parse_simple_fd_style_constraint():
    dc = parse_dc("not(t1.Team == t2.Team and t1.City != t2.City)", name="C1")
    assert dc.name == "C1"
    assert len(dc.predicates) == 2
    assert dc.predicates[0].op is Operator.EQ
    assert dc.predicates[1].op is Operator.NE
    assert dc.equality_attributes() == ("Team",)


def test_parse_accepts_single_equals_sign():
    dc = parse_dc("not(t1.City = t2.City and t1.Country != t2.Country)")
    assert dc.predicates[0].op is Operator.EQ


def test_parse_unicode_paper_notation():
    text = "∀t1, t2. ¬(t1[League] = t2[League] ∧ t1[Country] ≠ t2[Country])"
    dc = parse_dc(text, name="C3")
    assert dc.equality_attributes() == ("League",)
    assert dc.inequality_attributes() == ("Country",)


def test_parse_with_forall_prefix_and_ampersand():
    dc = parse_dc("forall t1, t2 . not(t1.A == t2.A & t1.B != t2.B)")
    assert len(dc.predicates) == 2


def test_parse_constant_predicates():
    dc = parse_dc("not(t1.Year >= 2020 and t1.Place == 1)")
    assert dc.is_single_tuple
    assert dc.predicates[0].right.constant == 2020
    assert dc.predicates[1].right.constant == 1


def test_parse_quoted_string_constant():
    dc = parse_dc("not(t1.City == 'Madrid' and t1.Country != 'Spain')")
    assert dc.predicates[0].right.constant == "Madrid"
    assert dc.predicates[1].right.constant == "Spain"


def test_parse_float_constant():
    dc = parse_dc("not(t1.Rate > 9.5)")
    assert dc.predicates[0].right.constant == pytest.approx(9.5)


def test_parse_order_constraint():
    dc = parse_dc("not(t1.Salary > t2.Salary and t1.Rate < t2.Rate)")
    assert dc.predicates[0].op is Operator.GT
    assert dc.predicates[1].op is Operator.LT


def test_parse_errors():
    with pytest.raises(ConstraintParseError):
        parse_dc("t1.A == t2.A")  # missing not(...)
    with pytest.raises(ConstraintParseError):
        parse_dc("not t1.A == t2.A")  # missing parentheses
    with pytest.raises(ConstraintParseError):
        parse_dc("not()")  # empty body
    with pytest.raises(ConstraintParseError):
        parse_dc("not(t1.A ~ t2.A)")  # unknown operator
    with pytest.raises(ConstraintParseError):
        parse_dc("not(1 == 2)")  # two constants


def test_parse_dcs_autonames():
    dcs = parse_dcs(
        [
            "not(t1.A == t2.A and t1.B != t2.B)",
            "not(t1.C == t2.C and t1.D != t2.D)",
        ]
    )
    assert [dc.name for dc in dcs] == ["C1", "C2"]


def test_format_roundtrip_ascii():
    text = "not(t1.Team == t2.Team and t1.City != t2.City)"
    dc = parse_dc(text, name="C1")
    formatted = format_dc(dc)
    reparsed = parse_dc(formatted, name="C1")
    assert reparsed == dc


def test_format_unicode_matches_paper_style():
    dc = parse_dc("not(t1.City == t2.City and t1.Country != t2.Country)", name="C2")
    rendered = format_dc(dc, unicode_symbols=True)
    assert rendered.startswith("∀t1, t2. ¬(")
    assert "t1[City] = t2[City]" in rendered
    assert "t1[Country] ≠ t2[Country]" in rendered
