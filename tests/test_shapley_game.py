"""Unit tests for the cooperative-game abstractions."""

import pytest

from repro.errors import TRexError
from repro.shapley.game import (
    CallableGame,
    MemoisedGame,
    ShapleyResult,
    shapley_weight,
    validate_players,
)


def majority_game():
    """A 3-player majority game: a coalition wins (value 1) with 2+ members."""
    return CallableGame(("a", "b", "c"), lambda s: 1.0 if len(s) >= 2 else 0.0)


def test_callable_game_basics():
    game = majority_game()
    assert game.players == ("a", "b", "c")
    assert game.n_players == 3
    assert game.value(frozenset()) == 0.0
    assert game.value(frozenset({"a", "b"})) == 1.0
    assert game.grand_coalition_value() == 1.0


def test_callable_game_rejects_duplicate_players():
    with pytest.raises(TRexError):
        CallableGame(("a", "a"), lambda s: 0.0)


def test_memoised_game_counts_unique_evaluations():
    calls = []

    def value(coalition):
        calls.append(coalition)
        return float(len(coalition))

    game = MemoisedGame(CallableGame(("a", "b"), value))
    game.value(frozenset({"a"}))
    game.value(frozenset({"a"}))
    game.value(frozenset({"a", "b"}))
    assert game.evaluations == 2
    assert len(calls) == 2


def test_shapley_weight_values():
    # For 4 players: |S|=0 -> 1/4, |S|=1 -> 1/12, |S|=2 -> 1/12, |S|=3 -> 1/4.
    assert shapley_weight(0, 4) == pytest.approx(1 / 4)
    assert shapley_weight(1, 4) == pytest.approx(1 / 12)
    assert shapley_weight(2, 4) == pytest.approx(1 / 12)
    assert shapley_weight(3, 4) == pytest.approx(1 / 4)


def test_shapley_weight_sums_to_one_over_all_coalitions():
    from math import comb

    n = 6
    total = sum(comb(n - 1, size) * shapley_weight(size, n) for size in range(n))
    assert total == pytest.approx(1.0)


def test_shapley_weight_range_check():
    with pytest.raises(TRexError):
        shapley_weight(4, 4)
    with pytest.raises(TRexError):
        shapley_weight(-1, 4)


def test_validate_players():
    game = majority_game()
    assert validate_players(game, None) == ("a", "b", "c")
    assert validate_players(game, ["b"]) == ("b",)
    with pytest.raises(TRexError):
        validate_players(game, ["z"])


def test_shapley_result_ranking_and_helpers():
    result = ShapleyResult(values={"a": 0.5, "b": 0.25, "c": 0.25, "d": 0.0})
    assert result["a"] == 0.5
    assert "a" in result and "z" not in result
    assert len(result) == 4
    assert result.total() == pytest.approx(1.0)
    assert result.ranking()[0] == ("a", 0.5)
    assert result.top(2) == ["a", "b"]  # tie between b and c broken by repr
    assert result.normalised()["a"] == pytest.approx(0.5)


def test_shapley_result_normalised_zero_total():
    result = ShapleyResult(values={"a": 0.0, "b": 0.0})
    assert result.normalised() == {"a": 0.0, "b": 0.0}
