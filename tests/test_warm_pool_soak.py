"""Warm-pool soak: 3 adaptive rounds on 2 workers, resident state asserted.

The CI soak job drives ``run_adaptive`` through exactly three rounds on two
real worker processes and pins the warm pool's whole contract at once:

* **zero stack rebuilds after round one** — ``worker_rebuilds`` hits the
  pool width in round one and never moves again (the resident oracle stacks
  really are reused, round after round and across whole ``run`` calls);
* **diff shipping** — from round two on, ``cache_entries_shipped`` is
  strictly below what whole-cache shipping would have cost
  (``cache_entries_resident``, the size of the workers' resident caches),
  because only entries inserted since the previous sync travel;
* **bit-identity** — the same adaptive job on the cold pool (fresh stack and
  whole cache per round) and in-process (``n_jobs=1``) produces identical
  estimates and identical stopping points.
"""

from __future__ import annotations

import pytest

from repro import (
    BinaryRepairOracle,
    CellRef,
    CellShapleyExplainer,
    SimpleRuleRepair,
    la_liga_constraints,
    la_liga_dirty_table,
)

pytestmark = [pytest.mark.parallel, pytest.mark.slow]

CELL_OF_INTEREST = CellRef(4, "Country")
PROBES = [CellRef(4, "City"), CellRef(0, "Country")]
N_JOBS = 2
SAMPLES_PER_SHARD = 4
N_ROUNDS = 3
#: min == max == rounds x chunk forces exactly N_ROUNDS adaptive rounds
#: (the tracker cannot converge before min_samples, and max stops it there)
MAX_SAMPLES = N_ROUNDS * SAMPLES_PER_SHARD
ADAPTIVE = dict(tolerance=1e-12, min_samples=MAX_SAMPLES, max_samples=MAX_SAMPLES)


def run_soak(n_jobs, warm_pool):
    oracle = BinaryRepairOracle(
        SimpleRuleRepair(), la_liga_constraints(), la_liga_dirty_table(),
        CELL_OF_INTEREST,
    )
    explainer = CellShapleyExplainer(
        oracle, policy="sample", rng=11, n_jobs=n_jobs,
        samples_per_shard=SAMPLES_PER_SHARD, warm_pool=warm_pool,
    )
    scheduler = explainer._scheduler(n_jobs)
    with explainer:
        outcome = scheduler.run_adaptive(PROBES, **ADAPTIVE, absorb_into=oracle)
        rounds = list(scheduler.round_log)
        # a fourth round of work through the *same* scheduler: a fixed run()
        # — the residency contract spans run calls, not just adaptive rounds
        extra = scheduler.run(PROBES, SAMPLES_PER_SHARD, absorb_into=oracle)
        rounds_after_run = list(scheduler.round_log)
    return outcome, extra, oracle, rounds, rounds_after_run


@pytest.fixture(scope="module")
def soak():
    return {
        "warm": run_soak(N_JOBS, warm_pool=True),
        "cold": run_soak(N_JOBS, warm_pool=False),
        "inline": run_soak(1, warm_pool=True),
    }


def test_exactly_three_adaptive_rounds(soak):
    _, _, _, rounds, _ = soak["warm"]
    assert len(rounds) == N_ROUNDS
    assert all(entry["shards"] == len(PROBES) for entry in rounds)


def test_zero_rebuilds_after_round_one(soak):
    _, _, oracle, rounds, rounds_after_run = soak["warm"]
    assert rounds[0]["worker_rebuilds"] == N_JOBS
    for entry in rounds_after_run[1:]:
        assert entry["worker_rebuilds"] == 0, entry
    # …and the oracle-level counter agrees after any number of rounds
    assert oracle.statistics()["worker_rebuilds"] == N_JOBS
    # the cold reference really is the rebuild-per-round path
    _, _, cold_oracle, cold_rounds, cold_after = soak["cold"]
    assert all(entry["worker_rebuilds"] == N_JOBS for entry in cold_after)
    assert cold_oracle.statistics()["worker_rebuilds"] == N_JOBS * len(cold_after)


def test_rounds_after_the_first_ship_only_diffs(soak):
    _, _, oracle, _, rounds_after_run = soak["warm"]
    for entry in rounds_after_run[1:]:
        # strictly less than whole-cache shipping: the resident caches hold
        # every earlier round's entries, the wire carries only the new ones
        assert entry["cache_entries_shipped"] < entry["cache_entries_resident"], entry
    total_shipped = sum(e["cache_entries_shipped"] for e in rounds_after_run)
    assert oracle.statistics()["cache_entries_shipped"] == total_shipped
    # the cold path ships every worker's whole cache every round
    _, _, _, _, cold_after = soak["cold"]
    for entry in cold_after:
        assert entry["cache_entries_shipped"] == entry["cache_entries_resident"]


def test_soak_is_bit_identical_across_pool_modes_and_inline(soak):
    warm_outcome, warm_extra, _, _, _ = soak["warm"]
    for label in ("cold", "inline"):
        outcome, extra, _, _, _ = soak[label]
        assert outcome.estimates == warm_outcome.estimates, label
        assert extra.estimates == warm_extra.estimates, label
    # identical stopping points, not just values
    for cell in PROBES:
        assert warm_outcome.estimates[cell].n_samples == MAX_SAMPLES


def test_soak_runs_on_the_vectorised_engine(soak):
    """The resident stacks are vectorised and stay resident.

    ``ExplainJobSpec`` ships the dirty table's column dictionaries once per
    worker lifetime; the workers' code-array engines run against that
    shipped encoding for their whole residency — so the vectorised checks
    show up in the merged telemetry while ``worker_rebuilds`` still stops
    at the pool width (vectorisation costs no extra rebuilds, and no
    worker ever silently fell back to the object path).
    """
    _, _, oracle, _, _ = soak["warm"]
    assert oracle.vectorized
    statistics = oracle.statistics()
    assert statistics["worker_rebuilds"] == N_JOBS
    encoding = statistics["encoding"]
    assert encoding["vectorized_checks"] > 0
    assert encoding["fallback_checks"] == 0


def test_no_health_events_during_a_clean_soak(soak):
    _, _, oracle, _, _ = soak["warm"]
    statistics = oracle.statistics()
    assert statistics["shards_requeued"] == 0
    assert statistics["workers_restarted"] == 0
    assert statistics["parallel_workers"] == N_JOBS
