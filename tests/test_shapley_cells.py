"""Unit tests for cell-level Shapley explanations (Examples 1.1, 2.4, 2.5)."""

import pytest

from repro.constraints.parser import parse_dcs
from repro.dataset.table import CellRef, Table
from repro.repair.base import BinaryRepairOracle
from repro.repair.simple import SimpleRuleRepair, paper_algorithm_1
from repro.shapley.cells import CellShapleyExplainer, relevant_cells
from repro.shapley.sampling import ReplacementPolicy


@pytest.fixture
def oracle(algorithm, constraints, dirty_table, cell_of_interest):
    return BinaryRepairOracle(algorithm, constraints, dirty_table, cell_of_interest)


def test_relevant_cells_cover_constrained_attributes(dirty_table, constraints, cell_of_interest):
    cells = relevant_cells(dirty_table, constraints, cell_of_interest)
    attributes = {cell.attribute for cell in cells}
    # every attribute of the La Liga schema appears in some constraint
    assert attributes == set(dirty_table.attributes)
    assert len(cells) == dirty_table.n_cells


def test_relevant_cells_includes_same_row_even_if_unconstrained():
    table = Table(["A", "B", "Note"], [["x", 1, "n1"], ["x", 2, "n2"]])
    constraints = parse_dcs(["not(t1.A == t2.A and t1.B != t2.B)"])
    cells = relevant_cells(table, constraints, CellRef(1, "B"))
    assert CellRef(1, "Note") in cells  # same tuple as the cell of interest
    assert CellRef(0, "Note") not in cells  # different tuple, unconstrained attribute


def test_estimate_cell_is_deterministic_with_seed(oracle):
    first = CellShapleyExplainer(oracle, rng=5).estimate_cell(CellRef(4, "League"), n_samples=30)
    second = CellShapleyExplainer(oracle, rng=5).estimate_cell(CellRef(4, "League"), n_samples=30)
    assert first.value == pytest.approx(second.value)
    assert first.n_samples == 30


def test_league_cell_outranks_t6_city_and_t1_place(oracle):
    """Example 1.1 / 2.4: t5[League] is more influential than t6[City]; t1[Place] is inert."""
    explainer = CellShapleyExplainer(oracle, policy=ReplacementPolicy.NULL, rng=2)
    result = explainer.explain(
        cells=[CellRef(4, "League"), CellRef(5, "City"), CellRef(0, "Place")],
        n_samples=150,
    )
    assert result[CellRef(4, "League")] > result[CellRef(5, "City")]
    assert result[CellRef(0, "Place")] == pytest.approx(0.0, abs=1e-12)


def test_unrelated_place_cell_has_zero_value_under_sampling_policy(oracle):
    explainer = CellShapleyExplainer(oracle, policy=ReplacementPolicy.SAMPLE, rng=4)
    estimate = explainer.estimate_cell(CellRef(0, "Place"), n_samples=60)
    assert estimate.value == pytest.approx(0.0, abs=1e-12)


def test_explain_excludes_cell_of_interest_when_requested(oracle, cell_of_interest):
    explainer = CellShapleyExplainer(oracle, rng=1)
    result = explainer.explain(
        cells=[cell_of_interest, CellRef(4, "League")],
        n_samples=10,
        exclude_cell_of_interest=True,
    )
    assert cell_of_interest not in result.values
    assert CellRef(4, "League") in result.values


def test_explain_reports_sampling_metadata(oracle):
    explainer = CellShapleyExplainer(oracle, rng=1)
    result = explainer.explain(cells=[CellRef(4, "League"), CellRef(5, "City")], n_samples=12)
    assert result.n_samples == 24
    assert result.method.startswith("cell-sampling")
    assert set(result.standard_errors) == set(result.values)


def test_sampled_estimate_matches_exact_on_tiny_table():
    """Cross-check the Example 2.5 estimator against exact enumeration (NULL policy)."""
    table = Table(
        ["Code", "Name"],
        [["A1", "Aspirin"], ["A1", "Aspirin"], ["A1", "Asprin"]],
    )
    constraints = parse_dcs(["not(t1.Code == t2.Code and t1.Name != t2.Name)"])
    algorithm = SimpleRuleRepair()
    cell_of_interest = CellRef(2, "Name")
    oracle = BinaryRepairOracle(algorithm, constraints, table, cell_of_interest)
    assert oracle.target_value == "Aspirin"
    explainer = CellShapleyExplainer(oracle, policy=ReplacementPolicy.NULL, rng=8)

    probe_cells = [CellRef(0, "Name"), CellRef(0, "Code"), CellRef(1, "Name")]
    for probe in probe_cells:
        exact_value = explainer.exact_cell_value(probe)
        estimate = explainer.estimate_cell(probe, n_samples=700)
        assert estimate.value == pytest.approx(exact_value, abs=0.08), str(probe)


def test_exact_cell_value_symmetry_between_equivalent_rows():
    """Rows 0 and 1 are identical, so their cells must get equal exact values."""
    table = Table(
        ["Code", "Name"],
        [["A1", "Aspirin"], ["A1", "Aspirin"], ["A1", "Asprin"]],
    )
    constraints = parse_dcs(["not(t1.Code == t2.Code and t1.Name != t2.Name)"])
    oracle = BinaryRepairOracle(SimpleRuleRepair(), constraints, table, CellRef(2, "Name"))
    explainer = CellShapleyExplainer(oracle, policy=ReplacementPolicy.NULL, rng=0)
    assert explainer.exact_cell_value(CellRef(0, "Name")) == pytest.approx(
        explainer.exact_cell_value(CellRef(1, "Name"))
    )
