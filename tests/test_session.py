"""Unit tests for the interactive repair session (the Section 4 demo loop)."""

import pytest

from repro.constraints.parser import parse_dc
from repro.dataset.table import CellRef
from repro.errors import ExplanationError
from repro.explain.session import RepairSession
from repro.config import TRexConfig


@pytest.fixture
def session(algorithm, constraints, dirty_table):
    return RepairSession(
        algorithm,
        constraints,
        dirty_table,
        cell_of_interest=CellRef(4, "Country"),
        expected_value="Spain",
        config=TRexConfig(seed=3, cell_samples=10),
    )


def test_run_repair_records_step(session):
    step = session.run_repair()
    assert step.action == "repair"
    assert step.repaired_cells == 2
    assert step.cell_of_interest_value == "Spain"
    assert session.cell_of_interest_is_correct() is True


def test_choose_cell_requires_repaired_cell(session):
    session.run_repair()
    with pytest.raises(ExplanationError):
        session.choose_cell(CellRef(0, "Team"))
    session.choose_cell(CellRef(4, "City"))
    assert session.cell_of_interest == CellRef(4, "City")


def test_explain_requires_cell_of_interest(algorithm, constraints, dirty_table):
    session = RepairSession(algorithm, constraints, dirty_table)
    session.run_repair()
    with pytest.raises(ExplanationError):
        session.explain()


def test_explain_records_explanation(session):
    session.run_repair()
    explanation = session.explain(constraints_only=True)
    assert explanation.constraint_ranking.items()[0] == "C3"
    assert session.steps[-1].action == "explain"
    assert session.steps[-1].explanation is explanation


def test_remove_constraint_and_re_repair(session):
    session.run_repair()
    step = session.remove_constraint("C3")
    assert step.action == "remove-constraint"
    assert [c.name for c in session.state.constraints] == ["C1", "C2", "C4"]
    # the repair still succeeds through the C1+C2 path
    assert step.cell_of_interest_value == "Spain"
    # removing the whole path breaks the repair
    step = session.remove_constraint("C2")
    assert step.cell_of_interest_value == "España"
    assert session.cell_of_interest_is_correct() is False


def test_remove_unknown_constraint_raises(session):
    session.run_repair()
    with pytest.raises(ExplanationError):
        session.remove_constraint("C99")


def test_replace_constraint(session):
    session.run_repair()
    replacement = parse_dc(
        "not(t1.League == t2.League and t1.Country != t2.Country)", name="C3fixed"
    )
    step = session.replace_constraint("C3", replacement)
    assert "C3fixed" in [c.name for c in session.state.constraints]
    assert step.cell_of_interest_value == "Spain"
    with pytest.raises(ExplanationError):
        session.replace_constraint("C3", replacement)  # C3 no longer present


def test_edit_cell_changes_future_repairs(session):
    session.run_repair()
    # fix the dirty cells manually: afterwards nothing is repaired any more
    session.edit_cell(CellRef(4, "City"), "Madrid")
    step = session.edit_cell(CellRef(4, "Country"), "Spain")
    assert step.action == "edit-cell"
    assert step.repaired_cells == 0
    assert step.cell_of_interest_value == "Spain"


def test_history_and_summary(session):
    session.run_repair()
    session.explain(constraints_only=True)
    session.remove_constraint("C4")
    history = session.history()
    assert [step.action for step in history] == ["repair", "explain", "remove-constraint"]
    summary = session.summary()
    assert "repair" in summary and "remove-constraint" in summary
    assert "correct: True" in summary


def test_unknown_correctness_without_expected_value(algorithm, constraints, dirty_table):
    session = RepairSession(algorithm, constraints, dirty_table)
    session.run_repair()
    assert session.cell_of_interest_is_correct() is None
