"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, load_constraints, main
from repro.dataset.examples import LA_LIGA_CONSTRAINT_TEXTS, la_liga_dirty_table
from repro.dataset.io import read_csv, write_csv
from repro.errors import TRexError


@pytest.fixture
def table_csv(tmp_path):
    return str(write_csv(la_liga_dirty_table(), tmp_path / "dirty.csv"))


@pytest.fixture
def constraints_file(tmp_path):
    path = tmp_path / "constraints.txt"
    lines = ["# the four DCs of Figure 1", ""]
    lines += list(LA_LIGA_CONSTRAINT_TEXTS)
    path.write_text("\n".join(lines), encoding="utf-8")
    return str(path)


def test_load_constraints_skips_comments_and_blank_lines(constraints_file):
    constraints = load_constraints(constraints_file)
    assert [c.name for c in constraints] == ["C1", "C2", "C3", "C4"]


def test_load_constraints_empty_file_raises(tmp_path):
    path = tmp_path / "empty.txt"
    path.write_text("# nothing here\n", encoding="utf-8")
    with pytest.raises(TRexError):
        load_constraints(path)


def test_parser_requires_subcommand():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_violations_command_reports_and_signals_dirty(table_csv, constraints_file, capsys):
    exit_code = main(["violations", "--table", table_csv, "--constraints", constraints_file])
    output = capsys.readouterr().out
    assert exit_code == 1  # violations present
    assert "violation(s)" in output
    assert "C1(" in output or "C3(" in output


def test_violations_command_clean_table_returns_zero(tmp_path, constraints_file, capsys):
    from repro.dataset.examples import la_liga_clean_table

    clean_csv = str(write_csv(la_liga_clean_table(), tmp_path / "clean.csv"))
    exit_code = main(["violations", "--table", clean_csv, "--constraints", constraints_file])
    assert exit_code == 0
    assert "0 violation(s)" in capsys.readouterr().out


def test_repair_command_writes_output(table_csv, constraints_file, tmp_path, capsys):
    output_csv = str(tmp_path / "clean.csv")
    exit_code = main(
        ["repair", "--table", table_csv, "--constraints", constraints_file,
         "--algorithm", "simple", "--output", output_csv]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "2 cell(s) repaired." in out
    repaired = read_csv(output_csv)
    assert repaired.value(4, "Country") == "Spain"
    assert repaired.value(4, "City") == "Madrid"


def test_explain_command_constraints_only(table_csv, constraints_file, capsys):
    exit_code = main(
        ["explain", "--table", table_csv, "--constraints", constraints_file,
         "--cell", "t5[Country]", "--constraints-only"]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "Constraint contributions" in out
    assert "C3" in out


def test_explain_command_with_cells_and_json(table_csv, constraints_file, tmp_path, capsys):
    json_path = tmp_path / "explanation.json"
    exit_code = main(
        ["explain", "--table", table_csv, "--constraints", constraints_file,
         "--cell", "t5[Country]", "--samples", "5", "--policy", "null",
         "--seed", "3", "--json", str(json_path)]
    )
    assert exit_code == 0
    assert "Cell contributions" in capsys.readouterr().out
    payload = json.loads(json_path.read_text(encoding="utf-8"))
    assert payload["cell"] == {"row": 4, "attribute": "Country"}
    assert payload["constraint_shapley"]["values"]["name:C3"] == pytest.approx(2 / 3)


def test_repair_command_stats_json(table_csv, constraints_file, tmp_path, capsys):
    stats_path = tmp_path / "repair_stats.json"
    exit_code = main(
        ["repair", "--table", table_csv, "--constraints", constraints_file,
         "--stats-json", str(stats_path)]
    )
    assert exit_code == 0
    assert f"Statistics written to {stats_path}" in capsys.readouterr().out
    stats = json.loads(stats_path.read_text(encoding="utf-8"))
    assert stats["algorithm"] == "simple"
    assert stats["cells_repaired"] == 2
    assert len(stats["changes"]) == 2


def test_explain_command_stats_json(table_csv, constraints_file, tmp_path, capsys):
    stats_path = tmp_path / "stats.json"
    exit_code = main(
        ["explain", "--table", table_csv, "--constraints", constraints_file,
         "--cell", "t5[Country]", "--samples", "5", "--seed", "3",
         "--stats-json", str(stats_path)]
    )
    assert exit_code == 0
    stats = json.loads(stats_path.read_text(encoding="utf-8"))
    # explain() nests one counter scope per phase
    assert set(stats) == {"constraints", "cells"}
    assert stats["cells"]["oracle_calls"] > 0
    assert "dictionary_sizes" in stats["cells"]["encoding"]


def test_explain_command_trace_out(table_csv, constraints_file, tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    exit_code = main(
        ["explain", "--table", table_csv, "--constraints", constraints_file,
         "--cell", "t5[Country]", "--samples", "5", "--seed", "3",
         "--trace-out", str(trace_path)]
    )
    assert exit_code == 0
    assert "Chrome trace" in capsys.readouterr().out
    payload = json.loads(trace_path.read_text(encoding="utf-8"))
    names = {event["name"] for event in payload["traceEvents"]}
    assert {"explain_job", "cell", "pair_eval"} <= names
    # tracing must be torn down after the command
    from repro.observability import trace as otrace
    assert otrace.current() is None


def test_explain_command_unrepaired_cell_fails(table_csv, constraints_file, capsys):
    exit_code = main(
        ["explain", "--table", table_csv, "--constraints", constraints_file,
         "--cell", "t1[Team]", "--constraints-only"]
    )
    assert exit_code == 1
    assert "was not repaired" in capsys.readouterr().out


def test_discover_command(tmp_path, capsys):
    from repro.dataset.examples import la_liga_clean_table

    clean_csv = str(write_csv(la_liga_clean_table(), tmp_path / "clean.csv"))
    exit_code = main(["discover", "--table", clean_csv, "--max-lhs", "1"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "functional dependencies" in out
    assert "not(" in out


def test_unknown_algorithm_is_rejected_by_argparse(table_csv, constraints_file):
    with pytest.raises(SystemExit):
        main(["repair", "--table", table_csv, "--constraints", constraints_file,
              "--algorithm", "quantum"])


def test_trex_error_is_reported_as_exit_code_2(tmp_path, capsys):
    missing_constraints = tmp_path / "only_comments.txt"
    missing_constraints.write_text("# no DCs\n", encoding="utf-8")
    table_path = write_csv(la_liga_dirty_table(), tmp_path / "t.csv")
    exit_code = main(
        ["violations", "--table", str(table_path), "--constraints", str(missing_constraints)]
    )
    assert exit_code == 2
    assert "error:" in capsys.readouterr().err
