"""Unit tests for predicate operands and operators."""

import pytest

from repro.constraints.predicates import Operand, Operator, Predicate
from repro.errors import ConstraintError


def test_operator_from_symbol_aliases():
    assert Operator.from_symbol("=") is Operator.EQ
    assert Operator.from_symbol("==") is Operator.EQ
    assert Operator.from_symbol("<>") is Operator.NE
    assert Operator.from_symbol("≠") is Operator.NE
    assert Operator.from_symbol("≤") is Operator.LE
    assert Operator.from_symbol(">=") is Operator.GE
    with pytest.raises(ConstraintError):
        Operator.from_symbol("===")


def test_operator_negate_is_involutive():
    for op in Operator:
        assert op.negate().negate() is op


def test_operator_flip():
    assert Operator.LT.flip() is Operator.GT
    assert Operator.LE.flip() is Operator.GE
    assert Operator.EQ.flip() is Operator.EQ
    assert Operator.NE.flip() is Operator.NE


def test_operator_evaluate_basic():
    assert Operator.EQ.evaluate("a", "a")
    assert not Operator.EQ.evaluate("a", "b")
    assert Operator.LT.evaluate(1, 2)
    assert Operator.GE.evaluate(2, 2)


def test_operator_null_semantics():
    # equality and order comparisons never match a null
    assert not Operator.EQ.evaluate(None, "a")
    assert not Operator.LT.evaluate(None, 3)
    assert not Operator.GE.evaluate(3, None)
    # inequality: a null differs from a concrete value but not from another null
    assert Operator.NE.evaluate(None, "a")
    assert Operator.NE.evaluate("a", None)
    assert not Operator.NE.evaluate(None, None)


def test_operator_incomparable_types_fall_back():
    assert not Operator.EQ.evaluate("1", 1)
    assert Operator.NE.evaluate("1", 1)
    # order comparison falls back to string comparison instead of raising
    assert isinstance(Operator.LT.evaluate("abc", 5), bool)


def test_operand_constructors_and_validation():
    cell = Operand.cell("t1", "City")
    assert not cell.is_constant
    assert str(cell) == "t1.City"
    constant = Operand.const(7)
    assert constant.is_constant
    with pytest.raises(ConstraintError):
        Operand.cell("t3", "City")
    with pytest.raises(ConstraintError):
        Operand.cell("t1", "")


def test_operand_resolution():
    predicate_assignment = {"t1": {"City": "Madrid"}, "t2": {"City": "Barcelona"}}
    assert Operand.cell("t2", "City").resolve(predicate_assignment) == "Barcelona"
    assert Operand.const(3).resolve(predicate_assignment) == 3
    with pytest.raises(ConstraintError):
        Operand.cell("t1", "Country").resolve(predicate_assignment)


def test_predicate_between_tuples_and_evaluate():
    predicate = Predicate.between_tuples("City", "!=")
    assert predicate.evaluate({"City": "Madrid"}, {"City": "Capital"})
    assert not predicate.evaluate({"City": "Madrid"}, {"City": "Madrid"})
    assert str(predicate) == "t1.City != t2.City"


def test_predicate_with_constant_single_tuple():
    predicate = Predicate.with_constant("t1", "Year", ">=", 2018)
    assert predicate.is_single_tuple
    assert predicate.evaluate({"Year": 2019})
    assert not predicate.evaluate({"Year": 2017})


def test_predicate_equality_join_detection():
    assert Predicate.between_tuples("Team", "==").is_equality_join
    assert not Predicate.between_tuples("Team", "!=").is_equality_join
    assert not Predicate.with_constant("t1", "Team", "==", "Real").is_equality_join


def test_predicate_attribute_introspection():
    predicate = Predicate.between_tuples("Team", "==", "Club")
    assert predicate.attributes_mentioned() == {"Team", "Club"}
    assert predicate.attributes_of("t1") == {"Team"}
    assert predicate.attributes_of("t2") == {"Club"}
    assert predicate.tuples_mentioned() == {"t1", "t2"}


def test_predicate_negated_and_flipped():
    predicate = Predicate.between_tuples("Place", "<")
    assert predicate.negated().op is Operator.GE
    flipped = predicate.flipped()
    assert flipped.op is Operator.GT
    assert str(flipped.left) == "t2.Place"
