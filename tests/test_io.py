"""Unit tests for CSV / record IO."""

import pytest

from repro.dataset.io import read_csv, table_from_records, tables_equal_on_disk, write_csv
from repro.dataset.schema import AttributeSpec, INTEGER, Schema
from repro.dataset.table import CellRef, Table
from repro.errors import SchemaError


def make_table():
    return Table(
        Schema([AttributeSpec("Team"), AttributeSpec("Year", dtype=INTEGER)]),
        [["Real", 2019], ["Barca", 2018]],
        name="teams",
    )


def test_write_and_read_roundtrip(tmp_path):
    table = make_table()
    path = write_csv(table, tmp_path / "teams.csv")
    loaded = read_csv(path, schema=table.schema)
    assert loaded.equals(table)
    assert loaded.value(0, "Year") == 2019


def test_read_without_schema_keeps_strings(tmp_path):
    path = write_csv(make_table(), tmp_path / "teams.csv")
    loaded = read_csv(path)
    assert loaded.value(0, "Year") == "2019"


def test_nulls_roundtrip_as_empty_strings(tmp_path):
    table = make_table().with_cells_nulled([CellRef(1, "Team")])
    path = write_csv(table, tmp_path / "withnull.csv")
    loaded = read_csv(path, schema=table.schema)
    assert loaded.is_null(CellRef(1, "Team"))


def test_read_csv_header_mismatch(tmp_path):
    path = write_csv(make_table(), tmp_path / "teams.csv")
    wrong_schema = Schema(["A", "B"])
    with pytest.raises(SchemaError):
        read_csv(path, schema=wrong_schema)


def test_read_csv_empty_file(tmp_path):
    empty = tmp_path / "empty.csv"
    empty.write_text("")
    with pytest.raises(SchemaError):
        read_csv(empty)


def test_read_csv_ragged_row(tmp_path):
    bad = tmp_path / "bad.csv"
    bad.write_text("A,B\n1,2\n3\n")
    with pytest.raises(SchemaError):
        read_csv(bad)


def test_tables_equal_on_disk(tmp_path):
    path_a = write_csv(make_table(), tmp_path / "a.csv")
    path_b = write_csv(make_table(), tmp_path / "b.csv")
    assert tables_equal_on_disk(path_a, path_b)


def test_table_from_records():
    records = [{"Team": "Real", "Year": 2019}, {"Team": "Barca", "Year": 2018}]
    table = table_from_records(records)
    assert table.n_rows == 2
    assert table.attributes == ("Team", "Year")


def test_table_from_records_missing_key():
    with pytest.raises(SchemaError):
        table_from_records([{"Team": "Real"}], schema=Schema(["Team", "Year"]))


def test_table_from_records_empty():
    with pytest.raises(SchemaError):
        table_from_records([])
