"""Unit tests for hash indexes."""

from repro.engine.index import HashIndex, MultiColumnIndex
from repro.engine.storage import ColumnStore


def make_store():
    return ColumnStore(
        {
            "City": ["Madrid", "Madrid", "Barcelona", None, "Madrid"],
            "Country": ["Spain", "Spain", "Spain", "Spain", None],
        }
    )


def test_hash_index_groups_rows_by_value():
    index = HashIndex(make_store(), "City")
    assert index.rows_with_value("Madrid") == [0, 1, 4]
    assert index.rows_with_value("Barcelona") == [2]
    assert index.rows_with_value("Paris") == []


def test_hash_index_skips_nulls():
    index = HashIndex(make_store(), "City")
    assert index.rows_with_value(None) == []
    all_rows = {row for _, rows in index.groups() for row in rows}
    assert 3 not in all_rows
    assert len(index) == 2  # Madrid, Barcelona


def test_hash_index_values_listing():
    index = HashIndex(make_store(), "City")
    assert sorted(index.values()) == ["Barcelona", "Madrid"]


def test_multi_column_index_groups_by_key():
    index = MultiColumnIndex(make_store(), ["City", "Country"])
    assert index.rows_with_key(("Madrid", "Spain")) == [0, 1]
    assert index.rows_with_key(("Barcelona", "Spain")) == [2]


def test_multi_column_index_skips_rows_with_any_null():
    index = MultiColumnIndex(make_store(), ["City", "Country"])
    keys = {key for key, _ in index.groups()}
    assert all(None not in key for key in keys)
    # rows 3 (null city) and 4 (null country) are excluded
    all_rows = {row for _, rows in index.groups() for row in rows}
    assert all_rows == {0, 1, 2}


def test_multi_column_index_null_key_lookup_is_empty():
    index = MultiColumnIndex(make_store(), ["City", "Country"])
    assert index.rows_with_key((None, "Spain")) == []


# -- sortedness + delta maintenance ------------------------------------------------


def assert_groups_sorted(index):
    for _, rows in index.groups():
        assert rows == sorted(rows)


def test_hash_index_groups_are_sorted_regression():
    # the docstring promises sorted row ids; build from a store whose
    # enumeration could tempt insertion order to diverge, then stress the
    # invariant through delta maintenance
    index = HashIndex(make_store(), "City")
    assert_groups_sorted(index)
    index.apply_delta({3: (None, "Madrid")})   # null cell gains a value
    assert index.rows_with_value("Madrid") == [0, 1, 3, 4]
    assert_groups_sorted(index)
    index.revert_delta({3: (None, "Madrid")})
    assert index.rows_with_value("Madrid") == [0, 1, 4]


def test_hash_index_apply_and_revert_delta_roundtrip():
    index = HashIndex(make_store(), "City")
    before = {value: rows for value, rows in index.groups()}
    changes = {
        0: ("Madrid", "Barcelona"),   # move between groups
        2: ("Barcelona", None),       # nulled out: leaves the index
        3: (None, "Paris"),           # new value: fresh group
    }
    index.apply_delta(changes)
    assert index.rows_with_value("Madrid") == [1, 4]
    assert index.rows_with_value("Barcelona") == [0]
    assert index.rows_with_value("Paris") == [3]
    assert_groups_sorted(index)
    index.revert_delta(changes)
    assert {value: rows for value, rows in index.groups()} == before


def test_hash_index_delta_drops_empty_groups():
    index = HashIndex(make_store(), "City")
    index.apply_delta({2: ("Barcelona", "Madrid")})
    assert index.rows_with_value("Barcelona") == []
    assert "Barcelona" not in index.values()
    index.revert_delta({2: ("Barcelona", "Madrid")})
    assert index.rows_with_value("Barcelona") == [2]


def test_multi_column_index_apply_and_revert_delta():
    index = MultiColumnIndex(make_store(), ["City", "Country"])
    before = {key: rows for key, rows in index.groups()}
    changes = {
        1: (("Madrid", "Spain"), ("Barcelona", "Spain")),
        2: (("Barcelona", "Spain"), None),   # key gained a null component
        4: (None, ("Madrid", "Spain")),      # key became fully non-null
    }
    index.apply_delta(changes)
    assert index.rows_with_key(("Madrid", "Spain")) == [0, 4]
    assert index.rows_with_key(("Barcelona", "Spain")) == [1]
    assert_groups_sorted(index)
    index.revert_delta(changes)
    assert {key: rows for key, rows in index.groups()} == before


def test_multi_column_index_build_key_of():
    index = MultiColumnIndex(make_store(), ["City", "Country"])
    assert index.build_key_of(0) == ("Madrid", "Spain")
    assert index.build_key_of(3) is None   # null city
    assert index.build_key_of(4) is None   # null country
    # build keys record the base snapshot even while a delta is applied
    index.apply_delta({0: (("Madrid", "Spain"), None)})
    assert index.build_key_of(0) == ("Madrid", "Spain")
    index.revert_delta({0: (("Madrid", "Spain"), None)})
