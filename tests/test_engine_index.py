"""Unit tests for hash indexes."""

from repro.engine.index import HashIndex, MultiColumnIndex
from repro.engine.storage import ColumnStore


def make_store():
    return ColumnStore(
        {
            "City": ["Madrid", "Madrid", "Barcelona", None, "Madrid"],
            "Country": ["Spain", "Spain", "Spain", "Spain", None],
        }
    )


def test_hash_index_groups_rows_by_value():
    index = HashIndex(make_store(), "City")
    assert index.rows_with_value("Madrid") == [0, 1, 4]
    assert index.rows_with_value("Barcelona") == [2]
    assert index.rows_with_value("Paris") == []


def test_hash_index_skips_nulls():
    index = HashIndex(make_store(), "City")
    assert index.rows_with_value(None) == []
    all_rows = {row for _, rows in index.groups() for row in rows}
    assert 3 not in all_rows
    assert len(index) == 2  # Madrid, Barcelona


def test_hash_index_values_listing():
    index = HashIndex(make_store(), "City")
    assert sorted(index.values()) == ["Barcelona", "Madrid"]


def test_multi_column_index_groups_by_key():
    index = MultiColumnIndex(make_store(), ["City", "Country"])
    assert index.rows_with_key(("Madrid", "Spain")) == [0, 1]
    assert index.rows_with_key(("Barcelona", "Spain")) == [2]


def test_multi_column_index_skips_rows_with_any_null():
    index = MultiColumnIndex(make_store(), ["City", "Country"])
    keys = {key for key, _ in index.groups()}
    assert all(None not in key for key in keys)
    # rows 3 (null city) and 4 (null country) are excluded
    all_rows = {row for _, rows in index.groups() for row in rows}
    assert all_rows == {0, 1, 2}


def test_multi_column_index_null_key_lookup_is_empty():
    index = MultiColumnIndex(make_store(), ["City", "Country"])
    assert index.rows_with_key((None, "Spain")) == []
