"""Second-order (view→view) violation maintenance must equal full re-detection.

A :class:`RepairWalk` maintains per-constraint violations *across* a repair
loop's own writes instead of re-deriving each pass from the base snapshot.
These tests drive walks through randomised write sequences — including the
pair fork used by the batched oracle — and cross-check every intermediate
state against the reference full rescan.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CellRef,
    DenialConstraint,
    GreedyHolisticRepair,
    SimpleRuleRepair,
    Table,
    find_all_violations,
    la_liga_constraints,
    la_liga_dirty_table,
)
from repro.constraints.incremental import RepairWalk, repair_walk_for
from repro.constraints.predicates import Operator, Predicate
from repro.engine.storage import NULL


def violation_multiset(violations):
    return Counter((v.constraint.name, v.rows) for v in violations)


def assert_walk_matches_reference(walk, constraints):
    reference = find_all_violations(walk.view.copy(), constraints)
    assert violation_multiset(walk.all_violations()) == violation_multiset(reference)


# ---------------------------------------------------------------------------
# hand-built multi-pass walks on the paper's running example


def test_walk_empty_delta_matches_base():
    base = la_liga_dirty_table()
    constraints = la_liga_constraints()
    walk = repair_walk_for(base.perturbed({}), constraints)
    assert walk is not None
    assert_walk_matches_reference(walk, constraints)


def test_walk_only_engages_on_views():
    assert repair_walk_for(la_liga_dirty_table(), la_liga_constraints()) is None


def test_walk_tracks_multi_pass_writes():
    base = la_liga_dirty_table()
    constraints = la_liga_constraints()
    view = base.perturbed({CellRef(4, "City"): NULL}).mutable_snapshot()
    walk = repair_walk_for(view, constraints)
    assert_walk_matches_reference(walk, constraints)
    # a sequence of writes imitating repair passes, checked after each one
    writes = [
        (4, "Country", "Spain"),
        (0, "City", "Seville"),
        (0, "City", "Barcelona"),   # rewrite of the same cell
        (2, "Team", "Betis"),
        (4, "City", NULL),          # null in, then out again
        (4, "City", "Madrid"),
        (1, "Country", NULL),
    ]
    for row, attribute, value in writes:
        view.set_value(row, attribute, value)
        assert_walk_matches_reference(walk, constraints)


def test_walk_count_if_equals_full_recount():
    base = la_liga_dirty_table()
    constraints = la_liga_constraints()
    view = base.perturbed({CellRef(2, "Country"): NULL}).mutable_snapshot()
    walk = repair_walk_for(view, constraints)
    walk.prime()
    view.set_value(0, "Country", "France")
    for cell, value in [
        (CellRef(0, "City"), "Seville"),
        (CellRef(2, "Country"), "Spain"),
        (CellRef(4, "Team"), NULL),
        (CellRef(1, "Place"), "1"),
    ]:
        expected = len(find_all_violations(view.with_values({cell: value}).copy(),
                                           constraints))
        assert walk.count_if(cell, value) == expected
    # count_if must not disturb the maintained state
    assert_walk_matches_reference(walk, constraints)


def test_fork_onto_single_differing_cell():
    base = la_liga_dirty_table()
    constraints = la_liga_constraints()
    with_view = base.perturbed({CellRef(3, "City"): NULL}).mutable_snapshot()
    walk_with = repair_walk_for(with_view, constraints).prime()

    differing = CellRef(4, "Country")
    without_view = base.perturbed(
        {CellRef(3, "City"): NULL, differing: "France"}
    ).mutable_snapshot()
    walk_without = walk_with.fork_onto(without_view, [differing])

    assert_walk_matches_reference(walk_without, constraints)
    # the two walks then diverge independently
    with_view.set_value(0, "Country", "Italy")
    without_view.set_value(2, "City", "Seville")
    assert_walk_matches_reference(walk_with, constraints)
    assert_walk_matches_reference(walk_without, constraints)


def test_fork_onto_no_difference_is_state_copy():
    base = la_liga_dirty_table()
    constraints = la_liga_constraints()
    with_view = base.perturbed({}).mutable_snapshot()
    walk_with = repair_walk_for(with_view, constraints).prime()
    walk_without = walk_with.fork_onto(base.perturbed({}).mutable_snapshot(), [])
    assert_walk_matches_reference(walk_without, constraints)


# ---------------------------------------------------------------------------
# second-order deltas across a real multi-pass greedy repair


@pytest.mark.parametrize("delta", [
    {},
    {CellRef(4, "City"): NULL},
    {CellRef(1, "Country"): "France", CellRef(3, "Country"): "France"},
])
def test_greedy_multi_pass_second_order_matches_first_order(delta):
    base = la_liga_dirty_table()
    constraints = la_liga_constraints()
    second = GreedyHolisticRepair(max_changes=20, second_order=True)
    first = GreedyHolisticRepair(max_changes=20, second_order=False)
    clean_second = second.repair_table(constraints, base.perturbed(delta))
    clean_first = first.repair_table(constraints, base.perturbed(delta))
    assert clean_second.to_records() == clean_first.to_records()
    # and the final state satisfies full re-detection
    assert violation_multiset(find_all_violations(clean_second.copy(), constraints)) \
        == violation_multiset(find_all_violations(clean_first.copy(), constraints))


def test_simple_multi_pass_second_order_matches_first_order():
    base = la_liga_dirty_table()
    constraints = la_liga_constraints()
    delta = {CellRef(4, "City"): NULL, CellRef(0, "Country"): NULL}
    clean_second = SimpleRuleRepair(second_order=True).repair_table(
        constraints, base.perturbed(delta))
    clean_first = SimpleRuleRepair(second_order=False).repair_table(
        constraints, base.perturbed(delta))
    assert clean_second.to_records() == clean_first.to_records()


# ---------------------------------------------------------------------------
# hypothesis: random tables × constraint shapes × write sequences

ATTRS = ("A", "B", "C")
VALUES = st.sampled_from(["x", "y", "z", 1, 2, None])

CONSTRAINT_POOL = [
    DenialConstraint("fd", [Predicate.between_tuples("A", Operator.EQ),
                            Predicate.between_tuples("B", Operator.NE)]),
    DenialConstraint("fd2", [Predicate.between_tuples("A", Operator.EQ),
                             Predicate.between_tuples("C", Operator.EQ),
                             Predicate.between_tuples("B", Operator.NE)]),
    DenialConstraint("ord", [Predicate.between_tuples("B", Operator.EQ),
                             Predicate.between_tuples("C", Operator.LT)]),
    DenialConstraint("pairs", [Predicate.between_tuples("A", Operator.LT),
                               Predicate.between_tuples("B", Operator.GT)]),
    DenialConstraint("single", [Predicate.with_constant("t1", "A", Operator.EQ, 1),
                                Predicate.with_constant("t1", "B", Operator.NE, "y")]),
    DenialConstraint("pure", [Predicate.between_tuples("B", Operator.EQ)]),
]


@st.composite
def walk_scenario(draw):
    n_rows = draw(st.integers(min_value=1, max_value=6))
    rows = [tuple(draw(VALUES) for _ in ATTRS) for _ in range(n_rows)]
    table = Table(ATTRS, rows)
    delta = {}
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        row = draw(st.integers(min_value=0, max_value=n_rows - 1))
        attr = draw(st.sampled_from(ATTRS))
        delta[CellRef(row, attr)] = draw(VALUES)
    writes = [
        (draw(st.integers(min_value=0, max_value=n_rows - 1)),
         draw(st.sampled_from(ATTRS)), draw(VALUES))
        for _ in range(draw(st.integers(min_value=0, max_value=6)))
    ]
    return table, delta, writes


@settings(max_examples=100, deadline=None)
@given(data=walk_scenario(),
       constraint_mask=st.integers(min_value=1, max_value=2 ** len(CONSTRAINT_POOL) - 1))
def test_walk_equals_full_rescan_randomised(data, constraint_mask):
    table, delta, writes = data
    constraints = [c for i, c in enumerate(CONSTRAINT_POOL) if constraint_mask >> i & 1]
    view = table.perturbed(delta).mutable_snapshot()
    walk = repair_walk_for(view, constraints)
    assert_walk_matches_reference(walk, constraints)
    for row, attribute, value in writes:
        view.set_value(row, attribute, value)
        assert_walk_matches_reference(walk, constraints)


@settings(max_examples=60, deadline=None)
@given(data=walk_scenario(), target_row=st.integers(min_value=0, max_value=5),
       target_attr=st.sampled_from(ATTRS), target_value=VALUES)
def test_fork_onto_equals_fresh_walk_randomised(data, target_row, target_attr,
                                                target_value):
    table, delta, writes = data
    constraints = CONSTRAINT_POOL
    target_row %= table.n_rows
    differing = CellRef(target_row, target_attr)

    with_view = table.perturbed(delta).mutable_snapshot()
    walk_with = repair_walk_for(with_view, constraints).prime()
    without_delta = dict(delta)
    without_delta[differing] = target_value
    without_view = table.perturbed(without_delta).mutable_snapshot()
    walk_without = walk_with.fork_onto(without_view, [differing])
    assert_walk_matches_reference(walk_without, constraints)
    for row, attribute, value in writes:
        without_view.set_value(row, attribute, value)
        assert_walk_matches_reference(walk_without, constraints)
    # forked state never leaks back into the source walk
    assert_walk_matches_reference(walk_with, constraints)


@settings(max_examples=60, deadline=None)
@given(data=walk_scenario(), trial_value=VALUES)
def test_count_if_equals_full_recount_randomised(data, trial_value):
    table, delta, writes = data
    constraints = CONSTRAINT_POOL
    view = table.perturbed(delta).mutable_snapshot()
    walk = repair_walk_for(view, constraints)
    for row, attribute, value in writes:
        view.set_value(row, attribute, value)
    for attribute in ATTRS:
        cell = CellRef(0, attribute)
        expected = len(find_all_violations(view.with_values({cell: trial_value}).copy(),
                                           constraints))
        assert walk.count_if(cell, trial_value) == expected
