"""``query_pairs`` must answer exactly like a ``query_pair`` loop.

The multi-pair batch scheduler dedups against the pair-fingerprint memo,
groups pairs sharing a coalition prefix onto one primed walk and threads one
shared revertible statistics instance across the batch; these tests pin the
contract that none of that is visible in the answers — only in the
accounting — for every ``shared_stats``/``batched_pairs`` combination and
both bundled black boxes.
"""

from __future__ import annotations

import itertools
import logging

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BinaryRepairOracle,
    CellRef,
    CellShapleyExplainer,
    GreedyHolisticRepair,
    SimpleRuleRepair,
    Table,
    la_liga_constraints,
    la_liga_dirty_table,
)
from repro.repair.cache import OracleCache
from repro.repair.holoclean import HoloCleanRepair
from repro.shapley.sampling import CellCoalitionSampler, SampledShapleyEstimate

CELL_OF_INTEREST = CellRef(4, "Country")


def make_oracle(algorithm=None, **kwargs):
    return BinaryRepairOracle(
        algorithm or SimpleRuleRepair(),
        la_liga_constraints(),
        la_liga_dirty_table(),
        CELL_OF_INTEREST,
        **kwargs,
    )


def sample_pairs(oracle, n_pairs, policy="null", rng=7):
    sampler = CellCoalitionSampler(oracle.dirty_table, policy=policy, rng=rng,
                                   batched=True)
    return [sampler.sample_pair(CellRef(0, "City")) for _ in range(n_pairs)]


# ---------------------------------------------------------------------------
# answer equivalence


@pytest.mark.parametrize("algorithm_factory", [SimpleRuleRepair,
                                               lambda: GreedyHolisticRepair(max_changes=20)])
@pytest.mark.parametrize("use_cache", [True, False])
def test_query_pairs_equals_query_pair_loop(algorithm_factory, use_cache):
    batched = make_oracle(algorithm_factory(), use_cache=use_cache)
    unbatched = make_oracle(algorithm_factory(), use_cache=use_cache,
                            batched_pairs=False)
    pairs = sample_pairs(batched, 8)
    assert batched.query_pairs(pairs) == unbatched.query_pairs(pairs)
    assert batched.batches == 1
    assert unbatched.batches == 0  # batched_pairs=False forces today's loop


def test_query_pairs_identical_under_sample_policy():
    batched = make_oracle()
    reference = make_oracle(batched_pairs=False, shared_stats=False)
    pairs = sample_pairs(batched, 6, policy="sample", rng=11)
    assert batched.query_pairs(pairs) == [
        reference.query_pair(reference.constraints, with_table, without_table)
        for with_table, without_table in pairs
    ]


def test_query_pairs_empty_queue():
    oracle = make_oracle()
    assert oracle.query_pairs([]) == []
    assert oracle.batches == 0


# ---------------------------------------------------------------------------
# dedup + accounting


def test_query_pairs_dedups_within_batch_and_against_cache():
    oracle = make_oracle()
    (pair,) = sample_pairs(oracle, 1)
    runs_before = oracle.repair_runs
    answers = oracle.query_pairs([pair, pair, pair])
    assert answers[0] == answers[1] == answers[2]
    assert oracle.repair_runs == runs_before + 2  # one evaluation for three requests
    assert oracle.pairs_deduped == 2
    assert oracle.pairs_batched == 3
    assert oracle.max_batch_size == 3
    # a later batch hits the pair memo up front
    deduped_before = oracle.pairs_deduped
    assert oracle.query_pairs([pair]) == [answers[0]]
    assert oracle.repair_runs == runs_before + 2
    assert oracle.pairs_deduped == deduped_before + 1
    statistics = oracle.statistics()
    for key in ("batches", "pairs_batched", "pairs_deduped", "max_batch_size"):
        assert key in statistics


def test_query_pairs_groups_shared_coalition_prefix_on_one_walk():
    """Pairs over one coalition run as one primed walk + a fork per without."""
    oracle = make_oracle(use_cache=False)
    base = oracle.dirty_table
    with_view = base.perturbed({CellRef(0, "City"): None}, trusted=True)
    target = CellRef(2, "Team")
    pairs = [
        (with_view, with_view.perturbed({target: value}, trusted=True))
        for value in ("X", "Y", "Z")
    ]
    runs_before = oracle.repair_runs
    answers = oracle.query_pairs(pairs)
    # the shared with-instance was repaired once, each without once
    assert oracle.repair_runs == runs_before + 1 + 3
    assert oracle.pair_walks == 3
    reference = make_oracle(use_cache=False, batched_pairs=False,
                            shared_stats=False)
    for (with_table, without_table), answer in zip(pairs, answers):
        assert answer == reference.query_pair(
            reference.constraints, with_table, without_table
        )


def test_query_pairs_group_fallback_for_algorithms_without_group_support():
    """A repairer without repair_pair_group keeps per-pair evaluation."""
    oracle = make_oracle(HoloCleanRepair(passes=1, train_on_clean_cells=0),
                         use_cache=False)
    base = oracle.dirty_table
    with_view = base.perturbed({CellRef(0, "City"): None}, trusted=True)
    target = CellRef(2, "Team")
    pairs = [
        (with_view, with_view.perturbed({target: value}, trusted=True))
        for value in ("X", "Y")
    ]
    answers = oracle.query_pairs(pairs)
    reference = make_oracle(HoloCleanRepair(passes=1, train_on_clean_cells=0),
                            use_cache=False, batched_pairs=False)
    assert answers == [
        reference.query_pair(reference.constraints, with_table, without_table)
        for with_table, without_table in pairs
    ]


# ---------------------------------------------------------------------------
# the full flag grid: estimates bit-identical for a fixed seed


@pytest.mark.parametrize("algorithm_factory", [SimpleRuleRepair,
                                               lambda: GreedyHolisticRepair(max_changes=20)])
@pytest.mark.parametrize("policy", ["null", "mode"])
def test_estimates_identical_across_shared_and_batched_flags(algorithm_factory, policy):
    reference = None
    for shared_stats, batched_pairs in itertools.product([False, True], repeat=2):
        oracle = make_oracle(algorithm_factory(), shared_stats=shared_stats,
                             batched_pairs=batched_pairs)
        explainer = CellShapleyExplainer(
            oracle, policy=policy, rng=23,
            shared_stats=shared_stats, batched_pairs=batched_pairs,
        )
        estimate = explainer.estimate_cell(CellRef(4, "City"), n_samples=12)
        if reference is None:
            reference = estimate
        else:
            assert estimate.value == reference.value
            assert estimate.standard_error == reference.standard_error
            assert estimate.n_samples == reference.n_samples


# ---------------------------------------------------------------------------
# hypothesis: random tables, random coalition batches


ATTRS = ("A", "B", "C")
VALUES = st.sampled_from(["x", "y", "z", 1, 2, None])


@st.composite
def batch_scenario(draw):
    n_rows = draw(st.integers(min_value=2, max_value=5))
    rows = [tuple(draw(VALUES) for _ in ATTRS) for _ in range(n_rows)]
    table = Table(ATTRS, rows)
    pair_specs = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        delta = {}
        for _ in range(draw(st.integers(min_value=0, max_value=4))):
            row = draw(st.integers(min_value=0, max_value=n_rows - 1))
            attr = draw(st.sampled_from(ATTRS))
            delta[CellRef(row, attr)] = draw(VALUES)
        target = CellRef(draw(st.integers(min_value=0, max_value=n_rows - 1)),
                         draw(st.sampled_from(ATTRS)))
        pair_specs.append((delta, target, draw(VALUES)))
    return table, pair_specs


@settings(max_examples=40, deadline=None)
@given(data=batch_scenario())
def test_query_pairs_equals_loop_randomised(data):
    from repro.constraints.predicates import Operator, Predicate
    from repro.constraints.dc import DenialConstraint

    table, pair_specs = data
    constraints = [
        DenialConstraint("fd", [Predicate.between_tuples("A", Operator.EQ),
                                Predicate.between_tuples("B", Operator.NE)]),
        DenialConstraint("ord", [Predicate.between_tuples("B", Operator.EQ),
                                 Predicate.between_tuples("C", Operator.LT)]),
    ]
    pairs = []
    for delta, target, target_value in pair_specs:
        with_view = table.perturbed(delta)
        pairs.append((with_view, with_view.with_values({target: target_value})))

    batched = BinaryRepairOracle(SimpleRuleRepair(), constraints, table,
                                 CellRef(0, "B"), use_cache=False)
    reference = BinaryRepairOracle(SimpleRuleRepair(), constraints, table,
                                   CellRef(0, "B"), use_cache=False,
                                   batched_pairs=False, shared_stats=False,
                                   paired=False)
    assert batched.query_pairs(pairs) == [
        (reference.query(constraints, with_table),
         reference.query(constraints, without_table))
        for with_table, without_table in pairs
    ]


# ---------------------------------------------------------------------------
# OracleCache eviction with mixed instance- and pair-fingerprint keys
# (satellite: cache_size 2-4)


@pytest.mark.parametrize("cache_size", [2, 3, 4])
def test_oracle_cache_eviction_with_mixed_key_kinds(cache_size):
    cache = OracleCache(max_entries=cache_size)
    instance_keys = [("names", f"fp{i}") for i in range(3)]
    pair_keys = [("pair", "names", f"fp{i}", f"fp{i}'") for i in range(3)]
    interleaved = [key for pair in zip(instance_keys, pair_keys) for key in pair]
    for i, key in enumerate(interleaved):
        cache.put(key, i % 2)
    assert len(cache) == cache_size
    assert cache.evictions == len(interleaved) - cache_size
    # the newest entries survive regardless of key kind
    for key in interleaved[-cache_size:]:
        assert key in cache
    for key in interleaved[:-cache_size]:
        assert key not in cache


def test_oracle_recomputes_correctly_after_mixed_key_eviction():
    oracle = make_oracle(cache_size=3)
    pairs = sample_pairs(oracle, 4)
    first = oracle.query_pairs(pairs)
    assert oracle.cache_evictions > 0  # 4 pairs thrash a 3-entry cache
    # every answer is recomputed (or re-served) identically after eviction
    second = oracle.query_pairs(pairs)
    assert second == first
    reference = make_oracle(use_cache=False, batched_pairs=False)
    assert first == [
        reference.query_pair(reference.constraints, with_table, without_table)
        for with_table, without_table in pairs
    ]


@pytest.mark.parametrize("cache_size", [2, 4])
def test_query_pair_survives_pair_memo_eviction(cache_size):
    oracle = make_oracle(cache_size=cache_size)
    pairs = sample_pairs(oracle, 3)
    answers = [oracle.query_pair(oracle.constraints, w, wo) for w, wo in pairs]
    assert oracle.cache_evictions > 0
    # the evicted first pair is recomputed, not mis-served
    assert oracle.query_pair(oracle.constraints, *pairs[0]) == answers[0]


# ---------------------------------------------------------------------------
# satellites: the HoloClean fallback warning, degenerate estimates


def test_holoclean_repair_pair_warns_once(caplog):
    HoloCleanRepair._pair_fallback_warned = False
    algorithm = HoloCleanRepair(passes=1, train_on_clean_cells=0)
    oracle = make_oracle(algorithm, use_cache=False)
    (pair,) = sample_pairs(oracle, 1)
    with caplog.at_level(logging.WARNING, logger="repro.repair.holoclean.model"):
        oracle.query_pair(oracle.constraints, *pair)
        oracle.query_pair(oracle.constraints, *pair)
    warnings = [record for record in caplog.records
                if "falls back" in record.message]
    assert len(warnings) == 1  # one-time, not per pair
    assert oracle.pair_walks == 0  # the fallback shares nothing


def test_sampled_estimate_degenerate_sample_counts():
    # n_samples < 2: zero/NaN-safe standard error, degenerate interval
    estimate = SampledShapleyEstimate(CellRef(0, "A"), value=0.5,
                                      standard_error=float("inf"), n_samples=1)
    assert estimate.standard_error == 0.0
    assert estimate.confidence_interval() == (0.5, 0.5)
    nan = float("nan")
    estimate = SampledShapleyEstimate(CellRef(0, "A"), value=-1.0,
                                      standard_error=nan, n_samples=0)
    assert estimate.standard_error == 0.0
    assert estimate.confidence_interval() == (-1.0, -1.0)
    # a healthy estimate is untouched
    estimate = SampledShapleyEstimate(CellRef(0, "A"), value=0.5,
                                      standard_error=0.1, n_samples=100)
    low, high = estimate.confidence_interval()
    assert low == pytest.approx(0.5 - 1.96 * 0.1)
    assert high == pytest.approx(0.5 + 1.96 * 0.1)


def test_estimate_cell_with_one_sample_is_degenerate_but_finite():
    oracle = make_oracle()
    explainer = CellShapleyExplainer(oracle, policy="null", rng=5)
    estimate = explainer.estimate_cell(CellRef(0, "City"), n_samples=1)
    assert estimate.n_samples == 1
    assert estimate.standard_error == 0.0
    assert estimate.confidence_interval() == (estimate.value, estimate.value)
