"""Shared pytest fixtures.

Also makes the test-suite runnable without an installed package by putting
``src/`` on ``sys.path`` (offline environments cannot always perform an
editable install).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import (  # noqa: E402  (import after path fix)
    CellRef,
    TRexConfig,
    TRExExplainer,
    la_liga_clean_table,
    la_liga_constraints,
    la_liga_dirty_table,
    paper_algorithm_1,
)


@pytest.fixture
def dirty_table():
    """The paper's Figure 2a table (fresh copy per test)."""
    return la_liga_dirty_table()


@pytest.fixture
def clean_table():
    """The paper's Figure 2b table (fresh copy per test)."""
    return la_liga_clean_table()


@pytest.fixture
def constraints():
    """The paper's Figure 1 denial constraints C1–C4."""
    return la_liga_constraints()


@pytest.fixture
def algorithm():
    """Algorithm 1 of the paper."""
    return paper_algorithm_1()


@pytest.fixture
def cell_of_interest():
    """The cell whose repair the paper explains: t5[Country]."""
    return CellRef(4, "Country")


@pytest.fixture
def config():
    """A deterministic configuration with a small sampling budget for tests."""
    return TRexConfig(seed=11, cell_samples=40)


@pytest.fixture
def explainer(algorithm, constraints, dirty_table, config):
    """A ready-to-use T-REx explainer on the running example."""
    return TRExExplainer(algorithm, constraints, dirty_table, config)
