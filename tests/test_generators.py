"""Unit tests for the synthetic dataset generators."""

import pytest

from repro.constraints.violations import find_all_violations
from repro.dataset.generators import (
    FlightsGenerator,
    HospitalGenerator,
    SoccerLeagueGenerator,
    TaxGenerator,
)
from repro.errors import TRexError


@pytest.mark.parametrize(
    "generator_class,n_rows",
    [
        (SoccerLeagueGenerator, 40),
        (HospitalGenerator, 50),
        (FlightsGenerator, 40),
        (TaxGenerator, 60),
    ],
)
def test_generated_clean_tables_satisfy_their_constraints(generator_class, n_rows):
    dataset = generator_class(seed=5).generate(n_rows)
    constraints = dataset.constraints()
    assert constraints, "every generator ships at least one constraint"
    violations = find_all_violations(dataset.table, constraints)
    assert len(violations) == 0, f"{generator_class.__name__} produced a dirty 'clean' table"


@pytest.mark.parametrize(
    "generator_class",
    [SoccerLeagueGenerator, HospitalGenerator, FlightsGenerator, TaxGenerator],
)
def test_generators_are_deterministic_given_seed(generator_class):
    first = generator_class(seed=9).generate(30).table
    second = generator_class(seed=9).generate(30).table
    assert first.equals(second)


def test_generators_differ_across_seeds():
    first = HospitalGenerator(seed=1).generate(40).table
    second = HospitalGenerator(seed=2).generate(40).table
    assert not first.equals(second)


def test_soccer_schema_matches_paper_figure2():
    dataset = SoccerLeagueGenerator(seed=0).generate(20)
    assert dataset.table.attributes == ("Team", "City", "Country", "League", "Year", "Place")
    assert len(dataset.constraint_texts) == 4


def test_soccer_generator_rejects_bad_row_count():
    with pytest.raises(TRexError):
        SoccerLeagueGenerator(seed=0).generate(0)


def test_soccer_places_unique_within_league_year():
    table = SoccerLeagueGenerator(seed=3).generate(60).table
    seen = set()
    for row_id in range(table.n_rows):
        key = (
            table.value(row_id, "League"),
            table.value(row_id, "Year"),
            table.value(row_id, "Place"),
        )
        assert key not in seen
        seen.add(key)


def test_hospital_measure_code_determines_name():
    table = HospitalGenerator(seed=7).generate(80).table
    mapping = {}
    for row_id in range(table.n_rows):
        code = table.value(row_id, "MeasureCode")
        name = table.value(row_id, "MeasureName")
        assert mapping.setdefault(code, name) == name


def test_flights_flight_number_determines_route():
    table = FlightsGenerator(seed=7).generate(60).table
    mapping = {}
    for row_id in range(table.n_rows):
        flight = table.value(row_id, "Flight")
        route = (table.value(row_id, "Origin"), table.value(row_id, "Destination"))
        assert mapping.setdefault(flight, route) == route


def test_tax_state_determines_rate():
    table = TaxGenerator(seed=7).generate(80).table
    mapping = {}
    for row_id in range(table.n_rows):
        state = table.value(row_id, "State")
        rate = table.value(row_id, "Rate")
        assert mapping.setdefault(state, rate) == rate
