#!/usr/bin/env python3
"""Quickstart: explain the repair of the paper's running example.

This script walks through the three screens of the original demo (Figure 3)
on the La Liga table of Figure 2:

1. *input* — the dirty table and the denial constraints C1–C4,
2. *repair* — run the black-box repair algorithm (Algorithm 1 here) and show
   which cells changed,
3. *explain* — pick the repaired cell ``t5[Country]`` and rank the
   constraints and table cells by their Shapley value.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    CellRef,
    ExplanationReport,
    TRexConfig,
    TRExExplainer,
    format_dc,
    la_liga_constraints,
    la_liga_dirty_table,
    paper_algorithm_1,
)
from repro.explain.report import render_table_with_highlights, repair_summary


def main() -> None:
    # ------------------------------------------------------------------ input
    dirty = la_liga_dirty_table()
    constraints = la_liga_constraints()

    print("=== Input screen ===")
    print(render_table_with_highlights(dirty, [CellRef(4, "City"), CellRef(4, "Country")],
                                       title="Dirty table (suspicious cells starred):"))
    print("\nDenial constraints:")
    for constraint in constraints:
        print(f"  {constraint.name}: {format_dc(constraint, unicode_symbols=True)}")

    # ----------------------------------------------------------------- repair
    explainer = TRExExplainer(
        paper_algorithm_1(),
        constraints,
        dirty,
        TRexConfig(seed=7, cell_samples=200, replacement_policy="null"),
    )
    print("\n=== Repair screen ===")
    print(repair_summary(dirty, explainer.clean_table))

    # ---------------------------------------------------------------- explain
    cell_of_interest = CellRef(4, "Country")   # t5[Country]
    print("\n=== Explanation screen ===")
    explanation = explainer.explain(cell_of_interest)
    report = ExplanationReport(explanation, constraints=constraints, dirty_table=dirty)
    print(report.to_text(top_k_cells=10))

    print("\nPaper check: Figure 1 reports Shapley values 1/6, 1/6, 2/3, 0 for C1..C4.")
    values = explanation.constraint_shapley.values
    print("Measured      :", {name: round(value, 4) for name, value in sorted(values.items())})


if __name__ == "__main__":
    main()
