#!/usr/bin/env python3
"""Hospital-provider cleaning scenario: HoloClean-lite + cell-level debugging.

The hospital provider/measure table is the canonical HoloClean benchmark
family.  This example shows the second half of the paper's demo scenario
(Section 4): the DCs are *appropriate*, but a dirty cell elsewhere can push
the repair of a specific cell in the wrong direction, so the user asks T-REx
which *cells* were most influential for the repair of their cell of interest.

It also exercises constraint discovery: the DCs used for cleaning are
re-discovered from clean data rather than written by hand.

Run with::

    python examples/hospital_cleaning.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    CellRef,
    HoloCleanRepair,
    HospitalGenerator,
    TRexConfig,
    TRExExplainer,
    discover_fds,
)
from repro.constraints.fd import fds_to_dcs
from repro.dataset.errors import inject_errors
from repro.explain.report import ExplanationReport


def main() -> None:
    # 1. build the clean provider table and *discover* its constraints.
    #    Discovery returns every FD that holds; we keep the five the hospital
    #    benchmark traditionally uses (more would only slow the exact Shapley
    #    computation down without changing the story).
    dataset = HospitalGenerator(seed=77).generate(30)
    clean = dataset.table
    wanted = {
        (("City",), "State"),
        (("City",), "County"),
        (("ZipCode",), "City"),
        (("MeasureCode",), "MeasureName"),
        (("ProviderNumber",), "HospitalName"),
    }
    fds = [fd for fd in discover_fds(clean, max_lhs_size=1) if (fd.lhs, fd.rhs) in wanted]
    constraints = fds_to_dcs(fds)
    print(f"Discovered {len(fds)} functional dependencies; using them as DCs:")
    for constraint in constraints:
        print(f"  {constraint.name}: {constraint.description}")

    # 2. inject swap errors into the State column (the classic hospital errors)
    dirty, report = inject_errors(
        clean, rate=0.0, n_errors=3, error_types=["swap"], attributes=["State"], seed=3
    )
    print(f"\nInjected {len(report)} State errors:")
    for change in report.injected:
        print(f"  {change}")

    # 3. repair with the HoloClean-style engine (the black box of the original demo)
    config = TRexConfig(seed=9, cell_samples=25, replacement_policy="null")
    explainer = TRExExplainer(HoloCleanRepair(), constraints, dirty, config)
    delta = explainer.delta
    print(f"\nHoloClean-lite changed {len(delta)} cells.")
    injected_and_repaired = [cell for cell in report.cells() if cell in delta]
    if not injected_and_repaired:
        print("None of the injected errors was repaired on this instance; "
              "try a different seed.")
        return
    cell_of_interest = injected_and_repaired[0]
    truth = report.truth()[cell_of_interest]
    repaired_value = explainer.clean_table[cell_of_interest]
    print(f"Cell of interest: {cell_of_interest} — dirty {dirty[cell_of_interest]!r}, "
          f"repaired to {repaired_value!r} (ground truth {truth!r})")

    # 4. constraint-level explanation (which DCs drove this repair?)
    constraint_explanation = explainer.explain_constraints(cell_of_interest)
    print("\n" + ExplanationReport(constraint_explanation, constraints=constraints).to_text())

    # 5. cell-level explanation, restricted to the cells that share the tuple's
    #    City (the context HoloClean's features actually condition on), to keep
    #    the number of black-box queries small
    same_city_rows = [
        row for row in range(dirty.n_rows)
        if dirty.value(row, "City") == dirty.value(cell_of_interest.row, "City")
    ]
    probe_cells = [
        CellRef(row, attribute)
        for row in same_city_rows
        for attribute in ("City", "State", "County")
    ][:12]
    cell_explanation = explainer.explain_cells(
        cell_of_interest, cells=probe_cells, exclude_cell_of_interest=True
    )
    print("\nMost influential cells (probing the same-city context):")
    for entry in list(cell_explanation.cell_ranking)[:8]:
        print(f"  {entry.rank}. {entry.item}: {entry.score:+.3f}  value={dirty[entry.item]!r}")

    if repaired_value == truth:
        print("\nThe repair already matches the ground truth; the explanation shows "
              "which neighbouring cells made it possible.")
    else:
        worst = cell_explanation.top_cells(1)[0]
        print(f"\nThe repair is wrong; the most influential cell is {worst} — "
              "fixing it and re-running the repair would be the next demo step.")


if __name__ == "__main__":
    main()
