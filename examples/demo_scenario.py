#!/usr/bin/env python3
"""The paper's Section 4 demo scenario, scripted end to end.

Demo storyline (quoting the paper):

1. start from a soccer database with manually added errors and an initial set
   of DCs — one of which is *wrong* for this data;
2. repair with the HoloClean-style engine and pick a repaired cell of
   interest;
3. invoke T-REx: the wrong constraint is ranked highest for the bad repair;
4. remove / fix the highest-ranked DC and re-repair — the cell of interest is
   now repaired correctly;
5. repeat the exercise for cell explanations: a dirty *cell* elsewhere causes
   a wrong repair; T-REx ranks it highly, the user fixes it and re-repairs.

Run with::

    python examples/demo_scenario.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    CellRef,
    RepairSession,
    SoccerLeagueGenerator,
    TRexConfig,
    parse_dc,
    paper_algorithm_1,
)


def demo_standings_table():
    """A small handcrafted standings table used by scenario A.

    London hosts three Premier-League clubs and the La Liga clubs are spread
    over three cities, so any constraint forcing "one city per league" is
    plainly wrong for this data — which is exactly the kind of constraint a
    user might write by mistake and then debug with T-REx.
    """
    from repro import Table

    rows = [
        ["Arsenal", "London", "England", "Premier League", 2019, 1],
        ["Chelsea", "London", "England", "Premier League", 2019, 2],
        ["Tottenham Hotspur", "London", "England", "Premier League", 2019, 3],
        ["FC Barcelona", "Barcelona", "Spain", "La Liga", 2019, 1],
        ["FC Barcelona", "Barcelona", "Spain", "La Liga", 2018, 1],
        ["Real Madrid", "Madrid", "Spain", "La Liga", 2019, 2],
        ["Real Madrid", "Madrid", "Spain", "La Liga", 2018, 2],
        ["Atletico Madrid", "Madrid", "Spain", "La Liga", 2019, 4],
        ["Sevilla FC", "Seville", "Spain", "La Liga", 2019, 3],
    ]
    return Table(["Team", "City", "Country", "League", "Year", "Place"], rows, name="standings")


def scenario_bad_constraint() -> None:
    """Steps 1–4: a misleading DC causes a wrong repair; T-REx pinpoints it."""
    print("=" * 70)
    print("Scenario A: debugging the constraint set")
    print("=" * 70)

    from repro import SimpleRuleRepair, parse_dcs

    clean = demo_standings_table()
    constraints = parse_dcs(
        [
            "not(t1.Team == t2.Team and t1.City != t2.City)",      # C1: Team -> City
            "not(t1.City == t2.City and t1.Country != t2.Country)",  # C2: City -> Country
            "not(t1.League == t2.League and t1.Country != t2.Country)",  # C3: League -> Country
            "not(t1.League == t2.League and t1.City != t2.City)",  # C4: the WRONG one
        ]
    )

    # manual error, as in the demo: one FC Barcelona row loses its City
    cell_of_interest = CellRef(4, "City")
    truth = clean[cell_of_interest]
    dirty = clean.with_values({cell_of_interest: None})

    session = RepairSession(
        SimpleRuleRepair(),          # FD-style rules derived per constraint
        constraints,
        dirty,
        cell_of_interest=cell_of_interest,
        expected_value=truth,
        config=TRexConfig(seed=13, cell_samples=60, replacement_policy="null"),
    )
    step = session.run_repair()
    print(f"Initial repair: {cell_of_interest} -> {step.cell_of_interest_value!r} "
          f"(expected {truth!r}) — correct: {session.cell_of_interest_is_correct()}")

    explanation = session.explain(constraints_only=True)
    print("Constraint ranking for the (possibly wrong) repair:")
    for entry in explanation.constraint_ranking:
        print(f"  {entry.rank}. {entry.item}: {entry.score:+.3f}")

    top = explanation.constraint_ranking.items()[0]
    print(f"\nRemoving the top-ranked constraint {top} and re-repairing ...")
    step = session.remove_constraint(top)
    print(f"After removal: {cell_of_interest} -> {step.cell_of_interest_value!r} "
          f"— correct: {session.cell_of_interest_is_correct()}")
    print()
    print(session.summary())


def scenario_bad_cell() -> None:
    """Step 5: appropriate DCs, but a dirty cell elsewhere corrupts the repair."""
    print()
    print("=" * 70)
    print("Scenario B: debugging the data itself")
    print("=" * 70)

    dataset = SoccerLeagueGenerator(seed=55).generate(24)
    clean = dataset.table
    constraints = dataset.constraints()

    # find a city that appears exactly twice so a single poisoned sibling row
    # flips the conditional majority for the Country repair
    cell_of_interest = None
    poison_cell = None
    for row in range(clean.n_rows):
        city = clean.value(row, "City")
        siblings = [r for r in range(clean.n_rows)
                    if clean.value(r, "City") == city and r != row]
        if len(siblings) == 1:
            cell_of_interest = CellRef(row, "Country")
            poison_cell = CellRef(siblings[0], "Country")
            break
    if cell_of_interest is None:
        print("No suitable city found for this seed; nothing to demonstrate.")
        return

    truth = clean[cell_of_interest]
    dirty = clean.with_values(
        {
            cell_of_interest: "Unknown",          # the error we want repaired
            poison_cell: "Atlantis",              # the cell that misleads the repair
            CellRef(cell_of_interest.row, "League"): "Regional",  # hide the League signal
        }
    )

    session = RepairSession(
        paper_algorithm_1(),
        constraints,
        dirty,
        cell_of_interest=cell_of_interest,
        expected_value=truth,
        config=TRexConfig(seed=21, cell_samples=80, replacement_policy="null"),
    )
    step = session.run_repair()
    print(f"Initial repair: {cell_of_interest} -> {step.cell_of_interest_value!r} "
          f"(expected {truth!r}) — correct: {session.cell_of_interest_is_correct()}")

    explanation = session.explain()
    print("Most influential cells for this repair:")
    for entry in list(explanation.cell_ranking)[:6]:
        print(f"  {entry.rank}. {entry.item}: {entry.score:+.3f}  (value {dirty[entry.item]!r})")

    print(f"\nFixing the misleading cell {poison_cell} and re-repairing ...")
    step = session.edit_cell(poison_cell, clean[poison_cell])
    print(f"After the fix: {cell_of_interest} -> {step.cell_of_interest_value!r} "
          f"— correct: {session.cell_of_interest_is_correct()}")
    print()
    print(session.summary())


if __name__ == "__main__":
    scenario_bad_constraint()
    scenario_bad_cell()
