#!/usr/bin/env python3
"""Soccer-league scenario: scaled-up standings table, injected errors, three repairers.

This mirrors the workload the paper's introduction motivates — league
standings scraped from the web with occasional wrong cities/countries — but
at a configurable scale, and demonstrates T-REx's algorithm agnosticism by
explaining the *same* repaired cell under three different black-box
repairers (Algorithm 1, the greedy holistic cleaner and HoloClean-lite).

Run with::

    python examples/soccer_league_repair.py [n_rows]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    GreedyHolisticRepair,
    HoloCleanRepair,
    SoccerLeagueGenerator,
    TRexConfig,
    TRExExplainer,
    kendall_tau,
    paper_algorithm_1,
)
from repro.dataset.errors import inject_errors
from repro.explain.report import ExplanationReport


def main(n_rows: int = 40) -> None:
    # 1. generate a clean standings table and the DCs that hold on it
    dataset = SoccerLeagueGenerator(seed=2020).generate(n_rows)
    constraints = dataset.constraints()
    print(f"Generated {dataset.table.n_rows} standings rows "
          f"({dataset.table.n_cells} cells), {len(constraints)} DCs.")

    # 2. inject City/Country errors (the error types of the paper's Figure 2a)
    dirty, report = inject_errors(
        dataset.table,
        rate=0.0,
        n_errors=3,
        error_types=["swap", "domain"],
        attributes=["City", "Country"],
        seed=99,
    )
    print(f"Injected {len(report)} errors:")
    for change in report.injected:
        print(f"  {change}")

    # 3. repair with three different black boxes and explain the same cell
    config = TRexConfig(seed=5, cell_samples=100, replacement_policy="null")
    algorithms = [paper_algorithm_1(), GreedyHolisticRepair(), HoloCleanRepair()]
    rankings = {}
    for algorithm in algorithms:
        explainer = TRExExplainer(algorithm, constraints, dirty, config)
        repaired_cells = explainer.repaired_cells()
        print(f"\n--- {algorithm.name}: repaired {len(repaired_cells)} cells ---")
        injected_and_repaired = [cell for cell in report.cells() if cell in explainer.delta]
        if not injected_and_repaired:
            print("  (none of the injected errors was repaired; skipping explanation)")
            continue
        cell = injected_and_repaired[0]
        explanation = explainer.explain_constraints(cell)
        rankings[algorithm.name] = explanation.constraint_ranking
        print(ExplanationReport(explanation, constraints=constraints, dirty_table=dirty).to_text())

    # 4. compare the constraint rankings across algorithms (agnosticism check)
    names = list(rankings)
    if len(names) >= 2:
        print("\n=== Ranking agreement across repair algorithms ===")
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                tau = kendall_tau(rankings[names[i]], rankings[names[j]])
                print(f"  Kendall tau ({names[i]} vs {names[j]}): {tau:+.2f}")


if __name__ == "__main__":
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    main(rows)
