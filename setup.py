"""Setuptools shim.

The pyproject.toml metadata is authoritative; this file exists so that
legacy (non-PEP-517) editable installs work in offline environments where
the ``wheel`` package is unavailable.
"""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
