"""Incremental evaluation engine vs. the full-rescan reference path.

The incremental engine represents every sampled coalition as a sparse
copy-on-write delta on the dirty table (``PerturbationView``) and maintains
denial-constraint violations under that delta (retract + re-check touched
rows against delta-maintained indexes) instead of materialising a table copy
and rescanning it per black-box repair.

This benchmark does two things:

1. **cross-check** — the cell and constraint Shapley explainers must produce
   *bit-identical* values on both paths for the same seed (the engine changes
   how instances are evaluated, never what the oracle answers);
2. **speedup** — the cell-Shapley sampling loop at the largest size used by
   the seed scaling benchmark (``bench_scaling_cells.py``, 50 rows) must run
   at least 3x faster on the incremental path.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import print_table
from repro import (
    BinaryRepairOracle,
    CellRef,
    CellShapleyExplainer,
    ConstraintShapleyExplainer,
    SimpleRuleRepair,
    SoccerLeagueGenerator,
)
from repro.dataset.errors import inject_errors
from repro.shapley.cells import relevant_cells

#: largest table size exercised by bench_scaling_cells.py
N_ROWS = 50
N_SAMPLES = 30
N_PROBES = 5
#: the refactor's target on a quiet machine; CI overrides this downward via
#: the environment because shared runners add wall-clock noise — the
#: bit-identical cross-check is the hard gate there, the ratio is telemetry
SPEEDUP_FLOOR = float(os.environ.get("TREX_BENCH_SPEEDUP_FLOOR", "3.0"))


def _setup(n_rows: int = N_ROWS):
    dataset = SoccerLeagueGenerator(seed=47).generate(n_rows)
    constraints = dataset.constraints()
    dirty, report = inject_errors(
        dataset.table, rate=0.0, n_errors=1, error_types=["domain"],
        attributes=["Country"], seed=47,
    )
    return constraints, dirty, report.cells()[0]


def _explain(constraints, dirty, cell, incremental: bool):
    oracle = BinaryRepairOracle(SimpleRuleRepair(), constraints, dirty, cell,
                                incremental=incremental)
    explainer = CellShapleyExplainer(oracle, policy="null", rng=3,
                                     incremental=incremental)
    probes = relevant_cells(dirty, constraints, cell)[:N_PROBES]
    start = time.perf_counter()
    result = explainer.explain(cells=probes, n_samples=N_SAMPLES)
    return result, time.perf_counter() - start


def test_incremental_path_is_identical_and_3x_faster(benchmark):
    constraints, dirty, cell = _setup()

    # warm both paths (detector/index construction, fingerprint of the base)
    _explain(constraints, dirty, cell, incremental=True)
    _explain(constraints, dirty, cell, incremental=False)

    timings = {True: [], False: []}
    results = {}
    for _ in range(3):
        for incremental in (False, True):
            result, elapsed = _explain(constraints, dirty, cell, incremental)
            results[incremental] = result
            timings[incremental].append(elapsed)

    # 1. bit-for-bit identical estimates
    assert results[True].values == results[False].values
    assert results[True].standard_errors == results[False].standard_errors

    best_full = min(timings[False])
    best_incremental = min(timings[True])
    speedup = best_full / best_incremental
    print_table(
        f"incremental vs full-rescan — cell Shapley, {N_ROWS} rows, "
        f"{N_PROBES} probes, m={N_SAMPLES}",
        ["path", "best of 3 (s)", "speedup"],
        [
            ["full rescan", f"{best_full:.3f}", "1.0x"],
            ["incremental", f"{best_incremental:.3f}", f"{speedup:.2f}x"],
        ],
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["full_seconds"] = round(best_full, 4)
    benchmark.extra_info["incremental_seconds"] = round(best_incremental, 4)

    # 2. the acceptance floor for the refactor
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental path is only {speedup:.2f}x faster than full rescan "
        f"(floor: {SPEEDUP_FLOOR}x)"
    )

    # time the incremental loop under the benchmark harness for the record
    benchmark.pedantic(
        lambda: _explain(constraints, dirty, cell, incremental=True),
        rounds=1, iterations=1,
    )


def test_constraint_shapley_identical_across_paths(benchmark):
    """Constraint-Shapley cross-check (exact enumeration, both paths)."""
    dataset = SoccerLeagueGenerator(seed=47).generate(12)
    constraints = dataset.constraints()
    dirty, report = inject_errors(
        dataset.table, rate=0.0, n_errors=1, error_types=["domain"],
        attributes=["Country"], seed=47,
    )
    cell = report.cells()[0]

    rankings = {}
    for incremental in (False, True):
        oracle = BinaryRepairOracle(SimpleRuleRepair(), constraints, dirty, cell,
                                    incremental=incremental)
        rankings[incremental] = ConstraintShapleyExplainer(oracle).explain()
    assert rankings[True].values == rankings[False].values

    def run_incremental():
        oracle = BinaryRepairOracle(SimpleRuleRepair(), constraints, dirty, cell,
                                    incremental=True)
        return ConstraintShapleyExplainer(oracle).explain()

    result = benchmark(run_incremental)
    print_table(
        "constraint Shapley — identical on both paths",
        ["constraint", "value"],
        [[name, f"{value:.4f}"] for name, value in result.ranking()],
    )
