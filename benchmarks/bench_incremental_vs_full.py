"""Incremental engine vs. full rescan vs. the paired/batched second-order oracle.

Four end-to-end evaluation paths exist for the cell-Shapley sampling loop:

* **full rescan** — materialised table copies, from-scratch violation
  detection per black-box repair (the reference path);
* **incremental** — PR 1's engine: every coalition is a copy-on-write
  ``PerturbationView`` and violations are delta-maintained base→view, but the
  with/without pair still runs as two independent repairs, every repair pass
  re-derives the full delta and every instance rebuilds its statistics;
* **paired (unbatched)** — PR 2's path: ``query_pair`` evaluates the pair in
  one repair walk (detection state primed once and forked at the differing
  cell) and the walk maintains violations across its own passes;
* **paired + batched + shared stats** — PR 3's path: the explainer
  enqueues all of a cell's pairs into one ``query_pairs`` scheduled pass
  (pair-memo dedup, coalition-prefix grouping, one primed walk per group),
  FD-shape violations are kept as per-group class-partition counters, and one
  revertible ``SharedStatistics`` instance travels across the instances
  instead of per-sample rebuilds.

On top of the fastest path sits the **sharded scheduler** (``n_jobs``): the
job is cut into per-seeded ``(cell, chunk)`` shards executed on worker
processes, each owning a private copy of the whole stack above.  ``n_jobs=1``
runs the identical plan in-process and is the bit-identical baseline for the
``parallel_speedup`` ratio recorded below; the speedup floor is only asserted
on multi-core machines (a single-core box can time-slice, not parallelise).
The scheduler's pool is **warm** by default — workers stay resident across
rounds with their oracle stacks keyed by job-spec fingerprint and ship only
new cache entries home — and the ``warm_pool_speedup`` ratio (same floor
policy) times that against the cold rebuild-per-round lifecycle over three
forced adaptive rounds.

The timed simple-rules loop uses the ``mode`` replacement policy: it is
deterministic (no RNG in replacement values, so timings are stable) and keeps
the equality groups populated — nulling out half the table (the ``null``
policy) deletes most rows from every equality index and makes detection
degenerate rather than representative.  The bit-identical cross-check runs
under both policies.

This benchmark does three things:

1. **cross-check** — all paths must produce *bit-identical* Shapley values
   for a fixed seed, for both bundled black boxes (Algorithm 1's rule repair
   and the greedy holistic repairer) and both replacement policies;
2. **speedup** — the paired+batched path must be ≥2x faster than the
   incremental path on both black boxes' cell-Shapley loops, and the
   incremental path itself must stay ≥3x faster than the full rescan;
3. **record** — timings, speedups, batch-scheduler statistics and the
   configuration are written to ``BENCH_shapley.json`` (override with
   ``TREX_BENCH_JSON``) so the perf trajectory is tracked across PRs; CI
   uploads it as a workflow artifact.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from conftest import print_table
from repro import (
    BinaryRepairOracle,
    CellRef,
    CellShapleyExplainer,
    ConstraintShapleyExplainer,
    GreedyHolisticRepair,
    RepairSession,
    SimpleRuleRepair,
    SoccerLeagueGenerator,
    TRexConfig,
)
from repro.constraints.incremental import repair_walk_for
from repro.dataset.errors import inject_errors
from repro.dataset.generators import HospitalGenerator
from repro.observability import trace as otrace
from repro.shapley.cells import relevant_cells

#: largest table size exercised by bench_scaling_cells.py
N_ROWS = 50
N_SAMPLES = 30
N_PROBES = 5
#: the greedy loop is slower per repair; keep its wall-clock comparable
N_SAMPLES_GREEDY = 8
N_PROBES_GREEDY = 2
#: acceptance floors on a quiet machine; CI overrides these downward via the
#: environment because shared runners add wall-clock noise — the bit-identical
#: cross-check is the hard gate there, the ratios are telemetry
SPEEDUP_FLOOR = float(os.environ.get("TREX_BENCH_SPEEDUP_FLOOR", "3.0"))
PAIRED_FLOOR_GREEDY = float(os.environ.get("TREX_BENCH_PAIRED_FLOOR", "2.0"))
PAIRED_FLOOR_SIMPLE = float(os.environ.get("TREX_BENCH_PAIRED_FLOOR_SIMPLE", "2.0"))
PARALLEL_FLOOR = float(os.environ.get("TREX_BENCH_PARALLEL_FLOOR", "1.5"))
WARM_POOL_FLOOR = float(os.environ.get("TREX_BENCH_WARM_FLOOR", "1.2"))
VECTORIZED_FLOOR = float(os.environ.get("TREX_BENCH_VEC_FLOOR", "1.5"))
BULK_DELTA_FLOOR = float(os.environ.get("TREX_BENCH_BULK_FLOOR", "2.0"))
UPDATE_REFRESH_FLOOR = float(os.environ.get("TREX_BENCH_UPDATE_FLOOR", "2.0"))
BENCH_JSON = os.environ.get("TREX_BENCH_JSON", "BENCH_shapley.json")

#: the live-update comparison: a long-lived session absorbs base-table
#: writes and is read back between them (the dashboard workload the live
#: subsystem exists for).  Each cycle is one write + ``UPDATE_READS_PER_WRITE``
#: explains; the delta-maintained session refreshes only the invalidated
#: estimates once and serves later reads from maintained state, while the
#: ``incremental_updates=False`` reference rebuilds the stack on the write
#: and re-samples from scratch on every read.  Both streams are asserted
#: bit-identical (values and standard errors) on every read before timing
#: is trusted.  The update cell is chosen mode- and repair-target-stable so
#: the write invalidates estimates without forcing the full-drop paths.
UPDATE_ROWS = 20
UPDATE_SAMPLES = 6
UPDATE_READS_PER_WRITE = 2
UPDATE_CYCLES = 3

#: the sharded-scheduler comparison (greedy black box, 2 workers); more
#: samples/probes than the paired greedy section so the per-worker setup cost
#: (fork + job unpickle + oracle build) is amortised into the measurement
PARALLEL_JOBS = 2
N_SAMPLES_PARALLEL = 16
N_PROBES_PARALLEL = 4

#: the warm-vs-cold pool comparison: the rule-repair loop driven through 3
#: forced adaptive rounds with small chunks — per-round work light enough
#: that the per-round pool spawn + stack rebuild + whole-cache round-trip
#: (exactly what the warm pool deletes) is the measured quantity
WARM_POOL_ROUNDS = 3
WARM_POOL_SAMPLES_PER_SHARD = 4

#: the bulk-delta microbenchmark: a 10^4-cell coalition delta (2500 override
#: cells in each of 4 columns, ~6% novel values growing the dictionaries),
#: encoded + primed into an overlay via the one-pass bulk encoder vs the
#: per-value ``code_for`` reference loop
BULK_DELTA_COLUMNS = 4
BULK_DELTA_CELLS_PER_COLUMN = 2500
BULK_DELTA_ROWS = 4000

#: table size of the vectorised-walk scaling point: one greedy repair step
#: (degree ranking + one candidate-trial pass) at dictionary-encoded scale,
#: timed on both engines with detection and encoding primed (telemetry, no
#: floor — the floor is asserted on the 50-row greedy loop where both paths
#: fit the benchmark budget)
SCALING_ROWS = int(os.environ.get("TREX_BENCH_SCALING_ROWS", "5000"))

#: (incremental, paired, second_order, shared_stats, batched_pairs) per path
PATHS = {
    "full": (False, False, False, False, False),
    "incremental": (True, False, False, False, False),
    "paired_nobatch": (True, True, True, False, False),
    "paired": (True, True, True, True, True),
}


def _setup(n_rows: int = N_ROWS):
    dataset = SoccerLeagueGenerator(seed=47).generate(n_rows)
    constraints = dataset.constraints()
    dirty, report = inject_errors(
        dataset.table, rate=0.0, n_errors=1, error_types=["domain"],
        attributes=["Country"], seed=47,
    )
    return constraints, dirty, report.cells()[0]


def _make_algorithm(name: str, second_order: bool, vectorized: bool = True):
    if name == "simple":
        return SimpleRuleRepair(second_order=second_order, vectorized=vectorized)
    return GreedyHolisticRepair(max_changes=30, second_order=second_order,
                                vectorized=vectorized)


def _explain(constraints, dirty, cell, path: str, algorithm: str = "simple",
             policy: str = "mode", n_samples: int = N_SAMPLES,
             n_probes: int = N_PROBES, vectorized: bool = True):
    incremental, paired, second_order, shared_stats, batched_pairs = PATHS[path]
    oracle = BinaryRepairOracle(
        _make_algorithm(algorithm, second_order, vectorized), constraints,
        dirty, cell,
        incremental=incremental, paired=paired,
        shared_stats=shared_stats, batched_pairs=batched_pairs,
        vectorized=vectorized,
    )
    explainer = CellShapleyExplainer(oracle, policy=policy, rng=3,
                                     incremental=incremental, paired=paired,
                                     shared_stats=shared_stats,
                                     batched_pairs=batched_pairs)
    probes = relevant_cells(dirty, constraints, cell)[:n_probes]
    start = time.perf_counter()
    result = explainer.explain(cells=probes, n_samples=n_samples)
    return result, time.perf_counter() - start, oracle


def _walk_scaling_points(reps: int = 3):
    """One greedy repair step at dictionary-encoded scale (``SCALING_ROWS``
    rows), timed on both engines.

    Times what the vectorised engine actually changes inside the greedy
    loop: degree ranking plus one candidate-trial pass — read off the
    walk's class-partition counters and the batched ``count_if_many`` with
    the flag on, versus a materialised ``ViolationSet`` with per-cell
    ``count_for_cell`` lookups and one scalar ``count_if`` per candidate
    with it off.  The shared per-table detector's one-time base detection
    (an object-level pass either engine pays exactly once per process) and
    the base-column dictionary encoding are primed outside the timed
    region, so the numbers are per-step costs, not first-touch setup.  The
    hospital generator is used because the soccer league is bounded by its
    entity pools (~90 distinct rows).  Returns ``{vectorized: (seconds,
    n_violations, totals)}`` with the min over ``reps`` runs per engine.
    """
    dataset = HospitalGenerator(seed=47).generate(SCALING_ROWS)
    constraints = dataset.constraints()
    dirty, report = inject_errors(dataset.table, rate=0.0, n_errors=25, seed=47)
    cell = report.cells()[0]
    pool = sorted(
        {dirty.value(row, cell.attribute) for row in range(200)}, key=repr
    )[:8]

    def _view():
        # the walk engages on views only: an empty-delta view over the base
        return dirty.perturbed({}).mutable_snapshot()

    # prime both engines: base detection into the shared detector cache,
    # base-column codes into the table's dictionary encoding
    for vectorized in (True, False):
        warm = repair_walk_for(_view(), constraints, vectorized=vectorized)
        warm.count_if(cell, pool[0])
        warm.cell_degrees()

    points = {}
    for vectorized in (True, False):
        best = None
        for _ in range(reps):
            walk = repair_walk_for(_view(), constraints, vectorized=vectorized)
            start = time.perf_counter()
            if vectorized:
                n_violations, _degrees = walk.cell_degrees()
                totals = walk.count_if_many(cell, pool)
            else:
                violations = walk.all_violations()
                n_violations = len(violations)
                for degree_cell in violations.cells_involved():
                    violations.count_for_cell(degree_cell)
                totals = [walk.count_if(cell, value) for value in pool]
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        points[vectorized] = (best, n_violations, totals)
    return points


def _bulk_delta_points(reps: int = 5):
    """A 10^4-cell coalition delta, encoded + primed: bulk vs per-value.

    Both paths translate the same per-column override sets into code space
    against the same pre-grown base dictionaries (novel values included, so
    the batched dictionary append is part of the measurement after the first
    warm-up rep) and install the result where the coalition pipeline reads
    it: the bulk path lands ``(rows, codes)`` arrays in a fresh overlay via
    ``adopt_encoded_delta``, the reference builds the ``{row: code}`` dict
    one ``code_for`` probe at a time — exactly the loop
    ``OverlayStore.encoded_delta`` runs.  Returns ``(per_value_seconds,
    bulk_seconds)`` as min over ``reps``, after asserting both paths agree
    code for code.
    """
    import numpy as np

    dataset = HospitalGenerator(seed=47).generate(BULK_DELTA_ROWS)
    table = dataset.table
    attributes = table.attributes[:BULK_DELTA_COLUMNS]
    rng = np.random.default_rng(3)
    deltas = {}
    for attribute in attributes:
        pool = [table.value(int(row), attribute)
                for row in rng.integers(0, table.n_rows, 40)]
        overrides = {}
        for row in rng.choice(table.n_rows, BULK_DELTA_CELLS_PER_COLUMN,
                              replace=False):
            value = pool[int(rng.integers(0, len(pool)))]
            if int(row) % 17 == 0:
                value = f"novel_{attribute}_{int(row)}"  # dictionary growth
            overrides[int(row)] = value
        deltas[attribute] = overrides
    encoding = table.store.encoding()
    for attribute in attributes:
        encoding.codes(table.store, attribute)

    def per_value():
        encoded_columns = {}
        for attribute in attributes:
            encoded = {}
            for row, value in deltas[attribute].items():
                encoded[row] = encoding.code_for(attribute, value)
            encoded_columns[attribute] = encoded
        return encoded_columns

    def bulk():
        store = table.perturbed({})._store
        arrays = {}
        for attribute in attributes:
            rows, codes = encoding.encode_delta(attribute, deltas[attribute])
            store.adopt_encoded_delta(attribute, rows, codes)
            arrays[attribute] = (rows, codes)
        return arrays

    # correctness cross-check (also warms the dictionaries with the novel
    # values, so the timed reps measure steady-state translation)
    reference, arrays = per_value(), bulk()
    for attribute in attributes:
        rows, codes = arrays[attribute]
        assert rows.tolist() == sorted(reference[attribute])
        assert codes.tolist() == \
            [reference[attribute][row] for row in rows.tolist()]

    def best_of(fn):
        best = None
        for _ in range(reps):
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return best

    return best_of(per_value), best_of(bulk)


def _cache_probe(constraints, dirty, cell):
    """Repeated-probe phase: the same probe set explained twice on one oracle.

    The deterministic ``mode`` policy with a fixed seed reproduces every
    coalition bit for bit, so the second pass must be answered from the
    oracle's memoised cache — this is the phase that exercises the hit-rate
    telemetry every one-shot section leaves at zero.  Returns the two pass
    timings and the oracle's statistics snapshot.
    """
    incremental, paired, second_order, shared_stats, batched_pairs = \
        PATHS["paired"]
    oracle = BinaryRepairOracle(
        _make_algorithm("simple", second_order), constraints, dirty, cell,
        incremental=incremental, paired=paired,
        shared_stats=shared_stats, batched_pairs=batched_pairs,
    )
    probes = relevant_cells(dirty, constraints, cell)[:N_PROBES]
    timings = []
    for _ in range(2):
        explainer = CellShapleyExplainer(oracle, policy="mode", rng=3,
                                         incremental=incremental,
                                         paired=paired,
                                         shared_stats=shared_stats,
                                         batched_pairs=batched_pairs)
        start = time.perf_counter()
        explainer.explain(cells=probes, n_samples=N_SAMPLES)
        timings.append(time.perf_counter() - start)
    return timings, oracle.statistics()


def _explain_parallel(constraints, dirty, cell, n_jobs: int):
    """The greedy cell-Shapley loop on the sharded scheduler (full flags on)."""
    oracle = BinaryRepairOracle(
        _make_algorithm("greedy", second_order=True), constraints, dirty, cell,
    )
    explainer = CellShapleyExplainer(oracle, policy="null", rng=3, n_jobs=n_jobs)
    probes = relevant_cells(dirty, constraints, cell)[:N_PROBES_PARALLEL]
    start = time.perf_counter()
    result = explainer.explain(cells=probes, n_samples=N_SAMPLES_PARALLEL)
    return result, time.perf_counter() - start, oracle


def _explain_warm_cold(constraints, dirty, cell, warm_pool: bool):
    """The rule-repair adaptive loop on 2 workers, warm vs cold lifecycle.

    ``min == max == rounds x chunk`` forces exactly ``WARM_POOL_ROUNDS``
    rounds, so both modes execute the identical shard plan; the timing
    includes pool spawning — the cold path's per-round spawn/rebuild/ship
    overhead is precisely what the warm pool exists to delete.
    """
    oracle = BinaryRepairOracle(
        _make_algorithm("simple", second_order=True), constraints, dirty, cell,
    )
    explainer = CellShapleyExplainer(
        oracle, policy="mode", rng=3, n_jobs=PARALLEL_JOBS,
        samples_per_shard=WARM_POOL_SAMPLES_PER_SHARD, warm_pool=warm_pool,
    )
    probes = relevant_cells(dirty, constraints, cell)[:N_PROBES_PARALLEL]
    budget = WARM_POOL_ROUNDS * WARM_POOL_SAMPLES_PER_SHARD
    scheduler = explainer._scheduler(PARALLEL_JOBS)
    with explainer:
        start = time.perf_counter()
        outcome = scheduler.run_adaptive(
            probes, tolerance=1e-12, min_samples=budget, max_samples=budget,
            absorb_into=oracle,
        )
        elapsed = time.perf_counter() - start
    return outcome, elapsed, oracle


def _traced_explain(constraints, dirty, cell):
    """The sharded greedy loop once more, with span tracing on.

    Returns the result (asserted bit-identical to the untraced run by the
    caller), the wall time of the ``explain()`` call, the tracer's per-phase
    summary, the fraction of that wall time the ``explain_job`` span covers,
    and the worker indexes that shipped spans home.  ``TREX_TRACE_OUT=PATH``
    additionally writes the full Chrome ``traceEvents`` JSON (the same
    format the CLI's ``--trace-out`` emits).
    """
    with otrace.tracing() as tracer:
        result, elapsed, _ = _explain_parallel(constraints, dirty, cell,
                                               PARALLEL_JOBS)
        summary = tracer.summary()
        job_seconds = summary.get("explain_job", {}).get("total_seconds", 0.0)
        coverage = job_seconds / elapsed if elapsed else 0.0
        workers = sorted({span.worker for span in tracer.spans
                          if span.worker is not None})
        trace_out = os.environ.get("TREX_TRACE_OUT")
        if trace_out:
            tracer.write_chrome_trace(trace_out)
    return result, elapsed, summary, coverage, workers


def _pick_stable_update_cell(constraints, dirty, cell, algorithm):
    """A Country cell + alternate value whose write moves estimates without
    tripping the conservative full-drop paths.

    The returned write is *mode-stable* (the column's most-common value is
    unchanged, so the MODE replacement overlay keeps its values) and
    *target-stable* (the cell of interest stays repaired to the same value,
    so the oracle cache is rebased instead of dropped).  Both properties are
    re-verified here rather than hardcoded so the workload survives generator
    changes.
    """
    base_target = algorithm().repair(constraints, dirty).clean[cell]
    mode = dirty.stats.marginal("Country").most_common()
    countries = {str(dirty[CellRef(row, "Country")]) for row in range(dirty.n_rows)}
    for offset in range(1, dirty.n_rows):
        update_cell = CellRef((cell.row + offset) % dirty.n_rows, "Country")
        original = dirty[update_cell]
        if str(original) == str(mode):
            continue
        for alternate in sorted(countries - {str(original), str(mode)}):
            updated = dirty.copy().with_values({update_cell: alternate})
            if updated.stats.marginal("Country").most_common() != mode:
                continue
            repair = algorithm().repair(constraints, updated)
            if cell in repair.delta and repair.clean[cell] == base_target:
                return update_cell, original, alternate
    raise AssertionError("no mode- and target-stable update cell found")


def _update_refresh_points():
    """The live-update cycle on both session paths (see ``UPDATE_ROWS``).

    Returns ``(live_times, rebuild_times, identical, live_stats)`` where each
    times list holds per-cycle wall-clock for one write plus
    ``UPDATE_READS_PER_WRITE`` explains, and ``identical`` is the result of
    comparing every read pairwise across the two sessions (values *and*
    standard errors).
    """
    constraints, dirty, cell = _setup(UPDATE_ROWS)
    algorithm = lambda: SimpleRuleRepair(second_order=True)  # noqa: E731
    update_cell, original, alternate = _pick_stable_update_cell(
        constraints, dirty, cell, algorithm)
    config = dict(seed=3, cell_samples=UPDATE_SAMPLES,
                  replacement_policy="mode", n_jobs=None)
    live = RepairSession(algorithm(), constraints, dirty.copy(),
                         cell_of_interest=cell, config=TRexConfig(**config))
    rebuild = RepairSession(algorithm(), constraints, dirty.copy(),
                            cell_of_interest=cell,
                            config=TRexConfig(**config,
                                              incremental_updates=False))
    # alternate the write back and forth so every cycle is a real change
    values = [alternate if cycle % 2 == 0 else original
              for cycle in range(UPDATE_CYCLES)]
    live_times, rebuild_times, identical = [], [], True
    with live, rebuild:
        live.explain()
        rebuild.explain()
        for value in values:
            start = time.perf_counter()
            live.update(update_cell, value)
            live_reads = [live.explain()
                          for _ in range(UPDATE_READS_PER_WRITE)]
            live_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            rebuild.update(update_cell, value)
            rebuild_reads = [rebuild.explain()
                             for _ in range(UPDATE_READS_PER_WRITE)]
            rebuild_times.append(time.perf_counter() - start)
            for live_read, rebuild_read in zip(live_reads, rebuild_reads):
                identical = (
                    identical
                    and live_read.cell_shapley.values
                    == rebuild_read.cell_shapley.values
                    and live_read.cell_shapley.standard_errors
                    == rebuild_read.cell_shapley.standard_errors
                )
        live_stats = live._live.oracle.statistics()
    return live_times, rebuild_times, identical, live_stats


def _write_bench_json(payload: dict) -> None:
    payload = dict(payload)
    payload["benchmark"] = "cell_shapley_paired_oracle"
    payload["config"] = {
        "n_rows": N_ROWS,
        "n_samples": N_SAMPLES,
        "n_probes": N_PROBES,
        "n_samples_greedy": N_SAMPLES_GREEDY,
        "n_probes_greedy": N_PROBES_GREEDY,
        "policy_simple": "mode",
        "policy_greedy": "null",
        "seed": 3,
        "parallel_jobs": PARALLEL_JOBS,
        "n_samples_parallel": N_SAMPLES_PARALLEL,
        "n_probes_parallel": N_PROBES_PARALLEL,
        "warm_pool_rounds": WARM_POOL_ROUNDS,
        "warm_pool_samples_per_shard": WARM_POOL_SAMPLES_PER_SHARD,
        "cpu_count": os.cpu_count(),
        "scaling_rows": SCALING_ROWS,
        "bulk_delta_columns": BULK_DELTA_COLUMNS,
        "bulk_delta_cells_per_column": BULK_DELTA_CELLS_PER_COLUMN,
        "update_rows": UPDATE_ROWS,
        "update_samples": UPDATE_SAMPLES,
        "update_reads_per_write": UPDATE_READS_PER_WRITE,
        "update_cycles": UPDATE_CYCLES,
        "floors": {
            "incremental_vs_full": SPEEDUP_FLOOR,
            "paired_vs_incremental_greedy": PAIRED_FLOOR_GREEDY,
            "paired_vs_incremental_simple": PAIRED_FLOOR_SIMPLE,
            "parallel_speedup": PARALLEL_FLOOR,
            "warm_pool_speedup": WARM_POOL_FLOOR,
            "vectorized_speedup": VECTORIZED_FLOOR,
            "bulk_delta_speedup": BULK_DELTA_FLOOR,
            "update_refresh_speedup": UPDATE_REFRESH_FLOOR,
        },
    }
    payload["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def test_paths_identical_and_paired_is_faster(benchmark):
    constraints, dirty, cell = _setup()

    # -- 1. bit-for-bit identical estimates, every path x both policies -----------------
    for policy in ("null", "mode"):
        results = {}
        for path in PATHS:
            results[path], _, _ = _explain(constraints, dirty, cell, path,
                                           policy=policy)
        for path in ("incremental", "paired_nobatch", "paired"):
            assert results[path].values == results["full"].values, (policy, path)
            assert results[path].standard_errors == results["full"].standard_errors, \
                (policy, path)

    # -- Algorithm 1 (rule repair): all four paths, mode policy --------------------------
    simple_timings = {path: [] for path in PATHS}
    batch_stats = {}
    for _ in range(3):
        for path in PATHS:
            _, elapsed, oracle = _explain(constraints, dirty, cell, path)
            simple_timings[path].append(elapsed)
            if path == "paired":
                batch_stats = oracle.statistics()

    # -- greedy holistic repair: incremental vs paired (null policy) ---------------------
    greedy_args = dict(algorithm="greedy", policy="null",
                       n_samples=N_SAMPLES_GREEDY, n_probes=N_PROBES_GREEDY)
    greedy_paths = ("incremental", "paired_nobatch", "paired")
    greedy_results = {}
    for path in greedy_paths:
        greedy_results[path], _, _ = _explain(constraints, dirty, cell, path,
                                              **greedy_args)
    assert greedy_results["paired"].values == greedy_results["incremental"].values
    assert greedy_results["paired_nobatch"].values == greedy_results["incremental"].values
    greedy_timings = {path: [] for path in greedy_paths}
    for _ in range(2):
        for path in greedy_paths:
            _, elapsed, _ = _explain(constraints, dirty, cell, path, **greedy_args)
            greedy_timings[path].append(elapsed)

    # -- vectorised vs object engine: the same greedy paired loop ------------------------
    greedy_novec, _, _ = _explain(constraints, dirty, cell, "paired",
                                  vectorized=False, **greedy_args)
    assert greedy_novec.values == greedy_results["paired"].values
    novec_timings = []
    for _ in range(2):
        _, elapsed, _ = _explain(constraints, dirty, cell, "paired",
                                 vectorized=False, **greedy_args)
        novec_timings.append(elapsed)

    # -- vectorised greedy step at dictionary-encoded scale (SCALING_ROWS rows) ----------
    scaling = _walk_scaling_points()
    # identical violations and candidate-trial counts at scale
    assert scaling[True][1:] == scaling[False][1:]

    # -- bulk delta encoding: a 10^4-cell coalition delta, bulk vs per-value -------------
    bulk_per_value_seconds, bulk_seconds = _bulk_delta_points()

    # -- repeated probes: the second pass must hit the oracle cache ----------------------
    cache_probe_timings, cache_probe_stats = _cache_probe(constraints, dirty, cell)
    assert cache_probe_stats["cache_hits"] > 0, (
        "the repeated-probe phase recorded zero cache hits — the hit-rate "
        "telemetry is not being exercised"
    )

    # -- sharded scheduler: 2 workers vs the identical in-process plan -------------------
    parallel_results = {}
    parallel_timings = {n_jobs: [] for n_jobs in (1, PARALLEL_JOBS)}
    for repeat in range(2):
        for n_jobs in (1, PARALLEL_JOBS):
            result, elapsed, oracle = _explain_parallel(constraints, dirty, cell, n_jobs)
            parallel_timings[n_jobs].append(elapsed)
            if repeat == 0:
                parallel_results[n_jobs] = result
                if n_jobs == PARALLEL_JOBS:
                    parallel_stats = oracle.statistics()
    assert parallel_results[PARALLEL_JOBS].values == parallel_results[1].values
    assert (parallel_results[PARALLEL_JOBS].standard_errors
            == parallel_results[1].standard_errors)
    assert parallel_stats["parallel_workers"] == PARALLEL_JOBS

    # -- tracing on the same sharded loop: zero perturbation, ≥95% coverage --------------
    traced_result, traced_seconds, trace_summary, trace_coverage, trace_workers = \
        _traced_explain(constraints, dirty, cell)
    assert traced_result.values == parallel_results[1].values, (
        "tracing perturbed the sharded estimates — spans must observe, never feed"
    )
    assert trace_coverage >= 0.95, (
        f"the explain_job span covers only {trace_coverage:.1%} of the traced "
        f"explain wall time (floor: 95%)"
    )
    assert trace_workers, (
        "no worker spans were stitched into the parent trace — the "
        "WorkerReport span shipping is broken"
    )

    # -- warm pool vs cold pool: 3 adaptive rounds, 2 workers ----------------------------
    warm_pool_outcomes = {}
    warm_pool_timings = {mode: [] for mode in ("warm", "cold")}
    warm_pool_stats = {}
    for repeat in range(2):
        for mode, is_warm in (("warm", True), ("cold", False)):
            outcome, elapsed, pool_oracle = _explain_warm_cold(
                constraints, dirty, cell, warm_pool=is_warm)
            warm_pool_timings[mode].append(elapsed)
            if repeat == 0:
                warm_pool_outcomes[mode] = outcome
                warm_pool_stats[mode] = pool_oracle.statistics()
    # the hard gate: resident state and diff shipping change no bits
    assert warm_pool_outcomes["warm"].estimates == warm_pool_outcomes["cold"].estimates
    # the warm pool's accounting: stacks built once vs once per round, and
    # strictly fewer cache entries crossing a process boundary
    assert warm_pool_stats["warm"]["worker_rebuilds"] == PARALLEL_JOBS
    assert warm_pool_stats["cold"]["worker_rebuilds"] == \
        PARALLEL_JOBS * WARM_POOL_ROUNDS
    assert (warm_pool_stats["warm"]["cache_entries_shipped"]
            <= warm_pool_stats["cold"]["cache_entries_shipped"])

    # -- live base updates: delta-maintained session vs rebuild-per-write ---------------
    update_live_times, update_rebuild_times, update_identical, update_stats = \
        _update_refresh_points()
    assert update_identical, (
        "the delta-maintained session drifted from the rebuild-per-write "
        "reference — the live update path must be numerically invisible"
    )
    assert update_stats["base_updates_applied"] == UPDATE_CYCLES
    # every cycle's write must land on the selective-invalidation path: the
    # picked cell is mode- and target-stable, so neither full-drop branch fires
    assert update_stats["cache_entries_invalidated"] > 0

    best = {f"simple_{path}": min(times) for path, times in simple_timings.items()}
    best.update({f"greedy_{path}": min(times) for path, times in greedy_timings.items()})
    best["greedy_paired_novec"] = min(novec_timings)
    best["greedy_sharded_1job"] = min(parallel_timings[1])
    best[f"greedy_sharded_{PARALLEL_JOBS}jobs"] = min(parallel_timings[PARALLEL_JOBS])
    best["simple_warm_pool"] = min(warm_pool_timings["warm"])
    best["simple_cold_pool"] = min(warm_pool_timings["cold"])
    best["session_update_live"] = min(update_live_times)
    best["session_update_rebuild"] = min(update_rebuild_times)
    speedups = {
        "incremental_vs_full": best["simple_full"] / best["simple_incremental"],
        "paired_vs_incremental_simple": best["simple_incremental"] / best["simple_paired"],
        "paired_vs_full_simple": best["simple_full"] / best["simple_paired"],
        "batched_vs_unbatched_simple": best["simple_paired_nobatch"] / best["simple_paired"],
        "paired_vs_incremental_greedy": best["greedy_incremental"] / best["greedy_paired"],
        "batched_vs_unbatched_greedy": best["greedy_paired_nobatch"] / best["greedy_paired"],
        "parallel_speedup": (best["greedy_sharded_1job"]
                             / best[f"greedy_sharded_{PARALLEL_JOBS}jobs"]),
        "warm_pool_speedup": best["simple_cold_pool"] / best["simple_warm_pool"],
        "vectorized_speedup": best["greedy_paired_novec"] / best["greedy_paired"],
        "vectorized_walk_scaling": scaling[False][0] / scaling[True][0],
        "bulk_delta_speedup": bulk_per_value_seconds / bulk_seconds,
        "repeat_probe_speedup": cache_probe_timings[0] / cache_probe_timings[1],
        "update_refresh_speedup": (best["session_update_rebuild"]
                                   / best["session_update_live"]),
    }
    print_table(
        f"evaluation paths — cell Shapley, {N_ROWS} rows (best-of runs)",
        ["black box", "path", "seconds", "vs incremental"],
        [
            ["simple rules", "full rescan", f"{best['simple_full']:.3f}",
             f"{best['simple_full'] / best['simple_incremental']:.2f}x slower"],
            ["simple rules", "incremental", f"{best['simple_incremental']:.3f}", "1.00x"],
            ["simple rules", "paired (no batch)", f"{best['simple_paired_nobatch']:.3f}",
             f"{best['simple_incremental'] / best['simple_paired_nobatch']:.2f}x"],
            ["simple rules", "paired+batched+stats", f"{best['simple_paired']:.3f}",
             f"{speedups['paired_vs_incremental_simple']:.2f}x"],
            ["greedy holistic", "incremental", f"{best['greedy_incremental']:.3f}", "1.00x"],
            ["greedy holistic", "paired (no batch)", f"{best['greedy_paired_nobatch']:.3f}",
             f"{best['greedy_incremental'] / best['greedy_paired_nobatch']:.2f}x"],
            ["greedy holistic", "paired+batched+stats", f"{best['greedy_paired']:.3f}",
             f"{speedups['paired_vs_incremental_greedy']:.2f}x"],
            ["greedy holistic", "paired, object path", f"{best['greedy_paired_novec']:.3f}",
             f"{speedups['vectorized_speedup']:.2f}x slower than vectorised"],
            ["greedy holistic", f"step @ {SCALING_ROWS} rows, vectorised",
             f"{scaling[True][0]:.3f}",
             f"{speedups['vectorized_walk_scaling']:.2f}x vs object "
             f"({scaling[False][0]:.3f}s)"],
            ["greedy holistic", "sharded plan, 1 job", f"{best['greedy_sharded_1job']:.3f}",
             "(parallel baseline)"],
            ["greedy holistic", f"sharded, {PARALLEL_JOBS} workers",
             f"{best[f'greedy_sharded_{PARALLEL_JOBS}jobs']:.3f}",
             f"{speedups['parallel_speedup']:.2f}x vs 1 job"],
            ["simple rules", f"cold pool, {WARM_POOL_ROUNDS} rounds",
             f"{best['simple_cold_pool']:.3f}", "(warm-pool baseline)"],
            ["simple rules", f"warm pool, {WARM_POOL_ROUNDS} rounds",
             f"{best['simple_warm_pool']:.3f}",
             f"{speedups['warm_pool_speedup']:.2f}x vs cold"],
            ["(encoding)", "10^4-cell delta, per-value",
             f"{bulk_per_value_seconds:.4f}", "(bulk baseline)"],
            ["(encoding)", "10^4-cell delta, bulk",
             f"{bulk_seconds:.4f}",
             f"{speedups['bulk_delta_speedup']:.2f}x vs per-value"],
            ["simple rules", "repeated probes, 2nd pass",
             f"{cache_probe_timings[1]:.3f}",
             f"{cache_probe_stats['cache_hits']} cache hits"],
            ["simple rules",
             f"update cycle, rebuild ({UPDATE_READS_PER_WRITE} reads/write)",
             f"{best['session_update_rebuild']:.3f}", "(live-update baseline)"],
            ["simple rules",
             f"update cycle, live ({UPDATE_READS_PER_WRITE} reads/write)",
             f"{best['session_update_live']:.3f}",
             f"{speedups['update_refresh_speedup']:.2f}x vs rebuild"],
        ],
    )
    _write_bench_json({
        "seconds": {key: round(value, 4) for key, value in best.items()},
        "speedups": {key: round(value, 2) for key, value in speedups.items()},
        "bulk_delta": {
            "cells": BULK_DELTA_COLUMNS * BULK_DELTA_CELLS_PER_COLUMN,
            "columns": BULK_DELTA_COLUMNS,
            "per_value_seconds": round(bulk_per_value_seconds, 4),
            "bulk_seconds": round(bulk_seconds, 4),
        },
        "cache_probe": {
            "first_pass_seconds": round(cache_probe_timings[0], 4),
            "second_pass_seconds": round(cache_probe_timings[1], 4),
            "cache_hits": cache_probe_stats["cache_hits"],
            "cache_misses": cache_probe_stats["cache_misses"],
            "hit_rate": round(
                cache_probe_stats["cache_hits"]
                / max(1, cache_probe_stats["cache_hits"]
                      + cache_probe_stats["cache_misses"]), 4),
        },
        "vectorized_walk_scaling": {
            "n_rows": SCALING_ROWS,
            "vectorized_seconds": round(scaling[True][0], 4),
            "object_seconds": round(scaling[False][0], 4),
            "n_violations": scaling[True][1],
        },
        "batch_scheduler": {
            key: batch_stats.get(key, 0)
            for key in ("batches", "pairs_batched", "pairs_deduped",
                        "max_batch_size", "pair_walks", "repair_runs",
                        "cache_hits", "cache_misses", "cache_evictions",
                        "stats_leases", "stats_cells_moved")
        },
        "parallel_scheduler": {
            key: parallel_stats.get(key, 0)
            for key in ("parallel_workers", "parallel_shards", "oracle_calls",
                        "repair_runs", "batches", "pairs_batched",
                        "pairs_deduped", "cache_hits", "cache_misses",
                        "cache_evictions", "stats_leases", "stats_cells_moved")
        },
        "trace": {
            "explain_seconds": round(traced_seconds, 4),
            "coverage": round(trace_coverage, 4),
            "workers": trace_workers,
            "per_phase": trace_summary,
        },
        "warm_pool": {
            mode: {
                key: warm_pool_stats[mode].get(key, 0)
                for key in ("worker_rebuilds", "cache_entries_shipped",
                            "shards_requeued", "workers_restarted",
                            "parallel_shards", "cache_hits", "cache_misses")
            }
            for mode in ("warm", "cold")
        },
        "live_updates": {
            "n_rows": UPDATE_ROWS,
            "n_samples": UPDATE_SAMPLES,
            "reads_per_write": UPDATE_READS_PER_WRITE,
            "cycles": UPDATE_CYCLES,
            "live_seconds": round(min(update_live_times), 4),
            "rebuild_seconds": round(min(update_rebuild_times), 4),
            "base_updates_applied": update_stats["base_updates_applied"],
            "estimates_invalidated": update_stats["estimates_invalidated"],
            "cache_entries_invalidated":
                update_stats["cache_entries_invalidated"],
        },
    })
    for key, value in speedups.items():
        benchmark.extra_info[key] = round(value, 2)

    # 2. the acceptance floors
    assert speedups["incremental_vs_full"] >= SPEEDUP_FLOOR, (
        f"incremental path is only {speedups['incremental_vs_full']:.2f}x faster "
        f"than full rescan (floor: {SPEEDUP_FLOOR}x)"
    )
    assert speedups["paired_vs_incremental_greedy"] >= PAIRED_FLOOR_GREEDY, (
        f"paired path is only {speedups['paired_vs_incremental_greedy']:.2f}x faster "
        f"than the incremental path on the greedy loop (floor: {PAIRED_FLOOR_GREEDY}x)"
    )
    assert speedups["paired_vs_incremental_simple"] >= PAIRED_FLOOR_SIMPLE, (
        f"paired path is only {speedups['paired_vs_incremental_simple']:.2f}x faster "
        f"than the incremental path on the rule-repair loop "
        f"(floor: {PAIRED_FLOOR_SIMPLE}x)"
    )
    assert speedups["vectorized_speedup"] >= VECTORIZED_FLOOR, (
        f"the vectorised engine is only {speedups['vectorized_speedup']:.2f}x "
        f"faster than the object path on the greedy paired loop "
        f"(floor: {VECTORIZED_FLOOR}x)"
    )
    assert speedups["bulk_delta_speedup"] >= BULK_DELTA_FLOOR, (
        f"the bulk delta encoder is only {speedups['bulk_delta_speedup']:.2f}x "
        f"faster than the per-value code_for loop on the 10^4-cell coalition "
        f"delta (floor: {BULK_DELTA_FLOOR}x)"
    )
    # sequential path (n_jobs=None): no multicore gate — a one-CPU box must
    # still hold this floor
    assert speedups["update_refresh_speedup"] >= UPDATE_REFRESH_FLOOR, (
        f"the delta-maintained session is only "
        f"{speedups['update_refresh_speedup']:.2f}x faster than rebuilding "
        f"per write over {UPDATE_CYCLES} update cycles of "
        f"{UPDATE_READS_PER_WRITE} reads each (floor: {UPDATE_REFRESH_FLOOR}x)"
    )
    # the parallel floor needs real cores: a single-CPU box can only
    # time-slice two workers, so there the ratio is recorded as telemetry
    # (the bit-identical cross-check above remains the hard gate)
    if (os.cpu_count() or 1) >= PARALLEL_JOBS:
        assert speedups["parallel_speedup"] >= PARALLEL_FLOOR, (
            f"{PARALLEL_JOBS} workers are only {speedups['parallel_speedup']:.2f}x "
            f"faster than the in-process plan on the greedy loop "
            f"(floor: {PARALLEL_FLOOR}x)"
        )
        assert speedups["warm_pool_speedup"] >= WARM_POOL_FLOOR, (
            f"the warm pool is only {speedups['warm_pool_speedup']:.2f}x faster "
            f"than the cold rebuild-per-round pool over {WARM_POOL_ROUNDS} "
            f"adaptive rounds (floor: {WARM_POOL_FLOOR}x)"
        )

    # time the paired loop under the benchmark harness for the record
    benchmark.pedantic(
        lambda: _explain(constraints, dirty, cell, "paired"),
        rounds=1, iterations=1,
    )


def test_constraint_shapley_identical_across_paths(benchmark):
    """Constraint-Shapley cross-check (exact enumeration, both paths)."""
    dataset = SoccerLeagueGenerator(seed=47).generate(12)
    constraints = dataset.constraints()
    dirty, report = inject_errors(
        dataset.table, rate=0.0, n_errors=1, error_types=["domain"],
        attributes=["Country"], seed=47,
    )
    cell = report.cells()[0]

    rankings = {}
    for incremental in (False, True):
        oracle = BinaryRepairOracle(SimpleRuleRepair(), constraints, dirty, cell,
                                    incremental=incremental)
        rankings[incremental] = ConstraintShapleyExplainer(oracle).explain()
    assert rankings[True].values == rankings[False].values

    def run_incremental():
        oracle = BinaryRepairOracle(SimpleRuleRepair(), constraints, dirty, cell,
                                    incremental=True)
        return ConstraintShapleyExplainer(oracle).explain()

    result = benchmark(run_incremental)
    print_table(
        "constraint Shapley — identical on both paths",
        ["constraint", "value"],
        [[name, f"{value:.4f}"] for name, value in result.ranking()],
    )
