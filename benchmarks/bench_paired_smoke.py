"""CI smoke test: the paired oracle on the 20-row example vs. the reference path.

A fast, wall-clock-insensitive gate for shared CI runners: run the paired
second-order path and the materialise-and-rescan reference path on a small
instance of the scaling dataset and require bit-identical Shapley estimates
and sane oracle accounting.  The timing-sensitive floors live in
``bench_incremental_vs_full.py``; this job only guards correctness of the
paired machinery end to end.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro import (
    BinaryRepairOracle,
    CellShapleyExplainer,
    GreedyHolisticRepair,
    SimpleRuleRepair,
    SoccerLeagueGenerator,
)
from repro.dataset.errors import inject_errors
from repro.shapley.cells import relevant_cells

N_ROWS = 20
N_SAMPLES = 12
N_PROBES = 4


def _setup():
    dataset = SoccerLeagueGenerator(seed=47).generate(N_ROWS)
    constraints = dataset.constraints()
    dirty, report = inject_errors(
        dataset.table, rate=0.0, n_errors=1, error_types=["domain"],
        attributes=["Country"], seed=47,
    )
    return constraints, dirty, report.cells()[0]


@pytest.mark.parametrize("algorithm_factory,label", [
    (SimpleRuleRepair, "simple-rules"),
    (lambda: GreedyHolisticRepair(max_changes=25), "greedy-holistic"),
])
def test_paired_path_matches_reference_on_20_rows(algorithm_factory, label):
    constraints, dirty, cell = _setup()
    results = {}
    oracles = {}
    for path, (incremental, paired) in {
        "reference": (False, False),
        "paired": (True, True),
    }.items():
        oracle = BinaryRepairOracle(algorithm_factory(), constraints, dirty, cell,
                                    incremental=incremental, paired=paired)
        explainer = CellShapleyExplainer(oracle, policy="null", rng=3,
                                         incremental=incremental, paired=paired)
        probes = relevant_cells(dirty, constraints, cell)[:N_PROBES]
        results[path] = explainer.explain(cells=probes, n_samples=N_SAMPLES)
        oracles[path] = oracle

    assert results["paired"].values == results["reference"].values
    assert results["paired"].standard_errors == results["reference"].standard_errors
    assert results["paired"].n_samples == results["reference"].n_samples
    # the paired oracle actually shared walks (not a silent fallback), and
    # issued exactly as many oracle queries as the reference path
    assert oracles["paired"].pair_walks > 0
    assert oracles["paired"].calls == oracles["reference"].calls

    print_table(
        f"paired smoke — {label}, {N_ROWS} rows, m={N_SAMPLES}",
        ["cell", "shapley"],
        [[str(cell_), f"{value:.4f}"]
         for cell_, value in sorted(results["paired"].values.items(),
                                    key=lambda item: -abs(item[1]))[:5]],
    )
