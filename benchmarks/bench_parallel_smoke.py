"""CI smoke test: the sharded scheduler with 2 workers vs the in-process plan.

A fast, wall-clock-insensitive gate for shared CI runners: run the 20-row
cell-Shapley loop through the sharded scheduler with ``n_jobs=2`` (real
worker processes) and with ``n_jobs=1`` (the identical plan in-process) and
require bit-identical estimates plus honest accounting — the workers really
fanned out, their counters and caches really came home.  The
timing-sensitive ``parallel_speedup`` floor lives in
``bench_incremental_vs_full.py``; this job only guards correctness of the
parallel machinery end to end.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro import (
    BinaryRepairOracle,
    CellShapleyExplainer,
    GreedyHolisticRepair,
    SimpleRuleRepair,
    SoccerLeagueGenerator,
)
from repro.dataset.errors import inject_errors
from repro.shapley.cells import relevant_cells

N_ROWS = 20
N_SAMPLES = 12
N_PROBES = 4
N_JOBS = 2


def _setup():
    dataset = SoccerLeagueGenerator(seed=47).generate(N_ROWS)
    constraints = dataset.constraints()
    dirty, report = inject_errors(
        dataset.table, rate=0.0, n_errors=1, error_types=["domain"],
        attributes=["Country"], seed=47,
    )
    return constraints, dirty, report.cells()[0]


@pytest.mark.parametrize("algorithm_factory,label", [
    (SimpleRuleRepair, "simple-rules"),
    (lambda: GreedyHolisticRepair(max_changes=25), "greedy-holistic"),
])
def test_two_workers_match_in_process_plan_on_20_rows(algorithm_factory, label):
    constraints, dirty, cell = _setup()
    results = {}
    oracles = {}
    for n_jobs in (1, N_JOBS):
        oracle = BinaryRepairOracle(algorithm_factory(), constraints, dirty, cell)
        explainer = CellShapleyExplainer(oracle, policy="null", rng=3,
                                         n_jobs=n_jobs, samples_per_shard=4)
        probes = relevant_cells(dirty, constraints, cell)[:N_PROBES]
        results[n_jobs] = explainer.explain(cells=probes, n_samples=N_SAMPLES)
        oracles[n_jobs] = oracle

    assert results[N_JOBS].values == results[1].values
    assert results[N_JOBS].standard_errors == results[1].standard_errors
    assert results[N_JOBS].n_samples == results[1].n_samples
    # the fan-out was real and fully merged: both worker oracles reported
    # home (absorbed query counts match the in-process plan's), the merged
    # cache is warm, and the shard count matches the plan
    assert oracles[N_JOBS].parallel_workers == N_JOBS
    assert oracles[N_JOBS].parallel_shards == oracles[1].parallel_shards == \
        N_PROBES * -(-N_SAMPLES // 4)
    assert oracles[N_JOBS].calls == oracles[1].calls
    assert oracles[N_JOBS].cache is not None and len(oracles[N_JOBS].cache) > 0

    print_table(
        f"parallel smoke — {label}, {N_ROWS} rows, m={N_SAMPLES}, "
        f"{N_JOBS} workers",
        ["cell", "shapley"],
        [[str(cell_), f"{value:.4f}"]
         for cell_, value in sorted(results[N_JOBS].values.items(),
                                    key=lambda item: -abs(item[1]))[:5]],
    )
