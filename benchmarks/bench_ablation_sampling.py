"""E10 (ablation) — sampling strategies and replacement policies.

Two design choices of the cell-Shapley estimator are ablated on the running
example:

1. **replacement policy** — the paper's algorithm samples replacement values
   from the column distribution (Example 2.5) while its formal definition
   nulls the cells out (Section 2.2); a most-frequent-value policy is added
   as a deterministic baseline.  The benchmark reports the resulting top
   cells and checks that the paper's qualitative claims hold under the
   definition-faithful (null) policy.
2. **permutation sampling strategy** for generic games — plain vs. antithetic
   vs. stratified sampling at an equal query budget, measured by the error
   against the exact values on the constraint game (where ground truth is
   computable).
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro import BinaryRepairOracle, CellRef, CellShapleyExplainer
from repro.dataset.examples import FIGURE1_SHAPLEY_VALUES
from repro.shapley.constraints import ConstraintRepairGame
from repro.shapley.convergence import mean_absolute_error
from repro.shapley.permutation import permutation_shapley, stratified_permutation_shapley

CELL_OF_INTEREST = CellRef(4, "Country")
PROBES = [CellRef(4, "League"), CellRef(5, "City"), CellRef(2, "Country"), CellRef(0, "Place")]


@pytest.mark.parametrize("policy", ["null", "sample", "mode"])
def test_ablation_replacement_policy(benchmark, la_liga_setup, policy):
    oracle = BinaryRepairOracle(
        la_liga_setup["algorithm"], la_liga_setup["constraints"], la_liga_setup["dirty"], CELL_OF_INTEREST
    )

    def run():
        explainer = CellShapleyExplainer(oracle, policy=policy, rng=17)
        return explainer.explain(cells=PROBES, n_samples=120)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[str(cell), f"{value:+.4f}"] for cell, value in result.ranking()]
    print_table(f"E10 — cell Shapley under the '{policy}' replacement policy", ["cell", "shapley"], rows)

    values = result.values
    # the inert cell stays at zero under every policy
    assert values[CellRef(0, "Place")] == pytest.approx(0.0, abs=1e-12)
    if policy == "null":
        # the paper's Example 2.4 ordering holds under the definition-faithful policy
        assert values[CellRef(4, "League")] > values[CellRef(5, "City")]
        assert result.ranking()[0][0] == CellRef(4, "League")
    benchmark.extra_info["policy"] = policy
    benchmark.extra_info["ranking"] = [str(c) for c, _ in result.ranking()]


@pytest.mark.parametrize("strategy", ["plain", "antithetic", "stratified"])
def test_ablation_permutation_strategy(benchmark, la_liga_setup, strategy):
    oracle = BinaryRepairOracle(
        la_liga_setup["algorithm"], la_liga_setup["constraints"], la_liga_setup["dirty"], CELL_OF_INTEREST
    )
    game = ConstraintRepairGame(oracle)

    def run():
        if strategy == "plain":
            return permutation_shapley(game, n_permutations=120, rng=5)
        if strategy == "antithetic":
            return permutation_shapley(game, n_permutations=60, rng=5, antithetic=True)
        return stratified_permutation_shapley(game, n_permutations_per_position=30, rng=5)

    estimate = benchmark(run)
    error = mean_absolute_error(estimate.values, FIGURE1_SHAPLEY_VALUES)
    rows = [[name, f"{FIGURE1_SHAPLEY_VALUES[name]:.4f}", f"{estimate[name]:+.4f}"]
            for name in sorted(FIGURE1_SHAPLEY_VALUES)]
    print_table(
        f"E10 — permutation strategy '{strategy}' vs the exact Figure 1 values",
        ["constraint", "exact", "estimate"],
        rows,
    )
    print(f"mean absolute error: {error:.4f}")
    assert error <= 0.12
    benchmark.extra_info["mae"] = round(error, 5)
