"""Disabled-telemetry overhead guard.

The observability layer's contract is *zero cost when off*: with no tracer
installed every instrumented call site pays exactly one ``otrace.current()``
read (a module global plus a pid compare) and skips all span work.  This
fast check guards that contract two ways:

1. **end-to-end** — the same sequential cell-Shapley explain is timed with
   tracing off and with tracing on.  The traced run does strictly more work
   (span objects, timestamps, a stitched tree), so the *untraced* run
   exceeding ``TREX_TELEMETRY_NOISE`` x the traced time can only mean the
   disabled path grew real overhead — exactly the regression this job
   exists to catch.  Estimates must stay bit-identical either way.
2. **guard microcost** — a million ``otrace.current()`` reads must stay
   under a generous wall-clock bound, pinning the off-path branch to
   "pointer check" costs.

Kept deliberately small (tens of milliseconds of explain per rep) so CI
can afford to run it on every push.
"""

from __future__ import annotations

import os
import time

from conftest import print_table
from repro import BinaryRepairOracle, CellShapleyExplainer, SimpleRuleRepair
from repro.dataset.examples import la_liga_constraints, la_liga_dirty_table
from repro.observability import trace as otrace
from repro.shapley.cells import relevant_cells

#: the untraced run may be at most this multiple of the traced run — wide
#: enough for shared-runner noise, tight enough to catch a disabled path
#: that started building spans or formatting event payloads
NOISE_BAND = float(os.environ.get("TREX_TELEMETRY_NOISE", "1.3"))
N_REPS = 5
N_SAMPLES = 20
#: one million disabled-path guard reads must finish inside this bound
GUARD_READS = 1_000_000
GUARD_SECONDS = 2.0


def _explain_once():
    table = la_liga_dirty_table()
    constraints = la_liga_constraints()
    cell = SimpleRuleRepair().repair(constraints, table).delta.cells()[0]
    oracle = BinaryRepairOracle(SimpleRuleRepair(), constraints, table, cell)
    explainer = CellShapleyExplainer(oracle, policy="mode", rng=3)
    probes = relevant_cells(table, constraints, cell)[:4]
    start = time.perf_counter()
    result = explainer.explain(cells=probes, n_samples=N_SAMPLES)
    return result, time.perf_counter() - start


def _best_of(reps: int):
    best_seconds, values = None, None
    for _ in range(reps):
        result, elapsed = _explain_once()
        best_seconds = elapsed if best_seconds is None else min(best_seconds, elapsed)
        values = result.values
    return best_seconds, values


def test_disabled_telemetry_stays_within_noise():
    assert otrace.current() is None, "a tracer leaked in from another test"
    off_seconds, off_values = _best_of(N_REPS)
    with otrace.tracing():
        on_seconds, on_values = _best_of(N_REPS)
    assert otrace.current() is None

    # telemetry observes the run, never feeds it
    assert on_values == off_values, (
        "tracing changed the Shapley estimates — spans must be read-only"
    )

    start = time.perf_counter()
    for _ in range(GUARD_READS):
        otrace.current()
    guard_seconds = time.perf_counter() - start

    print_table(
        "telemetry overhead (sequential explain, best of "
        f"{N_REPS}, {N_SAMPLES} samples x 4 cells)",
        ["path", "seconds", "note"],
        [
            ["tracing off", f"{off_seconds:.4f}", "(the guarded default)"],
            ["tracing on", f"{on_seconds:.4f}",
             f"{on_seconds / off_seconds:.2f}x of off"],
            [f"{GUARD_READS} guard reads", f"{guard_seconds:.4f}",
             f"bound {GUARD_SECONDS}s"],
        ],
    )

    assert off_seconds <= on_seconds * NOISE_BAND, (
        f"the disabled-telemetry explain took {off_seconds:.4f}s vs "
        f"{on_seconds:.4f}s traced — more than {NOISE_BAND}x the traced run, "
        f"so the off path is no longer free"
    )
    assert guard_seconds < GUARD_SECONDS, (
        f"{GUARD_READS} otrace.current() reads took {guard_seconds:.2f}s "
        f"(bound {GUARD_SECONDS}s) — the disabled-path guard got expensive"
    )
