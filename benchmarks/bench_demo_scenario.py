"""E6 — Section 4 / Figures 3–4: the end-to-end demo scenario.

The demo storyline: repair a soccer table containing a manually added error,
explain the repaired cell of interest, act on the top-ranked constraint,
re-repair and observe the improvement.  The benchmark scripts scenario A of
``examples/demo_scenario.py``:

* the constraint set contains a wrong DC ("one city per league");
* the initial repair sets the cell of interest to the wrong value;
* T-REx ranks the wrong DC first (Shapley value 1, all others 0);
* removing it and re-repairing restores the correct value.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro import CellRef, RepairSession, SimpleRuleRepair, Table, TRexConfig, parse_dcs


def _demo_table() -> Table:
    rows = [
        ["Arsenal", "London", "England", "Premier League", 2019, 1],
        ["Chelsea", "London", "England", "Premier League", 2019, 2],
        ["Tottenham Hotspur", "London", "England", "Premier League", 2019, 3],
        ["FC Barcelona", "Barcelona", "Spain", "La Liga", 2019, 1],
        ["FC Barcelona", "Barcelona", "Spain", "La Liga", 2018, 1],
        ["Real Madrid", "Madrid", "Spain", "La Liga", 2019, 2],
        ["Real Madrid", "Madrid", "Spain", "La Liga", 2018, 2],
        ["Atletico Madrid", "Madrid", "Spain", "La Liga", 2019, 4],
        ["Sevilla FC", "Seville", "Spain", "La Liga", 2019, 3],
    ]
    return Table(["Team", "City", "Country", "League", "Year", "Place"], rows, name="standings")


def _run_scenario():
    clean = _demo_table()
    constraints = parse_dcs(
        [
            "not(t1.Team == t2.Team and t1.City != t2.City)",
            "not(t1.City == t2.City and t1.Country != t2.Country)",
            "not(t1.League == t2.League and t1.Country != t2.Country)",
            "not(t1.League == t2.League and t1.City != t2.City)",   # C4: the wrong DC
        ]
    )
    cell_of_interest = CellRef(4, "City")
    truth = clean[cell_of_interest]
    dirty = clean.with_values({cell_of_interest: None})

    session = RepairSession(
        SimpleRuleRepair(),
        constraints,
        dirty,
        cell_of_interest=cell_of_interest,
        expected_value=truth,
        config=TRexConfig(seed=13, cell_samples=40, replacement_policy="null"),
    )
    session.run_repair()
    wrong_value = session.steps[-1].cell_of_interest_value
    before_correct = session.cell_of_interest_is_correct()
    explanation = session.explain(constraints_only=True)
    top_constraint = explanation.constraint_ranking.items()[0]
    session.remove_constraint(top_constraint)
    fixed_value = session.steps[-1].cell_of_interest_value
    after_correct = session.cell_of_interest_is_correct()
    return session, explanation, top_constraint, before_correct, after_correct, wrong_value, fixed_value, truth


def test_demo_scenario_constraint_debugging(benchmark):
    (session, explanation, top_constraint, before, after,
     wrong_value, fixed_value, truth) = benchmark.pedantic(_run_scenario, rounds=1, iterations=1)

    rows = [
        [entry.rank, entry.item, f"{entry.score:+.3f}"]
        for entry in explanation.constraint_ranking
    ]
    print_table("Demo scenario — constraint ranking for the wrong repair", ["rank", "DC", "shapley"], rows)
    print(f"repair before intervention: {wrong_value!r} (truth {truth!r}) — correct: {before}")
    print(f"repair after removing {top_constraint}: {fixed_value!r} — correct: {after}")

    # the wrong constraint (league -> single city) dominates the bad repair ...
    assert top_constraint == "C4"
    assert explanation.constraint_shapley.values["C4"] == pytest.approx(1.0)
    assert before is False and wrong_value == "Madrid"
    # ... and removing it restores the correct repair, as the demo narrates
    assert after is True and fixed_value == truth == "Barcelona"
    assert [step.action for step in session.history()] == ["repair", "explain", "remove-constraint"]

    benchmark.extra_info["top_constraint"] = top_constraint
    benchmark.extra_info["repair_correct_before"] = bool(before)
    benchmark.extra_info["repair_correct_after"] = bool(after)
