"""E7 (extension) — cost of constraint Shapley vs. the number of DCs.

The paper computes constraint Shapley values exactly because "the number of
DCs is usually small" (Section 2.3).  This benchmark quantifies that choice:
it measures the number of black-box repair invocations and the wall-clock
time of the exact method as the constraint set grows, against the
permutation-sampling estimator at a fixed budget — showing the exponential
vs. linear query count and where the crossover lies.
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table
from repro import (
    BinaryRepairOracle,
    CellRef,
    ConstraintShapleyExplainer,
    SimpleRuleRepair,
    SoccerLeagueGenerator,
    parse_dc,
)
from repro.dataset.errors import inject_errors

PERMUTATION_BUDGET = 40


def _setup(n_constraints: int):
    """A soccer table with one injected error and ``n_constraints`` DCs.

    The first four constraints are the paper's C1–C4; further constraints are
    harmless FD-style DCs on other attribute pairs (they never fire, so the
    Shapley values of the first four are unchanged while the player set grows).
    """
    dataset = SoccerLeagueGenerator(seed=31).generate(30)
    constraints = list(dataset.constraints())
    extra_texts = [
        "not(t1.Team == t2.Team and t1.League != t2.League)",
        "not(t1.Team == t2.Team and t1.Country != t2.Country)",
        "not(t1.City == t2.City and t1.League != t2.League)",
        "not(t1.League == t2.League and t1.Year != t1.Year)",
        "not(t1.Team == t2.Team and t1.Year == t2.Year and t1.Place != t2.Place)",
        "not(t1.Country == t2.Country and t1.League != t2.League)",
    ]
    for index, text in enumerate(extra_texts):
        constraints.append(parse_dc(text, name=f"X{index + 1}"))
    constraints = constraints[:n_constraints]

    dirty, report = inject_errors(
        dataset.table, rate=0.0, n_errors=1, error_types=["domain"],
        attributes=["Country"], seed=31,
    )
    cell = report.cells()[0]
    algorithm = SimpleRuleRepair()
    oracle = BinaryRepairOracle(algorithm, constraints, dirty, cell)
    return oracle


@pytest.mark.parametrize("n_constraints", [2, 4, 6, 8, 10])
def test_scaling_exact_dc_shapley(benchmark, n_constraints):
    oracle = _setup(n_constraints)
    explainer = ConstraintShapleyExplainer(oracle)

    def run():
        oracle.reset_counters()
        return explainer.explain()

    result = benchmark(run)
    print_table(
        f"E7 — exact constraint Shapley with {n_constraints} DCs",
        ["n_dcs", "distinct repair runs", "oracle calls", "sum of values"],
        [[n_constraints, oracle.repair_runs, oracle.calls, f"{result.total():.3f}"]],
    )
    # with memoisation the distinct repair runs are bounded by 2^n
    assert oracle.repair_runs <= 2 ** n_constraints
    benchmark.extra_info["n_constraints"] = n_constraints
    benchmark.extra_info["repair_runs"] = oracle.repair_runs


@pytest.mark.parametrize("n_constraints", [6, 10])
def test_scaling_sampled_dc_shapley(benchmark, n_constraints):
    oracle = _setup(n_constraints)
    explainer = ConstraintShapleyExplainer(oracle)
    exact_reference = explainer.explain()

    def run():
        oracle.reset_counters()
        return explainer.explain_sampled(n_permutations=PERMUTATION_BUDGET, rng=3)

    estimate = benchmark(run)
    error = max(abs(estimate[name] - exact_reference[name]) for name in exact_reference.values)
    print_table(
        f"E7 — permutation estimate with {n_constraints} DCs ({PERMUTATION_BUDGET} permutations)",
        ["n_dcs", "repair runs", "max abs error vs exact"],
        [[n_constraints, oracle.repair_runs, f"{error:.3f}"]],
    )
    assert error <= 0.25
    # sampling touches at most (n+1) * permutations coalitions — linear in n
    assert oracle.calls <= (n_constraints + 1) * PERMUTATION_BUDGET
    benchmark.extra_info["max_abs_error"] = round(error, 4)


def test_scaling_summary_table():
    """Reference (non-timed) summary of the exact-vs-sampled query counts."""
    rows = []
    for n_constraints in (2, 4, 6, 8, 10):
        oracle = _setup(n_constraints)
        explainer = ConstraintShapleyExplainer(oracle)
        start = time.perf_counter()
        explainer.explain()
        exact_seconds = time.perf_counter() - start
        exact_runs = oracle.repair_runs

        # a fresh oracle so the sampled run cannot reuse the exact run's cache
        sampled_oracle = _setup(n_constraints)
        sampled_explainer = ConstraintShapleyExplainer(sampled_oracle)
        sampled_oracle.reset_counters()
        start = time.perf_counter()
        sampled_explainer.explain_sampled(n_permutations=PERMUTATION_BUDGET, rng=3)
        sampled_seconds = time.perf_counter() - start
        sampled_runs = sampled_oracle.repair_runs
        rows.append(
            [n_constraints, exact_runs, f"{exact_seconds * 1e3:.1f}",
             sampled_runs, f"{sampled_seconds * 1e3:.1f}"]
        )
    print_table(
        "E7 summary — exact vs permutation-sampled constraint Shapley",
        ["n_dcs", "exact repair runs", "exact ms", "sampled repair runs", "sampled ms"],
        rows,
    )
    # exact query count grows exponentially; it must overtake the sampled count by 10 DCs
    assert rows[-1][1] > rows[-1][3]
