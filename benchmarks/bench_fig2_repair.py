"""E2 — Figure 2: repairing the La Liga standings table.

The paper's Figure 2 shows the dirty table (red cells ``t5[City]`` and
``t5[Country]``) and the repaired table (blue cells).  The benchmark runs the
three bundled black-box repairers on the dirty table, times them, and checks
that each recovers the Figure 2b values for the two dirty cells.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro import CellRef, GreedyHolisticRepair, HoloCleanRepair, la_liga_clean_table
from repro.constraints.violations import find_all_violations

CITY = CellRef(4, "City")
COUNTRY = CellRef(4, "Country")


@pytest.mark.parametrize(
    "algorithm_name",
    ["algorithm-1", "greedy-holistic", "holoclean-lite"],
)
def test_fig2_repair(benchmark, la_liga_setup, algorithm_name):
    if algorithm_name == "algorithm-1":
        algorithm = la_liga_setup["algorithm"]
    elif algorithm_name == "greedy-holistic":
        algorithm = GreedyHolisticRepair()
    else:
        algorithm = HoloCleanRepair()
    dirty = la_liga_setup["dirty"]
    constraints = la_liga_setup["constraints"]
    clean_reference = la_liga_clean_table()

    repaired = benchmark(algorithm.repair_table, constraints, dirty)

    delta = dirty.diff(repaired)
    violations_before = len(find_all_violations(dirty, constraints))
    violations_after = len(find_all_violations(repaired, constraints))
    rows = [
        ["t5[City]", "Capital", "Madrid", repr(repaired[CITY])],
        ["t5[Country]", "España", "Spain", repr(repaired[COUNTRY])],
    ]
    print_table(
        f"Figure 2 — repair of the dirty cells ({algorithm.name})",
        ["cell", "dirty value", "paper clean value", "measured clean value"],
        rows,
    )
    print(
        f"cells changed: {len(delta)}; violations: {violations_before} -> {violations_after}"
    )

    # the headline repair of the paper: t5[Country] becomes "Spain"
    assert repaired[COUNTRY] == "Spain"
    if algorithm.name == "algorithm-1":
        assert repaired.equals(clean_reference)
    assert violations_after <= violations_before

    benchmark.extra_info["cells_changed"] = len(delta)
    benchmark.extra_info["violations_before"] = violations_before
    benchmark.extra_info["violations_after"] = violations_after
