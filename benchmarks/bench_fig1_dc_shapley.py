"""E1 / E3 — Figure 1 & Example 2.3: exact Shapley values of the DCs.

Paper-reported values (Figure 1, for the repair of ``t5[Country]``):

    C1 = 1/6,  C2 = 1/6,  C3 = 2/3,  C4 = 0

The benchmark times the exact computation (the method the paper uses for
constraints), checks the values against the paper, and additionally reports
the permutation-sampling estimate as a cross-check.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro import BinaryRepairOracle, CellRef, ConstraintShapleyExplainer
from repro.dataset.examples import FIGURE1_SHAPLEY_VALUES

CELL = CellRef(4, "Country")


def _exact_values(setup):
    oracle = BinaryRepairOracle(setup["algorithm"], setup["constraints"], setup["dirty"], CELL)
    explainer = ConstraintShapleyExplainer(oracle)
    return explainer.explain(), oracle


def test_fig1_dc_shapley_exact(benchmark, la_liga_setup):
    result, oracle = benchmark(_exact_values, la_liga_setup)

    rows = []
    for name in sorted(FIGURE1_SHAPLEY_VALUES):
        paper = FIGURE1_SHAPLEY_VALUES[name]
        measured = result[name]
        rows.append([name, f"{paper:.4f}", f"{measured:.4f}", f"{abs(paper - measured):.2e}"])
        assert measured == pytest.approx(paper, abs=1e-9)
    print_table(
        "Figure 1 — Shapley value of each DC for the repair of t5[Country]",
        ["constraint", "paper", "measured", "abs err"],
        rows,
    )
    print(f"black-box repair runs: {oracle.repair_runs} (2^4 subsets, memoised)")

    benchmark.extra_info["repair_runs"] = oracle.repair_runs
    benchmark.extra_info["values"] = {k: round(v, 6) for k, v in result.values.items()}


def test_fig1_dc_shapley_sampled_cross_check(benchmark, la_liga_setup):
    """Permutation sampling reproduces the same ranking (used for large DC sets)."""

    def run():
        oracle = BinaryRepairOracle(
            la_liga_setup["algorithm"], la_liga_setup["constraints"], la_liga_setup["dirty"], CELL
        )
        return ConstraintShapleyExplainer(oracle).explain_sampled(n_permutations=300, rng=7)

    result = benchmark(run)
    rows = [
        [name, f"{FIGURE1_SHAPLEY_VALUES[name]:.4f}", f"{result[name]:.4f}"]
        for name in sorted(FIGURE1_SHAPLEY_VALUES)
    ]
    print_table(
        "Figure 1 cross-check — permutation-sampling estimate (300 permutations)",
        ["constraint", "paper", "estimate"],
        rows,
    )
    assert result.ranking()[0][0] == "C3"
    for name, paper in FIGURE1_SHAPLEY_VALUES.items():
        assert result[name] == pytest.approx(paper, abs=0.1)
