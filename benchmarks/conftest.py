"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module regenerates one artefact of the paper (a figure, a
worked example or the demo scenario — see the experiment index in DESIGN.md)
and prints the rows it measured next to the values the paper reports, so a
reviewer can diff them directly from the pytest output (run with ``-s`` or
read the captured stdout in the benchmark report).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import (  # noqa: E402
    TRexConfig,
    la_liga_constraints,
    la_liga_dirty_table,
    paper_algorithm_1,
)


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print a small fixed-width results table to stdout."""
    rendered_rows = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rendered_rows)) if rendered_rows else len(header[i])
        for i in range(len(header))
    ]
    print(f"\n{title}")
    print("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    print("  ".join("-" * widths[i] for i in range(len(header))))
    for row in rendered_rows:
        print("  ".join(row[i].ljust(widths[i]) for i in range(len(header))))


@pytest.fixture
def la_liga_setup():
    """The running example: dirty table, constraints, Algorithm 1, config."""
    return {
        "dirty": la_liga_dirty_table(),
        "constraints": la_liga_constraints(),
        "algorithm": paper_algorithm_1(),
        "config": TRexConfig(seed=7, replacement_policy="null"),
    }
