"""E11 (extension) — the {C1, C2} synergy as a Shapley interaction index.

Example 2.3 of the paper narrates that C1 and C2 only matter *together*
("for the subsets where one of these is present without its partner, the
repair is due to C3") and that their joint credit is half of C3's.  Plain
Shapley values encode the split credit; the pairwise Shapley interaction
index makes the synergy itself measurable.  This benchmark computes all
pairwise interactions and the Banzhaf values for the running example and
checks the qualitative structure the paper describes.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro import BinaryRepairOracle, CellRef, ConstraintShapleyExplainer

CELL = CellRef(4, "Country")


def _compute(setup):
    oracle = BinaryRepairOracle(setup["algorithm"], setup["constraints"], setup["dirty"], CELL)
    explainer = ConstraintShapleyExplainer(oracle)
    return explainer.explain_interactions(), explainer.explain_banzhaf(), oracle


def test_constraint_interaction_indices(benchmark, la_liga_setup):
    interactions, banzhaf, oracle = benchmark(_compute, la_liga_setup)

    rows = [
        ["{" + ", ".join(sorted(pair)) + "}", f"{value:+.4f}"]
        for pair, value in sorted(interactions.items(), key=lambda kv: -kv[1])
    ]
    print_table(
        "E11 — pairwise Shapley interaction indices for the repair of t5[Country]",
        ["constraint pair", "interaction"],
        rows,
    )
    print_table(
        "E11 — Banzhaf values (robustness check of the Figure 1 ranking)",
        ["constraint", "banzhaf"],
        [[name, f"{value:.4f}"] for name, value in banzhaf.ranking()],
    )

    # C1 and C2 are complements (the pair is the alternative repair path)
    assert interactions[frozenset({"C1", "C2"})] > 0
    # each of them is a substitute of C3 (C3 alone already achieves the repair)
    assert interactions[frozenset({"C1", "C3"})] < 0
    assert interactions[frozenset({"C2", "C3"})] < 0
    # C4 interacts with nothing
    for other in ("C1", "C2", "C3"):
        assert interactions[frozenset({"C4", other})] == pytest.approx(0.0)
    # the Banzhaf ranking agrees with the Shapley ranking of Figure 1
    assert [name for name, _ in banzhaf.ranking()] == ["C3", "C1", "C2", "C4"]

    benchmark.extra_info["c1_c2_interaction"] = round(interactions[frozenset({"C1", "C2"})], 4)
