"""E8 (extension) — cost of cell Shapley vs. table size and sample budget.

The number of cells grows with the table, and each explained cell costs
``2·m`` black-box repairs.  This benchmark measures the wall-clock time and
query count of explaining one repaired cell as the table grows, and the
trade-off between the sampling budget ``m`` and the estimate's standard
error.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro import BinaryRepairOracle, CellShapleyExplainer, SimpleRuleRepair, SoccerLeagueGenerator
from repro.dataset.errors import inject_errors
from repro.shapley.cells import relevant_cells


def _setup(n_rows: int):
    dataset = SoccerLeagueGenerator(seed=47).generate(n_rows)
    constraints = dataset.constraints()
    dirty, report = inject_errors(
        dataset.table, rate=0.0, n_errors=1, error_types=["domain"],
        attributes=["Country"], seed=47,
    )
    cell = report.cells()[0]
    oracle = BinaryRepairOracle(SimpleRuleRepair(), constraints, dirty, cell)
    return oracle, constraints, dirty, cell


@pytest.mark.parametrize("n_rows", [6, 12, 25, 50])
def test_scaling_cell_shapley_with_table_size(benchmark, n_rows):
    oracle, constraints, dirty, cell = _setup(n_rows)
    explainer = CellShapleyExplainer(oracle, policy="null", rng=3)
    # explain a fixed, small probe set so the per-query repair cost (which grows
    # with the table) is what the benchmark isolates
    probes = relevant_cells(dirty, constraints, cell)[:5]

    def run():
        oracle.reset_counters()
        return explainer.explain(cells=probes, n_samples=30)

    result = benchmark(run)
    print_table(
        f"E8 — cell Shapley on a {n_rows}-row table (5 probe cells, m=30)",
        ["rows", "cells in table", "repair runs", "mean |value|"],
        [[n_rows, dirty.n_cells, oracle.repair_runs,
          f"{sum(abs(v) for v in result.values.values()) / len(result.values):.3f}"]],
    )
    assert len(result.values) == len(probes)
    benchmark.extra_info["n_rows"] = n_rows
    benchmark.extra_info["repair_runs"] = oracle.repair_runs


@pytest.mark.parametrize("n_samples", [50, 200])
def test_scaling_cell_shapley_with_budget(benchmark, n_samples):
    oracle, constraints, dirty, cell = _setup(12)
    explainer = CellShapleyExplainer(oracle, policy="null", rng=11)
    probes = relevant_cells(dirty, constraints, cell)[:3]

    def run():
        return explainer.explain(cells=probes, n_samples=n_samples)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    mean_stderr = sum(result.standard_errors.values()) / len(result.standard_errors)
    print_table(
        f"E8 — error vs budget (m={n_samples})",
        ["m", "mean std err"],
        [[n_samples, f"{mean_stderr:.4f}"]],
    )
    benchmark.extra_info["mean_stderr"] = round(mean_stderr, 5)
    assert mean_stderr < 0.2
