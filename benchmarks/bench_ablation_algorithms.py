"""E9 (ablation) — repair-algorithm agnosticism.

T-REx's central design claim is that the explanation pipeline treats the
repair algorithm as a black box.  This benchmark runs the *same* explanation
question — "which DCs caused the repair of t5[Country]?" — under the three
bundled repairers and reports (a) the per-algorithm runtime of a full
constraint explanation and (b) how much the resulting rankings agree
(top-2 overlap and Kendall tau), which is the quantitative counterpart of the
paper's claim that explanations remain meaningful whatever the cleaner.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro import (
    BinaryRepairOracle,
    CellRef,
    ConstraintShapleyExplainer,
    GreedyHolisticRepair,
    HoloCleanRepair,
    kendall_tau,
    ranking_overlap,
)
from repro.explain.ranking import Ranking

CELL = CellRef(4, "Country")

ALGORITHMS = {
    "algorithm-1": None,  # filled from the fixture (paper rules)
    "greedy-holistic": GreedyHolisticRepair(),
    "holoclean-lite": HoloCleanRepair(),
}


def _explain_with(algorithm, setup):
    oracle = BinaryRepairOracle(algorithm, setup["constraints"], setup["dirty"], CELL)
    result = ConstraintShapleyExplainer(oracle).explain()
    return result, oracle


@pytest.mark.parametrize("algorithm_name", list(ALGORITHMS))
def test_ablation_explanation_per_algorithm(benchmark, la_liga_setup, algorithm_name):
    algorithm = ALGORITHMS[algorithm_name] or la_liga_setup["algorithm"]
    result, oracle = benchmark(_explain_with, algorithm, la_liga_setup)

    rows = [[name, f"{value:+.4f}"] for name, value in result.ranking()]
    print_table(
        f"E9 — constraint Shapley for t5[Country] under {algorithm_name}",
        ["constraint", "shapley"],
        rows,
    )
    print(f"black-box repair runs: {oracle.repair_runs}")

    # every algorithm must actually repair the cell (v of the grand coalition is 1)
    assert result.total() == pytest.approx(1.0, abs=1e-9)
    # and C3 (League -> Country) is always among the two most influential DCs
    assert "C3" in [name for name, _ in result.ranking()[:2]]
    benchmark.extra_info["ranking"] = [name for name, _ in result.ranking()]


def test_ablation_ranking_agreement(la_liga_setup):
    """Cross-algorithm agreement of the constraint rankings (not timed)."""
    rankings: dict[str, Ranking] = {}
    for algorithm_name, algorithm in ALGORITHMS.items():
        algorithm = algorithm or la_liga_setup["algorithm"]
        result, _ = _explain_with(algorithm, la_liga_setup)
        rankings[algorithm_name] = Ranking(result.values)

    names = list(rankings)
    rows = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            overlap = ranking_overlap(rankings[names[i]], rankings[names[j]], k=2)
            tau = kendall_tau(rankings[names[i]], rankings[names[j]])
            rows.append([f"{names[i]} vs {names[j]}", f"{overlap:.2f}", f"{tau:+.2f}"])
            assert overlap > 0.0
    print_table(
        "E9 — agreement between constraint rankings across repair algorithms",
        ["pair", "top-2 overlap", "kendall tau"],
        rows,
    )
