"""E5 — Example 2.5: convergence of the sampling-based cell-Shapley estimator.

The paper's cell estimator repeats the permutation/replacement step ``m``
times and outputs the running average.  This benchmark measures, for the cell
``t5[City]`` probed in Example 2.5, how the estimate and its standard error
evolve as ``m`` grows, and times one full estimate at the default budget.

There is no paper-reported number here (the paper leaves ``m`` to the user);
the reproduction records the convergence curve and checks the 1/sqrt(m)
error decay that the estimator guarantees.
"""

from __future__ import annotations

import math

import pytest

from conftest import print_table
from repro import BinaryRepairOracle, CellRef, CellShapleyExplainer

CELL_OF_INTEREST = CellRef(4, "Country")
PROBED_CELL = CellRef(4, "City")  # the cell Example 2.5 explains
BUDGETS = (25, 50, 100, 200, 400, 800)


def test_ex25_sampling_convergence(benchmark, la_liga_setup):
    oracle = BinaryRepairOracle(
        la_liga_setup["algorithm"],
        la_liga_setup["constraints"],
        la_liga_setup["dirty"],
        CELL_OF_INTEREST,
    )

    rows = []
    estimates = {}
    for budget in BUDGETS:
        explainer = CellShapleyExplainer(oracle, policy="null", rng=23)
        estimate = explainer.estimate_cell(PROBED_CELL, n_samples=budget)
        estimates[budget] = estimate
        low, high = estimate.confidence_interval()
        rows.append(
            [budget, f"{estimate.value:.4f}", f"{estimate.standard_error:.4f}",
             f"[{low:.3f}, {high:.3f}]"]
        )
    print_table(
        "Example 2.5 — convergence of the Shapley estimate for t5[City] "
        "(effect on the repair of t5[Country])",
        ["m (samples)", "estimate", "std err", "95% CI"],
        rows,
    )

    # the error must shrink roughly like 1/sqrt(m): compare smallest vs largest budget
    first, last = estimates[BUDGETS[0]], estimates[BUDGETS[-1]]
    assert last.standard_error < first.standard_error
    expected_reduction = math.sqrt(BUDGETS[0] / BUDGETS[-1])
    assert last.standard_error <= first.standard_error * expected_reduction * 2.5

    # the largest-budget estimates at two different seeds agree
    other = CellShapleyExplainer(oracle, policy="null", rng=101).estimate_cell(
        PROBED_CELL, n_samples=BUDGETS[-1]
    )
    assert other.value == pytest.approx(last.value, abs=0.12)

    # time one estimate at the default budget used by the library
    def run_default():
        explainer = CellShapleyExplainer(oracle, policy="null", rng=5)
        return explainer.estimate_cell(PROBED_CELL, n_samples=200)

    benchmark(run_default)
    benchmark.extra_info["final_estimate"] = round(last.value, 4)
    benchmark.extra_info["final_stderr"] = round(last.standard_error, 4)
