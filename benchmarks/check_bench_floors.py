"""Floor-regression guard for the recorded benchmark speedups.

Diffs the ``speedups`` section of ``BENCH_shapley.json`` against the floors
the run itself recorded under ``config.floors`` (which already reflect any
``TREX_BENCH_*_FLOOR`` environment overrides active when the benchmark ran)
and exits non-zero on any regression.  CI runs it right after the bench so a
freshly written JSON that silently records a below-floor ratio fails the
bench-smoke job even if the bench's own in-process assertion was relaxed or
skipped — and anyone can point it at a committed JSON to audit the recorded
perf trajectory:

    python benchmarks/check_bench_floors.py [BENCH_shapley.json]

Every failing metric is reported with its recorded value, its floor, and —
when the previous committed ``BENCH_shapley.json`` is reachable via ``git
show HEAD:...`` — the delta against the last committed recording, so a CI
failure log distinguishes "slid a little from last run" from "fell off a
cliff" without any archaeology.

Machine caveats mirror the bench: the ``parallel_speedup`` and
``warm_pool_speedup`` floors need real cores, so they are skipped (with a
note) when the recording machine had fewer CPUs than the worker count it
drove.  Floors with no recorded speedup — an older JSON predating a metric —
are reported and skipped, never silently passed.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

#: floors needing >= ``config.parallel_jobs`` real cores on the recording box
_MULTICORE_FLOORS = ("parallel_speedup", "warm_pool_speedup")


def _previous_speedups(path: str) -> dict:
    """The ``speedups`` of the last committed version of ``path`` (or ``{}``).

    Resolved with ``git show HEAD:<repo-relative path>`` so the check works
    from any working directory inside the repo; any git failure (not a repo,
    file not committed, git missing) degrades to an empty dict — deltas are
    then simply omitted, never fatal.
    """
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
            cwd=os.path.dirname(os.path.abspath(path)) or None,
        ).stdout.strip()
        relative = os.path.relpath(os.path.abspath(path), top)
        blob = subprocess.run(
            ["git", "show", f"HEAD:{relative}"],
            capture_output=True, text=True, check=True, cwd=top,
        ).stdout
        return json.loads(blob).get("speedups", {})
    except (OSError, subprocess.CalledProcessError, ValueError):
        return {}


def _delta_note(name: str, recorded: float, previous: dict) -> str:
    """``delta vs committed`` suffix for one metric (empty when unknown)."""
    before = previous.get(name)
    if before is None:
        return "  (no committed baseline)"
    delta = recorded - before
    return f"  (committed {before}x, delta {delta:+.2f}x)"


def check(path: str = "BENCH_shapley.json") -> int:
    with open(path) as handle:
        data = json.load(handle)
    config = data.get("config", {})
    floors = config.get("floors", {})
    speedups = data.get("speedups", {})
    if not floors:
        print(f"{path}: no config.floors section — nothing to check")
        return 1
    cpu_count = config.get("cpu_count") or 1
    parallel_jobs = config.get("parallel_jobs") or 2
    previous = _previous_speedups(path)
    failures = []
    for name, floor in sorted(floors.items()):
        recorded = speedups.get(name)
        if recorded is None:
            print(f"SKIP  {name}: floor {floor}x but no recorded speedup")
            continue
        if name in _MULTICORE_FLOORS and cpu_count < parallel_jobs:
            print(f"SKIP  {name}: {recorded}x recorded on a {cpu_count}-CPU "
                  f"box (needs {parallel_jobs} cores to be meaningful)")
            continue
        if recorded >= floor:
            print(f"  ok  {name}: {recorded}x (floor {floor}x)")
        else:
            print(f"REGRESSION  {name}: recorded {recorded}x, floor {floor}x, "
                  f"shortfall {floor - recorded:.2f}x"
                  + _delta_note(name, recorded, previous))
            failures.append(name)
    if failures:
        print(f"\n{path}: {len(failures)} speedup(s) below floor: "
              f"{', '.join(failures)}")
        return 1
    print(f"\n{path}: all recorded speedups at or above their floors")
    return 0


if __name__ == "__main__":
    sys.exit(check(sys.argv[1] if len(sys.argv) > 1 else "BENCH_shapley.json"))
