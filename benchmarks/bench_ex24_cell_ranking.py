"""E4 — Example 2.4 / Example 1.1: ranking table cells by their influence.

Paper claims for the repair of ``t5[Country]`` ("España" → "Spain"):

* ``t5[League]`` has the highest Shapley value among all cells,
* ``t5[League]`` is more influential than ``t6[City]``,
* ``t1[Place]`` has no influence at all.

The benchmark runs the sampling estimator of Example 2.5 under the paper's
formal (null-coalition) semantics, prints the top of the ranking and asserts
the three qualitative claims.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro import BinaryRepairOracle, CellRef, CellShapleyExplainer
from repro.shapley.cells import relevant_cells

CELL_OF_INTEREST = CellRef(4, "Country")
SAMPLES_PER_CELL = 150


def _rank_cells(setup):
    oracle = BinaryRepairOracle(
        setup["algorithm"], setup["constraints"], setup["dirty"], CELL_OF_INTEREST
    )
    explainer = CellShapleyExplainer(oracle, policy="null", rng=17)
    cells = relevant_cells(setup["dirty"], setup["constraints"], CELL_OF_INTEREST)
    result = explainer.explain(
        cells=cells, n_samples=SAMPLES_PER_CELL, exclude_cell_of_interest=True
    )
    return result, oracle


def test_ex24_cell_ranking(benchmark, la_liga_setup):
    result, oracle = benchmark.pedantic(_rank_cells, args=(la_liga_setup,), rounds=1, iterations=1)

    ranking = result.ranking()
    rows = [
        [str(cell), f"{value:.4f}", f"{result.standard_errors[cell]:.4f}"]
        for cell, value in ranking[:10]
    ]
    print_table(
        "Example 2.4 — most influential cells for the repair of t5[Country] "
        f"({SAMPLES_PER_CELL} samples/cell, null-coalition policy)",
        ["cell", "shapley", "std err"],
        rows,
    )
    print(f"black-box repair runs: {oracle.repair_runs}")

    values = result.values
    league = CellRef(4, "League")
    t6_city = CellRef(5, "City")
    t1_place = CellRef(0, "Place")

    assert ranking[0][0] == league, "paper: t5[League] is the most influential cell"
    assert values[league] > values[t6_city], "paper: t5[League] beats t6[City]"
    assert values[t1_place] == pytest.approx(0.0, abs=1e-12), "paper: t1[Place] is inert"

    benchmark.extra_info["top_cell"] = str(ranking[0][0])
    benchmark.extra_info["league_value"] = round(values[league], 4)
    benchmark.extra_info["t6_city_value"] = round(values[t6_city], 4)
    benchmark.extra_info["repair_runs"] = oracle.repair_runs
