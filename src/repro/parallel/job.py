"""The picklable job/shard/report vocabulary of the sharded scheduler.

An :class:`ExplainJobSpec` is the complete, self-contained description of one
cell-Shapley job: the black box, the constraint set, the dirty table snapshot,
the cell of interest with its reference repaired value, the replacement
policy, the engine flags of both the oracle and the explainer (they can be
set independently — the flag-grid tests rely on that), and the job seed.  It
is pickled once in the parent and shipped to every worker, which rebuilds a
private oracle stack from it (own ``BinaryRepairOracle``, ``OracleCache``,
``SharedStatistics``, repair-walk state) — workers share nothing at runtime.

Shards and reports are the wire format in the other direction: a
:class:`ShardResult` carries one chunk's Welford accumulator back, and a
:class:`WorkerReport` bundles a worker's shard results with its oracle
counters and either its whole cache (the cold, rebuild-per-round path) or —
on the warm-pool path — only the *diff* of cache entries inserted since the
worker's last sync, which the parent merges
(:meth:`~repro.repair.cache.OracleCache.merge_entries`,
:meth:`~repro.repair.base.BinaryRepairOracle.absorb_statistics`).

:class:`WorkerFault` is the fault-injection vocabulary of the test harness:
a picklable directive executed *inside* a pool worker to simulate the
environmental failures (process death, hangs, unpicklable reports) the
pool's health/requeue machinery must absorb without changing any value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.constraints.dc import DenialConstraint
from repro.dataset.table import CellRef, Table
from repro.repair.base import RepairAlgorithm
from repro.repair.cache import OracleCache
from repro.shapley.convergence import RunningMean


@dataclass
class ExplainJobSpec:
    """Everything a worker process needs to rebuild the oracle stack.

    ``target_value`` is mandatory so workers never re-run the reference
    repair; the parent's oracle already paid for it once.  The two flag
    groups mirror the ``BinaryRepairOracle`` / ``CellShapleyExplainer``
    constructor flags — a job built from a mismatched pair (e.g. a paired
    explainer over an unpaired oracle) reproduces exactly that pairing in
    every worker.
    """

    algorithm: RepairAlgorithm
    constraints: Sequence[DenialConstraint]
    dirty_table: Table
    cell: CellRef
    target_value: Any
    policy: str
    job_seed: int
    use_cache: bool = True
    cache_size: int | None = None
    oracle_incremental: bool = True
    oracle_paired: bool = True
    oracle_shared_stats: bool = True
    oracle_batched_pairs: bool = True
    #: the worker oracle's vectorised-engine flag; the dirty table snapshot
    #: pickles its column dictionaries alongside, so a warm worker reuses the
    #: parent's encoding for its resident lifetime instead of re-encoding
    oracle_vectorized: bool = True
    explainer_incremental: bool = True
    explainer_paired: bool = True
    explainer_shared_stats: bool = True
    explainer_batched_pairs: bool = True
    #: whether workers should record spans for their shards and ship them
    #: home on the report; set by the scheduler from the parent's tracer
    #: state at payload time — tracing never changes any value, only what
    #: the report carries
    trace: bool = False


@dataclass(frozen=True)
class ExplainShard:
    """One schedulable unit: a chunk of one cell's Monte-Carlo samples.

    ``(cell_position, chunk_index)`` are the seed coordinates (see
    :mod:`repro.parallel.seeding`); ``shard_id`` is global bookkeeping only.
    """

    shard_id: int
    cell: CellRef
    cell_position: int
    chunk_index: int
    n_samples: int


@dataclass
class ShardResult:
    """One executed shard: its coordinates plus the chunk's accumulator.

    ``touched`` is the shard's provenance fingerprint: the base cells whose
    original values its sampled coalitions exposed (recorded by the
    sampler's ``touched_sink`` hook, RNG-free).  The live session unions
    them per cell to decide which estimates a later base-table update
    invalidates.
    """

    shard_id: int
    cell_position: int
    chunk_index: int
    accumulator: RunningMean
    touched: frozenset = frozenset()


@dataclass
class WorkerReport:
    """Everything one worker sends home after draining its shard list.

    ``statistics`` always carries *this report's delta* (counters are reset
    at task entry), so a long-lived warm worker reporting several rounds
    never double-counts.  Exactly one of ``cache`` / ``cache_diff`` carries
    entries: the cold path ships the whole worker cache, the warm path only
    the entries inserted since the worker's last sync (its high-water mark
    over :meth:`~repro.repair.cache.OracleCache.entries_since`).
    """

    worker_index: int
    shard_results: list[ShardResult] = field(default_factory=list)
    statistics: dict = field(default_factory=dict)
    cache: OracleCache | None = None
    #: warm-path cache diff: ``(key, value)`` entries inserted since the last
    #: sync, in insertion order
    cache_diff: list = field(default_factory=list)
    #: 1 when this task had to build the oracle stack from the job spec
    rebuilt: int = 0
    #: cache entries this report ships across the process boundary (the whole
    #: cache on the cold path, ``len(cache_diff)`` on the warm path)
    entries_shipped: int = 0
    #: size of the worker's resident cache when the report was cut — what
    #: whole-cache shipping would have cost this round
    resident_cache_size: int = 0
    #: 1 when this task rebuilt its stack *seeded from a parent snapshot* (a
    #: warm restart) instead of starting from an empty cache
    warm_restart: int = 0
    #: entries the parent's snapshot seeded into this worker's fresh cache
    #: (they never ship back — the first sync mark is taken above them)
    entries_seeded: int = 0
    #: finished :class:`~repro.observability.trace.Span` records for this
    #: report's shards (empty unless the job spec asked for tracing); the
    #: parent adopts them into its tracer, where their coordinate-derived
    #: ids stitch them under the parent's cell spans
    spans: list = field(default_factory=list)


@dataclass(frozen=True)
class WorkerFault:
    """A test-only fault directive executed inside a pool worker.

    Exactly the failure modes the pool's health machinery distinguishes:

    * ``die_after_shards`` — hard-exit the worker process after executing
      that many shards (a mid-task crash; the parent sees EOF on the pipe);
    * ``hang_seconds`` — sleep at task entry, tripping the parent's
      ``worker_timeout`` (the worker is terminated and replaced);
    * ``unpicklable_report`` — poison the report so it cannot cross the pipe
      (the worker answers with an error and the parent degrades the task
      in-process);
    * ``slow_seconds`` — sleep *after* computing the report, before replying
      (a slow reply: harmless under a generous timeout, a timeout/requeue or
      a deadline expiry under a tight one — all value-preserving);
    * ``corrupt_reply`` — answer with garbage instead of a
      :class:`WorkerReport` (the scheduler detects the type violation and
      re-runs the shards in-process).

    Faults attach to one dispatch only: a requeued task is always sent
    clean, modelling an environmental failure at the original placement.
    """

    die_after_shards: int | None = None
    hang_seconds: float | None = None
    unpicklable_report: bool = False
    slow_seconds: float | None = None
    corrupt_reply: bool = False
