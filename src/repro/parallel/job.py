"""The picklable job/shard/report vocabulary of the sharded scheduler.

An :class:`ExplainJobSpec` is the complete, self-contained description of one
cell-Shapley job: the black box, the constraint set, the dirty table snapshot,
the cell of interest with its reference repaired value, the replacement
policy, the engine flags of both the oracle and the explainer (they can be
set independently — the flag-grid tests rely on that), and the job seed.  It
is pickled once in the parent and shipped to every worker, which rebuilds a
private oracle stack from it (own ``BinaryRepairOracle``, ``OracleCache``,
``SharedStatistics``, repair-walk state) — workers share nothing at runtime.

Shards and reports are the wire format in the other direction: a
:class:`ShardResult` carries one chunk's Welford accumulator back, and a
:class:`WorkerReport` bundles a worker's shard results with its oracle
counters and its whole cache, which the parent merges
(:meth:`~repro.repair.cache.OracleCache.merge`,
:meth:`~repro.repair.base.BinaryRepairOracle.absorb_statistics`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.constraints.dc import DenialConstraint
from repro.dataset.table import CellRef, Table
from repro.repair.base import RepairAlgorithm
from repro.repair.cache import OracleCache
from repro.shapley.convergence import RunningMean


@dataclass
class ExplainJobSpec:
    """Everything a worker process needs to rebuild the oracle stack.

    ``target_value`` is mandatory so workers never re-run the reference
    repair; the parent's oracle already paid for it once.  The two flag
    groups mirror the ``BinaryRepairOracle`` / ``CellShapleyExplainer``
    constructor flags — a job built from a mismatched pair (e.g. a paired
    explainer over an unpaired oracle) reproduces exactly that pairing in
    every worker.
    """

    algorithm: RepairAlgorithm
    constraints: Sequence[DenialConstraint]
    dirty_table: Table
    cell: CellRef
    target_value: Any
    policy: str
    job_seed: int
    use_cache: bool = True
    cache_size: int | None = None
    oracle_incremental: bool = True
    oracle_paired: bool = True
    oracle_shared_stats: bool = True
    oracle_batched_pairs: bool = True
    explainer_incremental: bool = True
    explainer_paired: bool = True
    explainer_shared_stats: bool = True
    explainer_batched_pairs: bool = True


@dataclass(frozen=True)
class ExplainShard:
    """One schedulable unit: a chunk of one cell's Monte-Carlo samples.

    ``(cell_position, chunk_index)`` are the seed coordinates (see
    :mod:`repro.parallel.seeding`); ``shard_id`` is global bookkeeping only.
    """

    shard_id: int
    cell: CellRef
    cell_position: int
    chunk_index: int
    n_samples: int


@dataclass
class ShardResult:
    """One executed shard: its coordinates plus the chunk's accumulator."""

    shard_id: int
    cell_position: int
    chunk_index: int
    accumulator: RunningMean


@dataclass
class WorkerReport:
    """Everything one worker sends home after draining its shard list."""

    worker_index: int
    shard_results: list[ShardResult] = field(default_factory=list)
    statistics: dict = field(default_factory=dict)
    cache: OracleCache | None = None
