"""Worker-side execution: rebuild the oracle stack, drain a shard list.

``run_worker`` is the single entry point a pool task executes.  It accepts
the job spec either as a live object (the in-process ``n_jobs=1`` path) or as
pickled bytes (the multi-process path pickles the spec once and reuses the
payload for every worker), so both paths run literally the same code on the
same inputs.

Each worker owns a full private copy of the evaluation engine — oracle,
cache, shared-statistics instance, repair-walk state — built once per task
and reused across all of its shards.  Within a worker the cache therefore
accumulates across shards exactly like the sequential oracle's does; because
the cache is a pure memoisation of a deterministic black box, this sharing
affects wall-clock only, never values.
"""

from __future__ import annotations

import pickle

from repro.parallel.job import ExplainJobSpec, ExplainShard, ShardResult, WorkerReport
from repro.parallel.seeding import shard_rng
from repro.repair.base import BinaryRepairOracle
from repro.shapley.convergence import RunningMean


def build_worker_state(spec: ExplainJobSpec):
    """A fresh ``(oracle, explainer)`` pair rebuilt from a job spec.

    The explainer is constructed with ``n_jobs=None`` — workers always run
    the sequential engine; parallelism exists only between workers.
    """
    from repro.shapley.cells import CellShapleyExplainer

    oracle = BinaryRepairOracle(
        spec.algorithm,
        list(spec.constraints),
        spec.dirty_table,
        spec.cell,
        target_value=spec.target_value,
        use_cache=spec.use_cache,
        incremental=spec.oracle_incremental,
        paired=spec.oracle_paired,
        shared_stats=spec.oracle_shared_stats,
        batched_pairs=spec.oracle_batched_pairs,
        cache_size=spec.cache_size,
    )
    explainer = CellShapleyExplainer(
        oracle,
        policy=spec.policy,
        rng=spec.job_seed,
        incremental=spec.explainer_incremental,
        paired=spec.explainer_paired,
        shared_stats=spec.explainer_shared_stats,
        batched_pairs=spec.explainer_batched_pairs,
    )
    return oracle, explainer


def run_worker(spec: "ExplainJobSpec | bytes", shards: "list[ExplainShard]",
               worker_index: int = 0, state=None) -> WorkerReport:
    """Execute one worker's shard list and report results + counters + cache.

    Before each shard the sampler is reseeded with the shard's own stream
    (derived from the job seed and the shard coordinates), so the draws are
    independent of the shard's position in this worker's list — the property
    that makes any shard-to-worker assignment produce identical estimates.

    ``state`` lets an in-process caller (the scheduler's ``n_jobs=1`` path,
    which keeps one state across adaptive rounds) reuse a built
    ``(oracle, explainer)`` pair instead of rebuilding it per call; its
    counters are reset on entry so the report carries this call's deltas
    only, while its cache stays warm across calls — wall-clock changes,
    values never do (memoisation of a deterministic black box).
    """
    if isinstance(spec, (bytes, bytearray)):
        spec = pickle.loads(bytes(spec))
    if state is None:
        state = build_worker_state(spec)
    oracle, explainer = state
    oracle.reset_counters()
    results: list[ShardResult] = []
    for shard in shards:
        explainer.sampler.reseed(
            shard_rng(spec.job_seed, shard.cell_position, shard.chunk_index)
        )
        tracker = RunningMean()
        explainer._accumulate_cell(shard.cell, shard.n_samples, tracker)
        results.append(
            ShardResult(shard.shard_id, shard.cell_position, shard.chunk_index, tracker)
        )
    return WorkerReport(
        worker_index=worker_index,
        shard_results=results,
        statistics=oracle.statistics(),
        cache=oracle.cache,
    )
