"""Worker-side execution: rebuild (or reuse) the oracle stack, drain shards.

Two entry points share the same evaluation core:

* :func:`run_worker` — the **cold** path: build a fresh ``(oracle,
  explainer)`` pair from the job spec, drain the shard list once, ship the
  whole cache home.  One call = one worker lifetime.
* :func:`run_resident_worker` — the **warm** path: the oracle stack is looked
  up in (or installed into) a worker-lifetime ``resident`` dict keyed by the
  job-spec fingerprint, so repeated rounds of the same job skip the rebuild
  entirely; only the *diff* of cache entries inserted since the worker's last
  sync (a per-worker high-water mark over
  :meth:`~repro.repair.cache.OracleCache.entries_since`) plus this round's
  counter deltas travel home.

Both accept the spec as a live object (in-process execution) or as pickled
bytes (the multi-process path pickles the spec once and reuses the payload),
so every execution venue runs literally the same code on the same inputs.
Each stack is a full private copy of the evaluation engine — oracle, cache,
shared-statistics instance, repair-walk state.  Within a worker the cache
accumulates across shards and rounds exactly like the sequential oracle's
does; because the cache is a pure memoisation of a deterministic black box,
this sharing affects wall-clock only, never values.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass

from repro.observability import trace as otrace
from repro.observability.trace import coordinate_span_id
from repro.parallel.job import (
    ExplainJobSpec,
    ExplainShard,
    ShardResult,
    WorkerFault,
    WorkerReport,
)
from repro.parallel.seeding import shard_rng
from repro.repair.base import BinaryRepairOracle
from repro.shapley.convergence import RunningMean


def build_worker_state(spec: ExplainJobSpec):
    """A fresh ``(oracle, explainer)`` pair rebuilt from a job spec.

    The explainer is constructed with ``n_jobs=None`` — workers always run
    the sequential engine; parallelism exists only between workers.
    """
    from repro.shapley.cells import CellShapleyExplainer

    oracle = BinaryRepairOracle(
        spec.algorithm,
        list(spec.constraints),
        spec.dirty_table,
        spec.cell,
        target_value=spec.target_value,
        use_cache=spec.use_cache,
        incremental=spec.oracle_incremental,
        paired=spec.oracle_paired,
        shared_stats=spec.oracle_shared_stats,
        batched_pairs=spec.oracle_batched_pairs,
        vectorized=spec.oracle_vectorized,
        cache_size=spec.cache_size,
    )
    explainer = CellShapleyExplainer(
        oracle,
        policy=spec.policy,
        rng=spec.job_seed,
        incremental=spec.explainer_incremental,
        paired=spec.explainer_paired,
        shared_stats=spec.explainer_shared_stats,
        batched_pairs=spec.explainer_batched_pairs,
    )
    return oracle, explainer


@dataclass
class ResidentState:
    """One warm worker's resident oracle stack for one job fingerprint."""

    spec: ExplainJobSpec
    oracle: BinaryRepairOracle
    explainer: object
    #: the cache's high-water mark at the last sync — entries at or above it
    #: are what the next report ships home
    cache_mark: int = 0


def _load_spec(spec: "ExplainJobSpec | bytes") -> ExplainJobSpec:
    if isinstance(spec, (bytes, bytearray)):
        return pickle.loads(bytes(spec))
    return spec


def _worker_tracer(spec: ExplainJobSpec):
    """``(tracer, ship)`` for one task, honouring the spec's trace flag.

    In-process execution records straight into the caller's live tracer and
    ships nothing (the spans are already home).  In a worker process —
    recognised by :func:`~repro.observability.trace.current` returning
    ``None``, since a fork-inherited parent tracer fails its pid check — a
    fresh tracer is installed for this task and ``ship=True`` tells the
    entry point to drain it onto the report (and tear it down, so the next
    task on a resident worker starts clean).
    """
    if not getattr(spec, "trace", False):
        return otrace.current(), False
    tracer = otrace.current()
    if tracer is not None:
        return tracer, False
    return otrace.enable(), True


def _drain_shards(spec: ExplainJobSpec, explainer, shards: "list[ExplainShard]",
                  fault: WorkerFault | None = None) -> list[ShardResult]:
    """The shared evaluation core: reseed per shard, accumulate, report.

    Before each shard the sampler is reseeded with the shard's own stream
    (derived from the job seed and the shard coordinates), so the draws are
    independent of the shard's position in this worker's list — the property
    that makes any shard-to-worker assignment produce identical estimates.

    With tracing active each shard runs under a ``shard`` span whose id —
    and whose parent ``cell`` span's id — are derived from the same seed
    coordinates, so spans recorded here stitch under the parent process's
    cell spans with no communication (see :mod:`repro.observability.trace`).
    """
    tracer = otrace.current()
    results: list[ShardResult] = []
    sampler = explainer.sampler
    for position, shard in enumerate(shards):
        if fault is not None and fault.die_after_shards is not None \
                and position >= fault.die_after_shards:
            os._exit(23)  # a mid-task crash: no reply, EOF on the pipe
        sampler.reseed(
            shard_rng(spec.job_seed, shard.cell_position, shard.chunk_index)
        )
        tracker = RunningMean()
        # provenance is recorded per shard and shipped on the result — the
        # parent unions shards per cell into the touched-cell fingerprint
        # the live session's selective invalidation intersects with updates
        touched: set = set()
        sampler.touched_sink = touched
        try:
            if tracer is None:
                explainer._accumulate_cell(shard.cell, shard.n_samples, tracker)
            else:
                with tracer.span(
                    "shard",
                    span_id=coordinate_span_id(
                        spec.job_seed, "shard", shard.cell_position, shard.chunk_index
                    ),
                    parent_id=coordinate_span_id(
                        spec.job_seed, "cell", shard.cell_position
                    ),
                    shard_id=shard.shard_id,
                    n_samples=shard.n_samples,
                ):
                    explainer._accumulate_cell(shard.cell, shard.n_samples, tracker)
        finally:
            sampler.touched_sink = None
        results.append(
            ShardResult(shard.shard_id, shard.cell_position, shard.chunk_index,
                        tracker, frozenset(touched))
        )
    return results


def run_worker(spec: "ExplainJobSpec | bytes", shards: "list[ExplainShard]",
               worker_index: int = 0, state=None) -> WorkerReport:
    """Cold-path execution: one fresh stack, one shard list, the whole cache.

    ``state`` lets an in-process caller reuse a built ``(oracle, explainer)``
    pair instead of rebuilding it per call; its counters are reset on entry
    so the report carries this call's deltas only, while its cache stays warm
    across calls — wall-clock changes, values never do (memoisation of a
    deterministic black box).
    """
    spec = _load_spec(spec)
    tracer, ship_spans = _worker_tracer(spec)
    try:
        rebuilt = 0
        if state is None:
            state = build_worker_state(spec)
            rebuilt = 1
        oracle, explainer = state
        oracle.reset_counters()
        results = _drain_shards(spec, explainer, shards)
        cache_size = len(oracle.cache) if oracle.cache is not None else 0
        return WorkerReport(
            worker_index=worker_index,
            shard_results=results,
            statistics=oracle.statistics(),
            cache=oracle.cache,
            rebuilt=rebuilt,
            # the whole cache crosses the boundary when this report was computed
            # in a worker process; an in-process caller (state reuse) ships nothing
            entries_shipped=cache_size if rebuilt else 0,
            resident_cache_size=cache_size,
            spans=tracer.drain() if ship_spans else [],
        )
    finally:
        if ship_spans:
            otrace.disable()


def run_base_update_worker(old_key: str, new_key: str, delta,
                           worker_index: int = 0, *, resident: dict) -> dict:
    """Patch one worker's resident oracle stack for a base-table update.

    The warm half of ``worker_rebuilds`` staying flat across updates: the
    resident stack filed under ``old_key`` has the
    :class:`~repro.repair.updates.BaseUpdateDelta` applied to its own table
    copy — statistics synced and moved by delta, detector delta-maintained,
    cache rebased, target value adopted — and is re-filed under ``new_key``
    (the fingerprint of the post-update job spec), so the next explain round
    finds it without a payload or a rebuild.  Counters stay silent
    (``count=False``): the parent accounts the update once on its own
    oracle, and worker reports only ever carry per-round deltas.

    A worker holding no stack for ``old_key`` (a fresh replacement, or a
    requeued patch landing on an already-patched worker) acknowledges with
    ``patched=0`` — it will rebuild from the post-update payload on its next
    shard assignment, which is the same state either way.
    """
    state = resident.pop(old_key, None)
    if state is None:
        return {"worker_index": worker_index, "patched": 0, "cells_written": 0}
    cells_written = state.oracle.apply_base_update(delta, count=False)
    state.spec.target_value = delta.target_value
    state.explainer.sampler.invalidate_overlay()
    resident[new_key] = state
    return {"worker_index": worker_index, "patched": 1,
            "cells_written": cells_written}


def run_resident_worker(spec: "ExplainJobSpec | bytes | None", spec_key: str,
                        shards: "list[ExplainShard]", worker_index: int = 0,
                        seed_snapshot: "dict | None" = None,
                        *, resident: dict,
                        fault: WorkerFault | None = None) -> WorkerReport:
    """Warm-path execution: resident stack lookup, cache-diff shipping.

    ``resident`` is the worker-lifetime state dict (the pool hands its
    process-global one to every resident task; the scheduler's in-process
    and degraded paths pass their own).  The stack for ``spec_key`` is built
    at most once per dict — every later round reuses it, which is the whole
    point of the warm pool — and the report ships only the cache entries
    inserted since this worker's previous sync plus this round's counter
    deltas.  ``fault`` is the test harness's injection hook
    (:class:`~repro.parallel.job.WorkerFault`); production rounds never set
    it.  ``spec`` may be ``None`` when the caller knows this state dict
    already holds the stack (the scheduler ships the payload once per worker
    process, then sends bare shard lists).

    ``seed_snapshot`` is the warm-restart half: an
    :meth:`~repro.repair.cache.OracleCache.snapshot` of the parent's merged
    cache, restored into a *freshly built* stack before the sync mark is
    taken — the replacement worker resumes from the fleet's accumulated
    answers (``warm_restart=1`` / ``entries_seeded`` on the report) and the
    seeded entries never ship back home.  A stack that is already resident
    ignores the snapshot: its own cache is at least as current.

    Diff shipping is **at-most-once**: the high-water mark advances when the
    diff is cut, so a report that later fails to cross the pipe does not
    re-ship its entries on the next round.  That loss is deliberate — the
    dominant failure there is an unpicklable entry, which would fail every
    retry identically; values are unaffected either way (the cache is pure
    memoisation) and the degraded in-process run rebuilds its own warmth.
    """
    if fault is not None and fault.hang_seconds is not None:
        time.sleep(fault.hang_seconds)
    state = resident.get(spec_key)
    rebuilt = 0
    warm_restart = 0
    entries_seeded = 0
    if state is None:
        if spec is None:
            raise RuntimeError(
                f"no resident oracle stack for job {spec_key!r} and no spec "
                "payload to build one from (replacement workers receive the "
                "payload with their first task; requeued tasks land on "
                "workers that answered ok this round and therefore hold it)"
            )
        spec = _load_spec(spec)
        oracle, explainer = build_worker_state(spec)
        if seed_snapshot is not None and oracle.cache is not None:
            entries_seeded = oracle.cache.restore(seed_snapshot)
            warm_restart = 1
        # the mark is taken *after* seeding: seeded entries came from the
        # parent, so the first diff home carries only this worker's new work
        mark = oracle.cache.high_water_mark() if oracle.cache is not None else 0
        state = ResidentState(spec, oracle, explainer, cache_mark=mark)
        resident[spec_key] = state
        rebuilt = 1
    # the resident spec carries the job's trace flag even on payload-free
    # rounds (the payload ships once per worker process)
    tracer, ship_spans = _worker_tracer(state.spec)
    try:
        oracle = state.oracle
        oracle.reset_counters()
        results = _drain_shards(state.spec, state.explainer, shards, fault=fault)
        if oracle.cache is not None:
            cache_diff = oracle.cache.entries_since(state.cache_mark)
            state.cache_mark = oracle.cache.high_water_mark()
            cache_size = len(oracle.cache)
        else:
            cache_diff = []
            cache_size = 0
        report = WorkerReport(
            worker_index=worker_index,
            shard_results=results,
            statistics=oracle.statistics(),
            cache=None,
            cache_diff=cache_diff,
            rebuilt=rebuilt,
            entries_shipped=len(cache_diff),
            resident_cache_size=cache_size,
            warm_restart=warm_restart,
            entries_seeded=entries_seeded,
            spans=tracer.drain() if ship_spans else [],
        )
        if fault is not None:
            if fault.slow_seconds is not None:
                time.sleep(fault.slow_seconds)  # the work is done; the reply is late
            if fault.unpicklable_report:
                report.statistics = dict(report.statistics)
                report.statistics["_poison"] = lambda: None  # defeats pickling
            if fault.corrupt_reply:
                return "\x00corrupt worker reply\x00"  # type: ignore[return-value]
        return report
    finally:
        if ship_spans:
            otrace.disable()
