"""Deterministic seed partitioning for sharded Shapley estimation.

The whole parallel subsystem rests on one invariant: **the random draws of a
shard depend only on the job seed and the shard's coordinates, never on the
worker that executes it**.  Each ``(cell, sample-chunk)`` shard derives its
own :class:`numpy.random.SeedSequence` from the entropy tuple
``(job_seed, cell_position, chunk_index)``, so the plan can be cut across any
number of processes — or replayed in-process — and every shard draws exactly
the same permutations and replacement values.  ``n_jobs=1`` and ``n_jobs=k``
are therefore bit-identical by construction, not by synchronisation.

``SeedSequence``'s entropy-hashing algorithm is documented by NumPy as stable
across versions and platforms, which is what makes the partition reproducible
in CI and across worker start methods (fork and spawn alike).
"""

from __future__ import annotations

import numpy as np

from repro.config import DEFAULT_SEED, make_rng

#: entropy values must be non-negative; job seeds drawn from a generator are
#: already in range, user-supplied ints are masked into it
_SEED_MASK = (1 << 63) - 1


def resolve_job_seed(rng) -> int:
    """The integer seed a sharded plan is partitioned from.

    One rule for every ``n_jobs`` entry point (the cell explainer and the
    permutation estimator both resolve their ``rng`` argument here, so the
    bit-identity invariant cannot drift between them): ``None`` means the
    library default, an integer is used as-is, and a live generator — which
    has no recoverable integer — contributes one draw, deterministic in its
    state.
    """
    if rng is None:
        return DEFAULT_SEED
    if isinstance(rng, (int, np.integer)):
        return int(rng)
    return int(make_rng(rng).integers(0, 2**63))


def shard_seed_sequence(job_seed: int, *key: int) -> np.random.SeedSequence:
    """The seed sequence of one shard, keyed by the job seed plus coordinates.

    ``key`` is the shard's coordinate tuple — ``(cell_position, chunk_index)``
    for the cell-Shapley scheduler, a bare chunk index for the permutation
    estimator.  Distinct coordinates yield statistically independent streams.
    """
    return np.random.SeedSequence([int(job_seed) & _SEED_MASK,
                                   *(int(part) for part in key)])


def shard_rng(job_seed: int, *key: int) -> np.random.Generator:
    """A fresh generator for one shard (see :func:`shard_seed_sequence`)."""
    return np.random.default_rng(shard_seed_sequence(job_seed, *key))


def partition_samples(total: int, per_shard: int) -> list[int]:
    """Split ``total`` samples into chunk sizes of at most ``per_shard``.

    The partition is the unit of seed derivation: chunk ``i`` of a cell draws
    from the stream keyed by chunk index ``i`` regardless of how chunks are
    assigned to workers.  ``per_shard`` must therefore be held fixed when
    comparing runs — it is part of the sampling plan, not a tuning knob that
    leaves results unchanged.
    """
    if per_shard < 1:
        raise ValueError(f"per_shard must be a positive integer, got {per_shard}")
    total = int(total)
    if total <= 0:
        return []
    sizes = [per_shard] * (total // per_shard)
    if total % per_shard:
        sizes.append(total % per_shard)
    return sizes
