"""Process-pool plumbing for the sharded scheduler.

One executor, one task per worker: each task receives its full shard list up
front (static round-robin assignment, decided by the scheduler), builds its
own oracle stack once, and returns a single report.  There is no work
stealing — dynamic assignment would be faster on skewed shards but would make
"which worker ran what" depend on timing, and per-worker cache/statistics
reports are only meaningful for a deterministic assignment.

The ``fork`` start method is preferred where available (POSIX): workers
inherit the parent's interpreter state, so only the job payload crosses a
pickle boundary.  Elsewhere the platform default (spawn) is used — everything
a worker needs is pickled anyway, it just pays an import per worker.  In
sandboxes where process pools cannot be created at all (no /dev/shm, seccomp
filters), execution degrades to in-process with a one-time warning; results
are unaffected because shard draws are seeded, not shared.
"""

from __future__ import annotations

import multiprocessing
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

_POOL_FAILURE_WARNED = False


def process_context():
    """The multiprocessing context used for worker pools (fork if available)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_worker_tasks(fn: Callable, tasks: Sequence[tuple], n_jobs: int) -> list:
    """Run one ``fn(*task)`` call per task, in processes when ``n_jobs > 1``.

    Results come back in task order (never completion order), so callers can
    merge deterministically.  With one task or one job the calls run inline —
    the task arguments are identical either way, which is what keeps the
    in-process and multi-process paths bit-identical.
    """
    tasks = list(tasks)
    if n_jobs <= 1 or len(tasks) <= 1:
        return [fn(*task) for task in tasks]
    try:
        # worker processes are spawned lazily, so process-creation failures
        # (seccomp-denied clone, EAGAIN/ENOMEM at fork, dead /dev/shm) can
        # surface at construction, at submit, or as a BrokenProcessPool from
        # result() — all of them degrade to the in-process plan.  A
        # deterministic exception raised *by the task itself* is none of
        # these types: it propagates (and would re-raise inline anyway).
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(tasks)),
                                 mp_context=process_context()) as pool:
            futures = [pool.submit(fn, *task) for task in tasks]
            return [future.result() for future in futures]
    except (OSError, BrokenProcessPool) as error:  # pragma: no cover - sandbox-dependent
        global _POOL_FAILURE_WARNED
        if not _POOL_FAILURE_WARNED:
            _POOL_FAILURE_WARNED = True
            warnings.warn(
                f"cannot run a process pool ({error}); running shards "
                "in-process — results are identical, only slower",
                RuntimeWarning,
                stacklevel=2,
            )
        return [fn(*task) for task in tasks]
