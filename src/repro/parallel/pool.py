"""Worker-pool plumbing for the sharded scheduler.

Two lifecycles share one mechanism:

* :class:`WorkerPool` — the **warm pool**: worker processes spawned once and
  kept alive across rounds, each holding whatever resident state its task
  handler accumulates (the explain workers keep a whole oracle stack keyed by
  job-spec fingerprint).  One dedicated pipe per worker makes the task→worker
  assignment exact — worker ``i`` runs task ``i``, never "whichever process
  grabs the queue first" — which is what keeps per-worker resident caches,
  rebuild counters and diff high-water marks meaningful.
* :func:`run_worker_tasks` — the **transient pool**: the cold path builds a
  pool, runs one round, tears it down.  It is a thin wrapper over
  :class:`WorkerPool`, so it inherits the same health machinery.

Health and requeue: a worker that dies mid-task (EOF on its pipe) or exceeds
the pool timeout is replaced, and its task is requeued onto a live worker —
or degraded in-process when no worker can take it.  A worker that *answers*
with an error (a deterministic task failure, or a report that cannot be
pickled) is left alive and its task degrades in-process directly: retrying a
deterministic failure on another process would fail identically, while the
in-process run needs no pickling at all.  None of this can change results —
shard draws are seeded by shard coordinates, so a re-executed task produces
bit-identical numbers wherever it lands.

The ``fork`` start method is preferred where available (POSIX): workers
inherit the parent's interpreter state, so only task payloads cross a pickle
boundary.  In sandboxes where child processes cannot be created at all (no
/dev/shm, seccomp filters), execution degrades to in-process with a one-time
warning; results are unaffected because shard draws are seeded, not shared.
"""

from __future__ import annotations

import multiprocessing
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Sequence

_POOL_FAILURE_WARNED = False


def process_context():
    """The multiprocessing context used for worker pools (fork if available)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _pool_worker_main(connection) -> None:
    """The loop every pool worker runs: recv task, execute, send report.

    ``resident`` is the worker-lifetime state dict handed to resident-capable
    handlers (see :class:`PoolTask`); it is what makes the pool *warm* —
    state built for one task survives into every later task of this process.
    A report that fails to pickle is answered with an ``("error", …)`` tuple
    instead (``Connection.send`` pickles before writing, so a failed send
    leaves the pipe clean), letting the parent degrade that task in-process.
    """
    resident: dict = {}
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):  # parent went away
            break
        if message is None:
            break
        fn, args, wants_resident, fault = message
        kwargs: dict = {}
        if wants_resident:
            kwargs["resident"] = resident
        if fault is not None:
            kwargs["fault"] = fault
        try:
            response = ("ok", fn(*args, **kwargs))
        except Exception as error:
            response = ("error", f"{type(error).__name__}: {error}")
        try:
            connection.send(response)
        except Exception as error:
            try:
                connection.send(("error", f"worker report is not picklable ({error})"))
            except Exception:  # pragma: no cover - pipe gone mid-reply
                break


@dataclass
class PoolTask:
    """One unit of pool work: ``fn(*args)`` on a dedicated worker.

    ``resident=True`` additionally passes the worker's process-lifetime state
    dict as a ``resident`` keyword — the warm-path handlers use it to keep
    their oracle stack between rounds.  ``fault`` is the test harness's
    injection point (see :class:`~repro.parallel.job.WorkerFault`); it is
    delivered as a ``fault`` keyword and stripped on requeue.
    """

    fn: Callable
    args: tuple
    resident: bool = False
    fault: Any = None


@dataclass
class TaskOutcome:
    """How one task actually ran: its result plus the pool's health verdict."""

    result: Any
    worker_index: int          # worker that produced the result; -1 = in-process
    requeued: bool = False     # re-executed after the assigned worker failed
    degraded: bool = False     # ran in the parent process (no pipe crossed)


def _default_fallback(task: "PoolTask"):
    """Degrade one task in the parent process.

    Resident tasks get a fresh (empty) state dict — the parent has no warm
    stack for them, so the handler builds one, exactly like a cold worker
    would; callers that keep their own parent-side resident state pass a
    custom fallback instead.
    """
    if task.resident:
        return task.fn(*task.args, resident={})
    return task.fn(*task.args)


class _PoolWorker:
    """One live worker process plus the parent end of its pipe."""

    __slots__ = ("process", "connection")

    def __init__(self, context):
        parent_connection, child_connection = context.Pipe()
        self.process = context.Process(
            target=_pool_worker_main, args=(child_connection,), daemon=True
        )
        self.process.start()
        child_connection.close()
        self.connection = parent_connection

    def stop(self) -> None:
        try:
            self.connection.send(None)
        except Exception:
            pass
        self.process.join(timeout=0.5)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=0.5)
        self.connection.close()

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=0.5)
        self.connection.close()


class WorkerPool:
    """A warm pool of worker processes with health monitoring and requeue.

    Parameters
    ----------
    n_workers:
        Worker process count; all are spawned at construction so that
        environments unable to create processes fail *here* (an ``OSError``
        the caller degrades on) rather than mid-round.
    timeout:
        Per-task seconds the parent waits for a worker's report before
        declaring it hung, replacing it and requeueing the task.  ``None``
        (default) waits indefinitely — worker *death* is still detected
        immediately via EOF on the pipe.

    The pool is a context manager; :meth:`close` shuts the workers down.
    ``workers_restarted`` / ``tasks_requeued`` count health events over the
    pool's lifetime.
    """

    def __init__(self, n_workers: int, timeout: float | None = None, context=None):
        if int(n_workers) < 1:
            raise ValueError(f"n_workers must be a positive integer, got {n_workers}")
        self._context = context if context is not None else process_context()
        self.timeout = timeout
        self.workers_restarted = 0
        self.tasks_requeued = 0
        #: per-slot restart generation — bumped whenever the process behind a
        #: slot is replaced, so callers tracking per-worker resident state
        #: can tell "same warm process" from "fresh replacement"
        self.worker_generations: list[int] = [0] * int(n_workers)
        self._workers: list[_PoolWorker | None] = []
        try:
            for _ in range(int(n_workers)):
                self._workers.append(_PoolWorker(self._context))
        except BaseException:
            self.close()
            raise

    # -- lifecycle --------------------------------------------------------------------

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut every worker down; safe to call repeatedly."""
        workers, self._workers = self._workers, []
        for worker in workers:
            if worker is not None:
                worker.stop()

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    # -- one round --------------------------------------------------------------------

    def run_tasks(self, tasks: Sequence[PoolTask],
                  fallback: Callable[[PoolTask], Any] | None = None) -> list[TaskOutcome]:
        """Run ``tasks[i]`` on worker ``i`` and return outcomes in task order.

        The assignment is positional and static — determinism of "which
        worker ran what" is what per-worker resident state and cache
        high-water marks are accounted against.  Failed tasks are requeued
        onto a live worker that finished its own task cleanly this round
        (warm state and all), then — if that fails too, or none exists —
        degraded in-process via ``fallback`` (default: ``fn(*args)`` in the
        parent, which re-raises deterministic task errors exactly like a
        sequential run would).
        """
        tasks = list(tasks)
        if len(tasks) > len(self._workers):
            raise ValueError(
                f"got {len(tasks)} tasks for {len(self._workers)} workers; "
                "assign at most one task per worker"
            )
        if fallback is None:
            fallback = _default_fallback

        dispatched: list[bool] = []
        for index, task in enumerate(tasks):
            dispatched.append(self._dispatch(index, task))

        outcomes: list[TaskOutcome | None] = [None] * len(tasks)
        failed: list[tuple[int, str]] = []
        for index in range(len(tasks)):
            if not dispatched[index]:
                failed.append((index, "dead"))
                continue
            status, payload = self._collect(index)
            if status == "ok":
                outcomes[index] = TaskOutcome(payload, worker_index=index)
            else:
                self._note_failure(index, status, payload)
                failed.append((index, status))

        for index, status in failed:
            outcomes[index] = self._requeue(tasks[index], index, status,
                                            outcomes, fallback)
        return outcomes  # type: ignore[return-value]

    # -- plumbing ---------------------------------------------------------------------

    def _dispatch(self, index: int, task: PoolTask) -> bool:
        worker = self._workers[index]
        if worker is None:
            return False
        try:
            worker.connection.send((task.fn, task.args, task.resident, task.fault))
            return True
        except (OSError, ValueError):
            self._restart(index)
            return False

    def _collect(self, index: int) -> tuple[str, Any]:
        worker = self._workers[index]
        if worker is None:  # pragma: no cover - dispatch already failed
            return ("dead", None)
        try:
            if self.timeout is not None and not worker.connection.poll(self.timeout):
                return ("timeout", None)
            return worker.connection.recv()
        except (EOFError, OSError):
            return ("dead", None)

    def _note_failure(self, index: int, status: str, payload: Any) -> None:
        if status == "error":
            # the worker is alive and sane — it answered; the task itself is
            # the problem, so the retry happens in-process (no pickling)
            warnings.warn(
                f"pool worker {index} could not complete its task ({payload}); "
                "re-running in-process — results are identical",
                RuntimeWarning,
                stacklevel=4,
            )
            return
        reason = (f"timed out after {self.timeout}s" if status == "timeout"
                  else "died mid-task")
        warnings.warn(
            f"pool worker {index} {reason}; restarting it and requeueing its "
            "shards — results are identical (shard draws are seeded)",
            RuntimeWarning,
            stacklevel=4,
        )
        self._restart(index)

    def _restart(self, index: int) -> None:
        worker = self._workers[index]
        if isinstance(worker, _PoolWorker):
            worker.kill()
        self.worker_generations[index] += 1
        try:
            self._workers[index] = _PoolWorker(self._context)
            self.workers_restarted += 1
        except OSError:  # pragma: no cover - sandbox-dependent
            self._workers[index] = None

    def _requeue(self, task: PoolTask, index: int, status: str,
                 outcomes: Sequence[TaskOutcome | None],
                 fallback: Callable[[PoolTask], Any]) -> TaskOutcome:
        self.tasks_requeued += 1
        clean = PoolTask(task.fn, task.args, resident=task.resident, fault=None)
        if status != "error":
            # prefer a worker that completed its own task cleanly this round:
            # it is warm (resident state for this job) and demonstrably
            # healthy; an "error" verdict skips this — the failure was the
            # task's own and would reproduce on any process.  The outcome
            # must have been produced by slot `candidate` itself — after an
            # earlier requeue, outcomes[candidate] can describe a run on a
            # *different* worker while the slot holds a cold restart
            for candidate, outcome in enumerate(outcomes):
                if (candidate == index or outcome is None
                        or outcome.worker_index != candidate):
                    continue
                if not self._dispatch(candidate, clean):
                    continue
                candidate_status, payload = self._collect(candidate)
                if candidate_status == "ok":
                    return TaskOutcome(payload, worker_index=candidate,
                                       requeued=True)
                self._note_failure(candidate, candidate_status, payload)
                break
        return TaskOutcome(fallback(clean), worker_index=-1,
                           requeued=True, degraded=True)


def _run_stateless(fn: Callable, args: tuple) -> Any:
    """Adapter so plain ``fn(*args)`` tasks run under the pool protocol."""
    return fn(*args)


def run_worker_tasks(fn: Callable, tasks: Sequence[tuple], n_jobs: int,
                     timeout: float | None = None,
                     health: dict | None = None) -> list:
    """Run one ``fn(*task)`` call per task, in processes when ``n_jobs > 1``.

    The transient-pool entry point (the cold scheduler path and the sharded
    permutation estimator): a :class:`WorkerPool` is built, runs exactly one
    round and is torn down.  Results come back in task order (never
    completion order), so callers can merge deterministically.  With one task
    or one job the calls run inline — the task arguments are identical either
    way, which is what keeps the in-process and multi-process paths
    bit-identical.  A worker death or ``timeout`` overrun mid-round requeues
    only that worker's task (see :meth:`WorkerPool.run_tasks`) instead of
    abandoning the pool; passing a ``health`` dict surfaces what happened —
    ``workers_restarted``, the indexes of ``requeued_tasks``, and whether the
    round ``fanned_out`` to real processes at all — so callers can fold the
    events into their counter surface.
    """
    tasks = list(tasks)
    if health is not None:
        health["fanned_out"] = False
    if n_jobs <= 1 or len(tasks) <= 1:
        return [fn(*task) for task in tasks]
    try:
        pool = WorkerPool(min(n_jobs, len(tasks)), timeout=timeout)
    except OSError as error:  # pragma: no cover - sandbox-dependent
        global _POOL_FAILURE_WARNED
        if not _POOL_FAILURE_WARNED:
            _POOL_FAILURE_WARNED = True
            warnings.warn(
                f"cannot run a process pool ({error}); running shards "
                "in-process — results are identical, only slower",
                RuntimeWarning,
                stacklevel=2,
            )
        return [fn(*task) for task in tasks]
    with pool:
        outcomes = pool.run_tasks(
            [PoolTask(_run_stateless, (fn, tuple(task))) for task in tasks]
        )
    if health is not None:
        health["fanned_out"] = True
        health["workers_restarted"] = pool.workers_restarted
        health["requeued_tasks"] = [index for index, outcome in enumerate(outcomes)
                                    if outcome.requeued]
    return [outcome.result for outcome in outcomes]
