"""Worker-pool plumbing for the sharded scheduler.

Two lifecycles share one mechanism:

* :class:`WorkerPool` — the **warm pool**: worker processes spawned once and
  kept alive across rounds, each holding whatever resident state its task
  handler accumulates (the explain workers keep a whole oracle stack keyed by
  job-spec fingerprint).  One dedicated pipe per worker makes the task→worker
  assignment exact — worker ``i`` runs task ``i``, never "whichever process
  grabs the queue first" — which is what keeps per-worker resident caches,
  rebuild counters and diff high-water marks meaningful.
* :func:`run_worker_tasks` — the **transient pool**: the cold path builds a
  pool, runs one round, tears it down.  It is a thin wrapper over
  :class:`WorkerPool`, so it inherits the same health machinery.

Health and requeue: a worker that dies mid-task (EOF on its pipe) or exceeds
the pool timeout is replaced, and its task is requeued onto a live worker —
or degraded in-process when no worker can take it.  A worker that *answers*
with an error (a deterministic task failure, or a report that cannot be
pickled) is left alive and its task degrades in-process directly: retrying a
deterministic failure on another process would fail identically, while the
in-process run needs no pickling at all.  None of this can change results —
shard draws are seeded by shard coordinates, so a re-executed task produces
bit-identical numbers wherever it lands.

The ``fork`` start method is preferred where available (POSIX): workers
inherit the parent's interpreter state, so only task payloads cross a pickle
boundary.  In sandboxes where child processes cannot be created at all (no
/dev/shm, seccomp filters), execution degrades to in-process with a one-time
warning; results are unaffected because shard draws are seeded, not shared.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.observability.events import EventLog

_POOL_FAILURE_WARNED = False


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on the pool's restart machinery (crash-loop containment).

    Without a policy a worker slot whose replacement keeps dying is respawned
    forever, as fast as ``fork`` allows.  The policy caps that loop along
    three axes:

    * ``backoff_base`` / ``backoff_factor`` / ``backoff_max`` — an
      exponential delay before the *n*-th replacement of one slot, so a
      systemic failure (OOM killer, broken interpreter) does not turn into a
      fork storm; the pool sums the waited seconds into
      ``backoff_seconds_total``.
    * ``max_worker_restarts`` — per-slot replacement cap; a slot that
      exceeds it is left dead (its tasks requeue or degrade in-process) and
      ``None`` means unbounded.
    * ``max_shard_attempts`` — consumed by the scheduler, not the pool: the
      cross-worker failure count after which a shard is quarantined to the
      in-process degrade path (see ``ShardedExplainScheduler``).

    None of the knobs can change results — every re-execution venue draws
    from the same shard-coordinate seeds.
    """

    max_worker_restarts: int | None = 5
    max_shard_attempts: int | None = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0

    def backoff_seconds(self, restart_index: int) -> float:
        """Delay before the ``restart_index``-th replacement of one slot."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** restart_index)


def process_context():
    """The multiprocessing context used for worker pools (fork if available)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _pool_worker_main(connection) -> None:
    """The loop every pool worker runs: recv task, execute, send report.

    ``resident`` is the worker-lifetime state dict handed to resident-capable
    handlers (see :class:`PoolTask`); it is what makes the pool *warm* —
    state built for one task survives into every later task of this process.
    A report that fails to pickle is answered with an ``("error", …)`` tuple
    instead (``Connection.send`` pickles before writing, so a failed send
    leaves the pipe clean), letting the parent degrade that task in-process.
    """
    resident: dict = {}
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):  # parent went away
            break
        if message is None:
            break
        fn, args, wants_resident, fault = message
        kwargs: dict = {}
        if wants_resident:
            kwargs["resident"] = resident
        if fault is not None:
            kwargs["fault"] = fault
        try:
            response = ("ok", fn(*args, **kwargs))
        except Exception as error:
            response = ("error", f"{type(error).__name__}: {error}")
        try:
            connection.send(response)
        except Exception as error:
            try:
                connection.send(("error", f"worker report is not picklable ({error})"))
            except Exception:  # pragma: no cover - pipe gone mid-reply
                break


@dataclass
class PoolTask:
    """One unit of pool work: ``fn(*args)`` on a dedicated worker.

    ``resident=True`` additionally passes the worker's process-lifetime state
    dict as a ``resident`` keyword — the warm-path handlers use it to keep
    their oracle stack between rounds.  ``fault`` is the test harness's
    injection point (see :class:`~repro.parallel.job.WorkerFault`); it is
    delivered as a ``fault`` keyword and stripped on requeue.
    """

    fn: Callable
    args: tuple
    resident: bool = False
    fault: Any = None


@dataclass
class TaskOutcome:
    """How one task actually ran: its result plus the pool's health verdict."""

    result: Any
    worker_index: int          # worker that produced the result; -1 = in-process
    requeued: bool = False     # re-executed after the assigned worker failed
    degraded: bool = False     # ran in the parent process (no pipe crossed)
    expired: bool = False      # dropped at the deadline; result is None


def _default_fallback(task: "PoolTask"):
    """Degrade one task in the parent process.

    Resident tasks get a fresh (empty) state dict — the parent has no warm
    stack for them, so the handler builds one, exactly like a cold worker
    would; callers that keep their own parent-side resident state pass a
    custom fallback instead.
    """
    if task.resident:
        return task.fn(*task.args, resident={})
    return task.fn(*task.args)


class _PoolWorker:
    """One live worker process plus the parent end of its pipe."""

    __slots__ = ("process", "connection")

    def __init__(self, context):
        parent_connection, child_connection = context.Pipe()
        self.process = context.Process(
            target=_pool_worker_main, args=(child_connection,), daemon=True
        )
        self.process.start()
        child_connection.close()
        self.connection = parent_connection

    def stop(self) -> None:
        try:
            self.connection.send(None)
        except Exception:
            pass
        self.process.join(timeout=0.5)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=0.5)
        self.connection.close()

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=0.5)
        self.connection.close()


class WorkerPool:
    """A warm pool of worker processes with health monitoring and requeue.

    Parameters
    ----------
    n_workers:
        Worker process count; all are spawned at construction so that
        environments unable to create processes fail *here* (an ``OSError``
        the caller degrades on) rather than mid-round.
    timeout:
        Per-task seconds the parent waits for a worker's report before
        declaring it hung, replacing it and requeueing the task.  ``None``
        (default) waits indefinitely — worker *death* is still detected
        immediately via EOF on the pipe.
    retry:
        A :class:`RetryPolicy` bounding restarts (backoff between
        replacements, per-slot cap).  ``None`` keeps the unbounded legacy
        behaviour — restart immediately, forever.
    events:
        An :class:`~repro.observability.events.EventLog` receiving the
        pool's lifecycle records (spawn, restart, abandonment, deadline
        expiry), emitted at the exact sites the health counters bump so the
        two surfaces always reconcile.  ``None`` builds a private one.

    The pool is a context manager; :meth:`close` shuts the workers down.
    ``workers_restarted`` / ``tasks_requeued`` / ``tasks_expired`` /
    ``backoff_seconds_total`` count health events over the pool's lifetime.
    """

    def __init__(self, n_workers: int, timeout: float | None = None, context=None,
                 retry: "RetryPolicy | None" = None,
                 events: "EventLog | None" = None):
        # assigned before any validation so close()/__del__ stay safe no
        # matter where construction fails (partially built pools included)
        self._workers: list[_PoolWorker | None] = []
        self._closed = False
        self.worker_generations: list[int] = []
        self.workers_restarted = 0
        self.tasks_requeued = 0
        self.tasks_expired = 0
        self.backoff_seconds_total = 0.0
        self.events = events if events is not None else EventLog()
        if int(n_workers) < 1:
            raise ValueError(f"n_workers must be a positive integer, got {n_workers}")
        self._context = context if context is not None else process_context()
        self.timeout = timeout
        self.retry = retry
        #: per-slot restart generation — bumped whenever the process behind a
        #: slot is replaced, so callers tracking per-worker resident state
        #: can tell "same warm process" from "fresh replacement"
        self.worker_generations = [0] * int(n_workers)
        try:
            for index in range(int(n_workers)):
                worker = _PoolWorker(self._context)
                self._workers.append(worker)
                self.events.emit("worker_spawn", worker=index, generation=0,
                                 pid=worker.process.pid)
        except BaseException:
            self.close()
            raise

    # -- lifecycle --------------------------------------------------------------------

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut every worker down; idempotent and safe mid-construction.

        ``_workers`` is the first attribute ``__init__`` assigns, so this is
        callable on a pool whose constructor failed at any point (including
        validation) — the slots spawned so far are stopped, later calls are
        no-ops, and a closed pool refuses new work instead of degrading it
        silently.
        """
        workers, self._workers = getattr(self, "_workers", []), []
        self._closed = True
        for worker in workers:
            if worker is not None:
                worker.stop()

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    # -- one round --------------------------------------------------------------------

    def run_tasks(self, tasks: Sequence[PoolTask],
                  fallback: Callable[[PoolTask], Any] | None = None,
                  deadline: float | None = None) -> list[TaskOutcome]:
        """Run ``tasks[i]`` on worker ``i`` and return outcomes in task order.

        The assignment is positional and static — determinism of "which
        worker ran what" is what per-worker resident state and cache
        high-water marks are accounted against.  Failed tasks are requeued
        onto a live worker that finished its own task cleanly this round
        (warm state and all), then — if that fails too, or none exists —
        degraded in-process via ``fallback`` (default: ``fn(*args)`` in the
        parent, which re-raises deterministic task errors exactly like a
        sequential run would).

        ``deadline`` is an absolute ``time.monotonic()`` instant: a task
        whose report has not arrived by then is *dropped*, not requeued —
        its worker is replaced (it may be mid-computation and unusable) and
        the outcome comes back with ``expired=True`` and a ``None`` result,
        so the caller can stop cleanly with partial results instead of
        hanging on a stuck fleet.
        """
        tasks = list(tasks)
        if self._closed and tasks:
            raise RuntimeError(
                "worker pool is closed; build a new pool to run more tasks"
            )
        if len(tasks) > len(self._workers):
            raise ValueError(
                f"got {len(tasks)} tasks for {len(self._workers)} workers; "
                "assign at most one task per worker"
            )
        if fallback is None:
            fallback = _default_fallback

        dispatched: list[bool] = []
        for index, task in enumerate(tasks):
            dispatched.append(self._dispatch(index, task))

        outcomes: list[TaskOutcome | None] = [None] * len(tasks)
        failed: list[tuple[int, str]] = []
        for index in range(len(tasks)):
            if not dispatched[index]:
                failed.append((index, "dead"))
                continue
            status, payload = self._collect(index, deadline)
            if status == "ok":
                outcomes[index] = TaskOutcome(payload, worker_index=index)
            elif status == "deadline":
                self._note_failure(index, status, payload)
                self._expire(index, worker=index)
                outcomes[index] = TaskOutcome(None, worker_index=-1, expired=True)
            else:
                self._note_failure(index, status, payload)
                failed.append((index, status))

        for index, status in failed:
            if deadline is not None and time.monotonic() >= deadline:
                # no budget left to re-execute: surface the expiry instead
                self._expire(index)
                outcomes[index] = TaskOutcome(None, worker_index=-1, expired=True)
                continue
            outcomes[index] = self._requeue(tasks[index], index, status,
                                            outcomes, fallback, deadline)
        return outcomes  # type: ignore[return-value]

    # -- plumbing ---------------------------------------------------------------------

    def _expire(self, task_index: int, worker: "int | None" = None) -> None:
        """Count one dropped-at-deadline task (and record who held it)."""
        self.tasks_expired += 1
        self.events.emit("task_deadline_expired", task=task_index, worker=worker)

    def _dispatch(self, index: int, task: PoolTask) -> bool:
        worker = self._workers[index]
        if worker is None:
            return False
        try:
            worker.connection.send((task.fn, task.args, task.resident, task.fault))
            return True
        except (OSError, ValueError):
            self._restart(index, reason="pipe-closed")
            return False

    def _collect(self, index: int, deadline: float | None = None) -> tuple[str, Any]:
        worker = self._workers[index]
        if worker is None:  # pragma: no cover - dispatch already failed
            return ("dead", None)
        try:
            wait = self.timeout
            if deadline is not None:
                remaining = deadline - time.monotonic()
                wait = remaining if wait is None else min(wait, remaining)
            if wait is not None and not worker.connection.poll(max(0.0, wait)):
                if deadline is not None and time.monotonic() >= deadline:
                    return ("deadline", None)
                return ("timeout", None)
            return worker.connection.recv()
        except (EOFError, OSError):
            return ("dead", None)

    def _note_failure(self, index: int, status: str, payload: Any) -> None:
        if status == "error":
            # the worker is alive and sane — it answered; the task itself is
            # the problem, so the retry happens in-process (no pickling)
            warnings.warn(
                f"pool worker {index} could not complete its task ({payload}); "
                "re-running in-process — results are identical",
                RuntimeWarning,
                stacklevel=4,
            )
            return
        if status == "deadline":
            # the worker may be fine, just slow — but its report is of no use
            # past the deadline, and leaving it mid-computation would poison
            # the next round's pipe protocol, so the slot is replaced; no
            # backoff (the job is already out of time)
            warnings.warn(
                f"pool worker {index} ran past the job deadline; replacing it "
                "and dropping its task — the job returns partial estimates",
                RuntimeWarning,
                stacklevel=4,
            )
            self._restart(index, backoff=False, reason="deadline")
            return
        reason = (f"timed out after {self.timeout}s" if status == "timeout"
                  else "died mid-task")
        warnings.warn(
            f"pool worker {index} {reason}; restarting it and requeueing its "
            "shards — results are identical (shard draws are seeded)",
            RuntimeWarning,
            stacklevel=4,
        )
        self._restart(index, reason=status)

    def _restart(self, index: int, backoff: bool = True,
                 reason: str = "dead") -> None:
        worker = self._workers[index]
        if isinstance(worker, _PoolWorker):
            worker.kill()
        prior_restarts = self.worker_generations[index]
        self.worker_generations[index] += 1
        if self.retry is not None:
            cap = self.retry.max_worker_restarts
            if cap is not None and prior_restarts >= cap:
                warnings.warn(
                    f"pool worker {index} exceeded its restart cap ({cap}); "
                    "leaving the slot dead — its tasks will requeue or run "
                    "in-process, results are identical",
                    RuntimeWarning,
                    stacklevel=5,
                )
                self._workers[index] = None
                self.events.emit("worker_abandoned", worker=index,
                                 restarts=prior_restarts, reason=reason)
                return
            if backoff:
                delay = self.retry.backoff_seconds(prior_restarts)
                if delay > 0:
                    time.sleep(delay)
                    self.backoff_seconds_total += delay
        try:
            replacement = _PoolWorker(self._context)
        except OSError:  # pragma: no cover - sandbox-dependent
            self._workers[index] = None
            self.events.emit("worker_abandoned", worker=index,
                             restarts=prior_restarts, reason="spawn-failed")
            return
        self._workers[index] = replacement
        self.workers_restarted += 1
        self.events.emit("worker_restart", worker=index,
                         generation=self.worker_generations[index],
                         reason=reason, pid=replacement.process.pid)

    def _requeue(self, task: PoolTask, index: int, status: str,
                 outcomes: Sequence[TaskOutcome | None],
                 fallback: Callable[[PoolTask], Any],
                 deadline: float | None = None) -> TaskOutcome:
        self.tasks_requeued += 1
        self.events.emit("task_requeued", task=index, reason=status)
        clean = PoolTask(task.fn, task.args, resident=task.resident, fault=None)
        if status != "error":
            # prefer a worker that completed its own task cleanly this round:
            # it is warm (resident state for this job) and demonstrably
            # healthy; an "error" verdict skips this — the failure was the
            # task's own and would reproduce on any process.  The outcome
            # must have been produced by slot `candidate` itself — after an
            # earlier requeue, outcomes[candidate] can describe a run on a
            # *different* worker while the slot holds a cold restart
            for candidate, outcome in enumerate(outcomes):
                if (candidate == index or outcome is None
                        or outcome.worker_index != candidate):
                    continue
                if not self._dispatch(candidate, clean):
                    continue
                candidate_status, payload = self._collect(candidate, deadline)
                if candidate_status == "ok":
                    return TaskOutcome(payload, worker_index=candidate,
                                       requeued=True)
                self._note_failure(candidate, candidate_status, payload)
                if candidate_status == "deadline":
                    self._expire(index, worker=candidate)
                    return TaskOutcome(None, worker_index=-1,
                                       requeued=True, expired=True)
                break
        if deadline is not None and time.monotonic() >= deadline:
            self._expire(index)
            return TaskOutcome(None, worker_index=-1, requeued=True, expired=True)
        return TaskOutcome(fallback(clean), worker_index=-1,
                           requeued=True, degraded=True)


def _run_stateless(fn: Callable, args: tuple) -> Any:
    """Adapter so plain ``fn(*args)`` tasks run under the pool protocol."""
    return fn(*args)


def run_worker_tasks(fn: Callable, tasks: Sequence[tuple], n_jobs: int,
                     timeout: float | None = None,
                     health: dict | None = None,
                     retry: "RetryPolicy | None" = None,
                     deadline: float | None = None,
                     events: "EventLog | None" = None) -> list:
    """Run one ``fn(*task)`` call per task, in processes when ``n_jobs > 1``.

    The transient-pool entry point (the cold scheduler path and the sharded
    permutation estimator): a :class:`WorkerPool` is built, runs exactly one
    round and is torn down.  Results come back in task order (never
    completion order), so callers can merge deterministically.  With one task
    or one job the calls run inline — the task arguments are identical either
    way, which is what keeps the in-process and multi-process paths
    bit-identical.  A worker death or ``timeout`` overrun mid-round requeues
    only that worker's task (see :meth:`WorkerPool.run_tasks`) instead of
    abandoning the pool; passing a ``health`` dict surfaces what happened —
    ``workers_restarted``, the indexes of ``requeued_tasks``, and whether the
    round ``fanned_out`` to real processes at all — so callers can fold the
    events into their counter surface (plus ``expired_tasks`` and
    ``backoff_seconds`` when a ``deadline`` / ``retry`` policy is active;
    expired tasks come back as ``None`` results).
    """
    tasks = list(tasks)
    if health is not None:
        health["fanned_out"] = False
    if n_jobs <= 1 or len(tasks) <= 1:
        return [fn(*task) for task in tasks]
    try:
        pool = WorkerPool(min(n_jobs, len(tasks)), timeout=timeout, retry=retry,
                          events=events)
    except OSError as error:  # pragma: no cover - sandbox-dependent
        global _POOL_FAILURE_WARNED
        if not _POOL_FAILURE_WARNED:
            _POOL_FAILURE_WARNED = True
            warnings.warn(
                f"cannot run a process pool ({error}); running shards "
                "in-process — results are identical, only slower",
                RuntimeWarning,
                stacklevel=2,
            )
        return [fn(*task) for task in tasks]
    with pool:
        outcomes = pool.run_tasks(
            [PoolTask(_run_stateless, (fn, tuple(task))) for task in tasks],
            deadline=deadline,
        )
    if health is not None:
        health["fanned_out"] = True
        health["workers_restarted"] = pool.workers_restarted
        health["requeued_tasks"] = [index for index, outcome in enumerate(outcomes)
                                    if outcome.requeued and not outcome.expired]
        health["expired_tasks"] = [index for index, outcome in enumerate(outcomes)
                                   if outcome.expired]
        health["backoff_seconds"] = pool.backoff_seconds_total
    return [outcome.result for outcome in outcomes]
