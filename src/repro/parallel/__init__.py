"""Sharded multi-process execution for the Shapley hot path.

The evaluation engine of PR 1–3 (views → indexes → shared stats → repair
walks → paired/batched oracle) is single-core by construction: one oracle,
one cache, one statistics instance.  This package adds the scaling axis on
top of it without touching any of those layers' semantics:

* :mod:`~repro.parallel.seeding` — per-shard seed streams spawned from one
  job seed, the invariant that makes worker count irrelevant to the draws;
* :mod:`~repro.parallel.job` — the picklable job/shard/report vocabulary,
  including the test harness's :class:`WorkerFault` directives;
* :mod:`~repro.parallel.worker` — one worker = one private oracle stack,
  built from the pickled job spec once and kept **resident** across rounds
  (warm path: cache-diff shipping via per-worker high-water marks), or
  rebuilt per task (cold path);
* :mod:`~repro.parallel.pool` — the :class:`WorkerPool`: one dedicated pipe
  per worker (exact task→worker assignment), health monitoring with
  requeue-on-death/timeout, a :class:`RetryPolicy` bounding restarts with
  exponential backoff, per-job deadline budgets, warm or transient
  lifecycle, and a deterministic in-process degradation;
* :mod:`~repro.parallel.scheduler` — plan, execute, merge: Welford-merged
  estimates, absorbed oracle counter deltas, diff-merged caches, warm
  restarts from parent cache snapshots, poison-shard quarantine, and an
  adaptive mode whose early stopping consumes merged cross-shard counts;
* :mod:`~repro.parallel.chaos` — seeded, deterministic
  :class:`FaultPlan` schedules for soak-testing all of the above at once.

Failure semantics
-----------------

Every failure path preserves the core invariant — Shapley values are
bit-identical to the sequential engine — because shard draws are seeded by
``(job_seed, cell_position, chunk_index)`` coordinates only; faults can only
change *where* a shard is evaluated, never *what* it computes.  The matrix
(rows: what went wrong; columns: which execution path recovers):

===================  ==========================================================
failure              recovery (warm pool / cold pool / in-process)
===================  ==========================================================
worker crash         restart slot with bounded backoff; requeue its shards on
                     a warm sibling that answered this round, else run them
                     in-process; the replacement's first task ships the job
                     payload **plus a snapshot of the merged cache** so it
                     starts warm (``warm_restarts`` / ``cache_entries_seeded``)
worker hang          timeout → treated as a crash (the hung process is
                     terminated); ``workers_restarted`` counts both
corrupt reply        reply that is not a :class:`WorkerReport` is discarded
                     and the shards rerun in-process; the worker keeps
                     running but is not marked resident for the round
crash loop           :class:`RetryPolicy` caps restarts per slot
                     (``max_worker_restarts``) with exponential backoff
                     (``restart_backoff_seconds`` total); an exhausted slot
                     stays dead and its work degrades in-process
poison shard         a shard failing ``max_shard_attempts`` times across
                     *different* workers is quarantined to the in-process
                     path for the scheduler's lifetime (``shards_poisoned``
                     counts quarantine events, ``shards_quarantined`` the
                     per-round reroutes)
deadline expiry      the round stops cleanly at a shard-wave boundary;
                     merged partial estimates are returned with
                     ``completed=False`` (``deadline_expired``,
                     ``shards_dropped``) — never a hang, never a mid-merge
                     exception
===================  ==========================================================

Telemetry: every counter named above flows through the oracle's
:class:`~repro.observability.metrics.MetricsRegistry` into
``oracle.statistics()`` and the CLI report; the scheduler and pool also
emit structured health events (:class:`~repro.observability.events.EventLog`)
that reconcile exactly with the counters, and the whole hot path carries
optional spans (``explain_job → cell → shard → …``) exportable as a Chrome
trace.  The full counter/span/event glossary lives in
``docs/OBSERVABILITY.md``.

Entry points for users are ``CellShapleyExplainer(..., n_jobs=...,
deadline_seconds=..., speculate=...)``, ``TRexConfig(n_jobs=...,
warm_pool=..., deadline_seconds=..., max_worker_restarts=...,
speculate=...)`` and the CLI's ``--jobs`` / ``--cold-pool`` /
``--deadline`` / ``--max-worker-restarts`` / ``--speculate``; this package
is the seam future serving work (async service, multi-backend dispatch)
plugs into.
"""

from repro.parallel.chaos import FAULT_KINDS, FaultEvent, FaultPlan
from repro.parallel.job import (
    ExplainJobSpec,
    ExplainShard,
    ShardResult,
    WorkerFault,
    WorkerReport,
)
from repro.parallel.pool import (
    PoolTask,
    RetryPolicy,
    TaskOutcome,
    WorkerPool,
    process_context,
    run_worker_tasks,
)
from repro.parallel.scheduler import (
    DEFAULT_SAMPLES_PER_SHARD,
    ParallelExplainResult,
    ShardedExplainScheduler,
)
from repro.parallel.seeding import partition_samples, shard_rng, shard_seed_sequence
from repro.parallel.worker import (
    ResidentState,
    build_worker_state,
    run_resident_worker,
    run_worker,
)

__all__ = [
    "DEFAULT_SAMPLES_PER_SHARD",
    "FAULT_KINDS",
    "ExplainJobSpec",
    "ExplainShard",
    "FaultEvent",
    "FaultPlan",
    "ParallelExplainResult",
    "PoolTask",
    "ResidentState",
    "RetryPolicy",
    "ShardResult",
    "ShardedExplainScheduler",
    "TaskOutcome",
    "WorkerFault",
    "WorkerPool",
    "WorkerReport",
    "build_worker_state",
    "partition_samples",
    "process_context",
    "run_resident_worker",
    "run_worker",
    "run_worker_tasks",
    "shard_rng",
    "shard_seed_sequence",
]
