"""Sharded multi-process execution for the Shapley hot path.

The evaluation engine of PR 1–3 (views → indexes → shared stats → repair
walks → paired/batched oracle) is single-core by construction: one oracle,
one cache, one statistics instance.  This package adds the scaling axis on
top of it without touching any of those layers' semantics:

* :mod:`~repro.parallel.seeding` — per-shard seed streams spawned from one
  job seed, the invariant that makes worker count irrelevant to the draws;
* :mod:`~repro.parallel.job` — the picklable job/shard/report vocabulary,
  including the test harness's :class:`WorkerFault` directives;
* :mod:`~repro.parallel.worker` — one worker = one private oracle stack,
  built from the pickled job spec once and kept **resident** across rounds
  (warm path: cache-diff shipping via per-worker high-water marks), or
  rebuilt per task (cold path);
* :mod:`~repro.parallel.pool` — the :class:`WorkerPool`: one dedicated pipe
  per worker (exact task→worker assignment), health monitoring with
  requeue-on-death/timeout, warm or transient lifecycle, and a deterministic
  in-process degradation;
* :mod:`~repro.parallel.scheduler` — plan, execute, merge: Welford-merged
  estimates, absorbed oracle counter deltas, diff-merged caches, and an
  adaptive mode whose early stopping consumes merged cross-shard counts.

Entry points for users are ``CellShapleyExplainer(..., n_jobs=...)``,
``TRexConfig(n_jobs=..., warm_pool=...)`` and the CLI's ``--jobs`` /
``--cold-pool``; this package is the seam future serving work (async
service, multi-backend dispatch) plugs into.
"""

from repro.parallel.job import (
    ExplainJobSpec,
    ExplainShard,
    ShardResult,
    WorkerFault,
    WorkerReport,
)
from repro.parallel.pool import (
    PoolTask,
    TaskOutcome,
    WorkerPool,
    process_context,
    run_worker_tasks,
)
from repro.parallel.scheduler import (
    DEFAULT_SAMPLES_PER_SHARD,
    ParallelExplainResult,
    ShardedExplainScheduler,
)
from repro.parallel.seeding import partition_samples, shard_rng, shard_seed_sequence
from repro.parallel.worker import (
    ResidentState,
    build_worker_state,
    run_resident_worker,
    run_worker,
)

__all__ = [
    "DEFAULT_SAMPLES_PER_SHARD",
    "ExplainJobSpec",
    "ExplainShard",
    "ParallelExplainResult",
    "PoolTask",
    "ResidentState",
    "ShardResult",
    "ShardedExplainScheduler",
    "TaskOutcome",
    "WorkerFault",
    "WorkerPool",
    "WorkerReport",
    "build_worker_state",
    "partition_samples",
    "process_context",
    "run_resident_worker",
    "run_worker",
    "run_worker_tasks",
    "shard_rng",
    "shard_seed_sequence",
]
