"""The sharded multi-process cell-Shapley scheduler.

``ShardedExplainScheduler`` turns one cell-Shapley job into a deterministic
plan of ``(cell, sample-chunk)`` shards, executes the plan on ``n_jobs``
worker processes (``n_jobs=1`` runs the identical plan in-process), and
merges everything back:

* **estimates** — each shard returns a Welford accumulator; per cell the
  chunk accumulators are merged in chunk order (a fixed merge tree), so the
  final mean/standard-error bits do not depend on worker count or completion
  order;
* **oracle counters** — every worker's ``oracle.statistics()`` is folded into
  the parent oracle via
  :meth:`~repro.repair.base.BinaryRepairOracle.absorb_statistics`, so reports
  and benchmarks read one aggregate;
* **caches** — each worker's :class:`~repro.repair.cache.OracleCache` is
  merged into the parent's (:meth:`~repro.repair.cache.OracleCache.merge`),
  so answers computed in one run warm the next.

:meth:`run` executes a fixed-sample plan; :meth:`run_adaptive` samples in
rounds of one chunk per unconverged cell, deciding convergence on the
*merged* cross-shard accumulator after every round — the stopping rule
consumes the same counts for every ``n_jobs``, so adaptive runs are as
worker-count-invariant as fixed ones.
"""

from __future__ import annotations

import pickle
import warnings
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.config import DEFAULT_CELL_SAMPLES
from repro.dataset.table import CellRef
from repro.parallel.job import ExplainJobSpec, ExplainShard, ShardResult, WorkerReport
from repro.parallel.pool import run_worker_tasks
from repro.parallel.seeding import partition_samples
from repro.parallel.worker import build_worker_state, run_worker
from repro.repair.cache import OracleCache, aggregate_oracle_statistics
from repro.shapley.cells import BATCH_CHUNK_SIZE
from repro.shapley.convergence import ConvergenceTracker, RunningMean
from repro.shapley.sampling import SampledShapleyEstimate

#: default shard granularity — the batched oracle's chunk size, so one shard
#: drains as exactly one ``query_pairs`` scheduled pass
DEFAULT_SAMPLES_PER_SHARD = BATCH_CHUNK_SIZE


@dataclass
class ParallelExplainResult:
    """The merged outcome of one scheduled run."""

    #: per-cell estimates, keyed by the explained cell
    estimates: dict[CellRef, SampledShapleyEstimate] = field(default_factory=dict)
    #: worker processes that actually ran (1 on the in-process path)
    n_workers: int = 1
    #: shards executed across all rounds
    n_shards: int = 0
    #: aggregated oracle counters across workers (plus the parallel counters)
    statistics: dict = field(default_factory=dict)
    #: the merged cache — the absorbing oracle's when ``absorb_into`` was
    #: given, otherwise a standalone merge of the worker caches
    cache: OracleCache | None = None


class ShardedExplainScheduler:
    """Partition, execute and merge one cell-Shapley job.

    Parameters
    ----------
    spec:
        The picklable job description (see :class:`ExplainJobSpec`).
    n_jobs:
        Worker process count.  ``1`` executes the same shard plan in-process
        — no pool, no pickling — and is the bit-identical reference for any
        ``n_jobs=k``.
    samples_per_shard:
        Chunk granularity of the plan; part of the seed partition (changing
        it changes the draws), so hold it fixed when comparing runs.
    """

    def __init__(self, spec: ExplainJobSpec, n_jobs: int = 1,
                 samples_per_shard: int | None = None):
        if int(n_jobs) < 1:
            raise ValueError(f"n_jobs must be a positive integer, got {n_jobs}")
        if samples_per_shard is not None and int(samples_per_shard) < 1:
            raise ValueError(
                f"samples_per_shard must be a positive integer, got {samples_per_shard}"
            )
        self.spec = spec
        self.n_jobs = int(n_jobs)
        self.samples_per_shard = (
            int(samples_per_shard) if samples_per_shard is not None
            else DEFAULT_SAMPLES_PER_SHARD
        )
        self._spec_payload: bytes | None = None
        #: the in-process worker state, built once per scheduler and reused
        #: across rounds/runs (warm cache, no oracle rebuild per round)
        self._inline_state = None

    @classmethod
    def from_explainer(cls, explainer, n_jobs: int,
                       samples_per_shard: int | None = None) -> "ShardedExplainScheduler":
        """Assemble the job spec from a live ``CellShapleyExplainer``."""
        oracle = explainer.oracle
        cache = oracle.cache
        spec = ExplainJobSpec(
            algorithm=oracle.algorithm,
            constraints=list(oracle.constraints),
            dirty_table=oracle.dirty_table,
            cell=oracle.cell,
            target_value=oracle.target_value,
            policy=explainer.policy.value,
            job_seed=explainer.job_seed(),
            use_cache=cache is not None,
            cache_size=cache.max_entries if cache is not None else None,
            oracle_incremental=oracle.incremental,
            oracle_paired=oracle.paired,
            oracle_shared_stats=oracle.shared_stats,
            oracle_batched_pairs=oracle.batched_pairs,
            explainer_incremental=explainer.incremental,
            explainer_paired=explainer.paired,
            explainer_shared_stats=explainer.shared_stats,
            explainer_batched_pairs=explainer.batched_pairs,
        )
        return cls(spec, n_jobs=n_jobs, samples_per_shard=samples_per_shard)

    # -- planning ---------------------------------------------------------------------

    def plan(self, cells: Sequence[CellRef], n_samples: int) -> list[ExplainShard]:
        """The deterministic shard list for a fixed-sample job.

        Shards are emitted cell-major, chunk-minor; their seed coordinates
        are the cell's *position in this job* plus the chunk index, so the
        same (cells, n_samples, samples_per_shard, job_seed) quadruple always
        yields the same draws.
        """
        shards: list[ExplainShard] = []
        for position, cell in enumerate(cells):
            for chunk_index, chunk in enumerate(
                partition_samples(n_samples, self.samples_per_shard)
            ):
                shards.append(
                    ExplainShard(len(shards), cell, position, chunk_index, chunk)
                )
        return shards

    # -- execution --------------------------------------------------------------------

    def _payload(self) -> bytes:
        """The job spec, pickled once and reused for every worker task."""
        if self._spec_payload is None:
            self._spec_payload = pickle.dumps(self.spec, protocol=pickle.HIGHEST_PROTOCOL)
        return self._spec_payload

    def _execute(self, shards: Sequence[ExplainShard]) -> list[WorkerReport]:
        """Round-robin the shards over the workers and collect their reports.

        The assignment (shard ``i`` → worker ``i mod n_jobs``) is static and
        deterministic; reports come back in worker order.  An unpicklable job
        spec (e.g. a custom repair algorithm holding a closure) degrades to
        in-process execution with a warning, mirroring the permutation
        estimator — the plan and therefore the values are unchanged.
        """
        n_jobs = max(1, min(self.n_jobs, len(shards)))
        assignments = [list(shards[worker::n_jobs]) for worker in range(n_jobs)]
        if n_jobs == 1:
            if self._inline_state is None:
                self._inline_state = build_worker_state(self.spec)
            return [run_worker(self.spec, assignments[0], 0,
                               state=self._inline_state)]
        try:
            payload = self._payload()
        except Exception as error:
            warnings.warn(
                f"job spec is not picklable ({error}); running shards "
                "in-process — estimates are identical, only slower",
                RuntimeWarning,
                stacklevel=3,
            )
            return [run_worker(self.spec, assignment, worker)
                    for worker, assignment in enumerate(assignments)]
        tasks = [(payload, assignment, worker)
                 for worker, assignment in enumerate(assignments)]
        return run_worker_tasks(run_worker, tasks, n_jobs)

    @staticmethod
    def _ordered_results(reports: Iterable[WorkerReport]) -> list[ShardResult]:
        """All shard results in plan order — the fixed merge order."""
        results = [result for report in reports for result in report.shard_results]
        results.sort(key=lambda result: (result.cell_position, result.chunk_index))
        return results

    # -- fixed-sample runs ------------------------------------------------------------

    def run(self, cells: Iterable[CellRef], n_samples: int,
            absorb_into=None) -> ParallelExplainResult:
        """Execute a fixed ``n_samples``-per-cell plan and merge the results.

        ``absorb_into`` names the parent :class:`BinaryRepairOracle` whose
        counters and cache should receive the workers' (usually the oracle
        the explainer was built on); without it the merged cache is returned
        standalone on the result.
        """
        cells = list(cells)
        shards = self.plan(cells, n_samples)
        trackers = [RunningMean() for _ in cells]
        reports: list[WorkerReport] = []
        if shards:
            reports = self._execute(shards)
            for result in self._ordered_results(reports):
                trackers[result.cell_position].merge(result.accumulator)
        return self._merge(cells, trackers, reports, len(shards), absorb_into)

    # -- adaptive runs ----------------------------------------------------------------

    def run_adaptive(self, cells: Iterable[CellRef], tolerance: float = 0.01,
                     min_samples: int = 30,
                     max_samples: int = DEFAULT_CELL_SAMPLES,
                     z: float = 1.96, absorb_into=None) -> ParallelExplainResult:
        """Sample in rounds of one chunk per unconverged cell until all stop.

        After each round every new shard accumulator is merged (in plan
        order) into the cell's :class:`ConvergenceTracker`, and only the
        merged tracker decides convergence — per-worker counts never reach
        ``min_samples`` and would stall or misjudge the rule, which is
        exactly the trap :meth:`ConvergenceTracker.merge` documents.  A
        cell's chunk indexes keep counting up across rounds, so the draws of
        round ``r`` are the same for every worker count.
        """
        cells = list(cells)
        trackers = [
            ConvergenceTracker(tolerance=tolerance, z=z, min_samples=min_samples)
            for _ in cells
        ]
        next_chunk = [0] * len(cells)
        active = [position for position, _ in enumerate(cells) if max_samples > 0]
        reports: list[WorkerReport] = []
        n_shards = 0
        n_workers = 1
        shard_id = 0
        while active:
            shards: list[ExplainShard] = []
            for position in active:
                taken = trackers[position].accumulator.count
                chunk = min(self.samples_per_shard, max_samples - taken)
                shards.append(ExplainShard(shard_id, cells[position], position,
                                           next_chunk[position], chunk))
                shard_id += 1
                next_chunk[position] += 1
            round_reports = self._execute(shards)
            n_shards += len(shards)
            n_workers = max(n_workers, len(round_reports))
            reports.extend(round_reports)
            for result in self._ordered_results(round_reports):
                trackers[result.cell_position].merge(result.accumulator)
            active = [
                position for position in active
                if not trackers[position].converged()
                and trackers[position].accumulator.count < max_samples
            ]
        accumulators = [tracker.accumulator for tracker in trackers]
        return self._merge(cells, accumulators, reports, n_shards, absorb_into,
                           n_workers=n_workers)

    # -- merging ----------------------------------------------------------------------

    def _merge(self, cells: Sequence[CellRef], trackers: Sequence[RunningMean],
               reports: Sequence[WorkerReport], n_shards: int, absorb_into,
               n_workers: int | None = None) -> ParallelExplainResult:
        # SampledShapleyEstimate normalises the degenerate n < 2 case itself
        estimates = {
            cell: SampledShapleyEstimate(
                cell=cell,
                value=tracker.mean,
                standard_error=tracker.standard_error,
                n_samples=tracker.count,
            )
            for cell, tracker in zip(cells, trackers)
        }
        if n_workers is None:
            n_workers = max(1, len(reports))
        statistics = aggregate_oracle_statistics(
            report.statistics for report in reports
        )
        statistics["parallel_workers"] = max(
            statistics.get("parallel_workers", 0), n_workers
        )
        statistics["parallel_shards"] = statistics.get("parallel_shards", 0) + n_shards
        # cache counters are absorbed from the per-report statistics
        # snapshots (see absorb_statistics); the cache objects contribute
        # entries only, and each *distinct* object exactly once — the reused
        # in-process worker state puts the same live cache behind every
        # round's report, so replaying (or counter-reading) it per report
        # would redo/miscount the whole history
        merged_cache_ids: set[int] = set()

        def merge_entries_once(target: OracleCache, donor: OracleCache | None) -> None:
            if donor is not None and id(donor) not in merged_cache_ids:
                merged_cache_ids.add(id(donor))
                target.merge_entries(donor)

        if absorb_into is not None:
            for report in reports:
                absorb_into.absorb_statistics(report.statistics)
                if absorb_into.cache is not None:
                    merge_entries_once(absorb_into.cache, report.cache)
            absorb_into.parallel_workers = max(absorb_into.parallel_workers, n_workers)
            absorb_into.parallel_shards += n_shards
            cache = absorb_into.cache
        elif self.spec.use_cache:
            cache = (OracleCache(self.spec.cache_size)
                     if self.spec.cache_size is not None else OracleCache())
            for report in reports:
                merge_entries_once(cache, report.cache)
            cache.hits += statistics.get("cache_hits", 0)
            cache.misses += statistics.get("cache_misses", 0)
            cache.evictions += statistics.get("cache_evictions", 0)
        else:
            cache = None
        return ParallelExplainResult(
            estimates=estimates,
            n_workers=n_workers,
            n_shards=n_shards,
            statistics=statistics,
            cache=cache,
        )
