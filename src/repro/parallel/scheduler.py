"""The sharded multi-process cell-Shapley scheduler.

``ShardedExplainScheduler`` turns one cell-Shapley job into a deterministic
plan of ``(cell, sample-chunk)`` shards, executes the plan on ``n_jobs``
worker processes (``n_jobs=1`` runs the identical plan in-process), and
merges everything back:

* **estimates** — each shard returns a Welford accumulator; per cell the
  chunk accumulators are merged in chunk order (a fixed merge tree), so the
  final mean/standard-error bits do not depend on worker count or completion
  order;
* **oracle counters** — every worker's ``oracle.statistics()`` delta is
  folded into the parent oracle via
  :meth:`~repro.repair.base.BinaryRepairOracle.absorb_statistics`, so reports
  and benchmarks read one aggregate;
* **caches** — each worker's new :class:`~repro.repair.cache.OracleCache`
  entries are replayed into the parent's, so answers computed in one run warm
  the next.

Execution is **warm by default**: one :class:`~repro.parallel.pool.WorkerPool`
is spawned per scheduler (context-manager lifecycle; workers are reused
across :meth:`run` calls and every :meth:`run_adaptive` round), each worker
keeps its oracle stack resident between rounds keyed by the job-spec
fingerprint (``worker_rebuilds`` counts how often a stack had to be built —
``n_jobs`` once, ever, on the healthy path), and reports ship only the cache
entries inserted since the worker's last sync (``cache_entries_shipped``)
plus counter deltas instead of the whole cache.  A worker that dies or times
out mid-round is replaced and its shards are requeued onto a live worker or
degraded in-process (``shards_requeued`` / ``workers_restarted``) — results
stay bit-identical because every shard's draws are seeded by its coordinates
alone.  ``warm_pool=False`` forces the cold PR 4 path — a transient pool per
round, a full stack rebuild per task, whole-cache shipping — which is the
reference the warm path is property-tested against.

:meth:`run` executes a fixed-sample plan; :meth:`run_adaptive` samples in
rounds of one chunk per unconverged cell, deciding convergence on the
*merged* cross-shard accumulator after every round — the stopping rule
consumes the same counts for every ``n_jobs``, so adaptive runs are as
worker-count-invariant as fixed ones.
"""

from __future__ import annotations

import hashlib
import pickle
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.config import DEFAULT_CELL_SAMPLES
from repro.dataset.table import CellRef
from repro.observability import trace as otrace
from repro.observability.events import EventLog
from repro.observability.trace import coordinate_span_id
from repro.parallel.job import ExplainJobSpec, ExplainShard, ShardResult, WorkerReport
from repro.parallel.pool import PoolTask, RetryPolicy, WorkerPool, run_worker_tasks
from repro.parallel.seeding import partition_samples
from repro.parallel.worker import (
    run_base_update_worker,
    run_resident_worker,
    run_worker,
)
from repro.repair.cache import OracleCache, aggregate_oracle_statistics
from repro.shapley.cells import BATCH_CHUNK_SIZE
from repro.shapley.convergence import ConvergenceTracker, RunningMean
from repro.shapley.sampling import SampledShapleyEstimate

#: default shard granularity — the batched oracle's chunk size, so one shard
#: drains as exactly one ``query_pairs`` scheduled pass
DEFAULT_SAMPLES_PER_SHARD = BATCH_CHUNK_SIZE

#: the resident-state key of in-process execution (one scheduler, one spec,
#: one private resident dict — the key only has to be stable)
_LOCAL_KEY = "local"

#: round-log counter keys summed into run statistics *and* absorbed into the
#: parent oracle's attributes of the same name
_POOL_COUNTERS = ("worker_rebuilds", "cache_entries_shipped",
                  "shards_requeued", "workers_restarted",
                  "warm_restarts", "cache_entries_seeded",
                  "shards_poisoned", "restart_backoff_seconds",
                  "chunks_speculated", "chunks_discarded")

#: round-log bookkeeping keys that stay per-round (not oracle counters)
_ROUND_ONLY_KEYS = ("cache_entries_resident", "shards_quarantined",
                    "shards_dropped")


@dataclass
class ParallelExplainResult:
    """The merged outcome of one scheduled run."""

    #: per-cell estimates, keyed by the explained cell
    estimates: dict[CellRef, SampledShapleyEstimate] = field(default_factory=dict)
    #: worker processes that actually ran (1 on the in-process path)
    n_workers: int = 1
    #: shards executed across all rounds
    n_shards: int = 0
    #: aggregated oracle counters across workers (plus the parallel counters)
    statistics: dict = field(default_factory=dict)
    #: the merged cache — the absorbing oracle's when ``absorb_into`` was
    #: given, otherwise a standalone merge of the worker caches
    cache: OracleCache | None = None
    #: ``False`` when the job's ``deadline_seconds`` expired before the plan
    #: finished: the estimates are the merged *partial* state (every cell's
    #: ``n_samples`` says how far it got) — never a hang, never a mid-merge
    #: exception
    completed: bool = True
    #: per-cell provenance: the base cells whose original values each cell's
    #: sampled coalitions exposed (union of its shards' recorded sets) — the
    #: live session intersects these with base-table updates to invalidate
    #: selectively
    touched: dict = field(default_factory=dict)


class ShardedExplainScheduler:
    """Partition, execute and merge one cell-Shapley job.

    Parameters
    ----------
    spec:
        The picklable job description (see :class:`ExplainJobSpec`).
    n_jobs:
        Worker process count.  ``1`` executes the same shard plan in-process
        — no pool, no pickling — and is the bit-identical reference for any
        ``n_jobs=k``.
    samples_per_shard:
        Chunk granularity of the plan; part of the seed partition (changing
        it changes the draws), so hold it fixed when comparing runs.
    warm_pool:
        ``True`` (default) keeps one worker pool with resident oracle stacks
        for the scheduler's lifetime; ``False`` forces the cold path — a
        transient pool and a full rebuild per round.  Estimates are
        bit-identical either way (golden-tested); only wall-clock and the
        shipping counters differ.
    worker_timeout:
        Seconds the warm pool waits for a worker's round report before
        declaring it hung and requeueing its shards (default: wait
        indefinitely; worker *death* is always detected immediately).
    fault_injector:
        Test-harness hook: ``fn(worker_index, round_index)`` returning a
        :class:`~repro.parallel.job.WorkerFault` (or ``None``) attached to
        that worker's dispatch (a :class:`~repro.parallel.chaos.FaultPlan`
        is one).  Production runs never set it.
    retry_policy:
        Crash-loop containment (see :class:`~repro.parallel.pool.RetryPolicy`):
        backoff between worker restarts, a per-slot restart cap, and the
        per-shard attempt cap after which a shard is *quarantined* — executed
        in-process for the rest of the scheduler's life instead of being
        retried on workers forever (``shards_poisoned`` counts quarantine
        events).  Defaults to ``RetryPolicy()``.
    deadline_seconds:
        Wall-clock budget per :meth:`run` / :meth:`run_adaptive` call.  On
        expiry the scheduler stops at a round boundary (in-flight tasks past
        the deadline are dropped, their workers replaced), merges what
        every cell has so far and returns it with ``completed=False`` and a
        ``deadline_expired`` counter — it never hangs and never raises
        mid-merge.  ``None`` (default) runs to completion.
    speculate:
        ``True`` lets :meth:`run_adaptive` issue up to ``n_jobs`` chunks
        *ahead* per unconverged cell each round instead of one, keeping
        every worker busy even when few cells remain active.  Merging stays
        in chunk order per cell and re-checks the stopping rule after every
        chunk, so any chunks drawn past the point where the non-speculative
        schedule would have stopped are deterministically discarded
        (``chunks_speculated`` / ``chunks_discarded`` in the round log and
        oracle counters).  Estimates are bit-identical to
        ``speculate=False``, which remains the property-tested reference.
        The default is ``False``.

    The scheduler is a context manager; :meth:`close` shuts the warm pool
    down (idle workers cost memory, not correctness — they are daemonic and
    die with the parent either way).  ``round_log`` records one dict per
    executed round (shard counts, rebuilds, shipped/seeded entries,
    requeues, quarantines, drops) for tests and benchmarks.
    """

    def __init__(self, spec: ExplainJobSpec, n_jobs: int = 1,
                 samples_per_shard: int | None = None, warm_pool: bool = True,
                 worker_timeout: float | None = None,
                 fault_injector: "Callable | None" = None,
                 retry_policy: RetryPolicy | None = None,
                 deadline_seconds: float | None = None,
                 speculate: bool = False):
        if int(n_jobs) < 1:
            raise ValueError(f"n_jobs must be a positive integer, got {n_jobs}")
        if samples_per_shard is not None and int(samples_per_shard) < 1:
            raise ValueError(
                f"samples_per_shard must be a positive integer, got {samples_per_shard}"
            )
        if deadline_seconds is not None and float(deadline_seconds) < 0:
            raise ValueError(
                f"deadline_seconds must be non-negative, got {deadline_seconds}"
            )
        self.spec = spec
        self.n_jobs = int(n_jobs)
        self.samples_per_shard = (
            int(samples_per_shard) if samples_per_shard is not None
            else DEFAULT_SAMPLES_PER_SHARD
        )
        self.warm_pool = bool(warm_pool)
        self.worker_timeout = worker_timeout
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.deadline_seconds = deadline_seconds
        self.speculate = bool(speculate)
        self._spec_payload: bytes | None = None
        self._spec_key: str | None = None
        #: the in-process resident stack (n_jobs=1 and every degraded path),
        #: kept across rounds/runs — warm cache, no oracle rebuild per round
        self._local_resident: dict = {}
        self._pool: WorkerPool | None = None
        self._pool_broken = False
        #: pool-generation at which each worker slot confirmed a resident
        #: stack (an "ok" report) — those workers are sent shard lists only,
        #: not the job-spec payload, on later rounds
        self._resident_generations: dict[int, int] = {}
        #: the scheduler's own running merge of every report's cache entries,
        #: maintained *per round* (the absorb-into-oracle merge only happens
        #: at the end of a run) — the snapshot source for warm restarts
        self._seed_cache: OracleCache | None = None
        if self.warm_pool and self.n_jobs > 1 and spec.use_cache:
            self._seed_cache = (OracleCache(spec.cache_size)
                                if spec.cache_size is not None else OracleCache())
        #: cross-worker failure counts per shard coordinate, and the
        #: coordinates already quarantined to in-process execution
        self._shard_failures: dict[tuple[int, int], int] = {}
        self._poisoned_shards: set[tuple[int, int]] = set()
        self._round_index = 0
        self._job_index = 0
        #: one bookkeeping dict per executed round — what the soak test and
        #: the warm-pool benchmark read
        self.round_log: list[dict] = []
        #: the structured worker-health event log (always on — health events
        #: are rare); the pool appends its spawn/restart/expiry records here
        #: and the scheduler its requeue/poison/seed/deadline ones, each at
        #: the exact site the matching counter bumps
        self.events = EventLog()

    @classmethod
    def from_explainer(cls, explainer, n_jobs: int,
                       samples_per_shard: int | None = None,
                       warm_pool: bool = True,
                       worker_timeout: float | None = None,
                       fault_injector: "Callable | None" = None,
                       retry_policy: RetryPolicy | None = None,
                       deadline_seconds: float | None = None,
                       speculate: bool = False,
                       ) -> "ShardedExplainScheduler":
        """Assemble the job spec from a live ``CellShapleyExplainer``."""
        oracle = explainer.oracle
        cache = oracle.cache
        spec = ExplainJobSpec(
            algorithm=oracle.algorithm,
            constraints=list(oracle.constraints),
            dirty_table=oracle.dirty_table,
            cell=oracle.cell,
            target_value=oracle.target_value,
            policy=explainer.policy.value,
            job_seed=explainer.job_seed(),
            use_cache=cache is not None,
            cache_size=cache.max_entries if cache is not None else None,
            oracle_incremental=oracle.incremental,
            oracle_paired=oracle.paired,
            oracle_shared_stats=oracle.shared_stats,
            oracle_batched_pairs=oracle.batched_pairs,
            oracle_vectorized=oracle.vectorized,
            explainer_incremental=explainer.incremental,
            explainer_paired=explainer.paired,
            explainer_shared_stats=explainer.shared_stats,
            explainer_batched_pairs=explainer.batched_pairs,
        )
        return cls(spec, n_jobs=n_jobs, samples_per_shard=samples_per_shard,
                   warm_pool=warm_pool, worker_timeout=worker_timeout,
                   fault_injector=fault_injector, retry_policy=retry_policy,
                   deadline_seconds=deadline_seconds, speculate=speculate)

    # -- lifecycle --------------------------------------------------------------------

    def __enter__(self) -> "ShardedExplainScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the warm pool down; safe to call repeatedly.

        The residency map is dropped with the pool: a later run respawns
        fresh worker processes (their generation counters restart at zero),
        so stale entries would otherwise masquerade as resident stacks and
        starve the new workers of the spec payload.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._resident_generations.clear()

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    # -- planning ---------------------------------------------------------------------

    def plan(self, cells: Sequence[CellRef], n_samples: int,
             positions: "Sequence[int] | None" = None) -> list[ExplainShard]:
        """The deterministic shard list for a fixed-sample job.

        Shards are emitted cell-major, chunk-minor; their seed coordinates
        are the cell's *position in this job* plus the chunk index, so the
        same (cells, n_samples, samples_per_shard, job_seed) quadruple always
        yields the same draws.  ``positions`` overrides the default
        enumeration — the live session's partial refresh passes each
        surviving cell's position in the *original* job, so a refreshed
        cell's shards draw from exactly the streams its first run used.
        """
        if positions is None:
            positions = range(len(cells))
        shards: list[ExplainShard] = []
        for position, cell in zip(positions, cells):
            for chunk_index, chunk in enumerate(
                partition_samples(n_samples, self.samples_per_shard)
            ):
                shards.append(
                    ExplainShard(len(shards), cell, position, chunk_index, chunk)
                )
        return shards

    # -- execution --------------------------------------------------------------------

    def _payload(self) -> bytes:
        """The job spec, pickled once and reused for every worker task.

        The spec's ``trace`` flag is stamped from the parent's live tracer
        state at pickling time, so workers know whether to record and ship
        spans.  Toggling tracing between runs re-pickles (and re-keys) the
        spec — workers then rebuild their resident stacks under the new key,
        which costs a warm-up round but never a value.
        """
        trace = otrace.current() is not None
        if self._spec_payload is None or trace != self.spec.trace:
            self.spec.trace = trace
            self._spec_payload = pickle.dumps(self.spec, protocol=pickle.HIGHEST_PROTOCOL)
            self._spec_key = None
            self._resident_generations.clear()
        return self._spec_payload

    def _spec_fingerprint(self) -> str:
        """The resident-state key workers file this job's oracle stack under."""
        if self._spec_key is None:
            self._spec_key = hashlib.sha256(self._payload()).hexdigest()
        return self._spec_key

    # -- live base updates ------------------------------------------------------------

    @property
    def local_resident_oracle(self):
        """The in-process resident stack's oracle (``None`` until built).

        The live session reads it before mutating the shared table so the
        stack's own :class:`~repro.engine.stats.SharedStatistics` engine can
        be synced and moved by the same delta (the local stack shares the
        session's table object but owns its statistics and cache).
        """
        state = self._local_resident.get(_LOCAL_KEY)
        return None if state is None else state.oracle

    def apply_base_update(self, delta, changes, old_fingerprint,
                          target_changed: bool = False) -> dict:
        """Patch every resident oracle stack for an already-applied update.

        The caller (the live session) has mutated the shared dirty table and
        finished its own oracle; this routine brings the scheduler's world in
        step without a single stack rebuild:

        * the job spec adopts the new target value and is re-pickled lazily
          (its fingerprint — the resident-state key — changes with the table
          content);
        * the in-process resident stack, which shares the session's table
          object, has its cache rebased, lazy view dropped and sampler
          overlay invalidated (its statistics engine was moved by the caller
          around the mutation);
        * every live resident *worker* receives one
          :func:`~repro.parallel.worker.run_base_update_worker` task carrying
          the picklable delta: the worker applies it to its private table
          copy and re-files its stack under the new key, so
          ``worker_rebuilds`` stays flat across updates.  Workers that fail
          to acknowledge simply rebuild from the new payload next round —
          same state, just slower;
        * the scheduler's merged seed cache is rebased (or dropped when the
          target changed), so warm restarts keep seeding post-update answers.

        ``changes`` maps ``(row, attribute)`` to the post-update value and
        ``old_fingerprint`` is the pre-update table fingerprint.  Returns a
        bookkeeping dict (``workers_patched``, ``cache_entries_dropped``,
        ``seed_entries_dropped``).
        """
        old_key = self._spec_key
        # capture residency before the re-pickle clears it — only workers
        # that acknowledge the patch get re-marked
        resident_before = dict(self._resident_generations)
        self.spec.target_value = delta.target_value
        self._spec_payload = None
        self._spec_key = None
        info = {"workers_patched": 0, "cache_entries_dropped": 0,
                "seed_entries_dropped": 0}
        local = self._local_resident.get(_LOCAL_KEY)
        if local is not None:
            info["cache_entries_dropped"] += local.oracle.finish_base_update(
                changes, old_fingerprint, delta.target_value, count=False
            )
            local.explainer.sampler.invalidate_overlay()
        if self._seed_cache is not None:
            if target_changed:
                info["seed_entries_dropped"] = self._seed_cache.drop_entries()
            else:
                info["seed_entries_dropped"] = self._seed_cache.rebase(
                    changes, old_fingerprint,
                    self.spec.dirty_table.fingerprint(),
                )
        pool = self._pool
        if (pool is not None and old_key is not None and resident_before
                and not self._pool_broken):
            new_key = self._spec_fingerprint()  # re-pickles; clears residency
            tasks = [PoolTask(run_base_update_worker,
                              (old_key, new_key, delta, worker),
                              resident=True)
                     for worker in range(pool.n_workers)]
            outcomes = pool.run_tasks(tasks)
            for worker, outcome in enumerate(outcomes):
                ack = outcome.result
                # only the slot's own acknowledgement counts — a requeued ack
                # describes a different worker's (already patched) state
                if (outcome.worker_index == worker and not outcome.degraded
                        and isinstance(ack, dict) and ack.get("patched")):
                    info["workers_patched"] += 1
                    self._resident_generations[worker] = \
                        pool.worker_generations[worker]
        self.events.emit("base_update", cells=len(changes),
                         workers_patched=info["workers_patched"],
                         target_changed=bool(target_changed))
        return info

    def _run_local(self, shards: Sequence[ExplainShard],
                   worker_index: int) -> WorkerReport:
        """Execute one assignment in-process against the local resident stack.

        Nothing crosses a process boundary here, so the report's
        ``entries_shipped`` is zeroed (its ``cache_diff`` still carries the
        new entries for the merge).
        """
        report = run_resident_worker(self.spec, _LOCAL_KEY, list(shards),
                                     worker_index, resident=self._local_resident)
        report.entries_shipped = 0
        return report

    def _ensure_pool(self) -> WorkerPool | None:
        if self._pool_broken:
            return None
        if self._pool is None:
            try:
                self._pool = WorkerPool(self.n_jobs, timeout=self.worker_timeout,
                                        retry=self.retry_policy,
                                        events=self.events)
            except OSError as error:  # pragma: no cover - sandbox-dependent
                self._pool_broken = True
                warnings.warn(
                    f"cannot spawn a warm worker pool ({error}); running "
                    "shards in-process — results are identical, only slower",
                    RuntimeWarning,
                    stacklevel=4,
                )
                return None
        return self._pool

    def _note_shard_failures(self, shards: Sequence[ExplainShard],
                             log: dict) -> None:
        """Count one cross-worker failure against each shard; quarantine at cap.

        A shard whose assignment keeps failing — worker death, hang, corrupt
        or unpicklable reply — is most likely *causing* the failures (a
        poison shard).  After ``retry_policy.max_shard_attempts`` failing
        rounds its coordinates are quarantined: every later round routes it
        straight to the in-process degrade path, ending the crash loop
        without touching its values (shard draws are coordinate-seeded).
        """
        cap = self.retry_policy.max_shard_attempts
        for shard in shards:
            coords = (shard.cell_position, shard.chunk_index)
            attempts = self._shard_failures.get(coords, 0) + 1
            self._shard_failures[coords] = attempts
            if (cap is not None and attempts >= cap
                    and coords not in self._poisoned_shards):
                self._poisoned_shards.add(coords)
                log["shards_poisoned"] += 1
                self.events.emit("shard_poisoned",
                                 cell_position=shard.cell_position,
                                 chunk_index=shard.chunk_index,
                                 attempts=attempts)
                warnings.warn(
                    f"shard (cell {shard.cell_position}, chunk "
                    f"{shard.chunk_index}) failed {attempts} times across "
                    "workers; quarantining it to in-process execution — "
                    "results are identical",
                    RuntimeWarning,
                    stacklevel=4,
                )

    def _execute(self, shards: Sequence[ExplainShard],
                 deadline: float | None = None) -> list[WorkerReport]:
        """Round-robin the shards over the workers and collect their reports.

        The assignment (shard ``i`` → worker ``i mod n_tasks``) is static and
        deterministic; reports come back in worker order.  An unpicklable job
        spec (e.g. a custom repair algorithm holding a closure) degrades to
        in-process execution with a warning, mirroring the permutation
        estimator — the plan and therefore the values are unchanged.
        Quarantined shards never reach a worker: they run in-process up
        front (reported under worker index ``-1``).  Past-``deadline`` tasks
        are dropped (``shards_dropped`` in the round log); the caller reads
        that as the signal to stop at this round boundary.
        """
        round_index = self._round_index
        self._round_index += 1
        log = {"round": round_index, "shards": len(shards),
               **{key: 0 for key in _ROUND_ONLY_KEYS},
               **{key: 0 for key in _POOL_COUNTERS}}
        reports: list[WorkerReport] = []
        healthy = list(shards)
        if self._poisoned_shards:
            quarantined = [
                shard for shard in healthy
                if (shard.cell_position, shard.chunk_index) in self._poisoned_shards
            ]
            if quarantined:
                healthy = [
                    shard for shard in healthy
                    if (shard.cell_position, shard.chunk_index)
                    not in self._poisoned_shards
                ]
                log["shards_quarantined"] = len(quarantined)
                reports.append(self._run_local(quarantined, -1))
        if healthy and self.n_jobs == 1:
            reports.append(self._run_local(healthy, 0))
        elif healthy:
            n_tasks = max(1, min(self.n_jobs, len(healthy)))
            assignments = [list(healthy[worker::n_tasks])
                           for worker in range(n_tasks)]
            try:
                payload = self._payload()
            except Exception as error:
                warnings.warn(
                    f"job spec is not picklable ({error}); running shards "
                    "in-process — estimates are identical, only slower",
                    RuntimeWarning,
                    stacklevel=3,
                )
                payload = None
            if payload is None:
                reports.extend(self._run_local(assignment, worker)
                               for worker, assignment in enumerate(assignments))
            elif self.warm_pool:
                reports.extend(self._execute_warm(payload, assignments,
                                                  round_index, log, deadline))
            else:
                tasks = [(payload, assignment, worker)
                         for worker, assignment in enumerate(assignments)]
                health: dict = {}
                raw = run_worker_tasks(run_worker, tasks, n_tasks,
                                       timeout=self.worker_timeout,
                                       health=health,
                                       retry=self.retry_policy,
                                       deadline=deadline,
                                       events=self.events)
                log["workers_restarted"] += health.get("workers_restarted", 0)
                log["restart_backoff_seconds"] += health.get("backoff_seconds", 0.0)
                for index in health.get("requeued_tasks", ()):
                    log["shards_requeued"] += len(assignments[index])
                    self.events.emit("shard_requeued", worker=index,
                                     n_shards=len(assignments[index]))
                    self._note_shard_failures(assignments[index], log)
                for index in health.get("expired_tasks", ()):
                    log["shards_dropped"] += len(assignments[index])
                cold_reports = [report for report in raw if report is not None]
                if not health.get("fanned_out", False):
                    # the round ran inline (single task, or pool degrade):
                    # nothing crossed a process boundary
                    for report in cold_reports:
                        report.entries_shipped = 0
                reports.extend(cold_reports)
        tracer = otrace.current()
        for report in reports:
            log["worker_rebuilds"] += report.rebuilt
            log["cache_entries_shipped"] += report.entries_shipped
            log["cache_entries_resident"] += report.resident_cache_size
            log["warm_restarts"] += report.warm_restart
            log["cache_entries_seeded"] += report.entries_seeded
            # lifecycle events derive from the same report fields the
            # counters just folded, so the two surfaces reconcile exactly
            if report.warm_restart:
                self.events.emit("warm_restart", worker=report.worker_index,
                                 entries_seeded=report.entries_seeded)
            if report.entries_seeded:
                self.events.emit("snapshot_seeded", worker=report.worker_index,
                                 entries=report.entries_seeded)
            if report.spans:
                if tracer is not None:
                    tracer.adopt(report.spans,
                                 worker=report.worker_index
                                 if report.worker_index >= 0 else None)
                report.spans = []
        if self._seed_cache is not None:
            # keep the scheduler's own merge current *per round* — the next
            # replacement worker is seeded from exactly this state
            for report in reports:
                for key, value in report.cache_diff:
                    self._seed_cache.put(key, value)
        self.round_log.append(log)
        return reports

    def _execute_warm(self, payload: bytes, assignments: Sequence[list],
                      round_index: int, log: dict,
                      deadline: float | None = None) -> list[WorkerReport]:
        """One warm-pool round: resident tasks, health accounting.

        Workers that already confirmed a resident stack (an "ok" report from
        the same process generation) receive only their shard list — the job
        spec payload crosses each worker's pipe once per process lifetime,
        not once per round.  Requeued tasks always land on a worker that
        completed its own task this round, which therefore holds the stack
        even when the requeued message carries no payload.

        A worker *without* a resident stack is additionally handed a
        snapshot of the scheduler's merged seed cache (when it holds
        anything): a replacement after a crash — or a whole fresh pool after
        :meth:`close` — rebuilds its stack *warm*, resuming from the fleet's
        accumulated answers instead of recomputing them.  Replies that are
        not a :class:`WorkerReport` at all (a corrupt pipe, an injected
        ``corrupt_reply`` fault) are discarded and the shards re-run
        in-process — the type check is the last line of defence before the
        merge.
        """
        pool = self._ensure_pool()
        if pool is None:
            return [self._run_local(assignment, worker)
                    for worker, assignment in enumerate(assignments)]
        key = self._spec_fingerprint()
        seed_snapshot = None  # cut at most once per round, shared by every task
        tasks = []
        for worker, assignment in enumerate(assignments):
            fault = (self.fault_injector(worker, round_index)
                     if self.fault_injector is not None else None)
            resident_already = (
                self._resident_generations.get(worker)
                == pool.worker_generations[worker]
            )
            seed = None
            if (not resident_already and self._seed_cache is not None
                    and len(self._seed_cache)):
                if seed_snapshot is None:
                    seed_snapshot = self._seed_cache.snapshot()
                seed = seed_snapshot
            tasks.append(PoolTask(
                run_resident_worker,
                (None if resident_already else payload, key, assignment,
                 worker, seed),
                resident=True, fault=fault,
            ))

        def fallback(task: PoolTask) -> WorkerReport:
            _, _, assignment, worker, _ = task.args
            return self._run_local(assignment, worker)

        restarted_before = pool.workers_restarted
        backoff_before = pool.backoff_seconds_total
        outcomes = pool.run_tasks(tasks, fallback=fallback, deadline=deadline)
        reports: list[WorkerReport] = []
        for worker, outcome in enumerate(outcomes):
            if outcome.expired:
                log["shards_dropped"] += len(assignments[worker])
                continue
            report = outcome.result
            if not isinstance(report, WorkerReport):
                warnings.warn(
                    f"pool worker {outcome.worker_index} replied with "
                    f"{type(report).__name__} instead of a WorkerReport; "
                    "re-running its shards in-process — results are identical",
                    RuntimeWarning,
                    stacklevel=3,
                )
                log["shards_requeued"] += len(assignments[worker])
                self.events.emit("shard_requeued", worker=worker,
                                 n_shards=len(assignments[worker]),
                                 reason="corrupt-reply")
                self._note_shard_failures(assignments[worker], log)
                reports.append(self._run_local(assignments[worker], worker))
                continue
            if outcome.requeued:
                log["shards_requeued"] += len(assignments[worker])
                self.events.emit("shard_requeued", worker=worker,
                                 n_shards=len(assignments[worker]))
                self._note_shard_failures(assignments[worker], log)
            if not outcome.degraded and outcome.worker_index >= 0:
                self._resident_generations[outcome.worker_index] = \
                    pool.worker_generations[outcome.worker_index]
            reports.append(report)
        log["workers_restarted"] += pool.workers_restarted - restarted_before
        log["restart_backoff_seconds"] += \
            pool.backoff_seconds_total - backoff_before
        return reports

    @staticmethod
    def _ordered_results(reports: Iterable[WorkerReport]) -> list[ShardResult]:
        """All shard results in plan order — the fixed merge order."""
        results = [result for report in reports for result in report.shard_results]
        results.sort(key=lambda result: (result.cell_position, result.chunk_index))
        return results

    def _deadline(self) -> float | None:
        """This run's absolute expiry instant (the budget starts now)."""
        if self.deadline_seconds is None:
            return None
        return time.monotonic() + float(self.deadline_seconds)

    # -- tracing ----------------------------------------------------------------------

    def _job_span(self, tracer, kind: str, n_cells: int):
        """Open the run-level ``explain_job`` span (deterministic id)."""
        self._job_index += 1
        return tracer.start(
            "explain_job",
            span_id=coordinate_span_id(self.spec.job_seed, "job", kind,
                                       self._job_index),
            kind=kind, cells=n_cells, n_jobs=self.n_jobs,
        )

    def _stitch_cell_spans(self, tracer, cells: Sequence[CellRef],
                           job_span_id: int, mark: int,
                           positions: "Sequence[int] | None" = None) -> None:
        """Synthesise one ``cell`` span per cell from its shard spans.

        Shard spans — the parent's own and the ones adopted from worker
        reports — already carry ``parent_id = coordinate_span_id(job_seed,
        "cell", position)``; this derives the same ids independently and
        files a finished cell span over each group's timeline extent, which
        is what stitches parent and worker spans into one tree without any
        cross-process coordination.
        """
        by_parent: dict[int, list] = {}
        for span in tracer.spans[mark:]:
            if span.name == "shard" and span.parent_id is not None:
                by_parent.setdefault(span.parent_id, []).append(span)
        if positions is None:
            positions = range(len(cells))
        for position, cell in zip(positions, cells):
            cell_id = coordinate_span_id(self.spec.job_seed, "cell", position)
            shard_spans = by_parent.get(cell_id)
            if not shard_spans:
                continue
            start = min(span.start for span in shard_spans)
            end = max(span.end for span in shard_spans)
            tracer.record("cell", cell_id, job_span_id, start, end - start,
                          cell=str(cell), shards=len(shard_spans))

    # -- fixed-sample runs ------------------------------------------------------------

    def run(self, cells: Iterable[CellRef], n_samples: int,
            absorb_into=None,
            positions: "Sequence[int] | None" = None) -> ParallelExplainResult:
        """Execute a fixed ``n_samples``-per-cell plan and merge the results.

        ``absorb_into`` names the parent :class:`BinaryRepairOracle` whose
        counters and cache should receive the workers' (usually the oracle
        the explainer was built on); without it the merged cache is returned
        standalone on the result.

        With a ``deadline_seconds`` budget the plan is executed in *waves*
        of one shard per worker, so the clock is consulted at every round
        boundary; a wave that straddles the expiry drops its unfinished
        tasks and the run returns the merged partial estimates with
        ``completed=False``.  Wave partitioning cannot change values — every
        shard's draws are seeded by its coordinates and the merge order is
        plan order — it only refines the granularity of the round log.
        """
        cells = list(cells)
        tracer = otrace.current()
        if tracer is None:
            return self._run_fixed(cells, n_samples, absorb_into, positions)
        mark = len(tracer.spans)
        events_mark = len(self.events)
        job_span = self._job_span(tracer, "fixed", len(cells))
        try:
            result = self._run_fixed(cells, n_samples, absorb_into, positions)
            self._stitch_cell_spans(tracer, cells, job_span.span_id, mark,
                                    positions)
            return result
        finally:
            tracer.finish(job_span)
            tracer.events.extend(self.events.records[events_mark:])

    def _run_fixed(self, cells: "list[CellRef]", n_samples: int,
                   absorb_into,
                   positions: "Sequence[int] | None" = None
                   ) -> ParallelExplainResult:
        positions = (list(positions) if positions is not None
                     else list(range(len(cells))))
        index_of = {position: index for index, position in enumerate(positions)}
        shards = self.plan(cells, n_samples, positions)
        trackers = [RunningMean() for _ in cells]
        reports: list[WorkerReport] = []
        round_start = len(self.round_log)
        deadline = self._deadline()
        completed = True
        n_workers = 1
        if shards:
            if deadline is None:
                waves = [shards]
            else:
                width = max(1, self.n_jobs)
                waves = [shards[start:start + width]
                         for start in range(0, len(shards), width)]
            for wave in waves:
                if deadline is not None and time.monotonic() >= deadline:
                    completed = False
                    break
                wave_reports = self._execute(wave, deadline=deadline)
                reports.extend(wave_reports)
                n_workers = max(n_workers, len(
                    [report for report in wave_reports
                     if report.worker_index >= 0]
                ))
                if self.round_log[-1]["shards_dropped"]:
                    completed = False
                    break
            for result in self._ordered_results(reports):
                trackers[index_of[result.cell_position]].merge(result.accumulator)
        return self._merge(cells, trackers, reports, absorb_into,
                           n_workers=n_workers,
                           rounds=self.round_log[round_start:],
                           completed=completed,
                           positions=positions)

    # -- adaptive runs ----------------------------------------------------------------

    def run_adaptive(self, cells: Iterable[CellRef], tolerance: float = 0.01,
                     min_samples: int = 30,
                     max_samples: int = DEFAULT_CELL_SAMPLES,
                     z: float = 1.96, absorb_into=None) -> ParallelExplainResult:
        """Sample in rounds of one chunk per unconverged cell until all stop.

        After each round every new shard accumulator is merged (in plan
        order) into the cell's :class:`ConvergenceTracker`, and only the
        merged tracker decides convergence — per-worker counts never reach
        ``min_samples`` and would stall or misjudge the rule, which is
        exactly the trap :meth:`ConvergenceTracker.merge` documents.  A
        cell's chunk indexes keep counting up across rounds, so the draws of
        round ``r`` are the same for every worker count.  On the warm path
        every round reuses the same resident worker stacks: after round one
        no worker rebuilds anything (``worker_rebuilds`` stays at the pool
        width) and each round ships only its new cache entries.

        A ``deadline_seconds`` budget is checked at every round boundary
        (and enforced inside a round by the pool): on expiry the loop stops,
        the converged-so-far state is merged and returned with
        ``completed=False`` — per-cell ``n_samples`` records how far each
        cell got.

        With ``speculate=True`` each active cell is issued up to ``n_jobs``
        consecutive chunks per round instead of one (chunk sizes are
        precomputable because every shard returns exactly its requested
        count).  The merge walks each cell's results in chunk order,
        re-checking ``converged()``/``max_samples`` after every chunk — the
        exact predicate the non-speculative loop applies once per round —
        and discards everything past the first stop, so the merged sample
        stream is the reference stream bit for bit.  ``chunks_speculated``
        counts the extra chunks issued; ``chunks_discarded`` the results
        thrown away (overshoot, plus any result whose predecessor chunk was
        dropped by a deadline and therefore cannot be merged in order).
        """
        cells = list(cells)
        tracer = otrace.current()
        if tracer is None:
            return self._run_adaptive(cells, tolerance, min_samples,
                                      max_samples, z, absorb_into)
        mark = len(tracer.spans)
        events_mark = len(self.events)
        job_span = self._job_span(tracer, "adaptive", len(cells))
        try:
            result = self._run_adaptive(cells, tolerance, min_samples,
                                        max_samples, z, absorb_into)
            self._stitch_cell_spans(tracer, cells, job_span.span_id, mark)
            return result
        finally:
            tracer.finish(job_span)
            tracer.events.extend(self.events.records[events_mark:])

    def _run_adaptive(self, cells: "list[CellRef]", tolerance: float,
                      min_samples: int, max_samples: int, z: float,
                      absorb_into) -> ParallelExplainResult:
        trackers = [
            ConvergenceTracker(tolerance=tolerance, z=z, min_samples=min_samples)
            for _ in cells
        ]
        next_chunk = [0] * len(cells)
        active = [position for position, _ in enumerate(cells) if max_samples > 0]
        reports: list[WorkerReport] = []
        n_workers = 1
        shard_id = 0
        round_start = len(self.round_log)
        deadline = self._deadline()
        completed = True
        width = self.n_jobs if self.speculate else 1
        while active:
            if deadline is not None and time.monotonic() >= deadline:
                completed = False
                break
            shards: list[ExplainShard] = []
            speculated = 0
            # per-position chunk index the merge expects next (round start)
            expected = {position: next_chunk[position] for position in active}
            for position in active:
                taken = trackers[position].accumulator.count
                for extra in range(width):
                    chunk = min(self.samples_per_shard, max_samples - taken)
                    if chunk <= 0:
                        break
                    shards.append(ExplainShard(shard_id, cells[position],
                                               position, next_chunk[position],
                                               chunk))
                    shard_id += 1
                    next_chunk[position] += 1
                    taken += chunk
                    speculated += 1 if extra else 0
            round_reports = self._execute(shards, deadline=deadline)
            n_workers = max(n_workers, len(
                [report for report in round_reports if report.worker_index >= 0]
            ))
            reports.extend(round_reports)
            # merge per cell in chunk order, applying the stopping rule after
            # every chunk — with width 1 this is exactly the classic
            # merge-all-then-filter round, because each cell has one chunk
            discarded = 0
            stopped: set[int] = set()
            for result in self._ordered_results(round_reports):
                position = result.cell_position
                if (position in stopped
                        or result.chunk_index != expected.get(position)):
                    discarded += 1
                    continue
                expected[position] += 1
                tracker = trackers[position]
                tracker.merge(result.accumulator)
                if (tracker.converged()
                        or tracker.accumulator.count >= max_samples):
                    stopped.add(position)
            self.round_log[-1]["chunks_speculated"] += speculated
            self.round_log[-1]["chunks_discarded"] += discarded
            if self.round_log[-1]["shards_dropped"]:
                completed = False
                break
            active = [
                position for position in active
                if not trackers[position].converged()
                and trackers[position].accumulator.count < max_samples
            ]
        accumulators = [tracker.accumulator for tracker in trackers]
        return self._merge(cells, accumulators, reports, absorb_into,
                           n_workers=n_workers,
                           rounds=self.round_log[round_start:],
                           completed=completed)

    # -- merging ----------------------------------------------------------------------

    def _merge(self, cells: Sequence[CellRef], trackers: Sequence[RunningMean],
               reports: Sequence[WorkerReport], absorb_into,
               n_workers: int | None = None,
               rounds: Sequence[dict] = (),
               completed: bool = True,
               positions: "Sequence[int] | None" = None) -> ParallelExplainResult:
        # per-cell provenance: union each cell's shard-recorded touched sets
        # (shard results address cells by plan position)
        cell_at = dict(zip(positions if positions is not None
                           else range(len(cells)), cells))
        touched: dict[CellRef, set] = {}
        for report in reports:
            for result in report.shard_results:
                recorded = getattr(result, "touched", None)
                if recorded:
                    cell = cell_at.get(result.cell_position)
                    if cell is not None:
                        touched.setdefault(cell, set()).update(recorded)
        # SampledShapleyEstimate normalises the degenerate n < 2 case itself
        estimates = {
            cell: SampledShapleyEstimate(
                cell=cell,
                value=tracker.mean,
                standard_error=tracker.standard_error,
                n_samples=tracker.count,
            )
            for cell, tracker in zip(cells, trackers)
        }
        # shards actually executed (a deadline expiry can drop planned ones)
        n_shards = sum(len(report.shard_results) for report in reports)
        if n_workers is None:
            n_workers = max(1, len(reports))
        statistics = aggregate_oracle_statistics(
            report.statistics for report in reports
        )
        statistics["parallel_workers"] = max(
            statistics.get("parallel_workers", 0), n_workers
        )
        statistics["parallel_shards"] = statistics.get("parallel_shards", 0) + n_shards
        pool_counters = {
            key: sum(entry[key] for entry in rounds) for key in _POOL_COUNTERS
        }
        for key, value in pool_counters.items():
            statistics[key] = statistics.get(key, 0) + value
        if not completed:
            statistics["deadline_expired"] = statistics.get("deadline_expired", 0) + 1
            self.events.emit("deadline_expired",
                             budget_seconds=self.deadline_seconds,
                             n_shards=n_shards)
        # cache counters are absorbed from the per-report statistics
        # snapshots (see absorb_statistics); the cache objects contribute
        # entries only — warm reports as per-round diffs, cold reports as a
        # whole cache each merged exactly once per *distinct* object (the
        # reused in-process state puts the same live cache behind every
        # round's report, so replaying it per report would redo the history)
        merged_cache_ids: set[int] = set()

        def merge_report_entries(target: OracleCache, report: WorkerReport) -> None:
            if report.cache is not None and id(report.cache) not in merged_cache_ids:
                merged_cache_ids.add(id(report.cache))
                target.merge_entries(report.cache)
            for key, value in report.cache_diff:
                target.put(key, value)

        if absorb_into is not None:
            for report in reports:
                absorb_into.absorb_statistics(report.statistics)
                if absorb_into.cache is not None:
                    merge_report_entries(absorb_into.cache, report)
            absorb_into.parallel_workers = max(absorb_into.parallel_workers, n_workers)
            absorb_into.parallel_shards += n_shards
            for key in _POOL_COUNTERS:
                setattr(absorb_into, key,
                        getattr(absorb_into, key) + pool_counters[key])
            if not completed:
                absorb_into.deadline_expired += 1
            cache = absorb_into.cache
        elif self.spec.use_cache:
            cache = (OracleCache(self.spec.cache_size)
                     if self.spec.cache_size is not None else OracleCache())
            for report in reports:
                merge_report_entries(cache, report)
            cache.hits += statistics.get("cache_hits", 0)
            cache.misses += statistics.get("cache_misses", 0)
            cache.evictions += statistics.get("cache_evictions", 0)
        else:
            cache = None
        return ParallelExplainResult(
            estimates=estimates,
            n_workers=n_workers,
            n_shards=n_shards,
            statistics=statistics,
            cache=cache,
            completed=completed,
            touched=touched,
        )
