"""Seeded chaos schedules for the warm pool's fault-tolerance machinery.

PR 5's ``fault_injector`` hook is a bare callable — good for scripting one
targeted failure, clumsy for soak testing.  :class:`FaultPlan` generalises it
into a *deterministic schedule*: a set of :class:`FaultEvent` entries
addressed by ``(worker_index, round_index)``, each carrying the
:class:`~repro.parallel.job.WorkerFault` to inject at that coordinate.  A
plan is itself a valid ``fault_injector`` (it is callable with the same
signature), so it plugs straight into ``ShardedExplainScheduler``.

:meth:`FaultPlan.seeded` draws a randomized-but-reproducible schedule from a
``numpy`` generator: the same ``(seed, n_workers, n_rounds, rate)`` always
yields the same kill/hang/corrupt-reply/slow-reply sequence, which is what
lets the chaos soak replay the golden-determinism grid under fire and assert
bit-identical Shapley values — the repo's core invariant, now tested under
every failure mode the pool distinguishes at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.parallel.job import WorkerFault

#: the fault vocabulary :meth:`FaultPlan.seeded` draws from, in draw order
#: (the order is part of the schedule's determinism contract)
FAULT_KINDS = ("kill", "hang", "corrupt", "slow")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *this* worker, *this* round, *this* failure."""

    worker_index: int
    round_index: int
    fault: WorkerFault


class FaultPlan:
    """A deterministic schedule of worker faults, usable as a fault injector.

    At most one fault per ``(worker, round)`` coordinate — a later event for
    the same coordinate replaces the earlier one, mirroring how the pool
    delivers at most one fault per dispatch.  Coordinates beyond the plan's
    horizon simply return ``None``, so a plan built for ``n_rounds`` rounds
    is safe on jobs that run longer.
    """

    def __init__(self, events: "Iterable[FaultEvent | tuple]" = ()):
        self._events: dict[tuple[int, int], WorkerFault] = {}
        for event in events:
            if not isinstance(event, FaultEvent):
                event = FaultEvent(*event)
            self._events[(event.worker_index, event.round_index)] = event.fault

    def __call__(self, worker_index: int, round_index: int) -> WorkerFault | None:
        return self._events.get((worker_index, round_index))

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:  # an empty plan is still a valid injector
        return True

    def events(self) -> list[FaultEvent]:
        """All scheduled events, sorted by (round, worker) for reporting."""
        return [FaultEvent(worker, round_index, fault)
                for (worker, round_index), fault
                in sorted(self._events.items(), key=lambda item: item[0][::-1])]

    def count(self, kind: str) -> int:
        """How many scheduled events are of one :data:`FAULT_KINDS` kind."""
        predicate = {
            "kill": lambda fault: fault.die_after_shards is not None,
            "hang": lambda fault: fault.hang_seconds is not None,
            "corrupt": lambda fault: fault.corrupt_reply,
            "slow": lambda fault: fault.slow_seconds is not None
            and not fault.corrupt_reply,
        }[kind]
        return sum(1 for fault in self._events.values() if predicate(fault))

    @classmethod
    def seeded(cls, seed: int, n_workers: int, n_rounds: int,
               rate: float = 0.25,
               kinds: Sequence[str] = FAULT_KINDS,
               hang_seconds: float = 30.0,
               slow_seconds: float = 0.02) -> "FaultPlan":
        """A reproducible random schedule over a ``workers × rounds`` grid.

        Each coordinate independently suffers a fault with probability
        ``rate``; the kind is drawn uniformly from ``kinds``.  ``kill``
        events die after 0 shards (so they fire even on one-shard
        assignments), ``hang`` events sleep ``hang_seconds`` (pair the plan
        with a ``worker_timeout`` well below it), ``slow`` events delay the
        reply by ``slow_seconds`` (keep it below the timeout to model a slow
        but healthy worker).  The schedule depends only on the arguments —
        never on wall clock or global RNG state.
        """
        rng = np.random.default_rng(seed)
        faults = {
            "kill": lambda: WorkerFault(die_after_shards=0),
            "hang": lambda: WorkerFault(hang_seconds=hang_seconds),
            "corrupt": lambda: WorkerFault(corrupt_reply=True),
            "slow": lambda: WorkerFault(slow_seconds=slow_seconds),
        }
        events = []
        for round_index in range(int(n_rounds)):
            for worker_index in range(int(n_workers)):
                if rng.random() < rate:
                    kind = kinds[int(rng.integers(len(kinds)))]
                    events.append(FaultEvent(worker_index, round_index,
                                             faults[kind]()))
        return cls(events)
