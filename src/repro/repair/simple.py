"""Algorithm 1 of the paper: a simple rule-based repair algorithm.

Each denial constraint is associated with a :class:`RepairRule` describing
which attribute to modify when a tuple participates in a violation of that
constraint and how to pick the replacement value:

* ``"most_common"`` — the modal value of the attribute
  (``argmax_v P[A = v]``, rules 1 and 3 of Algorithm 1), or
* ``"conditional"`` — the most probable value given another attribute of the
  same tuple (``argmax_v P[A = v | B = t[B]]``, rules 2 and 4).

:func:`paper_algorithm_1` builds the exact four rules of the paper for the
La Liga schema; :func:`default_rules_for` derives a sensible rule for an
arbitrary FD-style constraint so the algorithm works on any dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.constraints.dc import DenialConstraint
from repro.constraints.incremental import RepairWalk, find_violations_auto, repair_walk_for
from repro.dataset.table import CellRef, Table
from repro.engine.storage import is_null
from repro.errors import RepairError
from repro.observability import trace as otrace
from repro.repair.base import RepairAlgorithm, _padded_differing_lists

MOST_COMMON = "most_common"
CONDITIONAL = "conditional"
_STRATEGIES = (MOST_COMMON, CONDITIONAL)


@dataclass(frozen=True)
class RepairRule:
    """How to fix a tuple that violates one constraint.

    Parameters
    ----------
    target:
        The attribute whose value is modified.
    strategy:
        ``"most_common"`` or ``"conditional"``.
    given:
        The conditioning attribute (required when ``strategy="conditional"``).
    """

    target: str
    strategy: str = MOST_COMMON
    given: str | None = None

    def __post_init__(self):
        if self.strategy not in _STRATEGIES:
            raise RepairError(
                f"unknown repair strategy {self.strategy!r}; expected one of {_STRATEGIES}"
            )
        if self.strategy == CONDITIONAL and not self.given:
            raise RepairError("a conditional repair rule needs a 'given' attribute")

    def replacement_value(self, table: Table, row: int):
        """The replacement value for ``row``'s target attribute, or ``None`` to skip.

        Values are computed from the statistics of the *current* table
        snapshot, exactly as Algorithm 1 prescribes (``argmax_c P[...]``);
        ``None`` is returned when the statistics are insufficient (e.g. the
        conditioning value never co-occurs with a non-null target), in which
        case the tuple is left untouched.
        """
        if self.strategy == MOST_COMMON:
            return table.stats.most_common(self.target)
        given_value = table.value(row, self.given)
        if is_null(given_value):
            return None
        return table.stats.most_probable_given(self.target, self.given, given_value)


def default_rules_for(constraint: DenialConstraint) -> RepairRule | None:
    """Derive a repair rule from the shape of an FD-style denial constraint.

    For a constraint with predicates ``t1.X == t2.X ∧ ... ∧ t1.A != t2.A`` the
    rule modifies ``A``.  If the constraint has exactly one equality attribute
    the replacement is conditioned on it (``argmax P[A | X]``); otherwise the
    modal value of ``A`` is used.  Constraints without an inequality between
    the two tuples (e.g. purely order-based ones) get no rule and are ignored
    by :class:`SimpleRuleRepair`.
    """
    inequality_attributes = constraint.inequality_attributes()
    if not inequality_attributes:
        return None
    target = inequality_attributes[0]
    equality_attributes = [a for a in constraint.equality_attributes() if a != target]
    if len(equality_attributes) == 1:
        return RepairRule(target=target, strategy=CONDITIONAL, given=equality_attributes[0])
    return RepairRule(target=target, strategy=MOST_COMMON)


class SimpleRuleRepair(RepairAlgorithm):
    """The paper's Algorithm 1, generalised to arbitrary rule tables.

    Parameters
    ----------
    rules:
        Mapping from constraint name to :class:`RepairRule`.  Constraints
        without an entry fall back to :func:`default_rules_for` when
        ``derive_missing`` is true, otherwise they are ignored.
    derive_missing:
        Whether to derive rules for constraints not listed in ``rules``.
    max_iterations:
        Fixpoint bound: the rule passes repeat until no cell changes or this
        many passes have run.
    second_order:
        Maintain violations *across* the fixpoint passes with a
        :class:`~repro.constraints.incremental.RepairWalk` (view→view deltas:
        each pass retracts and re-checks only the cells the previous pass
        wrote) when repairing a :class:`~repro.dataset.table.PerturbationView`.
        ``False`` restores the first-order behaviour of re-deriving every pass
        from the base snapshot.  Results are identical either way.
    vectorized:
        Build the walk's equality indexes and class partitions over
        dictionary-encoded code arrays (and consume the batch scheduler's
        multi-coalition precomputed builds).  Only effective with
        ``second_order=True`` on a view; results are bit-identical either
        way.
    """

    name = "simple-rules"

    def __init__(
        self,
        rules: Mapping[str, RepairRule] | None = None,
        derive_missing: bool = True,
        max_iterations: int = 10,
        second_order: bool = True,
        vectorized: bool = True,
    ):
        if max_iterations <= 0:
            raise RepairError(f"max_iterations must be positive, got {max_iterations}")
        self.rules = dict(rules or {})
        self.derive_missing = derive_missing
        self.max_iterations = max_iterations
        self.second_order = bool(second_order)
        self.vectorized = bool(vectorized)
        self._derived_rules: dict[DenialConstraint, RepairRule | None] = {}

    def _rule_for(self, constraint: DenialConstraint) -> RepairRule | None:
        if constraint.name in self.rules:
            return self.rules[constraint.name]
        if self.derive_missing:
            # rule derivation is pure shape analysis; cache it per constraint
            # (the Shapley loop re-runs the repair thousands of times)
            if constraint not in self._derived_rules:
                self._derived_rules[constraint] = default_rules_for(constraint)
            return self._derived_rules[constraint]
        return None

    def repair_table(self, constraints: Sequence[DenialConstraint], table: Table) -> Table:
        # A perturbation view is snapshotted as a sibling view (its sparse
        # delta is forked, no columns are copied) and its violations are
        # delta-maintained: second-order along the walk's own passes through a
        # RepairWalk, or per pass against the base by find_violations_auto;
        # plain tables take the original copy + full-rescan path.
        current = table.mutable_snapshot(name=f"{table.name}_repaired")
        walk = (repair_walk_for(current, constraints, vectorized=self.vectorized)
                if self.second_order else None)
        return self._repair_loop(list(constraints), current, walk)

    def repair_pair(
        self,
        constraints: Sequence[DenialConstraint],
        with_table: Table,
        without_table: Table,
        differing_cells: Sequence[CellRef] = (),
    ) -> tuple[Table, Table]:
        """Repair the with/without pair of an oracle query in one shared walk.

        The first instance's detection state is primed once (base→view) and
        forked at the differing cells for the second instance, so the second
        repair starts from an already-derived view state instead of from the
        base snapshot.  Outputs are identical to two independent
        :meth:`repair_table` calls.
        """
        clean_with, clean_withouts = self.repair_pair_group(
            constraints, with_table, [without_table], [differing_cells]
        )
        return clean_with, clean_withouts[0]

    def repair_pair_group(
        self,
        constraints: Sequence[DenialConstraint],
        with_table: Table,
        without_tables: Sequence[Table],
        differing_cells_lists: Sequence[Sequence[CellRef]] = (),
    ) -> tuple[Table, list[Table]]:
        """Repair one with-instance against several without-instances.

        The batch scheduler's grouped entry point: the shared with-instance's
        detection state is primed exactly once and forked per
        without-instance (all forks happen before any repair loop writes, as
        :meth:`~repro.constraints.incremental.RepairWalk.fork_onto` requires).
        When a shared statistics engine travels with the instances the
        per-pair statistics fork is skipped — the engine moves its one
        instance along the repairs transparently.
        """
        constraints = list(constraints)
        differing_cells_lists = _padded_differing_lists(
            differing_cells_lists, len(without_tables)
        )
        with_work = with_table.mutable_snapshot(name=f"{with_table.name}_repaired")
        walk_with = (repair_walk_for(with_work, constraints, vectorized=self.vectorized)
                     if self.second_order else None)
        if walk_with is None:
            return (
                self._repair_loop(constraints, with_work, None),
                [self.repair_table(constraints, without_table)
                 for without_table in without_tables],
            )
        walk_with.prime()
        self.shared_pair_walks += len(without_tables)
        without_works: list[Table] = []
        walks: list[RepairWalk] = []
        for without_table, differing_cells in zip(without_tables, differing_cells_lists):
            without_work = without_table.mutable_snapshot(
                name=f"{without_table.name}_repaired"
            )
            walk_without = walk_with.fork_onto(without_work, differing_cells)
            # The fork must happen now, before the with-instance's repair loop
            # writes: the two instances differ in one cell here, afterwards
            # they differ by every repair write.  (With a shared statistics
            # engine the fork source is the engine's leased instance — the
            # fork syncs it and produces a plain per-instance copy, so the
            # engine keeps tracking only the with-side chain across samples.)
            active_rules = self._active_pair_rules(constraints, walk_with, walk_without)
            # Statistics deltas are applied cell-by-cell against the second
            # instance's final store, which is only equivalent to sequential
            # application when no two differing cells share a row (the
            # sampling loop's pairs always differ in exactly one cell).
            differing_rows = [cell.row for cell in differing_cells]
            if active_rules and len(set(differing_rows)) == len(differing_rows):
                self._share_pair_statistics(
                    active_rules, with_work, without_work, differing_cells
                )
            without_works.append(without_work)
            walks.append(walk_without)
        return (
            self._repair_loop(constraints, with_work, walk_with),
            [self._repair_loop(constraints, without_work, walk_without)
             for without_work, walk_without in zip(without_works, walks)],
        )

    def _active_pair_rules(self, constraints: list[DenialConstraint],
                           walk_with, walk_without) -> list[RepairRule]:
        """Rules whose constraints have violations in either primed walk.

        Rules only read statistics for violating tuples, so a pair whose
        primed walks show no violations on a rule-bearing constraint never
        builds that rule's statistics — sharing them would only add cost.
        """
        rules = []
        for constraint in constraints:
            rule = self._rule_for(constraint)
            if rule is None or rule.target not in walk_with.view.schema:
                continue
            if walk_with.has_violations(constraint) or walk_without.has_violations(constraint):
                rules.append(rule)
        return rules

    def _share_pair_statistics(self, active_rules: Sequence[RepairRule],
                               with_work: Table, without_work: Table,
                               differing_cells: Sequence[CellRef]) -> None:
        """Fork the first instance's statistics onto the second.

        The rules only ever consult the marginals of their target attributes
        and the ``(given, target)`` pair distributions, so those are warmed on
        the first instance, forked, and moved to the second instance's content
        by applying the differing cells — O(|rules| + |differing|) instead of
        re-scanning columns for the second repair.
        """
        stats = with_work.stats
        for rule in active_rules:
            if rule.strategy == CONDITIONAL:
                stats.cooccurrence.warm(rule.given, rule.target)
            else:
                stats.marginal(rule.target)
        forked = stats.fork(without_work.store)
        for cell in differing_cells:
            forked.apply_cell_update(
                cell.row, cell.attribute,
                with_work.value(cell.row, cell.attribute),
                without_work.value(cell.row, cell.attribute),
            )
        without_work.adopt_statistics(forked)

    def _repair_loop(self, constraints: list[DenialConstraint], current: Table,
                     walk: RepairWalk | None) -> Table:
        tracer = otrace.current()
        if tracer is None:
            return self._repair_passes(constraints, current, walk)
        with tracer.span("repair_pass", algorithm=self.name):
            return self._repair_passes(constraints, current, walk)

    def _repair_passes(self, constraints: list[DenialConstraint], current: Table,
                       walk: RepairWalk | None) -> Table:
        # On the walk path, replacement values are memoised per (target,
        # strategy, conditioning attribute and value).  The statistics only
        # change through this loop's own tracked writes, and a write to
        # attribute A moves exactly the marginal/pair counts of entries whose
        # target or conditioning attribute is A, so only those entries are
        # invalidated — values stay bit-identical, repeated argmax lookups
        # are skipped.  An unexpected version jump clears everything.
        memo: dict[tuple, Any] = {}
        memo_version = current.version
        current_value = current.value
        for _ in range(self.max_iterations):
            changed = False
            for constraint in constraints:
                rule = self._rule_for(constraint)
                if rule is None or rule.target not in current.schema:
                    continue
                # Collect the violating tuples first so that a repair applied to
                # one tuple does not hide the violations of tuples found later
                # in the same pass.  On the walk path the ranking consumes the
                # walk's array-built row list (one vectorised concatenate+sort
                # over the mixed class-partition groups) — no Violation or
                # CellRef objects are materialised.
                if walk is not None:
                    violating_rows = walk.violating_rows_for(constraint)
                else:
                    violations = find_violations_auto(current, constraint)
                    violating_rows = sorted({row for v in violations for row in v.rows})
                for row in violating_rows:
                    if walk is not None:
                        if current.version != memo_version:
                            memo.clear()
                            memo_version = current.version
                        given = rule.given
                        key = (rule.target, rule.strategy, given,
                               current_value(row, given) if given else None)
                        try:
                            replacement = memo[key]
                        except KeyError:
                            replacement = rule.replacement_value(current, row)
                            memo[key] = replacement
                        except TypeError:  # unhashable conditioning value
                            replacement = rule.replacement_value(current, row)
                    else:
                        replacement = rule.replacement_value(current, row)
                    if replacement is None:
                        continue
                    if current_value(row, rule.target) != replacement:
                        current.set_value(row, rule.target, replacement)
                        changed = True
                        if walk is not None:
                            target = rule.target
                            if memo:
                                for stale in [k for k in memo
                                              if k[0] == target or k[2] == target]:
                                    del memo[stale]
                            memo_version = current.version
            if not changed:
                break
        return current


def paper_algorithm_1(max_iterations: int = 10) -> SimpleRuleRepair:
    """Algorithm 1 exactly as printed in the paper, for the La Liga schema.

    * C1 violation → ``City`` := most common city,
    * C2 violation → ``Country`` := most probable country given the city,
    * C3 violation → ``Country`` := most common country,
    * C4 violation → ``Place`` := most probable place given the team.
    """
    rules = {
        "C1": RepairRule(target="City", strategy=MOST_COMMON),
        "C2": RepairRule(target="Country", strategy=CONDITIONAL, given="City"),
        "C3": RepairRule(target="Country", strategy=MOST_COMMON),
        "C4": RepairRule(target="Place", strategy=CONDITIONAL, given="Team"),
    }
    algorithm = SimpleRuleRepair(rules=rules, derive_missing=True, max_iterations=max_iterations)
    algorithm.name = "algorithm-1"
    return algorithm
