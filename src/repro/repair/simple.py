"""Algorithm 1 of the paper: a simple rule-based repair algorithm.

Each denial constraint is associated with a :class:`RepairRule` describing
which attribute to modify when a tuple participates in a violation of that
constraint and how to pick the replacement value:

* ``"most_common"`` — the modal value of the attribute
  (``argmax_v P[A = v]``, rules 1 and 3 of Algorithm 1), or
* ``"conditional"`` — the most probable value given another attribute of the
  same tuple (``argmax_v P[A = v | B = t[B]]``, rules 2 and 4).

:func:`paper_algorithm_1` builds the exact four rules of the paper for the
La Liga schema; :func:`default_rules_for` derives a sensible rule for an
arbitrary FD-style constraint so the algorithm works on any dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.constraints.dc import DenialConstraint
from repro.constraints.incremental import find_violations_auto
from repro.dataset.table import Table
from repro.engine.storage import is_null
from repro.errors import RepairError
from repro.repair.base import RepairAlgorithm

MOST_COMMON = "most_common"
CONDITIONAL = "conditional"
_STRATEGIES = (MOST_COMMON, CONDITIONAL)


@dataclass(frozen=True)
class RepairRule:
    """How to fix a tuple that violates one constraint.

    Parameters
    ----------
    target:
        The attribute whose value is modified.
    strategy:
        ``"most_common"`` or ``"conditional"``.
    given:
        The conditioning attribute (required when ``strategy="conditional"``).
    """

    target: str
    strategy: str = MOST_COMMON
    given: str | None = None

    def __post_init__(self):
        if self.strategy not in _STRATEGIES:
            raise RepairError(
                f"unknown repair strategy {self.strategy!r}; expected one of {_STRATEGIES}"
            )
        if self.strategy == CONDITIONAL and not self.given:
            raise RepairError("a conditional repair rule needs a 'given' attribute")

    def replacement_value(self, table: Table, row: int):
        """The replacement value for ``row``'s target attribute, or ``None`` to skip.

        Values are computed from the statistics of the *current* table
        snapshot, exactly as Algorithm 1 prescribes (``argmax_c P[...]``);
        ``None`` is returned when the statistics are insufficient (e.g. the
        conditioning value never co-occurs with a non-null target), in which
        case the tuple is left untouched.
        """
        if self.strategy == MOST_COMMON:
            return table.stats.most_common(self.target)
        given_value = table.value(row, self.given)
        if is_null(given_value):
            return None
        return table.stats.most_probable_given(self.target, self.given, given_value)


def default_rules_for(constraint: DenialConstraint) -> RepairRule | None:
    """Derive a repair rule from the shape of an FD-style denial constraint.

    For a constraint with predicates ``t1.X == t2.X ∧ ... ∧ t1.A != t2.A`` the
    rule modifies ``A``.  If the constraint has exactly one equality attribute
    the replacement is conditioned on it (``argmax P[A | X]``); otherwise the
    modal value of ``A`` is used.  Constraints without an inequality between
    the two tuples (e.g. purely order-based ones) get no rule and are ignored
    by :class:`SimpleRuleRepair`.
    """
    inequality_attributes = constraint.inequality_attributes()
    if not inequality_attributes:
        return None
    target = inequality_attributes[0]
    equality_attributes = [a for a in constraint.equality_attributes() if a != target]
    if len(equality_attributes) == 1:
        return RepairRule(target=target, strategy=CONDITIONAL, given=equality_attributes[0])
    return RepairRule(target=target, strategy=MOST_COMMON)


class SimpleRuleRepair(RepairAlgorithm):
    """The paper's Algorithm 1, generalised to arbitrary rule tables.

    Parameters
    ----------
    rules:
        Mapping from constraint name to :class:`RepairRule`.  Constraints
        without an entry fall back to :func:`default_rules_for` when
        ``derive_missing`` is true, otherwise they are ignored.
    derive_missing:
        Whether to derive rules for constraints not listed in ``rules``.
    max_iterations:
        Fixpoint bound: the rule passes repeat until no cell changes or this
        many passes have run.
    """

    name = "simple-rules"

    def __init__(
        self,
        rules: Mapping[str, RepairRule] | None = None,
        derive_missing: bool = True,
        max_iterations: int = 10,
    ):
        if max_iterations <= 0:
            raise RepairError(f"max_iterations must be positive, got {max_iterations}")
        self.rules = dict(rules or {})
        self.derive_missing = derive_missing
        self.max_iterations = max_iterations
        self._derived_rules: dict[DenialConstraint, RepairRule | None] = {}

    def _rule_for(self, constraint: DenialConstraint) -> RepairRule | None:
        if constraint.name in self.rules:
            return self.rules[constraint.name]
        if self.derive_missing:
            # rule derivation is pure shape analysis; cache it per constraint
            # (the Shapley loop re-runs the repair thousands of times)
            if constraint not in self._derived_rules:
                self._derived_rules[constraint] = default_rules_for(constraint)
            return self._derived_rules[constraint]
        return None

    def repair_table(self, constraints: Sequence[DenialConstraint], table: Table) -> Table:
        # A perturbation view is snapshotted as a sibling view (its sparse
        # delta is forked, no columns are copied) and its violations are
        # delta-maintained against the base table by find_violations_auto;
        # plain tables take the original copy + full-rescan path.
        current = table.mutable_snapshot(name=f"{table.name}_repaired")
        for _ in range(self.max_iterations):
            changed = False
            for constraint in constraints:
                rule = self._rule_for(constraint)
                if rule is None or rule.target not in current.schema:
                    continue
                violations = find_violations_auto(current, constraint)
                # Collect the violating tuples first so that a repair applied to
                # one tuple does not hide the violations of tuples found later
                # in the same pass.
                violating_rows = sorted({row for v in violations for row in v.rows})
                for row in violating_rows:
                    replacement = rule.replacement_value(current, row)
                    if replacement is None:
                        continue
                    if current.value(row, rule.target) != replacement:
                        current.set_value(row, rule.target, replacement)
                        changed = True
            if not changed:
                break
        return current


def paper_algorithm_1(max_iterations: int = 10) -> SimpleRuleRepair:
    """Algorithm 1 exactly as printed in the paper, for the La Liga schema.

    * C1 violation → ``City`` := most common city,
    * C2 violation → ``Country`` := most probable country given the city,
    * C3 violation → ``Country`` := most common country,
    * C4 violation → ``Place`` := most probable place given the team.
    """
    rules = {
        "C1": RepairRule(target="City", strategy=MOST_COMMON),
        "C2": RepairRule(target="Country", strategy=CONDITIONAL, given="City"),
        "C3": RepairRule(target="Country", strategy=MOST_COMMON),
        "C4": RepairRule(target="Place", strategy=CONDITIONAL, given="Team"),
    }
    algorithm = SimpleRuleRepair(rules=rules, derive_missing=True, max_iterations=max_iterations)
    algorithm.name = "algorithm-1"
    return algorithm
