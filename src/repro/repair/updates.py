"""The base-update vocabulary: deltas, the session log, table application.

A *base update* is a write to the dirty table itself — the user corrects a
source cell mid-session — as opposed to the hypothetical perturbations the
Shapley sampler materialises by the thousand.  The contract of this module
is the live-session invariant: applying a :class:`BaseUpdateDelta` through
:func:`apply_table_update` and then explaining must be bit-identical to
building a fresh session on the post-update table.

The pieces:

* :class:`BaseCellUpdate` — one cell write with both sides recorded, so
  every downstream maintainer (statistics, detector indexes, cache rebase)
  can patch by delta instead of rescanning;
* :class:`BaseUpdateDelta` — one atomic batch of writes plus the
  post-update reference target value, picklable so resident workers can be
  patched in place over the pool pipe (``worker_rebuilds`` stays flat);
* :class:`BaseUpdateLog` — the session's append-only record of applied
  deltas (the CLI's ``--update`` replay and the chaos harness's
  reconciliation read it);
* :func:`apply_table_update` — the one routine that mutates a live table:
  it captures the pre-update fingerprint (the cache-rebase anchor), writes
  the cells (``Table.set_value`` keeps built statistics in step), and
  delta-maintains a live incremental detector instead of letting it fall
  back to a full rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.dataset.table import CellRef, Table
from repro.engine.storage import Fingerprint, values_differ


@dataclass(frozen=True)
class BaseCellUpdate:
    """One base-table cell write: the cell, what it held, what it holds now."""

    cell: CellRef
    old_value: Any
    new_value: Any


@dataclass(frozen=True)
class BaseUpdateDelta:
    """One atomic batch of base-table writes, as shipped to resident workers.

    ``target_value`` is the reference repaired value of the cell of interest
    *after* the update (the parent re-runs the repair once and ships the
    answer, exactly like :class:`~repro.parallel.job.ExplainJobSpec` does at
    job time — workers never re-run the reference repair).
    """

    updates: tuple[BaseCellUpdate, ...]
    target_value: Any = None

    def changes(self) -> dict[CellRef, tuple[Any, Any]]:
        """The batch as a ``{cell: (old, new)}`` mapping (maintainer input)."""
        return {u.cell: (u.old_value, u.new_value) for u in self.updates}

    def new_values(self) -> dict[tuple[int, str], Any]:
        """The batch as a ``{(row, attribute): new_value}`` mapping (the
        cache-rebase input shape)."""
        return {(u.cell.row, u.cell.attribute): u.new_value for u in self.updates}

    def __len__(self) -> int:
        return len(self.updates)


@dataclass
class BaseUpdateLog:
    """The session's append-only record of applied base updates."""

    applied: list[BaseUpdateDelta] = field(default_factory=list)

    def append(self, delta: BaseUpdateDelta) -> None:
        self.applied.append(delta)

    def __len__(self) -> int:
        return len(self.applied)

    def __iter__(self) -> Iterator[BaseUpdateDelta]:
        return iter(self.applied)

    @property
    def cells_written(self) -> int:
        return sum(len(delta) for delta in self.applied)


def collect_changes(table: Table,
                    values: Mapping[CellRef, Any]) -> dict[CellRef, tuple[Any, Any]]:
    """Normalise requested writes against the live table.

    Validates every cell, reads the current value, and drops writes that do
    not change content (null-aware) — a no-op write must not invalidate
    anything, or the "update + explain ≡ fresh session" invariant would cost
    a pointless refresh.
    """
    changes: dict[CellRef, tuple[Any, Any]] = {}
    for cell, new_value in values.items():
        cell = table.validate_cell(cell)
        old_value = table[cell]
        if values_differ(old_value, new_value):
            changes[cell] = (old_value, new_value)
    return changes


def apply_table_update(table: Table,
                       changes: Mapping[CellRef, tuple[Any, Any]]) -> Fingerprint:
    """Mutate a live table in place and keep its derived state in step.

    Returns the table's **pre-update** fingerprint — the anchor every cache
    rebase and resident-worker patch needs to recognise entries rooted at
    the old content.  ``Table.set_value`` bumps the version and patches any
    built statistics per cell; a live incremental detector (one whose base
    state matches the pre-update version) is delta-maintained here instead
    of being left to fall back to a full rebuild on its next query.
    """
    old_fingerprint = table.fingerprint()
    pre_version = table.version
    detector = getattr(table, "_incremental_detector", None)
    for cell, (_old, new_value) in changes.items():
        table.set_value(cell.row, cell.attribute, new_value)
    if detector is not None and detector.base_version == pre_version:
        detector.apply_base_update(changes)
    return old_fingerprint
