"""Repair algorithms and the black-box repair interface.

T-REx treats the repair algorithm as a black box ``Alg(C, T^d) = T^c`` and
only ever queries the derived binary function ``Alg|t[A](C, T^d) ∈ {0, 1}``
(Section 2.1 of the paper).  This subpackage provides:

* :class:`~repro.repair.base.RepairAlgorithm` — the abstract black-box
  interface, plus :class:`~repro.repair.base.BinaryRepairOracle`, the
  memoised binary view used by the Shapley engines;
* :class:`~repro.repair.simple.SimpleRuleRepair` — Algorithm 1 of the paper;
* :class:`~repro.repair.greedy.GreedyHolisticRepair` — a holistic,
  violation-hypergraph based repairer in the spirit of Chu et al. [3];
* :class:`~repro.repair.holoclean.HoloCleanRepair` — a HoloClean-style [5]
  probabilistic repairer (error detection → domain pruning → featurization →
  inference) re-implemented from scratch (DESIGN.md, substitution S8).
"""

from repro.repair.base import (
    RepairAlgorithm,
    RepairResult,
    BinaryRepairOracle,
    FunctionRepairAlgorithm,
)
from repro.repair.cache import OracleCache, memoised_oracle_stats
from repro.repair.updates import (
    BaseCellUpdate,
    BaseUpdateDelta,
    BaseUpdateLog,
    apply_table_update,
    collect_changes,
)
from repro.repair.simple import (
    SimpleRuleRepair,
    RepairRule,
    default_rules_for,
    paper_algorithm_1,
)
from repro.repair.greedy import GreedyHolisticRepair
from repro.repair.holoclean import HoloCleanRepair

__all__ = [
    "RepairAlgorithm",
    "RepairResult",
    "BinaryRepairOracle",
    "FunctionRepairAlgorithm",
    "OracleCache",
    "memoised_oracle_stats",
    "BaseCellUpdate",
    "BaseUpdateDelta",
    "BaseUpdateLog",
    "apply_table_update",
    "collect_changes",
    "SimpleRuleRepair",
    "RepairRule",
    "default_rules_for",
    "paper_algorithm_1",
    "GreedyHolisticRepair",
    "HoloCleanRepair",
]
