"""The black-box repair interface.

``RepairAlgorithm`` is the only thing T-REx assumes about a repairer: it maps
a set of denial constraints and a dirty table to a repaired table.  The
``BinaryRepairOracle`` turns that into the paper's binary function

    Alg|t[A] : (C, T^d) → {0, 1}

which returns 1 exactly when running the algorithm repairs the cell of
interest ``t[A]`` to the reference clean value ``t^c[A]`` (the value obtained
from the original, full repair).  The oracle also counts and memoises
black-box invocations, because Shapley evaluation re-queries the algorithm
thousands of times with perturbed inputs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.constraints.dc import DenialConstraint, constraint_set_names
from repro.dataset.table import CellRef, PerturbationView, RepairDelta, Table
from repro.engine.storage import NULL
from repro.repair.cache import OracleCache


@dataclass
class RepairResult:
    """Output of one repair run: the clean table plus bookkeeping."""

    dirty: Table
    clean: Table
    delta: RepairDelta
    iterations: int = 1
    metadata: dict = field(default_factory=dict)

    @property
    def repaired_cells(self) -> list[CellRef]:
        return self.delta.cells()

    def was_repaired(self, cell: CellRef) -> bool:
        return cell in self.delta


class RepairAlgorithm(abc.ABC):
    """Abstract base class for repair algorithms (the black box).

    Subclasses implement :meth:`repair_table`, which must not mutate its
    inputs, and must be deterministic given (constraints, table) — the Shapley
    definitions assume the characteristic function is a function.
    """

    #: Human-readable algorithm name used in reports and benchmarks.
    name: str = "repair"

    #: lifetime count of :meth:`repair_pair` calls that actually shared one
    #: detection walk between the two instances.  The base implementation
    #: never shares, so it never increments; overrides increment it exactly
    #: when they fork state instead of running two independent repairs, which
    #: is how the oracle keeps its ``pair_walks`` statistic honest.
    shared_pair_walks: int = 0

    @abc.abstractmethod
    def repair_table(self, constraints: Sequence[DenialConstraint], table: Table) -> Table:
        """Return a repaired copy of ``table`` under ``constraints``."""

    def repair_pair(
        self,
        constraints: Sequence[DenialConstraint],
        with_table: Table,
        without_table: Table,
        differing_cells: Sequence[CellRef] = (),
    ) -> tuple[Table, Table]:
        """Repair two nearly identical instances (an oracle with/without pair).

        ``differing_cells`` names the cells whose contents may differ between
        the two instances (for the cell-Shapley sampling loop: exactly the
        target cell).  The base implementation runs two independent repairs;
        algorithms that walk an explicit detection state (the simple and
        greedy repairers) override it to prime the state once and fork it at
        the differing cells.  Overrides must return exactly what two
        independent :meth:`repair_table` calls would.
        """
        del differing_cells  # the independent fallback has nothing to share
        return (
            self.repair_table(list(constraints), with_table),
            self.repair_table(list(constraints), without_table),
        )

    # -- convenience API ----------------------------------------------------------

    def repair(self, constraints: Sequence[DenialConstraint], table: Table) -> RepairResult:
        """Run the repair and package the result with its dirty→clean delta."""
        clean = self.repair_table(list(constraints), table)
        return RepairResult(dirty=table, clean=clean, delta=table.diff(clean))

    def __call__(self, constraints: Sequence[DenialConstraint], table: Table) -> Table:
        return self.repair_table(list(constraints), table)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


class FunctionRepairAlgorithm(RepairAlgorithm):
    """Adapter turning a plain function ``f(constraints, table) -> Table`` into
    a :class:`RepairAlgorithm`.

    Useful in tests and for wrapping third-party cleaners without subclassing.
    """

    def __init__(self, function: Callable[[Sequence[DenialConstraint], Table], Table],
                 name: str = "function-repair"):
        self._function = function
        self.name = name

    def repair_table(self, constraints: Sequence[DenialConstraint], table: Table) -> Table:
        return self._function(constraints, table)


class BinaryRepairOracle:
    """The paper's ``Alg|t[A]`` binary view of a repair algorithm.

    Parameters
    ----------
    algorithm:
        The black-box repair algorithm.
    constraints:
        The full constraint set ``C`` given by the user.
    dirty_table:
        The dirty table ``T^d``.
    cell:
        The cell of interest ``t[A]`` whose repair is being explained.
    target_value:
        The reference repaired value ``t^c[A]``.  When omitted it is obtained
        by running the full repair once.
    use_cache:
        Memoise oracle answers keyed by (constraint subset, table fingerprint).
    incremental:
        Route the oracle's own perturbations (constraint-subset queries, cell
        coalitions) through :class:`~repro.dataset.table.PerturbationView`
        overlays so the repair algorithms evaluate them with the incremental
        violation detector.  Results are identical either way (the benchmark
        ``bench_incremental_vs_full.py`` cross-checks this); pass ``False`` to
        force the full-rescan reference path.
    paired:
        Allow :meth:`query_pair` to evaluate a with/without instance pair in
        one shared repair walk (:meth:`RepairAlgorithm.repair_pair`): the
        detection state is primed on the first instance and forked at the
        single differing cell for the second.  ``False`` forces every pair
        onto two independent repairs.  Answers are identical either way.
    cache_size:
        LRU bound for the oracle cache (defaults to
        :class:`~repro.repair.cache.OracleCache`'s generous built-in limit);
        ignored when ``use_cache`` is false.
    """

    def __init__(
        self,
        algorithm: RepairAlgorithm,
        constraints: Sequence[DenialConstraint],
        dirty_table: Table,
        cell: CellRef,
        target_value: Any = None,
        use_cache: bool = True,
        incremental: bool = True,
        paired: bool = True,
        cache_size: int | None = None,
    ):
        self.algorithm = algorithm
        self.constraints = list(constraints)
        self.dirty_table = dirty_table
        self.cell = dirty_table.validate_cell(cell)
        self.incremental = incremental
        self.paired = paired
        if use_cache:
            self._cache = OracleCache(cache_size) if cache_size is not None else OracleCache()
        else:
            self._cache = None
        self._dirty_view: PerturbationView | None = None
        self.calls = 0          # number of oracle queries (cached or not)
        self.repair_runs = 0    # number of actual black-box repair invocations
        self.pair_walks = 0     # number of pairs evaluated in one shared walk

        if target_value is None:
            reference_clean = algorithm.repair_table(self.constraints, dirty_table)
            self.repair_runs += 1
            target_value = reference_clean[cell]
        self.target_value = target_value

    # -- core query ---------------------------------------------------------------

    def _evaluate(self, constraints: Sequence[DenialConstraint], table: Table) -> int:
        clean = self.algorithm.repair_table(list(constraints), table)
        self.repair_runs += 1
        return 1 if clean[self.cell] == self.target_value else 0

    def query(self, constraints: Sequence[DenialConstraint], table: Table | None = None) -> int:
        """``Alg|t[A](constraints, table)`` — 1 iff the cell is repaired to the target.

        ``table`` defaults to the original dirty table (the constraint-Shapley
        case, where only the constraint subset varies).
        """
        self.calls += 1
        table = table if table is not None else self.dirty_table
        if self._cache is None:
            return self._evaluate(constraints, table)
        key = (constraint_set_names(constraints), table.fingerprint())
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        value = self._evaluate(constraints, table)
        self._cache.put(key, value)
        return value

    # -- paired query --------------------------------------------------------------

    def query_pair(
        self,
        constraints: Sequence[DenialConstraint],
        with_table: Table,
        without_table: Table,
    ) -> tuple[int, int]:
        """Evaluate a with/without instance pair, sharing one repair walk.

        Answers are exactly those of two :meth:`query` calls on the same
        tables (property-tested); only the work is shared — the pair of
        nearly identical repairs runs as one primed walk plus a fork at the
        differing cell when the instances are sibling views and the ``paired``
        and ``incremental`` flags allow it.  Pair results are additionally
        memoised under a fingerprint-pair key so a recurring coalition costs
        one cache lookup.
        """
        constraints = list(constraints)
        self.calls += 2
        key_with = key_without = pair_key = None
        value_with = value_without = None
        if self._cache is not None:
            names = constraint_set_names(constraints)
            fingerprint_with = with_table.fingerprint()
            fingerprint_without = without_table.fingerprint()
            key_with = (names, fingerprint_with)
            key_without = (names, fingerprint_without)
            pair_key = ("pair", names, fingerprint_with, fingerprint_without)
            pair = self._cache.get(pair_key)
            if pair is not None:
                return pair
            value_with = self._cache.get(key_with)
            value_without = self._cache.get(key_without)

        if value_with is None and value_without is None:
            value_with, value_without = self._evaluate_pair(
                constraints, with_table, without_table
            )
        else:
            if value_with is None:
                value_with = self._evaluate(constraints, with_table)
            if value_without is None:
                value_without = self._evaluate(constraints, without_table)

        if self._cache is not None:
            self._cache.put(key_with, value_with)
            self._cache.put(key_without, value_without)
            self._cache.put(pair_key, (value_with, value_without))
        return value_with, value_without

    def _evaluate_pair(
        self,
        constraints: Sequence[DenialConstraint],
        with_table: Table,
        without_table: Table,
    ) -> tuple[int, int]:
        if (
            self.paired
            and self.incremental
            and isinstance(with_table, PerturbationView)
            and isinstance(without_table, PerturbationView)
            and with_table.base is without_table.base
        ):
            differing = with_table.differing_cells(without_table)
            walks_before = self.algorithm.shared_pair_walks
            clean_with, clean_without = self.algorithm.repair_pair(
                constraints, with_table, without_table, differing
            )
            self.repair_runs += 2
            if self.algorithm.shared_pair_walks > walks_before:
                self.pair_walks += 1
            cell, target = self.cell, self.target_value
            return (
                1 if clean_with[cell] == target else 0,
                1 if clean_without[cell] == target else 0,
            )
        return (
            self._evaluate(constraints, with_table),
            self._evaluate(constraints, without_table),
        )

    # -- convenience entry points ----------------------------------------------------

    def _dirty_as_view(self) -> PerturbationView:
        """The dirty table wrapped in an (empty-delta) copy-on-write view.

        Repairing a view routes the algorithms through the incremental
        violation detector: the first detection pass returns the dirty table's
        cached base violations, and every subsequent pass re-checks only the
        rows the repair has touched so far.
        """
        if self._dirty_view is None:
            self._dirty_view = self.dirty_table.perturbed({})
        return self._dirty_view

    def query_constraint_subset(self, subset: Iterable[DenialConstraint]) -> int:
        """Vary the constraint set, keep the dirty table fixed (Section 2.2)."""
        table = self._dirty_as_view() if self.incremental else self.dirty_table
        return self.query(list(subset), table)

    def query_table(self, table: Table) -> int:
        """Vary the table (cell coalitions), keep the full constraint set fixed."""
        return self.query(self.constraints, table)

    def query_table_pair(self, with_table: Table, without_table: Table) -> tuple[int, int]:
        """Paired variant of :meth:`query_table` — one shared repair walk.

        This is the cell-Shapley sampling loop's entry point: the two
        instances of one Monte-Carlo sample differ in exactly the target cell.
        """
        return self.query_pair(self.constraints, with_table, without_table)

    def query_cell_coalition(self, coalition: Iterable[CellRef]) -> int:
        """Evaluate the oracle on the table restricted to ``coalition``.

        Cells outside the coalition are nulled, per the paper's definition of
        the cell characteristic function (``S ⊆ T^d`` means all other cells
        are null).  On the incremental path the restriction is a sparse
        null-overlay view instead of a materialised copy.
        """
        if self.incremental:
            keep = set(coalition)
            restricted = self.dirty_table.perturbed(
                {cell: NULL for cell in self.dirty_table.cells() if cell not in keep},
                trusted=True,
            )
        else:
            restricted = self.dirty_table.restricted_to_coalition(coalition)
        return self.query(self.constraints, restricted)

    # -- bookkeeping ------------------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return self._cache.hits if self._cache is not None else 0

    @property
    def cache_misses(self) -> int:
        return self._cache.misses if self._cache is not None else 0

    @property
    def cache_evictions(self) -> int:
        return self._cache.evictions if self._cache is not None else 0

    def reset_counters(self) -> None:
        self.calls = 0
        self.repair_runs = 0
        self.pair_walks = 0
        if self._cache is not None:
            self._cache.reset_counters()

    def statistics(self) -> dict[str, int]:
        return {
            "oracle_calls": self.calls,
            "repair_runs": self.repair_runs,
            "pair_walks": self.pair_walks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
        }
