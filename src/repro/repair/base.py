"""The black-box repair interface.

``RepairAlgorithm`` is the only thing T-REx assumes about a repairer: it maps
a set of denial constraints and a dirty table to a repaired table.  The
``BinaryRepairOracle`` turns that into the paper's binary function

    Alg|t[A] : (C, T^d) → {0, 1}

which returns 1 exactly when running the algorithm repairs the cell of
interest ``t[A]`` to the reference clean value ``t^c[A]`` (the value obtained
from the original, full repair).  The oracle also counts and memoises
black-box invocations, because Shapley evaluation re-queries the algorithm
thousands of times with perturbed inputs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.constraints.dc import DenialConstraint, constraint_set_names
from repro.constraints.incremental import detector_for
from repro.dataset.table import CellRef, PerturbationView, RepairDelta, Table
from repro.engine.stats import SharedStatistics
from repro.engine.storage import NULL
from repro.observability import trace as otrace
from repro.observability.metrics import (
    ORACLE_METRICS,
    MetricAttribute,
    MetricsRegistry,
)
from repro.repair.cache import OracleCache


@dataclass
class RepairResult:
    """Output of one repair run: the clean table plus bookkeeping."""

    dirty: Table
    clean: Table
    delta: RepairDelta
    iterations: int = 1
    metadata: dict = field(default_factory=dict)

    @property
    def repaired_cells(self) -> list[CellRef]:
        return self.delta.cells()

    def was_repaired(self, cell: CellRef) -> bool:
        return cell in self.delta


def _padded_differing_lists(
    differing_cells_lists: Sequence[Sequence[CellRef]], n_pairs: int
) -> Sequence[Sequence[CellRef]]:
    """Validate a group's per-pair differing-cells argument.

    An empty argument means "unknown" for every pair; anything else must
    match the without-instances one-to-one — silently ``zip``-truncating a
    group would drop repairs.
    """
    if not differing_cells_lists:
        return [()] * n_pairs
    if len(differing_cells_lists) != n_pairs:
        raise ValueError(
            f"repair_pair_group got {n_pairs} without-instances but "
            f"{len(differing_cells_lists)} differing-cells lists"
        )
    return differing_cells_lists


class RepairAlgorithm(abc.ABC):
    """Abstract base class for repair algorithms (the black box).

    Subclasses implement :meth:`repair_table`, which must not mutate its
    inputs, and must be deterministic given (constraints, table) — the Shapley
    definitions assume the characteristic function is a function.
    """

    #: Human-readable algorithm name used in reports and benchmarks.
    name: str = "repair"

    #: lifetime count of :meth:`repair_pair` calls that actually shared one
    #: detection walk between the two instances.  The base implementation
    #: never shares, so it never increments; overrides increment it exactly
    #: when they fork state instead of running two independent repairs, which
    #: is how the oracle keeps its ``pair_walks`` statistic honest.
    shared_pair_walks: int = 0

    @abc.abstractmethod
    def repair_table(self, constraints: Sequence[DenialConstraint], table: Table) -> Table:
        """Return a repaired copy of ``table`` under ``constraints``."""

    def repair_pair(
        self,
        constraints: Sequence[DenialConstraint],
        with_table: Table,
        without_table: Table,
        differing_cells: Sequence[CellRef] = (),
    ) -> tuple[Table, Table]:
        """Repair two nearly identical instances (an oracle with/without pair).

        ``differing_cells`` names the cells whose contents may differ between
        the two instances (for the cell-Shapley sampling loop: exactly the
        target cell).  The base implementation runs two independent repairs;
        algorithms that walk an explicit detection state (the simple and
        greedy repairers) override it to prime the state once and fork it at
        the differing cells.  Overrides must return exactly what two
        independent :meth:`repair_table` calls would.
        """
        del differing_cells  # the independent fallback has nothing to share
        return (
            self.repair_table(list(constraints), with_table),
            self.repair_table(list(constraints), without_table),
        )

    def repair_pair_group(
        self,
        constraints: Sequence[DenialConstraint],
        with_table: Table,
        without_tables: Sequence[Table],
        differing_cells_lists: Sequence[Sequence[CellRef]] = (),
    ) -> tuple[Table, list[Table]]:
        """Repair one with-instance against several without-instances.

        The batch scheduler's entry point: all pairs of one group share the
        same with-instance *content* (a shared coalition prefix), so the
        detection state can be primed once and forked per without-instance.
        The base implementation degrades to :meth:`repair_pair` per pair (the
        with-instance is re-repaired each time — determinism makes the copies
        identical); walk-sharing algorithms override it to prime once.
        Overrides must return exactly what independent :meth:`repair_table`
        calls would.
        """
        constraints = list(constraints)
        differing_cells_lists = _padded_differing_lists(
            differing_cells_lists, len(without_tables)
        )
        clean_with: Table | None = None
        clean_withouts: list[Table] = []
        for without_table, differing in zip(without_tables, differing_cells_lists):
            clean_with, clean_without = self.repair_pair(
                constraints, with_table, without_table, differing
            )
            clean_withouts.append(clean_without)
        if clean_with is None:
            clean_with = self.repair_table(constraints, with_table)
        return clean_with, clean_withouts

    # -- convenience API ----------------------------------------------------------

    def repair(self, constraints: Sequence[DenialConstraint], table: Table) -> RepairResult:
        """Run the repair and package the result with its dirty→clean delta."""
        clean = self.repair_table(list(constraints), table)
        return RepairResult(dirty=table, clean=clean, delta=table.diff(clean))

    def __call__(self, constraints: Sequence[DenialConstraint], table: Table) -> Table:
        return self.repair_table(list(constraints), table)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


class FunctionRepairAlgorithm(RepairAlgorithm):
    """Adapter turning a plain function ``f(constraints, table) -> Table`` into
    a :class:`RepairAlgorithm`.

    Useful in tests and for wrapping third-party cleaners without subclassing.
    """

    def __init__(self, function: Callable[[Sequence[DenialConstraint], Table], Table],
                 name: str = "function-repair"):
        self._function = function
        self.name = name

    def repair_table(self, constraints: Sequence[DenialConstraint], table: Table) -> Table:
        return self._function(constraints, table)


class BinaryRepairOracle:
    """The paper's ``Alg|t[A]`` binary view of a repair algorithm.

    Parameters
    ----------
    algorithm:
        The black-box repair algorithm.
    constraints:
        The full constraint set ``C`` given by the user.
    dirty_table:
        The dirty table ``T^d``.
    cell:
        The cell of interest ``t[A]`` whose repair is being explained.
    target_value:
        The reference repaired value ``t^c[A]``.  When omitted it is obtained
        by running the full repair once.
    use_cache:
        Memoise oracle answers keyed by (constraint subset, table fingerprint).
    incremental:
        Route the oracle's own perturbations (constraint-subset queries, cell
        coalitions) through :class:`~repro.dataset.table.PerturbationView`
        overlays so the repair algorithms evaluate them with the incremental
        violation detector.  Results are identical either way (the benchmark
        ``bench_incremental_vs_full.py`` cross-checks this); pass ``False`` to
        force the full-rescan reference path.
    paired:
        Allow :meth:`query_pair` to evaluate a with/without instance pair in
        one shared repair walk (:meth:`RepairAlgorithm.repair_pair`): the
        detection state is primed on the first instance and forked at the
        single differing cell for the second.  ``False`` forces every pair
        onto two independent repairs.  Answers are identical either way.
    vectorized:
        Evaluate the engine's builds over dictionary-encoded code arrays and
        run :meth:`query_pairs`' grouped passes through the **multi-coalition
        walk**: every distinct coalition view of one batch has its equality
        keys built in one stacked code-matrix pass
        (:meth:`~repro.constraints.incremental.IncrementalViolationDetector.precompute_walk_indexes`)
        instead of one primed build per group.  Encoding telemetry is merged
        into :meth:`statistics`.  ``False`` forces the per-cell object path;
        answers are bit-identical either way.
    shared_stats:
        Maintain one revertible :class:`~repro.engine.stats.SharedStatistics`
        instance for the oracle's whole lifetime and *move* it onto each
        perturbed instance by its sparse delta, instead of letting every
        repair rebuild (or fork) a statistics bundle per instance.  Requires
        ``incremental``; ``False`` forces the per-instance statistics path.
        Results are bit-identical either way.
    batched_pairs:
        Allow :meth:`query_pairs` to drain a queue of with/without pairs in
        one scheduled pass: pairs are deduplicated against the
        pair-fingerprint cache up front, grouped by shared coalition prefix
        (equal with-instance content), and each group runs on one primed
        repair walk (:meth:`RepairAlgorithm.repair_pair_group`).  ``False``
        degrades :meth:`query_pairs` to a plain :meth:`query_pair` loop.
        Answers are identical either way.
    cache_size:
        LRU bound for the oracle cache (defaults to
        :class:`~repro.repair.cache.OracleCache`'s generous built-in limit);
        ignored when ``use_cache`` is false.
    """

    # Every counter lives in ``self.metrics`` (one typed MetricsRegistry per
    # oracle — the single statistics sink); these descriptors keep the public
    # attribute spellings, including in-place ``+=`` and the scheduler's
    # ``setattr`` counter folds, proxying straight into the registry.
    calls = MetricAttribute("oracle_calls")          # oracle queries (cached or not)
    repair_runs = MetricAttribute("repair_runs")     # actual black-box repair invocations
    pair_walks = MetricAttribute("pair_walks")       # pairs evaluated in one shared walk
    batches = MetricAttribute("batches")             # query_pairs scheduled passes
    pairs_batched = MetricAttribute("pairs_batched")  # pairs submitted through those passes
    pairs_deduped = MetricAttribute("pairs_deduped")  # batched pairs answered without a repair
    max_batch_size = MetricAttribute("max_batch_size")
    # sharded-scheduler bookkeeping (absorbed from worker oracles by
    # repro.parallel; stays 0 on purely sequential oracles)
    parallel_workers = MetricAttribute("parallel_workers")  # widest worker fan-out
    parallel_shards = MetricAttribute("parallel_shards")    # shards absorbed
    # warm-pool bookkeeping (also absorbed from the scheduler): how often a
    # worker had to build its oracle stack from the job spec, how many cache
    # entries actually crossed a process boundary coming home, and the health
    # events of the pool — shards re-executed after a worker failure and
    # worker processes the pool had to replace
    worker_rebuilds = MetricAttribute("worker_rebuilds")
    cache_entries_shipped = MetricAttribute("cache_entries_shipped")
    shards_requeued = MetricAttribute("shards_requeued")
    workers_restarted = MetricAttribute("workers_restarted")
    # fault-tolerance bookkeeping (PR 7): rebuilds seeded from a parent cache
    # snapshot, entries those snapshots carried, shards quarantined to
    # in-process execution after repeated cross-worker failures, runs that hit
    # their wall-clock deadline, and seconds the pool spent backing off
    # between worker restarts
    warm_restarts = MetricAttribute("warm_restarts")
    cache_entries_seeded = MetricAttribute("cache_entries_seeded")
    shards_poisoned = MetricAttribute("shards_poisoned")
    deadline_expired = MetricAttribute("deadline_expired")
    restart_backoff_seconds = MetricAttribute("restart_backoff_seconds")
    # speculative adaptive sharding (PR 8): chunks drawn ahead of the
    # stopping rule, and results discarded past the merged stopping point
    chunks_speculated = MetricAttribute("chunks_speculated")
    chunks_discarded = MetricAttribute("chunks_discarded")
    # live base updates (PR 10): base-table writes applied through the
    # session's update path, Shapley estimates whose sampled coalitions
    # overlapped the changed cells, and memoised oracle answers dropped
    # because the content they were keyed on no longer exists
    base_updates_applied = MetricAttribute("base_updates_applied")
    estimates_invalidated = MetricAttribute("estimates_invalidated")
    cache_entries_invalidated = MetricAttribute("cache_entries_invalidated")

    def __init__(
        self,
        algorithm: RepairAlgorithm,
        constraints: Sequence[DenialConstraint],
        dirty_table: Table,
        cell: CellRef,
        target_value: Any = None,
        use_cache: bool = True,
        incremental: bool = True,
        paired: bool = True,
        shared_stats: bool = True,
        batched_pairs: bool = True,
        vectorized: bool = True,
        cache_size: int | None = None,
    ):
        self.algorithm = algorithm
        self.constraints = list(constraints)
        self.dirty_table = dirty_table
        self.cell = dirty_table.validate_cell(cell)
        self.incremental = incremental
        self.paired = paired
        self.shared_stats = bool(shared_stats) and bool(incremental)
        self.batched_pairs = bool(batched_pairs)
        self.vectorized = bool(vectorized)
        #: the explainer-lifetime statistics instance, moved between coalition
        #: overlays instead of rebuilt per instance (None off the shared path)
        self.stats_engine: SharedStatistics | None = (
            SharedStatistics(dirty_table) if self.shared_stats else None
        )
        if use_cache:
            self._cache = OracleCache(cache_size) if cache_size is not None else OracleCache()
        else:
            self._cache = None
        self._dirty_view: PerturbationView | None = None
        #: the oracle's single counter sink; the class-level MetricAttribute
        #: descriptors above read and write through it
        self.metrics = MetricsRegistry(ORACLE_METRICS)

        if target_value is None:
            reference_clean = algorithm.repair_table(self.constraints, dirty_table)
            self.repair_runs += 1
            target_value = reference_clean[cell]
        self.target_value = target_value

    # -- core query ---------------------------------------------------------------

    def _evaluate(self, constraints: Sequence[DenialConstraint], table: Table) -> int:
        clean = self.algorithm.repair_table(list(constraints), table)
        self.repair_runs += 1
        return 1 if clean[self.cell] == self.target_value else 0

    def query(self, constraints: Sequence[DenialConstraint], table: Table | None = None) -> int:
        """``Alg|t[A](constraints, table)`` — 1 iff the cell is repaired to the target.

        ``table`` defaults to the original dirty table (the constraint-Shapley
        case, where only the constraint subset varies).
        """
        self.calls += 1
        table = table if table is not None else self.dirty_table
        if self._cache is None:
            return self._evaluate(constraints, table)
        key = (constraint_set_names(constraints), table.fingerprint())
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        value = self._evaluate(constraints, table)
        self._cache.put(key, value)
        return value

    # -- paired query --------------------------------------------------------------

    def query_pair(
        self,
        constraints: Sequence[DenialConstraint],
        with_table: Table,
        without_table: Table,
    ) -> tuple[int, int]:
        """Evaluate a with/without instance pair, sharing one repair walk.

        Answers are exactly those of two :meth:`query` calls on the same
        tables (property-tested); only the work is shared — the pair of
        nearly identical repairs runs as one primed walk plus a fork at the
        differing cell when the instances are sibling views and the ``paired``
        and ``incremental`` flags allow it.  Pair results are additionally
        memoised under a fingerprint-pair key so a recurring coalition costs
        one cache lookup.
        """
        constraints = list(constraints)
        self.calls += 2
        if self._cache is None:
            return self._evaluate_pair(constraints, with_table, without_table)
        names = constraint_set_names(constraints)
        fingerprint_with = with_table.fingerprint()
        pair_key, differing = self._pair_memo_key(
            names, with_table, without_table, fingerprint_with
        )
        pair = self._cache.get(pair_key)
        if pair is not None:
            return pair
        return self._query_pair_uncached(
            constraints, names, with_table, without_table,
            fingerprint_with, pair_key, differing,
        )

    def _pair_memo_key(self, names, with_table: Table, without_table: Table,
                       fingerprint_with) -> tuple[tuple, "list[CellRef] | None"]:
        """The pair-memo key for one with/without pair, plus the differing cells.

        Shareable pairs (sibling views) are keyed by the with-instance
        fingerprint plus the sub-delta separating the without-instance, which
        pins the pair's content without fingerprinting the without-instance;
        everything else falls back to the two-fingerprint key.  Both
        :meth:`query_pair` and :meth:`query_pairs` derive keys here, so
        answers memoised through either entry point serve the other.
        """
        if self._pair_is_shareable(with_table, without_table):
            differing = with_table.differing_cells(without_table)
            pair_key = ("paird", names, fingerprint_with, tuple(
                (cell.row, cell.attribute,
                 without_table.value(cell.row, cell.attribute))
                for cell in differing
            ))
            try:
                hash(pair_key)
            except TypeError:  # unhashable without-side cell value
                pair_key = ("pair", names, fingerprint_with,
                            without_table.fingerprint())
            return pair_key, differing
        return ("pair", names, fingerprint_with,
                without_table.fingerprint()), None

    def _query_pair_uncached(
        self,
        constraints: list[DenialConstraint],
        names,
        with_table: Table,
        without_table: Table,
        fingerprint_with,
        pair_key,
        differing,
    ) -> tuple[int, int]:
        """Evaluate one pair whose pair-memo lookup already missed.

        Consults the individual-answer cache (one half of the pair may have
        been answered by a plain :meth:`query`), evaluates whatever is
        missing, and records the individual and pair memo entries.  For
        shareable pairs the without-instance's *individual* entry is skipped
        both ways: its fingerprint is never needed elsewhere on the paired
        path, and the (entry-point-independent) pair memo already pins the
        answer.
        """
        key_with = (names, fingerprint_with)
        value_with = self._cache.get(key_with)
        if differing is not None:
            if value_with is None:
                value_with, value_without = self._evaluate_pair(
                    constraints, with_table, without_table, differing
                )
            else:
                value_without = self._evaluate(constraints, without_table)
            self._cache.put(key_with, value_with)
            self._cache.put(pair_key, (value_with, value_without))
            return value_with, value_without

        key_without = (names, without_table.fingerprint())
        value_without = self._cache.get(key_without)
        if value_with is None and value_without is None:
            value_with, value_without = self._evaluate_pair(
                constraints, with_table, without_table
            )
        else:
            if value_with is None:
                value_with = self._evaluate(constraints, with_table)
            if value_without is None:
                value_without = self._evaluate(constraints, without_table)

        self._cache.put(key_with, value_with)
        self._cache.put(key_without, value_without)
        self._cache.put(pair_key, (value_with, value_without))
        return value_with, value_without

    def _pair_is_shareable(self, with_table: Table, without_table: Table) -> bool:
        """Whether a pair can run as one primed walk plus a fork."""
        return (
            self.paired
            and self.incremental
            and isinstance(with_table, PerturbationView)
            and isinstance(without_table, PerturbationView)
            and with_table.base is without_table.base
        )

    def _evaluate_pair(
        self,
        constraints: Sequence[DenialConstraint],
        with_table: Table,
        without_table: Table,
        differing: Sequence[CellRef] | None = None,
    ) -> tuple[int, int]:
        if self._pair_is_shareable(with_table, without_table):
            if differing is None:
                differing = with_table.differing_cells(without_table)
            walks_before = self.algorithm.shared_pair_walks
            clean_with, clean_without = self.algorithm.repair_pair(
                constraints, with_table, without_table, differing
            )
            self.repair_runs += 2
            self.pair_walks += self.algorithm.shared_pair_walks - walks_before
            cell, target = self.cell, self.target_value
            return (
                1 if clean_with[cell] == target else 0,
                1 if clean_without[cell] == target else 0,
            )
        return (
            self._evaluate(constraints, with_table),
            self._evaluate(constraints, without_table),
        )

    # -- the multi-pair batch scheduler ----------------------------------------------

    def query_pairs(
        self, pairs: Sequence[tuple[Table, Table]]
    ) -> list[tuple[int, int]]:
        """Drain a queue of with/without pairs in one scheduled pass.

        Answers (and their order) are exactly those of one
        :meth:`query_table_pair` call per pair — only the work is scheduled:

        1. **dedup** — every pair is checked against the pair-fingerprint
           memo up front, and within-batch repeats of one fingerprint pair
           are evaluated once;
        2. **group** — remaining pairs are ordered by their coalition delta
           and pairs sharing a coalition prefix (equal with-instance content)
           form one group;
        3. **evaluate** — each group runs through
           :meth:`RepairAlgorithm.repair_pair_group`: the walk-sharing
           algorithms prime one :class:`~repro.constraints.incremental.RepairWalk`
           on the shared with-instance and fork it per without-instance, and
           the shared statistics instance moves along the scheduled order so
           consecutive instances pay only their delta difference.

        With ``batched_pairs=False`` the queue degrades to a plain
        :meth:`query_pair` loop (today's path, bit-identically).
        """
        pairs = list(pairs)
        if not pairs:
            return []
        if not self.batched_pairs:
            return [self.query_pair(self.constraints, with_table, without_table)
                    for with_table, without_table in pairs]
        tracer = otrace.current()
        if tracer is None:
            return self._query_pairs_batched(pairs)
        with tracer.span("pair_eval", pairs=len(pairs)):
            return self._query_pairs_batched(pairs)

    def _query_pairs_batched(
        self, pairs: "list[tuple[Table, Table]]"
    ) -> list[tuple[int, int]]:
        """One scheduled dedup → group → evaluate pass (query_pairs' body)."""
        constraints = self.constraints
        self.calls += 2 * len(pairs)
        self.batches += 1
        self.pairs_batched += len(pairs)
        if len(pairs) > self.max_batch_size:
            self.max_batch_size = len(pairs)
        names = constraint_set_names(constraints)
        results: list[tuple[int, int] | None] = [None] * len(pairs)

        # 1. dedup against the pair memo and within the batch.  Shareable
        # pairs are keyed by the with-instance fingerprint plus the one-cell
        # sub-delta separating the without-instance (see _pair_memo_key),
        # which pins the pair's content without ever fingerprinting the
        # without-instance.
        pending: list[tuple] = []   # (index, with, without, fp_with, key, differing)
        first_for_key: dict = {}    # pair_key -> indices awaiting that answer
        for index, (with_table, without_table) in enumerate(pairs):
            fingerprint_with = with_table.fingerprint()
            pair_key, differing = self._pair_memo_key(
                names, with_table, without_table, fingerprint_with
            )
            if self._cache is not None:
                cached = self._cache.get(pair_key)
                if cached is not None:
                    results[index] = cached
                    self.pairs_deduped += 1
                    continue
                followers = first_for_key.get(pair_key)
                if followers is not None:
                    followers.append(index)
                    self.pairs_deduped += 1
                    continue
                first_for_key[pair_key] = []
            pending.append((index, with_table, without_table,
                            fingerprint_with, pair_key, differing))

        # 2. order by coalition delta so shared prefixes become adjacent (and
        # the shared statistics instance moves the shortest distances)
        def schedule_key(entry):
            with_table = entry[1]
            if isinstance(with_table, PerturbationView):
                return (0, tuple(sorted(with_table._delta.keys())), entry[0])
            return (1, (), entry[0])

        pending.sort(key=schedule_key)

        # 3. evaluate, one group per run of equal with-instance fingerprints
        group_capable = (
            type(self.algorithm).repair_pair_group
            is not RepairAlgorithm.repair_pair_group
        )
        # the multi-coalition walk: build every distinct coalition view's
        # equality keys as one stacked code-matrix pass up front; the walks
        # primed below pop their group structures from the detector's cache
        # (keyed by view fingerprint) instead of re-deriving them one by one
        if (self.vectorized and self.paired and self.incremental
                and getattr(self.algorithm, "vectorized", False)):
            seen_fingerprints = set()
            batch_views = []
            for entry in pending:
                if entry[5] is None or entry[3] in seen_fingerprints:
                    continue
                seen_fingerprints.add(entry[3])
                batch_views.append((entry[1], entry[3]))
            if batch_views:
                detector_for(self.dirty_table).precompute_walk_indexes(
                    batch_views, constraints
                )
        answered: dict = {}
        cache = self._cache
        cell, target = self.cell, self.target_value
        position = 0
        while position < len(pending):
            group = [pending[position]]
            position += 1
            while (position < len(pending)
                   and pending[position][3] == group[0][3]):
                group.append(pending[position])
                position += 1
            shareable = all(entry[5] is not None
                            and entry[1].base is group[0][1].base
                            for entry in group)
            if len(group) > 1 and group_capable and shareable:
                # one primed walk for the whole group
                walks_before = self.algorithm.shared_pair_walks
                clean_with, clean_withouts = self.algorithm.repair_pair_group(
                    constraints, group[0][1],
                    [entry[2] for entry in group],
                    [entry[5] for entry in group],
                )
                self.repair_runs += 1 + len(group)
                self.pair_walks += self.algorithm.shared_pair_walks - walks_before
                value_with = 1 if clean_with[cell] == target else 0
                answers = [(value_with, 1 if clean_without[cell] == target else 0)
                           for clean_without in clean_withouts]
                if cache is not None:
                    cache.put((names, group[0][3]), value_with)
            else:
                answers = None
            for offset, entry in enumerate(group):
                index, with_table, without_table, fp_with, pair_key, differing = entry
                if answers is not None:
                    value = answers[offset]
                    if cache is not None:
                        cache.put(pair_key, value)
                elif cache is not None:
                    # the single-pair path: consults the individual-answer
                    # cache and records the same entries query_pair would
                    value = self._query_pair_uncached(
                        constraints, names, with_table, without_table,
                        fp_with, pair_key, differing,
                    )
                elif differing is not None:
                    walks_before = self.algorithm.shared_pair_walks
                    clean_with, clean_without = self.algorithm.repair_pair(
                        constraints, with_table, without_table, differing
                    )
                    self.repair_runs += 2
                    self.pair_walks += self.algorithm.shared_pair_walks - walks_before
                    value = (1 if clean_with[cell] == target else 0,
                             1 if clean_without[cell] == target else 0)
                else:
                    value = (self._evaluate(constraints, with_table),
                             self._evaluate(constraints, without_table))
                results[index] = value
                if cache is not None:
                    answered[pair_key] = value

        # resolve within-batch repeats from their evaluated first occurrence
        for pair_key, followers in first_for_key.items():
            if followers:
                answer = answered[pair_key]
                for index in followers:
                    results[index] = answer
        return results  # type: ignore[return-value]

    # -- convenience entry points ----------------------------------------------------

    def _dirty_as_view(self) -> PerturbationView:
        """The dirty table wrapped in an (empty-delta) copy-on-write view.

        Repairing a view routes the algorithms through the incremental
        violation detector: the first detection pass returns the dirty table's
        cached base violations, and every subsequent pass re-checks only the
        rows the repair has touched so far.
        """
        if self._dirty_view is None:
            self._dirty_view = self.dirty_table.perturbed({})
            if self.stats_engine is not None:
                self._dirty_view._stats_engine = self.stats_engine
        return self._dirty_view

    def query_constraint_subset(self, subset: Iterable[DenialConstraint]) -> int:
        """Vary the constraint set, keep the dirty table fixed (Section 2.2)."""
        table = self._dirty_as_view() if self.incremental else self.dirty_table
        return self.query(list(subset), table)

    def query_table(self, table: Table) -> int:
        """Vary the table (cell coalitions), keep the full constraint set fixed."""
        return self.query(self.constraints, table)

    def query_table_pair(self, with_table: Table, without_table: Table) -> tuple[int, int]:
        """Paired variant of :meth:`query_table` — one shared repair walk.

        This is the cell-Shapley sampling loop's entry point: the two
        instances of one Monte-Carlo sample differ in exactly the target cell.
        """
        return self.query_pair(self.constraints, with_table, without_table)

    def query_cell_coalition(self, coalition: Iterable[CellRef]) -> int:
        """Evaluate the oracle on the table restricted to ``coalition``.

        Cells outside the coalition are nulled, per the paper's definition of
        the cell characteristic function (``S ⊆ T^d`` means all other cells
        are null).  On the incremental path the restriction is a sparse
        null-overlay view instead of a materialised copy.
        """
        if self.incremental:
            keep = set(coalition)
            restricted = self.dirty_table.perturbed(
                {cell: NULL for cell in self.dirty_table.cells() if cell not in keep},
                trusted=True,
            )
            if self.stats_engine is not None:
                restricted._stats_engine = self.stats_engine
        else:
            restricted = self.dirty_table.restricted_to_coalition(coalition)
        return self.query(self.constraints, restricted)

    # -- live base updates ------------------------------------------------------------

    def apply_base_update(self, delta, *, count: bool = True) -> int:
        """Apply one :class:`~repro.repair.updates.BaseUpdateDelta` to this
        oracle's own table and patch every derived structure in place.

        The single-stack convenience used by resident workers (and any
        oracle that owns its table): statistics are synced onto the
        pre-update base, the table is mutated (delta-maintaining a live
        detector), statistics are moved by the same delta, and
        :meth:`finish_base_update` rebases the cache and adopts the new
        target.  Returns the number of cells actually written.  ``count``
        gates the update counters — worker stacks patch silently so the
        parent's absorb of their per-round deltas never double-counts.
        """
        from repro.repair.updates import apply_table_update, collect_changes

        changes = collect_changes(
            self.dirty_table,
            {update.cell: update.new_value for update in delta.updates},
        )
        if not changes:
            self.finish_base_update({}, self.dirty_table.fingerprint(),
                                    delta.target_value, count=count)
            return 0
        if self.stats_engine is not None:
            self.stats_engine.begin_base_update()
        old_fingerprint = apply_table_update(self.dirty_table, changes)
        if self.stats_engine is not None:
            self.stats_engine.complete_base_update(changes)
        self.finish_base_update(
            {(cell.row, cell.attribute): new for cell, (_old, new) in changes.items()},
            old_fingerprint, delta.target_value, count=count,
        )
        return len(changes)

    def finish_base_update(self, changes, old_fingerprint, target_value,
                           *, count: bool = True) -> int:
        """Adopt a base update whose table mutation has already happened.

        ``changes`` maps ``(row, attribute)`` to the post-update value;
        ``old_fingerprint`` is the pre-update table fingerprint (the rebase
        anchor).  The lazily built empty-delta view is dropped (its
        fingerprint embeds the old base), the memo cache is **rebased** —
        overlay-keyed entries that pin every changed cell survive under
        remapped keys, everything else is dropped — and the reference target
        value is replaced.  A target change invalidates the whole cache
        (every memoised 0/1 answer compared against the old target) without
        resetting its hit/miss counters.  Returns the number of cache
        entries dropped.
        """
        self._dirty_view = None
        dropped = 0
        if self._cache is not None and changes:
            from repro.engine.storage import values_differ

            if values_differ(self.target_value, target_value):
                dropped = self._cache.drop_entries()
            else:
                dropped = self._cache.rebase(
                    changes, old_fingerprint, self.dirty_table.fingerprint()
                )
        self.target_value = target_value
        if count:
            self.base_updates_applied += 1
            self.cache_entries_invalidated += dropped
        return dropped

    # -- bookkeeping ------------------------------------------------------------------

    @property
    def cache(self) -> OracleCache | None:
        """The memoisation cache (``None`` when built with ``use_cache=False``).

        Exposed so the sharded scheduler can export a worker oracle's cache
        contents and :meth:`OracleCache.merge` them into the parent's.
        """
        return self._cache

    def absorb_statistics(self, stats: dict) -> None:
        """Add another oracle's counter snapshot into this one.

        The sharded scheduler runs one oracle per worker process and folds
        their counters back here so reports and benchmarks see one aggregate.
        Cache hit/miss/eviction counters are absorbed from the snapshot too
        (into this oracle's cache object): the snapshot is the authoritative
        per-report delta, whereas a worker's live cache object may span
        several reports — which is why the scheduler pairs this call with
        :meth:`OracleCache.merge_entries`, never the counter-carrying
        :meth:`OracleCache.merge`.
        """
        # the registry folds every declared absorbable metric by its kind
        # (sums add, high-water marks take the max); the two topology marks
        # (parallel_workers / parallel_shards) are declared absorbed=False
        # because the scheduler's merge maintains them itself
        self.metrics.absorb(stats)
        if self._cache is not None:
            self._cache.hits += stats.get("cache_hits", 0)
            self._cache.misses += stats.get("cache_misses", 0)
            self._cache.evictions += stats.get("cache_evictions", 0)
        if self.stats_engine is not None:
            self.stats_engine.leases += stats.get("stats_leases", 0)
            self.stats_engine.cells_moved += stats.get("stats_cells_moved", 0)
        encoding_stats = stats.get("encoding")
        if encoding_stats:
            # a worker oracle's encode time and check counts fold into the
            # parent table's encoding; dictionary sizes merge as per-column
            # high-water marks (union of columns, max per column)
            self.dirty_table.store.encoding().absorb_counters(encoding_stats)

    @property
    def cache_hits(self) -> int:
        return self._cache.hits if self._cache is not None else 0

    @property
    def cache_misses(self) -> int:
        return self._cache.misses if self._cache is not None else 0

    @property
    def cache_evictions(self) -> int:
        return self._cache.evictions if self._cache is not None else 0

    def reset_counters(self) -> None:
        self.metrics.reset()
        if self._cache is not None:
            self._cache.reset_counters()
        if self.stats_engine is not None:
            self.stats_engine.leases = 0
            self.stats_engine.cells_moved = 0
        encoding = self.dirty_table.store._encoding
        if encoding is not None:
            encoding.reset_counters()

    def statistics(self) -> dict[str, int]:
        """One flat counter snapshot — a view over the metrics registry.

        The registry emits its metrics in declaration order; the cache's
        hit/miss/eviction counters (owned by the cache object, not the
        registry) are spliced in after ``pair_walks``, preserving the
        historical key order every report and test expects.
        """
        metric_values = self.metrics.as_dict()
        stats = {name: metric_values.pop(name)
                 for name in ("oracle_calls", "repair_runs", "pair_walks")}
        stats["cache_hits"] = self.cache_hits
        stats["cache_misses"] = self.cache_misses
        stats["cache_evictions"] = self.cache_evictions
        stats.update(metric_values)
        if self.stats_engine is not None:
            stats.update(self.stats_engine.statistics())
        encoding = self.dirty_table.store._encoding
        if encoding is not None:
            stats["encoding"] = encoding.telemetry()
        return stats
