"""Greedy holistic repair.

A violation-hypergraph repairer in the spirit of "Holistic data cleaning:
putting violations into context" (Chu et al., reference [3] of the paper):

1. detect all violations of all constraints on the current table;
2. pick the cell that participates in the largest number of violations
   (the highest-degree vertex of the violation hypergraph);
3. re-assign that cell the candidate value that minimises the number of
   violations the cell would participate in, preferring values that co-occur
   with the rest of its tuple;
4. repeat until the table is clean or a step budget is exhausted.

The algorithm is deterministic: ties are broken by cell address and by the
candidate value's textual representation.  It serves both as a second
black-box repairer for the algorithm-agnosticism experiments (E9) and as a
baseline showing T-REx is not tied to Algorithm 1 or HoloClean.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.constraints.dc import DenialConstraint
from repro.constraints.incremental import (
    RepairWalk,
    find_all_violations_fast,
    repair_walk_for,
)
from repro.dataset.table import CellRef, Table
from repro.engine.storage import is_null
from repro.errors import RepairError
from repro.observability import trace as otrace
from repro.repair.base import RepairAlgorithm, _padded_differing_lists


class GreedyHolisticRepair(RepairAlgorithm):
    """Greedy minimum-change repair over the violation hypergraph.

    Parameters
    ----------
    max_changes:
        Upper bound on the number of cell re-assignments (guards against
        oscillation on unsatisfiable constraint sets).
    max_candidates:
        At most this many candidate values (by descending frequency) are
        scored per repaired cell.
    second_order:
        Maintain violations across the greedy steps with a
        :class:`~repro.constraints.incremental.RepairWalk` when repairing a
        :class:`~repro.dataset.table.PerturbationView`: each step retracts and
        re-checks only the cell the previous step wrote, and candidate trials
        re-check a single row instead of re-deriving the whole delta.
        ``False`` restores first-order per-step detection.  Results are
        identical either way.
    vectorized:
        Run the walk's builds over dictionary-encoded code arrays and score
        each cell's whole candidate pool in one batched pass
        (:meth:`~repro.constraints.incremental.RepairWalk.count_if_many` +
        batched co-occurrence scoring) instead of one ``count_if`` and one
        pair-table fetch per candidate.  Only effective with
        ``second_order=True`` on a view; results are bit-identical either
        way.
    """

    name = "greedy-holistic"

    def __init__(self, max_changes: int = 200, max_candidates: int = 20,
                 second_order: bool = True, vectorized: bool = True):
        if max_changes <= 0:
            raise RepairError(f"max_changes must be positive, got {max_changes}")
        if max_candidates <= 0:
            raise RepairError(f"max_candidates must be positive, got {max_candidates}")
        self.max_changes = max_changes
        self.max_candidates = max_candidates
        self.second_order = bool(second_order)
        self.vectorized = bool(vectorized)

    # -- candidate scoring ---------------------------------------------------------

    def _candidate_values(self, table: Table, cell: CellRef) -> list[Any]:
        """Candidate replacement values: frequent column values first."""
        return self._candidate_values_at(table, cell.row, cell.attribute)

    def _candidate_values_at(self, table: Table, row_id: int,
                             attribute: str) -> list[Any]:
        """:meth:`_candidate_values` addressed by ``(row, attribute)``."""
        stats = table.stats.marginal(attribute)
        ranked = sorted(stats.items(), key=lambda item: (-item[1], repr(item[0])))
        candidates = [value for value, _ in ranked[: self.max_candidates]]
        current = table.value(row_id, attribute)
        if not is_null(current) and current not in candidates:
            candidates.append(current)
        return candidates

    def _cooccurrence_score(self, table: Table, cell: CellRef, value: Any) -> float:
        """How well ``value`` agrees with the other cells of the same tuple."""
        score = 0.0
        for attribute in table.attributes:
            if attribute == cell.attribute:
                continue
            other_value = table.value(cell.row, attribute)
            if is_null(other_value):
                continue
            score += table.stats.cooccurrence.conditional_probability(
                cell.attribute, value, attribute, other_value
            )
        return score

    def _cooccurrence_scores(self, table: Table, cell: CellRef,
                             values: Sequence[Any]) -> list[float]:
        """Batched :meth:`_cooccurrence_score` over a whole candidate pool.

        One pair-table fetch (and one total) per sibling attribute serves
        every candidate; accumulation runs per attribute in the same order as
        the scalar method, so each candidate's score is the identical
        left-to-right float sum.
        """
        return self._cooccurrence_scores_at(table, cell.row, cell.attribute, values)

    def _cooccurrence_scores_at(self, table: Table, row_id: int, target: str,
                                values: Sequence[Any]) -> list[float]:
        """:meth:`_cooccurrence_scores` addressed by ``(row, attribute)``."""
        scores = [0.0] * len(values)
        if not values:
            return scores
        cooccurrence = table.stats.cooccurrence
        for attribute in table.attributes:
            if attribute == target:
                continue
            other_value = table.value(row_id, attribute)
            if is_null(other_value):
                continue
            probabilities = cooccurrence.conditional_probability_many(
                target, values, attribute, other_value
            )
            for i, probability in enumerate(probabilities):
                scores[i] += probability
        return scores

    def _total_violations_if(self, table: Table, constraints: Sequence[DenialConstraint],
                             cell: CellRef, value: Any) -> int:
        """Total number of violations in the table if ``cell`` were set to ``value``.

        The trial is a one-cell copy-on-write view, so the incremental
        detector only retracts and re-checks violations involving the one
        touched row instead of copying the table and rescanning it.
        """
        trial = table.perturbed({cell: value})
        return len(find_all_violations_fast(trial, constraints))

    # -- main loop --------------------------------------------------------------------

    def repair_table(self, constraints: Sequence[DenialConstraint], table: Table) -> Table:
        current = table.mutable_snapshot(name=f"{table.name}_repaired")
        constraints = list(constraints)
        if not constraints:
            return current
        walk = (repair_walk_for(current, constraints, vectorized=self.vectorized)
                if self.second_order else None)
        return self._repair_loop(constraints, current, walk)

    def repair_pair(
        self,
        constraints: Sequence[DenialConstraint],
        with_table: Table,
        without_table: Table,
        differing_cells: Sequence[CellRef] = (),
    ) -> tuple[Table, Table]:
        """Repair the with/without pair of an oracle query in one shared walk.

        Detection state is primed once on the first instance and forked at the
        differing cells for the second (see
        :meth:`~repro.constraints.incremental.RepairWalk.fork_onto`).  Outputs
        are identical to two independent :meth:`repair_table` calls.
        """
        clean_with, clean_withouts = self.repair_pair_group(
            constraints, with_table, [without_table], [differing_cells]
        )
        return clean_with, clean_withouts[0]

    def repair_pair_group(
        self,
        constraints: Sequence[DenialConstraint],
        with_table: Table,
        without_tables: Sequence[Table],
        differing_cells_lists: Sequence[Sequence[CellRef]] = (),
    ) -> tuple[Table, list[Table]]:
        """Repair one with-instance against several without-instances.

        The batch scheduler's grouped entry point: the shared with-instance
        is primed exactly once and the walk forked per without-instance
        (before any repair loop writes), exactly like :meth:`repair_pair`
        does for a single pair.
        """
        constraints = list(constraints)
        differing_cells_lists = _padded_differing_lists(
            differing_cells_lists, len(without_tables)
        )
        if not constraints:
            return (
                with_table.mutable_snapshot(name=f"{with_table.name}_repaired"),
                [without_table.mutable_snapshot(name=f"{without_table.name}_repaired")
                 for without_table in without_tables],
            )
        with_work = with_table.mutable_snapshot(name=f"{with_table.name}_repaired")
        walk_with = (repair_walk_for(with_work, constraints, vectorized=self.vectorized)
                     if self.second_order else None)
        if walk_with is None:
            return (
                self._repair_loop(constraints, with_work, None),
                [self.repair_table(constraints, without_table)
                 for without_table in without_tables],
            )
        walk_with.prime()
        self.shared_pair_walks += len(without_tables)
        forks = []
        for without_table, differing_cells in zip(without_tables, differing_cells_lists):
            without_work = without_table.mutable_snapshot(
                name=f"{without_table.name}_repaired"
            )
            forks.append((without_work, walk_with.fork_onto(without_work, differing_cells)))
        return (
            self._repair_loop(constraints, with_work, walk_with),
            [self._repair_loop(constraints, without_work, walk_without)
             for without_work, walk_without in forks],
        )

    def _repair_loop(self, constraints: list[DenialConstraint], current: Table,
                     walk: RepairWalk | None) -> Table:
        tracer = otrace.current()
        if tracer is None:
            return self._repair_passes(constraints, current, walk)
        with tracer.span("repair_pass", algorithm=self.name):
            return self._repair_passes(constraints, current, walk)

    def _repair_passes(self, constraints: list[DenialConstraint], current: Table,
                       walk: RepairWalk | None) -> Table:
        batched = walk is not None and self.vectorized
        for _ in range(self.max_changes):
            if batched:
                # degrees straight from the walk's class-partition counters,
                # as parallel (row, attr_code, count) arrays: no Violation or
                # CellRef objects are materialised on the hot path — only the
                # single chosen winner is ever built, at set_value time
                total_before, rows, attr_codes, counts, attrs = (
                    walk.cell_degrees_arrays())
                if not total_before:
                    break
                max_degree = counts.max()
                top = np.nonzero(counts == max_degree)[0]
                # the arrays ascend by (row, attr_code), and attr codes are
                # assigned in attribute-name order, so this *is* the object
                # path's (row, attribute) tie-break order
                top_cells = [(int(rows[i]), attrs[attr_codes[i]]) for i in top]
            else:
                if walk is not None:
                    violations = walk.all_violations()
                else:
                    violations = find_all_violations_fast(current, constraints)
                if not violations:
                    break
                total_before = len(violations)

                # Consider the cells with the highest violation degree (the
                # classic "most conflicting cell" heuristic); among those, pick
                # the single (cell, value) re-assignment that minimises the
                # table's total violation count, preferring values that
                # co-occur with the tuple.
                cells = violations.cells_involved()
                cells.sort(key=lambda c: (-violations.count_for_cell(c), c.row, c.attribute))
                max_degree = violations.count_for_cell(cells[0])
                top_cells = [c for c in cells if violations.count_for_cell(c) == max_degree]

            # best = (total, -cooccurrence, value repr, (row, attr), row, attr, value)
            best: tuple | None = None
            if batched:
                for row_id, attribute in top_cells:
                    current_value = current.value(row_id, attribute)
                    candidates = self._candidate_values_at(current, row_id, attribute)
                    pool = [value for value in candidates
                            if not value == current_value]
                    totals = walk.count_if_many_at(row_id, attribute, pool)
                    coocs = self._cooccurrence_scores_at(
                        current, row_id, attribute, pool)
                    for candidate, total, cooc in zip(pool, totals, coocs):
                        key = (
                            total,
                            -cooc,
                            repr(candidate),
                            (row_id, attribute),
                        )
                        if best is None or key < best[:4]:
                            best = (*key, row_id, attribute, candidate)
            else:
                for cell in top_cells:
                    current_value = current[cell]
                    candidates = self._candidate_values(current, cell)
                    for candidate in candidates:
                        if candidate == current_value:
                            continue
                        if walk is not None:
                            total = walk.count_if(cell, candidate)
                        else:
                            total = self._total_violations_if(current, constraints, cell, candidate)
                        key = (
                            total,
                            -self._cooccurrence_score(current, cell, candidate),
                            repr(candidate),
                            (cell.row, cell.attribute),
                        )
                        if best is None or key < best[:4]:
                            best = (*key, cell.row, cell.attribute, candidate)

            if best is None or best[0] >= total_before:
                # No single-cell change from the candidate pool reduces the
                # violation count: stop to guarantee termination.
                break
            _, _, _, _, chosen_row, chosen_attribute, chosen_value = best
            current.set_value(chosen_row, chosen_attribute, chosen_value)
        return current
