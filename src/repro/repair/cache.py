"""Memoisation of black-box repair queries.

Shapley evaluation queries the repair algorithm with many *repeated* inputs:
the exact constraint-Shapley formula evaluates every subset twice (once as
``S`` and once as ``S ∪ {C'}`` for another constraint), and permutation
sampling frequently revisits coalitions.  Caching oracle answers keyed on the
(constraint subset, table snapshot) pair removes that redundancy without
changing any result — the repairer is deterministic by contract.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

# the max-merged key sets come from the metric declarations, so the
# aggregate below can never disagree with the registry about a counter's
# merge rule
from repro.observability.metrics import (
    MAX_COUNTERS as _MAX_COUNTERS,
    MAX_GROUPS as _MAX_GROUPS,
)


class OracleCache:
    """A bounded LRU cache for binary oracle answers.

    The default bound (1 million entries) is far above anything the bundled
    experiments need; it exists so pathological workloads degrade gracefully
    instead of exhausting memory.
    """

    def __init__(self, max_entries: int = 1_000_000):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, int] = OrderedDict()
        #: per-key insertion sequence numbers (see :meth:`entries_since`);
        #: iteration order is ascending sequence — deletions never reorder a
        #: dict and re-inserted keys always receive a fresh, larger number
        self._sequence: dict[Hashable, int] = {}
        #: monotone insertion counter — never decremented, not even by
        #: :meth:`clear`, so high-water marks taken by a diff-shipping reader
        #: survive evictions and resets
        self._next_sequence = 0
        self.hits = 0
        self.misses = 0
        #: lifetime count of LRU evictions — a non-zero value on a bounded
        #: cache is the signal that million-sample runs are cycling the cache
        #: rather than growing it
        self.evictions = 0

    def get(self, key: Hashable) -> int | None:
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value: int) -> None:
        if key not in self._entries:
            self._sequence[key] = self._next_sequence
            self._next_sequence += 1
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            del self._sequence[evicted]
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def entries(self) -> list[tuple[Hashable, int]]:
        """All cached entries in LRU order (least recently used first).

        The order is what makes caches *mergeable*: replaying another cache's
        entries oldest-first into :meth:`put` reproduces its recency ranking
        inside the receiving cache, so a later eviction pass drops the same
        entries a single shared cache would have dropped.
        """
        return list(self._entries.items())

    def high_water_mark(self) -> int:
        """The insertion sequence a diff-shipping reader should remember.

        Entries inserted from now on satisfy ``sequence >= mark``; the mark is
        monotone for the cache's whole lifetime (evictions and :meth:`clear`
        never reuse sequence numbers), so a mark taken at any sync point stays
        a valid cut forever — the property the warm worker pool's per-worker
        cache diffs rest on.
        """
        return self._next_sequence

    def entries_since(self, mark: int) -> list[tuple[Hashable, int]]:
        """Entries inserted at or after ``mark``, in insertion order.

        The diff half of warm-pool cache shipping: a worker remembers
        :meth:`high_water_mark` at its last sync and ships only this slice
        home each round.  An entry evicted *and re-inserted* after the mark is
        included (its answer was recomputed, so it must travel again); an
        entry inserted before the mark never is, even if later refreshed by
        :meth:`get`/:meth:`put` — the receiving side already holds its answer
        and the oracle is deterministic.

        Cost is O(diff), not O(cache): ``_sequence`` iterates in ascending
        sequence order, so walking it backwards stops at the first entry
        older than the mark — a big resident cache shipping a small diff
        touches only the diff.
        """
        newer: list[tuple[Hashable, int]] = []
        for key in reversed(self._sequence):
            if self._sequence[key] < mark:
                break
            newer.append((key, self._entries[key]))
        newer.reverse()
        return newer

    def snapshot(self, max_entries: int | None = None) -> dict:
        """A picklable image of the cache's entries and insertion clock.

        The snapshot preserves each entry's insertion-sequence number and the
        cache's ``_next_sequence`` clock, so a cache rebuilt via
        :meth:`restore` hands out the same :meth:`high_water_mark` a
        never-crashed twin would — the property warm restarts need: a
        replacement worker seeded from the fleet's merged cache takes its
        first mark *above* every seeded entry and never ships them back.
        ``max_entries`` bounds the image to the newest entries (the ones a
        fresh worker is most likely to need); counters never travel — they
        describe the donor's workload, not the receiver's.
        """
        entries = [(key, self._entries[key], sequence)
                   for key, sequence in self._sequence.items()]
        if max_entries is not None and len(entries) > int(max_entries):
            entries = entries[-int(max_entries):]
        return {"entries": entries, "next_sequence": self._next_sequence}

    def restore(self, snapshot: dict) -> int:
        """Load a :meth:`snapshot` into this cache; returns entries restored.

        Entries keep their snapshot sequence numbers (a restored-then-diffed
        cache cuts the same diffs a never-crashed one would), this cache's
        bound governs (a larger snapshot keeps only its newest entries, and
        restoring into a partially full cache evicts oldest-first exactly
        like live inserts), and the insertion clock only ever moves forward:
        ``_next_sequence`` becomes the max of both sides, so high-water marks
        taken here before the restore stay valid cuts.  A key present on both
        sides is refreshed in place and keeps the larger of its two sequence
        numbers.
        """
        entries = list(snapshot["entries"])
        if len(entries) > self.max_entries:
            entries = entries[-self.max_entries:]
        for key, value, sequence in entries:
            if key in self._entries:
                self._entries[key] = value
                self._entries.move_to_end(key)
                self._sequence[key] = max(self._sequence[key], int(sequence))
            else:
                if len(self._entries) >= self.max_entries:
                    evicted, _ = self._entries.popitem(last=False)
                    del self._sequence[evicted]
                    self.evictions += 1
                self._entries[key] = value
                self._sequence[key] = int(sequence)
        # _sequence must iterate in ascending sequence order (entries_since
        # walks it backwards); interleaved donor/local numbers need a re-sort
        self._sequence = dict(sorted(self._sequence.items(), key=lambda item: item[1]))
        self._next_sequence = max(self._next_sequence, int(snapshot["next_sequence"]))
        return len(entries)

    def merge_entries(self, other: "OracleCache") -> "OracleCache":
        """Absorb another cache's *entries* (not its counters) into this one.

        Entries are replayed in ``other``'s LRU order, so they land *newer*
        than everything currently cached here while keeping their relative
        recency; a key present in both caches is refreshed (the oracle is
        deterministic, so both sides hold the same answer).  The bound of
        *this* cache governs: merging a larger cache into a smaller one
        evicts oldest-first exactly as if the entries had been inserted live
        (those evictions do count here).  The sharded scheduler uses this
        half of the merge — worker cache *counters* travel separately inside
        ``oracle.statistics()`` snapshots, which stay correct even when one
        long-lived worker cache reports several rounds of deltas.
        ``other`` is not modified.
        """
        for key, value in other.entries():
            self.put(key, value)
        return self

    def merge(self, other: "OracleCache") -> "OracleCache":
        """Absorb another cache's entries *and* counters into this one.

        Entry semantics are those of :meth:`merge_entries`; on top,
        ``other``'s hit/miss/eviction counters are added to this cache's, so
        the merged statistics describe the union of both workloads.
        ``other`` is not modified.
        """
        self.merge_entries(other)
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        return self

    def rebase(self, changes, old_base, new_base) -> int:
        """Re-key entries onto a mutated base table; returns entries dropped.

        A base-table update changes the base fingerprint every cached key is
        (directly or through an overlay) rooted at.  Entries whose overlay
        *pinned* every changed cell describe table contents that are
        unchanged by the update, so they stay valid — their keys are
        rewritten onto ``new_base``, dropping overlay items that no longer
        differ from the new base value (the overlay-normalisation rule the
        live fingerprints follow).  Every other entry — plain base-snapshot
        keys, overlays rooted elsewhere, overlays not covering a changed
        cell — is dropped; dropping is always sound here because the cache
        is pure memoisation of a deterministic oracle.

        ``changes`` maps ``(row, attribute)`` to the post-update value.
        Surviving entries keep their LRU rank and insertion-sequence
        numbers, so outstanding high-water marks stay valid cuts.
        """
        from repro.engine.storage import Fingerprint, values_differ

        def remap(fingerprint):
            data = getattr(fingerprint, "data", None)
            if not (isinstance(data, tuple) and len(data) == 3
                    and data[0] == "overlay" and data[1] == old_base):
                return None
            items = data[2]
            pinned = {(row, name) for row, name, _ in items}
            if any(cell not in pinned for cell in changes):
                return None
            kept = tuple(
                item for item in items
                if (item[0], item[1]) not in changes
                or values_differ(item[2], changes[(item[0], item[1])])
            )
            return Fingerprint(("overlay", new_base, kept))

        def rebase_key(key):
            if not isinstance(key, tuple):
                return None
            if len(key) == 4 and key[0] == "paird":
                # the without-side is content-addressed (cell, replacement)
                # triples — base-independent, so only the with-side remaps
                fp_with = remap(key[2])
                if fp_with is None:
                    return None
                return ("paird", key[1], fp_with, key[3])
            if len(key) == 4 and key[0] == "pair":
                fp_with, fp_without = remap(key[2]), remap(key[3])
                if fp_with is None or fp_without is None:
                    return None
                return ("pair", key[1], fp_with, fp_without)
            if len(key) == 2:
                fingerprint = remap(key[1])
                if fingerprint is None:
                    return None
                return (key[0], fingerprint)
            return None

        if not changes:
            return 0
        remapped: OrderedDict[Hashable, int] = OrderedDict()
        sequence: dict[Hashable, int] = {}
        dropped = 0
        for key, value in self._entries.items():
            new_key = rebase_key(key)
            if new_key is None:
                dropped += 1
                continue
            if new_key in remapped:
                # two old keys normalising to the same content — the oracle
                # is deterministic, keep one entry with the newer sequence
                sequence[new_key] = max(sequence[new_key], self._sequence[key])
                dropped += 1
                continue
            remapped[new_key] = value
            sequence[new_key] = self._sequence[key]
        self._entries = remapped
        # _sequence must iterate in ascending sequence order (entries_since
        # walks it backwards) — collision handling can disturb it
        self._sequence = dict(sorted(sequence.items(), key=lambda item: item[1]))
        return dropped

    def drop_entries(self) -> int:
        """Drop every entry, keep every counter; returns entries dropped.

        The base-update invalidation path when the reference target value
        changed: every memoised 0/1 answer compared against the old target,
        so no entry can survive — but the hit/miss/eviction counters
        describe work already done and must keep reconciling across the
        update (:meth:`clear` resets them, which would corrupt the ledger).
        """
        dropped = len(self._entries)
        self._entries.clear()
        self._sequence.clear()
        return dropped

    def clear(self) -> None:
        # _next_sequence is deliberately NOT reset: outstanding high-water
        # marks must keep partitioning correctly across a clear
        self._entries.clear()
        self._sequence.clear()
        self.reset_counters()

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _merge_counter(merged: dict, key, value, max_all: bool = False) -> None:
    """Merge one counter into ``merged`` (recursing into nested groups)."""
    if isinstance(value, dict):
        group = merged.setdefault(key, {})
        group_max = max_all or key in _MAX_GROUPS
        for sub_key, sub_value in value.items():
            _merge_counter(group, sub_key, sub_value, max_all=group_max)
    elif max_all or key in _MAX_COUNTERS:
        merged[key] = max(merged.get(key, 0), value)
    else:
        merged[key] = merged.get(key, 0) + value


def aggregate_oracle_statistics(stats_dicts) -> dict[str, int]:
    """Fold per-worker ``oracle.statistics()`` dicts into one aggregate.

    Counters are summed across workers except the high-water marks
    (``max_batch_size``, ``parallel_workers``), which take the maximum.
    Nested groups (the ``encoding`` telemetry) merge recursively, with
    ``dictionary_sizes`` leaves taking the per-column maximum.  Used by the
    sharded scheduler to report one statistics dict for a whole parallel run,
    and usable standalone to combine any oracle counter dicts.
    """
    merged: dict[str, int] = {}
    for stats in stats_dicts:
        for key, value in stats.items():
            _merge_counter(merged, key, value)
    return merged


def memoised_oracle_stats(oracle) -> dict[str, float]:
    """Summary statistics of an oracle's cache behaviour (for bench output)."""
    stats = dict(oracle.statistics())
    total = stats["cache_hits"] + stats["cache_misses"]
    stats["cache_hit_rate"] = stats["cache_hits"] / total if total else 0.0
    if stats["oracle_calls"]:
        stats["repair_runs_per_call"] = stats["repair_runs"] / stats["oracle_calls"]
    else:
        stats["repair_runs_per_call"] = 0.0
    pairs_batched = stats.get("pairs_batched", 0)
    if pairs_batched:
        # fraction of batched pairs answered without a repair (pair-memo hits
        # up front plus within-batch repeats) — the batch scheduler's dedup
        stats["pairs_dedup_rate"] = stats.get("pairs_deduped", 0) / pairs_batched
        stats["mean_batch_size"] = pairs_batched / stats["batches"]
    else:
        stats["pairs_dedup_rate"] = 0.0
        stats["mean_batch_size"] = 0.0
    return stats
