"""Memoisation of black-box repair queries.

Shapley evaluation queries the repair algorithm with many *repeated* inputs:
the exact constraint-Shapley formula evaluates every subset twice (once as
``S`` and once as ``S ∪ {C'}`` for another constraint), and permutation
sampling frequently revisits coalitions.  Caching oracle answers keyed on the
(constraint subset, table snapshot) pair removes that redundancy without
changing any result — the repairer is deterministic by contract.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable


class OracleCache:
    """A bounded LRU cache for binary oracle answers.

    The default bound (1 million entries) is far above anything the bundled
    experiments need; it exists so pathological workloads degrade gracefully
    instead of exhausting memory.
    """

    def __init__(self, max_entries: int = 1_000_000):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, int] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: lifetime count of LRU evictions — a non-zero value on a bounded
        #: cache is the signal that million-sample runs are cycling the cache
        #: rather than growing it
        self.evictions = 0

    def get(self, key: Hashable) -> int | None:
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value: int) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()
        self.reset_counters()

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def memoised_oracle_stats(oracle) -> dict[str, float]:
    """Summary statistics of an oracle's cache behaviour (for bench output)."""
    stats = dict(oracle.statistics())
    total = stats["cache_hits"] + stats["cache_misses"]
    stats["cache_hit_rate"] = stats["cache_hits"] / total if total else 0.0
    if stats["oracle_calls"]:
        stats["repair_runs_per_call"] = stats["repair_runs"] / stats["oracle_calls"]
    else:
        stats["repair_runs_per_call"] = 0.0
    pairs_batched = stats.get("pairs_batched", 0)
    if pairs_batched:
        # fraction of batched pairs answered without a repair (pair-memo hits
        # up front plus within-batch repeats) — the batch scheduler's dedup
        stats["pairs_dedup_rate"] = stats.get("pairs_deduped", 0) / pairs_batched
        stats["mean_batch_size"] = pairs_batched / stats["batches"]
    else:
        stats["pairs_dedup_rate"] = 0.0
        stats["mean_batch_size"] = 0.0
    return stats
