"""Featurization of (cell, candidate) pairs.

Each candidate value of each noisy cell is described by a small dense feature
vector; inference scores candidates by a weighted sum of these features.  The
features mirror the signal families of the original HoloClean:

``cooccurrence``
    Mean conditional probability of the candidate given the other attribute
    values of the tuple — the relational context signal.
``frequency``
    Marginal probability of the candidate in its column — a prior.
``violations``
    Fraction of constraints that the tuple would *violate* if the cell took
    the candidate value (negative evidence from the denial constraints).
``minimality``
    1.0 when the candidate equals the cell's current value — HoloClean's
    minimality prior that discourages gratuitous changes.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.constraints.dc import DenialConstraint
from repro.dataset.table import CellRef, Table
from repro.engine.storage import is_null
from repro.repair.holoclean.domain import CandidateDomain

#: Order of the feature dimensions produced by :class:`Featurizer`.
FEATURE_NAMES: tuple[str, ...] = ("cooccurrence", "frequency", "violations", "minimality")


class Featurizer:
    """Compute feature vectors for candidate repairs.

    The featurizer caches row dictionaries per table snapshot: the violations
    feature compares a trial row against every other row, and rebuilding the
    row dictionaries for each (cell, candidate) pair dominated the runtime of
    the HoloClean-style repairer on wider tables.  The co-occurrence and
    frequency features read ``table.stats`` — the shared revertible
    statistics instance when one travels with the perturbed view
    (:class:`~repro.engine.stats.SharedStatistics`), so per-instance count
    rebuilds disappear on the Shapley hot path.
    """

    def __init__(self, constraints: Sequence[DenialConstraint]):
        self.constraints = list(constraints)
        self._row_cache: dict[int, list[dict]] = {}

    def _rows_of(self, table: Table) -> list[dict]:
        key = id(table)
        if key not in self._row_cache:
            self._row_cache[key] = [table.row(i) for i in range(table.n_rows)]
        return self._row_cache[key]

    # -- individual features -----------------------------------------------------

    def _cooccurrence(self, table: Table, cell: CellRef, candidate: Any) -> float:
        probabilities = []
        for attribute in table.attributes:
            if attribute == cell.attribute:
                continue
            context_value = table.value(cell.row, attribute)
            if is_null(context_value):
                continue
            probabilities.append(
                table.stats.cooccurrence.conditional_probability(
                    cell.attribute, candidate, attribute, context_value
                )
            )
        return float(np.mean(probabilities)) if probabilities else 0.0

    def _frequency(self, table: Table, cell: CellRef, candidate: Any) -> float:
        return table.stats.marginal(cell.attribute).frequency(candidate)

    def _violations(self, table: Table, cell: CellRef, candidate: Any) -> float:
        """Fraction of constraints violated by the tuple if the cell takes ``candidate``.

        Only constraints mentioning the cell's attribute are checked, and only
        the row of the cell is re-examined against all other rows — a local
        (and therefore cheap) approximation of the global violation count.
        """
        relevant = [c for c in self.constraints if cell.attribute in c.attributes()]
        if not relevant:
            return 0.0
        rows = self._rows_of(table)
        trial_row = dict(rows[cell.row])
        trial_row[cell.attribute] = candidate
        violated = 0
        for constraint in relevant:
            found = False
            if constraint.is_single_tuple:
                found = constraint.is_violated_by(trial_row)
            else:
                # only rows agreeing with the trial row on the constraint's
                # equality attributes can possibly violate it
                equality_attributes = constraint.equality_attributes()
                for other_row_id, other_row in enumerate(rows):
                    if other_row_id == cell.row:
                        continue
                    if any(
                        other_row.get(attribute) != trial_row.get(attribute)
                        for attribute in equality_attributes
                    ):
                        continue
                    if constraint.is_violated_by(trial_row, other_row) or \
                       constraint.is_violated_by(other_row, trial_row):
                        found = True
                        break
            if found:
                violated += 1
        return violated / len(relevant)

    def _minimality(self, table: Table, cell: CellRef, candidate: Any) -> float:
        current = table[cell]
        return 1.0 if (not is_null(current) and candidate == current) else 0.0

    # -- public API -----------------------------------------------------------------

    def features(self, table: Table, cell: CellRef, candidate: Any) -> np.ndarray:
        """Feature vector (ordered as :data:`FEATURE_NAMES`) for one candidate."""
        return np.array(
            [
                self._cooccurrence(table, cell, candidate),
                self._frequency(table, cell, candidate),
                self._violations(table, cell, candidate),
                self._minimality(table, cell, candidate),
            ],
            dtype=float,
        )

    def featurize_domain(self, table: Table, domain: CandidateDomain) -> np.ndarray:
        """Feature matrix (candidates × features) for one cell's domain."""
        if not len(domain):
            return np.zeros((0, len(FEATURE_NAMES)), dtype=float)
        return np.vstack([self.features(table, domain.cell, candidate) for candidate in domain])

    def featurize_all(
        self, table: Table, domains: Mapping[CellRef, CandidateDomain]
    ) -> dict[CellRef, np.ndarray]:
        """Feature matrices for every noisy cell."""
        return {cell: self.featurize_domain(table, domain) for cell, domain in domains.items()}
