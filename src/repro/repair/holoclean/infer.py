"""Weight learning and inference.

HoloClean learns the relative importance of its signals by maximising the
pseudo-likelihood of the cells believed to be clean, then picks for every
noisy cell the candidate with the highest probability.  This module
implements that idea with a softmax model over the dense features of
:mod:`repro.repair.holoclean.featurize`:

* **training** — for a sample of clean cells we build the same candidate
  domains and feature matrices as for noisy cells; the observed value is the
  positive class and gradient ascent on the softmax log-likelihood fits one
  weight per feature (the ``violations`` feature naturally receives a
  negative weight);
* **inference** — each noisy cell is assigned
  ``argmax_candidate  w · features(cell, candidate)``, with deterministic
  tie-breaking, provided the winner beats the current value by a confidence
  margin.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.dataset.table import CellRef
from repro.repair.holoclean.domain import CandidateDomain
from repro.repair.holoclean.featurize import FEATURE_NAMES

#: Weights used when there is not enough clean evidence to train on.  The
#: signs encode the qualitative behaviour of HoloClean's signals: context and
#: frequency support a candidate, violations penalise it, minimality gives a
#: small preference to the current value.
DEFAULT_WEIGHTS = np.array([4.0, 1.0, -4.0, 0.5], dtype=float)


class PseudoLikelihoodInference:
    """Softmax weight learning + MAP assignment.

    Parameters
    ----------
    learning_rate, epochs:
        Gradient-ascent hyper-parameters for weight fitting.
    margin:
        A noisy cell is only re-assigned when the best candidate's score
        exceeds the current value's score by this margin; this plays the role
        of HoloClean's confidence threshold and keeps repairs minimal.
    """

    def __init__(self, learning_rate: float = 0.5, epochs: int = 30, margin: float = 1e-6):
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.margin = margin
        self.weights = DEFAULT_WEIGHTS.copy()
        self.trained = False

    # -- training ---------------------------------------------------------------------

    def fit(self, training_examples: list[tuple[np.ndarray, int]]) -> np.ndarray:
        """Fit feature weights on (feature-matrix, observed-index) examples.

        Each example is the candidate feature matrix of a clean cell together
        with the row index of the value actually observed in the table.
        Examples with fewer than two candidates carry no signal and are
        skipped.  Returns the fitted weight vector (also stored on ``self``).
        """
        useful = [(m, y) for m, y in training_examples if m.shape[0] >= 2]
        if not useful:
            self.weights = DEFAULT_WEIGHTS.copy()
            self.trained = False
            return self.weights

        weights = DEFAULT_WEIGHTS.copy()
        for _ in range(self.epochs):
            gradient = np.zeros_like(weights)
            for matrix, observed_index in useful:
                scores = matrix @ weights
                scores -= scores.max()  # numerical stability
                probabilities = np.exp(scores)
                probabilities /= probabilities.sum()
                expected = probabilities @ matrix
                gradient += matrix[observed_index] - expected
            weights += self.learning_rate * gradient / len(useful)
        self.weights = weights
        self.trained = True
        return weights

    # -- inference -----------------------------------------------------------------------

    def score(self, feature_matrix: np.ndarray) -> np.ndarray:
        """Raw scores ``w · features`` for each candidate of one cell."""
        if feature_matrix.size == 0:
            return np.zeros(0, dtype=float)
        return feature_matrix @ self.weights

    def posterior(self, feature_matrix: np.ndarray) -> np.ndarray:
        """Softmax probabilities over the candidates of one cell."""
        scores = self.score(feature_matrix)
        if scores.size == 0:
            return scores
        scores = scores - scores.max()
        exponentials = np.exp(scores)
        return exponentials / exponentials.sum()

    def choose(self, domain: CandidateDomain, feature_matrix: np.ndarray,
               current_value: Any) -> Any:
        """MAP candidate for one noisy cell (with minimal-change margin)."""
        if not len(domain):
            return current_value
        scores = self.score(feature_matrix)
        order = sorted(range(len(domain)), key=lambda i: (-scores[i], repr(domain.candidates[i])))
        best_index = order[0]
        best_value = domain.candidates[best_index]
        if best_value == current_value:
            return current_value
        if current_value in domain:
            current_index = domain.candidates.index(current_value)
            if scores[best_index] - scores[current_index] <= self.margin:
                return current_value
        return best_value

    def assignments(
        self,
        domains: Mapping[CellRef, CandidateDomain],
        feature_matrices: Mapping[CellRef, np.ndarray],
        current_values: Mapping[CellRef, Any],
    ) -> dict[CellRef, Any]:
        """MAP assignment for every noisy cell."""
        chosen: dict[CellRef, Any] = {}
        for cell, domain in domains.items():
            chosen[cell] = self.choose(
                domain, feature_matrices[cell], current_values.get(cell)
            )
        return chosen

    def describe_weights(self) -> dict[str, float]:
        """Feature-name → weight mapping (for reports and debugging)."""
        return {name: float(weight) for name, weight in zip(FEATURE_NAMES, self.weights)}
