"""HoloClean-style probabilistic repair (re-implementation).

The original T-REx demo delegates repairs to HoloClean (Rekatsinas et al.,
PVLDB 2017), a heavyweight system built on PostgreSQL and a factor-graph /
pseudo-likelihood learner.  T-REx only relies on HoloClean being a
deterministic black box ``Alg(C, T^d) → T^c`` that is sensitive to both the
constraint set and the cell values, so this subpackage re-implements the same
four-stage pipeline at laptop scale (see DESIGN.md, substitution S8):

1. **error detection** (:mod:`detect`) — cells involved in constraint
   violations, null cells and numeric outliers are flagged as noisy;
2. **domain generation** (:mod:`domain`) — candidate repair values per noisy
   cell are pruned using co-occurrence with the rest of the tuple;
3. **featurization** (:mod:`featurize`) — each (cell, candidate) pair gets
   co-occurrence, frequency, constraint-violation and minimality features;
4. **inference** (:mod:`infer`) — feature weights are fitted on the cells
   believed clean (pseudo-likelihood style logistic updates) and each noisy
   cell is assigned the highest-scoring candidate.

:class:`HoloCleanRepair` (:mod:`model`) wires the stages together behind the
standard :class:`~repro.repair.base.RepairAlgorithm` interface.
"""

from repro.repair.holoclean.detect import ErrorDetector, DetectionResult
from repro.repair.holoclean.domain import DomainGenerator, CandidateDomain
from repro.repair.holoclean.featurize import Featurizer, FEATURE_NAMES
from repro.repair.holoclean.infer import PseudoLikelihoodInference
from repro.repair.holoclean.model import HoloCleanRepair

__all__ = [
    "ErrorDetector",
    "DetectionResult",
    "DomainGenerator",
    "CandidateDomain",
    "Featurizer",
    "FEATURE_NAMES",
    "PseudoLikelihoodInference",
    "HoloCleanRepair",
]
