"""Candidate-domain generation for noisy cells.

For every noisy cell the repairer must choose among a small set of candidate
values.  Following HoloClean's domain-pruning recipe, the candidates for a
cell ``t[A]`` are:

* the cell's own current value (repairs should be minimal),
* values of ``A`` that strongly co-occur with the values of the *other*
  attributes of tuple ``t`` elsewhere in the table, and
* the globally most frequent values of ``A`` (a fallback for tuples whose
  context is itself dirty).

The domain size is capped so inference stays linear in the number of noisy
cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.dataset.table import CellRef, Table
from repro.engine.storage import is_null


@dataclass
class CandidateDomain:
    """The candidate values considered for one noisy cell."""

    cell: CellRef
    candidates: tuple[Any, ...]

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self):
        return iter(self.candidates)

    def __contains__(self, value: Any) -> bool:
        return value in self.candidates


class DomainGenerator:
    """Generate pruned candidate domains for noisy cells.

    All counts are read through ``table.stats`` — on the Shapley hot path
    that is the explainer's shared revertible statistics instance
    (:class:`~repro.engine.stats.SharedStatistics`), moved onto the perturbed
    instance by its sparse delta instead of rebuilt per repair.

    Parameters
    ----------
    max_domain_size:
        Maximum number of candidates per cell (the current value always
        counts toward the cap but is never pruned away).
    min_cooccurrence:
        Minimum conditional probability ``P[A = v | B = t[B]]`` for a value to
        be proposed through the co-occurrence channel.
    """

    def __init__(self, max_domain_size: int = 12, min_cooccurrence: float = 0.05):
        self.max_domain_size = max(2, max_domain_size)
        self.min_cooccurrence = min_cooccurrence

    def _cooccurrence_candidates(self, table: Table, cell: CellRef) -> list[tuple[float, Any]]:
        """Candidate values scored by co-occurrence with the rest of the tuple."""
        scored: dict[Any, float] = {}
        for attribute in table.attributes:
            if attribute == cell.attribute:
                continue
            context_value = table.value(cell.row, attribute)
            if is_null(context_value):
                continue
            marginal = table.stats.marginal(cell.attribute)
            for candidate in marginal.domain():
                probability = table.stats.cooccurrence.conditional_probability(
                    cell.attribute, candidate, attribute, context_value
                )
                if probability >= self.min_cooccurrence:
                    scored[candidate] = scored.get(candidate, 0.0) + probability
        return sorted(((score, value) for value, score in scored.items()),
                      key=lambda item: (-item[0], repr(item[1])))

    def _frequency_candidates(self, table: Table, cell: CellRef) -> list[Any]:
        marginal = table.stats.marginal(cell.attribute)
        ranked = sorted(marginal.items(), key=lambda item: (-item[1], repr(item[0])))
        return [value for value, _ in ranked]

    def domain_for(self, table: Table, cell: CellRef) -> CandidateDomain:
        """Build the candidate domain for one cell."""
        candidates: list[Any] = []
        current = table[cell]
        if not is_null(current):
            candidates.append(current)

        for _, value in self._cooccurrence_candidates(table, cell):
            if value not in candidates:
                candidates.append(value)
            if len(candidates) >= self.max_domain_size:
                break

        if len(candidates) < self.max_domain_size:
            for value in self._frequency_candidates(table, cell):
                if value not in candidates:
                    candidates.append(value)
                if len(candidates) >= self.max_domain_size:
                    break

        return CandidateDomain(cell=cell, candidates=tuple(candidates))

    def domains_for(self, table: Table, cells: Iterable[CellRef]) -> dict[CellRef, CandidateDomain]:
        """Candidate domains for every cell in ``cells``."""
        return {cell: self.domain_for(table, cell) for cell in cells}
