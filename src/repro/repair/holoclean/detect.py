"""Error detection stage of the HoloClean-style repairer.

Three detectors vote on which cells are *noisy* (potentially erroneous):

* **constraint detector** — every cell participating in a denial-constraint
  violation is noisy (the signal the original HoloClean calls "DC violations");
* **null detector** — empty cells are noisy and must be imputed;
* **outlier detector** — numeric cells more than ``z_threshold`` standard
  deviations from their column mean are noisy (a stand-in for the external
  detectors HoloClean can plug in).

The union of the flagged cells forms the noisy set; every other cell is
treated as clean evidence by the downstream learner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.constraints.dc import DenialConstraint
from repro.constraints.incremental import find_all_violations_auto
from repro.dataset.table import CellRef, Table
from repro.engine.storage import is_null


@dataclass
class DetectionResult:
    """Which cells each detector flagged, plus the combined noisy set."""

    constraint_cells: set[CellRef] = field(default_factory=set)
    null_cells: set[CellRef] = field(default_factory=set)
    outlier_cells: set[CellRef] = field(default_factory=set)

    @property
    def noisy_cells(self) -> set[CellRef]:
        return self.constraint_cells | self.null_cells | self.outlier_cells

    def is_noisy(self, cell: CellRef) -> bool:
        return cell in self.noisy_cells

    def clean_cells(self, table: Table) -> list[CellRef]:
        noisy = self.noisy_cells
        return [cell for cell in table.cells() if cell not in noisy]

    def summary(self) -> dict[str, int]:
        return {
            "constraint": len(self.constraint_cells),
            "null": len(self.null_cells),
            "outlier": len(self.outlier_cells),
            "total_noisy": len(self.noisy_cells),
        }


class ErrorDetector:
    """Combine the three detectors into one noisy-cell set.

    Parameters
    ----------
    use_nulls:
        Flag empty cells as noisy.
    use_outliers:
        Run the numeric z-score detector on numeric columns.
    z_threshold:
        Z-score above which a numeric value counts as an outlier.
    """

    def __init__(self, use_nulls: bool = True, use_outliers: bool = True, z_threshold: float = 3.0):
        self.use_nulls = use_nulls
        self.use_outliers = use_outliers
        self.z_threshold = z_threshold

    def _detect_constraint_cells(self, table: Table,
                                 constraints: Sequence[DenialConstraint]) -> set[CellRef]:
        # perturbation views are evaluated incrementally against their base
        violations = find_all_violations_auto(table, constraints)
        return set(violations.cells_involved())

    def _detect_null_cells(self, table: Table) -> set[CellRef]:
        return {cell for cell in table.cells() if is_null(table[cell])}

    def _detect_outlier_cells(self, table: Table) -> set[CellRef]:
        outliers: set[CellRef] = set()
        for attribute in table.schema.numeric_attributes():
            values = []
            rows = []
            for row in range(table.n_rows):
                value = table.value(row, attribute)
                if is_null(value):
                    continue
                try:
                    values.append(float(value))
                    rows.append(row)
                except (TypeError, ValueError):
                    # a non-numeric value in a numeric column is itself suspicious
                    outliers.add(CellRef(row, attribute))
            if len(values) < 3:
                continue
            array = np.asarray(values, dtype=float)
            std = array.std()
            if std == 0:
                continue
            z_scores = np.abs(array - array.mean()) / std
            for row, z_score in zip(rows, z_scores):
                if z_score > self.z_threshold:
                    outliers.add(CellRef(row, attribute))
        return outliers

    def detect(self, table: Table, constraints: Sequence[DenialConstraint]) -> DetectionResult:
        """Run all enabled detectors on ``table``."""
        result = DetectionResult()
        result.constraint_cells = self._detect_constraint_cells(table, constraints)
        if self.use_nulls:
            result.null_cells = self._detect_null_cells(table)
        if self.use_outliers:
            result.outlier_cells = self._detect_outlier_cells(table)
        return result
