"""The HoloClean-style repair algorithm.

Wires the four pipeline stages (detect → domain → featurize → infer) behind
the :class:`~repro.repair.base.RepairAlgorithm` interface so T-REx can treat
it as an opaque black box, exactly like the original demo treats HoloClean.

The algorithm is deterministic: weight fitting uses full-batch gradient
ascent from a fixed initialisation, candidate domains and tie-breaks are
ordered, and the (optional) second pass re-runs detection on the partially
repaired table rather than sampling.
"""

from __future__ import annotations

import logging
from typing import Sequence

from repro.constraints.dc import DenialConstraint
from repro.dataset.table import CellRef, Table
from repro.engine.storage import is_null
from repro.repair.base import RepairAlgorithm
from repro.repair.holoclean.detect import ErrorDetector
from repro.repair.holoclean.domain import DomainGenerator
from repro.repair.holoclean.featurize import Featurizer
from repro.repair.holoclean.infer import PseudoLikelihoodInference

logger = logging.getLogger(__name__)


class HoloCleanRepair(RepairAlgorithm):
    """Probabilistic, statistics-driven repair in the style of HoloClean.

    Parameters
    ----------
    max_domain_size:
        Candidate-domain cap per noisy cell.
    train_on_clean_cells:
        Number of clean cells sampled (deterministically, by address order)
        as weight-learning evidence.  ``0`` skips learning and uses the
        default feature weights.
    passes:
        Number of detect→repair passes (a second pass can fix violations that
        only become visible after the first round of repairs).
    use_outlier_detector:
        Whether numeric outlier detection participates in error detection.
    """

    name = "holoclean-lite"

    def __init__(
        self,
        max_domain_size: int = 12,
        train_on_clean_cells: int = 60,
        passes: int = 2,
        use_outlier_detector: bool = True,
    ):
        self.detector = ErrorDetector(use_outliers=use_outlier_detector)
        self.domain_generator = DomainGenerator(max_domain_size=max_domain_size)
        self.train_on_clean_cells = max(0, train_on_clean_cells)
        self.passes = max(1, passes)

    # -- training-data construction ---------------------------------------------------

    def _training_examples(self, table: Table, featurizer: Featurizer,
                           clean_cells: list[CellRef]):
        examples = []
        # deterministic, spread-out subsample of the clean cells
        if not clean_cells or self.train_on_clean_cells == 0:
            return examples
        step = max(1, len(clean_cells) // self.train_on_clean_cells)
        sampled = clean_cells[::step][: self.train_on_clean_cells]
        for cell in sampled:
            observed = table[cell]
            if is_null(observed):
                continue
            domain = self.domain_generator.domain_for(table, cell)
            if observed not in domain or len(domain) < 2:
                continue
            matrix = featurizer.featurize_domain(table, domain)
            observed_index = domain.candidates.index(observed)
            examples.append((matrix, observed_index))
        return examples

    # -- one pass -------------------------------------------------------------------------

    def _repair_pass(self, table: Table, constraints: Sequence[DenialConstraint]) -> tuple[Table, int]:
        detection = self.detector.detect(table, constraints)
        noisy_cells = sorted(detection.noisy_cells, key=lambda c: (c.row, c.attribute))
        if not noisy_cells:
            return table, 0

        featurizer = Featurizer(constraints)
        inference = PseudoLikelihoodInference()
        clean_cells = detection.clean_cells(table)
        inference.fit(self._training_examples(table, featurizer, clean_cells))

        domains = self.domain_generator.domains_for(table, noisy_cells)
        matrices = featurizer.featurize_all(table, domains)
        current_values = {cell: table[cell] for cell in noisy_cells}
        assignments = inference.assignments(domains, matrices, current_values)

        changes = {
            cell: value
            for cell, value in assignments.items()
            if value != current_values[cell] and not is_null(value)
        }
        if not changes:
            return table, 0
        return table.with_values(changes, name=table.name), len(changes)

    # -- RepairAlgorithm interface ----------------------------------------------------------

    #: process-wide one-shot flag for the pair-fallback warning below
    _pair_fallback_warned = False

    def repair_pair(
        self,
        constraints: Sequence[DenialConstraint],
        with_table: Table,
        without_table: Table,
        differing_cells: Sequence[CellRef] = (),
    ) -> tuple[Table, Table]:
        """Fall back to two independent repairs (and say so, once).

        The detect stage already runs on the incremental path and the
        domain/featurize stages read their counts from ``table.stats`` (the
        shared statistics instance when one travels with the views), but the
        pipeline's domain generation and weight fitting are not yet threaded
        through a shared :class:`~repro.constraints.incremental.RepairWalk`,
        so a with/without oracle pair costs two full pipeline runs.  A
        one-time warning makes the silent ROADMAP gap visible in explain runs.
        """
        if not HoloCleanRepair._pair_fallback_warned:
            HoloCleanRepair._pair_fallback_warned = True
            logger.warning(
                "HoloCleanRepair.repair_pair falls back to two independent "
                "pipeline runs per oracle pair (its domain/featurize stages "
                "are not walk-threaded yet); paired-oracle speedups do not "
                "apply to this black box."
            )
        return super().repair_pair(constraints, with_table, without_table,
                                   differing_cells)

    def repair_table(self, constraints: Sequence[DenialConstraint], table: Table) -> Table:
        # views stay views (with_values composes their delta), so detection in
        # every pass runs on the incremental path
        current = table.mutable_snapshot(name=f"{table.name}_repaired")
        constraints = list(constraints)
        if not constraints:
            return current
        for _ in range(self.passes):
            current, n_changes = self._repair_pass(current, constraints)
            if n_changes == 0:
                break
        return current
