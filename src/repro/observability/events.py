"""Structured event log for worker-health lifecycle incidents.

Counters tell you *how many* restarts a run absorbed; the event log tells
you *which worker*, *when*, and *why*.  Each record is one flat dict with
a ``kind``, a wall-clock ``ts`` (``time.perf_counter()``, the same
monotonic timeline the tracer stamps spans with, so events line up with
spans in a Chrome trace) and kind-specific fields.

The log is **always on** — health events are rare (a healthy run emits
one ``worker_spawn`` per pool worker and nothing else), so there is no
hot-path cost to guard.  Emission sites sit exactly next to the counter
bumps they describe (or derive from the same ``WorkerReport`` fields the
counters do), which is what makes event↔counter reconciliation exact by
construction; the chaos harness asserts it.

Kinds emitted by the pool/scheduler stack:

``worker_spawn``       a pool worker process started (index, generation, pid)
``worker_restart``     a worker was killed and respawned (reason, backoff)
``worker_abandoned``   restart cap reached; the slot is retired
``task_deadline_expired``  one task exceeded the pool timeout
``task_requeued``      a failed worker's task moved to a live sibling
``shard_requeued``     a failed worker's shards were reassigned
``shard_poisoned``     a shard hit the attempt cap and was quarantined
``warm_restart``       a resident worker rebuilt its state mid-stream
``snapshot_seeded``    a rebuilt resident was seeded from a cache snapshot
``deadline_expired``   the whole explain hit its deadline budget
"""

from __future__ import annotations

import json
import time


class EventLog:
    """An append-only list of structured lifecycle events.

    Cheap enough to always exist; query helpers (:meth:`count`,
    :meth:`filter`) are what the chaos tests reconcile counters against,
    and :meth:`to_jsonl`/:meth:`write` give the operator-facing JSON-lines
    form.
    """

    __slots__ = ("records",)

    def __init__(self):
        self.records: list[dict] = []

    def emit(self, kind: str, **fields) -> dict:
        record = {"kind": kind, "ts": time.perf_counter()}
        record.update(fields)
        self.records.append(record)
        return record

    def extend(self, records: "list[dict]") -> None:
        self.records.extend(records)

    # -- queries ----------------------------------------------------------------------

    def count(self, kind: str, **match) -> int:
        return len(self.filter(kind, **match))

    def filter(self, kind: "str | None" = None, **match) -> list[dict]:
        """Events of ``kind`` whose fields equal every ``match`` item."""
        out = []
        for record in self.records:
            if kind is not None and record["kind"] != kind:
                continue
            if all(record.get(key) == value for key, value in match.items()):
                out.append(record)
        return out

    def kinds(self) -> dict[str, int]:
        """Occurrence counts per kind, in first-seen order."""
        totals: dict[str, int] = {}
        for record in self.records:
            totals[record["kind"]] = totals.get(record["kind"], 0) + 1
        return totals

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -- export -----------------------------------------------------------------------

    def to_jsonl(self) -> str:
        return "".join(json.dumps(record, sort_keys=True) + "\n"
                       for record in self.records)

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    def clear(self) -> None:
        self.records.clear()
