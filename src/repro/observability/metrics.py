"""The typed metrics registry behind the oracle's statistics surface.

Every counter the explain stack reports — oracle calls, cache traffic,
pool health, speculative-sharding bookkeeping — is declared here once with
its *kind*, and the kind decides how values combine when per-worker
snapshots are folded into one aggregate:

* :data:`SUM` — additive workload counters (calls, repair runs, requeues);
* :data:`MAX` — high-water marks of one run (``max_batch_size``,
  ``parallel_workers``): the aggregate of several workers is the widest
  single observation, not a sum;
* :data:`TIMER` — additive wall-clock seconds (floats, e.g. the restart
  backoff total);
* :data:`HISTOGRAM` — power-of-two bucket counts merged bucket-wise.

``BinaryRepairOracle`` keeps one :class:`MetricsRegistry` as its single
counter sink; its public counter *attributes* (``oracle.calls``,
``oracle.workers_restarted``, …) are :class:`MetricAttribute` descriptors
proxying straight into the registry, so every existing read/write site —
including the scheduler's ``setattr`` counter folds — works unchanged.
``aggregate_oracle_statistics`` derives its max-merged key sets from the
declarations below instead of hard-coding them.

The registry observes the run; it never feeds it.  Estimates are
bit-identical whatever the registry records.
"""

from __future__ import annotations

from dataclasses import dataclass

#: metric kinds — see the module docstring for merge semantics
SUM = "sum"
MAX = "max"
TIMER = "timer"
HISTOGRAM = "histogram"

_KINDS = frozenset({SUM, MAX, TIMER, HISTOGRAM})


@dataclass(frozen=True)
class Metric:
    """One declared metric: its public name, kind and absorb behaviour.

    ``absorbed=False`` excludes a metric from
    :meth:`MetricsRegistry.absorb` — the two parallel-topology marks
    (``parallel_workers`` / ``parallel_shards``) are maintained by the
    scheduler's merge itself, never folded in from worker snapshots
    (a worker's own view of "how many workers" is meaningless).
    """

    name: str
    kind: str = SUM
    absorbed: bool = True


#: the oracle's counter declarations, in ``statistics()`` emission order
ORACLE_METRICS: tuple[Metric, ...] = (
    Metric("oracle_calls"),
    Metric("repair_runs"),
    Metric("pair_walks"),
    Metric("batches"),
    Metric("pairs_batched"),
    Metric("pairs_deduped"),
    Metric("max_batch_size", MAX),
    Metric("parallel_workers", MAX, absorbed=False),
    Metric("parallel_shards", absorbed=False),
    Metric("worker_rebuilds"),
    Metric("cache_entries_shipped"),
    Metric("shards_requeued"),
    Metric("workers_restarted"),
    Metric("warm_restarts"),
    Metric("cache_entries_seeded"),
    Metric("shards_poisoned"),
    Metric("deadline_expired"),
    Metric("restart_backoff_seconds", TIMER),
    Metric("chunks_speculated"),
    Metric("chunks_discarded"),
    Metric("base_updates_applied"),
    Metric("estimates_invalidated"),
    Metric("cache_entries_invalidated"),
)

#: counters that aggregate by maximum rather than by sum — derived from the
#: declarations so the registry and ``aggregate_oracle_statistics`` can
#: never disagree about a counter's merge rule
MAX_COUNTERS = frozenset(m.name for m in ORACLE_METRICS if m.kind == MAX)

#: nested counter groups whose *every* leaf aggregates by maximum — the
#: encoding telemetry's per-column dictionary sizes describe the largest
#: dictionary any worker held, not an additive count
MAX_GROUPS = frozenset({"dictionary_sizes"})


def _zero(kind: str):
    if kind == TIMER:
        return 0.0
    if kind == HISTOGRAM:
        return {}
    return 0


def histogram_bucket(value: float) -> int:
    """The power-of-two bucket upper bound holding ``value``.

    ``0`` maps to bucket 0; positive values to the smallest power of two
    at or above them (1, 2, 4, …) so observations of any scale land in a
    bounded number of buckets.
    """
    if value <= 0:
        return 0
    bucket = 1
    while bucket < value:
        bucket <<= 1
    return bucket


class MetricsRegistry:
    """The single sink for one component's typed metrics.

    Declaration order is preserved: :meth:`as_dict` emits metrics in the
    order they were declared, which is what keeps the oracle's
    ``statistics()`` dict stable across the registry refactor.
    """

    __slots__ = ("_kinds", "_values", "_absorbed")

    def __init__(self, metrics: "tuple[Metric, ...] | list[Metric]" = ()):
        self._kinds: dict[str, str] = {}
        self._values: dict[str, object] = {}
        self._absorbed: set[str] = set()
        for metric in metrics:
            self.declare(metric.name, metric.kind, absorbed=metric.absorbed)

    # -- declaration ------------------------------------------------------------------

    def declare(self, name: str, kind: str = SUM, absorbed: bool = True) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}; expected one of {sorted(_KINDS)}")
        if name in self._kinds:
            raise ValueError(f"metric {name!r} is already declared")
        self._kinds[name] = kind
        self._values[name] = _zero(kind)
        if absorbed:
            self._absorbed.add(name)

    def kind(self, name: str) -> str:
        return self._kinds[name]

    def __contains__(self, name: str) -> bool:
        return name in self._kinds

    def __len__(self) -> int:
        return len(self._kinds)

    # -- reads and writes -------------------------------------------------------------

    def get(self, name: str):
        return self._values[name]

    def set(self, name: str, value) -> None:
        """Overwrite one metric (the attribute-assignment path)."""
        if name not in self._kinds:
            raise KeyError(f"metric {name!r} is not declared")
        self._values[name] = value

    def add(self, name: str, delta=1) -> None:
        self._values[name] += delta

    def observe(self, name: str, value) -> None:
        """Record one observation according to the metric's kind.

        SUM/TIMER accumulate, MAX keeps the high-water mark, HISTOGRAM
        bumps the power-of-two bucket holding ``value``.
        """
        kind = self._kinds[name]
        if kind == MAX:
            if value > self._values[name]:
                self._values[name] = value
        elif kind == HISTOGRAM:
            bucket = histogram_bucket(value)
            histogram = self._values[name]
            histogram[bucket] = histogram.get(bucket, 0) + 1
        else:
            self._values[name] += value

    def merge_value(self, name: str, value) -> None:
        """Fold another registry's value for ``name`` into this one.

        SUM/TIMER add, MAX takes the maximum, HISTOGRAM sums per bucket —
        exactly the cross-worker aggregation rules of
        :func:`repro.repair.cache.aggregate_oracle_statistics`.
        """
        kind = self._kinds[name]
        if kind == MAX:
            if value > self._values[name]:
                self._values[name] = value
        elif kind == HISTOGRAM:
            histogram = self._values[name]
            for bucket, count in value.items():
                histogram[bucket] = histogram.get(bucket, 0) + count
        else:
            self._values[name] += value

    def absorb(self, stats: dict) -> None:
        """Fold a counter snapshot (another oracle's ``statistics()`` delta).

        Only declared, absorbable metrics present in ``stats`` are folded;
        everything else in the snapshot (cache counters, engine telemetry,
        unknown keys) is the caller's business.
        """
        for name in self._absorbed:
            if name in stats:
                self.merge_value(name, stats[name])

    # -- views ------------------------------------------------------------------------

    def as_dict(self) -> dict:
        """All metrics in declaration order (histograms are copied)."""
        return {
            name: (dict(value) if isinstance(value, dict) else value)
            for name, value in self._values.items()
        }

    def reset(self) -> None:
        for name, kind in self._kinds.items():
            self._values[name] = _zero(kind)


class NullMetricsRegistry:
    """A no-op registry for call sites whose telemetry is switched off.

    Mirrors the mutating half of :class:`MetricsRegistry` as no-ops and
    reads as empty, so optional instrumentation can hold one registry
    reference and never branch: ``registry.observe(...)`` costs one
    attribute lookup and a pass statement when disabled.
    """

    __slots__ = ()

    def declare(self, name, kind=SUM, absorbed=True) -> None:
        pass

    def __contains__(self, name) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def add(self, name, delta=1) -> None:
        pass

    def observe(self, name, value) -> None:
        pass

    def merge_value(self, name, value) -> None:
        pass

    def absorb(self, stats) -> None:
        pass

    def as_dict(self) -> dict:
        return {}

    def reset(self) -> None:
        pass


class MetricAttribute:
    """A class-level descriptor proxying one attribute into ``obj.metrics``.

    ``oracle.calls`` (attribute name) and ``"oracle_calls"`` (metric name)
    stay distinct, so public attribute spellings survive the registry
    refactor verbatim — including in-place ``+=`` and the scheduler's
    ``setattr`` counter folds.
    """

    __slots__ = ("metric",)

    def __init__(self, metric: str):
        self.metric = metric

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj.metrics.get(self.metric)

    def __set__(self, obj, value) -> None:
        obj.metrics.set(self.metric, value)
