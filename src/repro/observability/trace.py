"""Span-based tracing of the explain hot path.

One :class:`Tracer` per process records :class:`Span` records for the
nested phases of an explain run::

    explain_job → cell → shard → walk_prime / repair_pass / pair_eval

Tracing is **off by default** and zero-cost when off: every instrumented
call site reads :func:`current` (a module global plus a pid check) and
skips all span work on ``None`` — the same guard discipline as the
engine's ``vectorized`` flag.  Spans observe wall-clock only; they never
touch a random stream, so estimates are bit-identical with tracing on or
off (golden-tested).

Cross-process stitching
-----------------------

Shard spans executed inside resident workers must parent onto cell spans
the *parent* process owns, with no coordination channel.  The trick is the
same one the seeding layer uses: identity from coordinates.
:func:`coordinate_span_id` hashes ``(job_seed, kind, *coords)`` into a
64-bit id, so the worker derives its shard span's id — and its parent cell
span's id — from ``(job_seed, cell_position, chunk_index)`` alone, and the
parent synthesises cell spans under the *same* ids after the run.  Workers
ship their finished spans home inside :class:`~repro.parallel.job.WorkerReport`
(:meth:`Tracer.drain` → :meth:`Tracer.adopt`); a forked worker never
inherits the parent's tracer because :func:`current` rejects a tracer
whose pid is not this process's.

Timestamps are ``time.perf_counter()`` (CLOCK_MONOTONIC on Linux, shared
by forked children), so parent and worker spans land on one comparable
timeline.  :meth:`Tracer.write_chrome_trace` exports the Chrome
``traceEvents`` JSON format — load it in ``chrome://tracing`` or Perfetto;
the parent's spans render as tid 0 and each worker's as tid
``worker_index + 1``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager


def coordinate_span_id(*coordinates) -> int:
    """A deterministic 64-bit span id from seed/shard coordinates.

    Stable across processes and runs: any party knowing the coordinates
    derives the same id, which is what lets worker shard spans stitch onto
    parent cell spans without communication.
    """
    payload = repr(coordinates).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "big")


class Span:
    """One timed phase: name, tree links, timeline, provenance."""

    __slots__ = ("name", "span_id", "parent_id", "start", "duration", "worker", "meta")

    def __init__(self, name: str, span_id: int, parent_id: "int | None",
                 start: float, duration: float = 0.0,
                 worker: "int | None" = None, meta: "dict | None" = None):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.duration = duration
        #: worker index the span ran on; ``None`` = the parent process
        self.worker = worker
        self.meta = meta or {}

    @property
    def end(self) -> float:
        return self.start + self.duration

    def __getstate__(self):
        return (self.name, self.span_id, self.parent_id, self.start,
                self.duration, self.worker, self.meta)

    def __setstate__(self, state):
        (self.name, self.span_id, self.parent_id, self.start,
         self.duration, self.worker, self.meta) = state

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Span({self.name!r}, id={self.span_id:#x}, "
                f"dur={self.duration * 1e3:.3f}ms)")


class Tracer:
    """Collects spans for one process; implicit parenting via a span stack."""

    __slots__ = ("pid", "spans", "events", "_stack", "_next_local")

    def __init__(self):
        self.pid = os.getpid()
        #: finished spans, in finish order
        self.spans: list[Span] = []
        #: structured event-log records adopted from schedulers/pools, so a
        #: trace export carries the worker-health incidents of its run
        self.events: list[dict] = []
        self._stack: list[Span] = []
        self._next_local = 0

    # -- recording --------------------------------------------------------------------

    def start(self, name: str, span_id: "int | None" = None,
              parent_id: "int | None" = None, **meta) -> Span:
        """Open a span; without an explicit parent the innermost open span is it.

        Spans without a coordinate-derived ``span_id`` get a process-local
        one (pid-salted so ids from different processes cannot collide
        after adoption).
        """
        if span_id is None:
            self._next_local += 1
            span_id = coordinate_span_id("local", self.pid, self._next_local)
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        span = Span(name, span_id, parent_id, time.perf_counter(), meta=meta)
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> Span:
        """Close a span, stamping its duration and filing it as finished."""
        span.duration = time.perf_counter() - span.start
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - unbalanced finish
            self._stack.remove(span)
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, span_id: "int | None" = None,
             parent_id: "int | None" = None, **meta):
        opened = self.start(name, span_id=span_id, parent_id=parent_id, **meta)
        try:
            yield opened
        finally:
            self.finish(opened)

    def record(self, name: str, span_id: int, parent_id: "int | None",
               start: float, duration: float, worker: "int | None" = None,
               **meta) -> Span:
        """File an already-timed span (the parent's stitched cell spans)."""
        span = Span(name, span_id, parent_id, start, duration, worker, meta)
        self.spans.append(span)
        return span

    # -- shipping ---------------------------------------------------------------------

    def drain(self) -> list[Span]:
        """Hand over (and forget) the finished spans — the worker→parent hop."""
        spans, self.spans = self.spans, []
        return spans

    def adopt(self, spans: "list[Span]", worker: "int | None" = None) -> None:
        """File spans shipped from a worker, stamping their provenance."""
        if worker is not None:
            for span in spans:
                if span.worker is None:
                    span.worker = worker
        self.spans.extend(spans)

    # -- views ------------------------------------------------------------------------

    def summary(self) -> dict[str, dict]:
        """Per-name totals: ``{name: {count, total_seconds, max_seconds}}``."""
        totals: dict[str, dict] = {}
        for span in self.spans:
            entry = totals.setdefault(
                span.name, {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
            )
            entry["count"] += 1
            entry["total_seconds"] += span.duration
            if span.duration > entry["max_seconds"]:
                entry["max_seconds"] = span.duration
        for entry in totals.values():
            entry["total_seconds"] = round(entry["total_seconds"], 6)
            entry["max_seconds"] = round(entry["max_seconds"], 6)
        return totals

    def extent(self) -> float:
        """Wall-clock seconds from the earliest span start to the latest end."""
        if not self.spans:
            return 0.0
        return (max(span.end for span in self.spans)
                - min(span.start for span in self.spans))

    def chrome_events(self, events: "list[dict] | None" = None) -> list[dict]:
        """The spans as Chrome ``traceEvents`` (plus optional instant events).

        Complete ("X") events carry microsecond timestamps on the shared
        monotonic timeline; tid 0 is the parent process, tid ``n + 1``
        worker ``n``.  ``events`` (structured event-log records with a
        ``ts`` wall-clock field) are appended as instant ("i") events so
        worker-health incidents line up with the spans that felt them;
        records adopted into :attr:`events` are always included.
        """
        records = []
        for span in self.spans:
            args = dict(span.meta)
            args["span_id"] = f"{span.span_id:#x}"
            if span.parent_id is not None:
                args["parent_id"] = f"{span.parent_id:#x}"
            records.append({
                "name": span.name,
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": 1,
                "tid": 0 if span.worker is None else span.worker + 1,
                "args": args,
            })
        for event in list(self.events) + list(events or ()):
            fields = {key: value for key, value in event.items()
                      if key not in ("kind", "ts")}
            records.append({
                "name": event.get("kind", "event"),
                "ph": "i",
                "ts": round(event.get("ts", 0.0) * 1e6, 3),
                "pid": 1,
                "tid": 0,
                "s": "g",
                "args": fields,
            })
        return records

    def write_chrome_trace(self, path, events: "list[dict] | None" = None) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"traceEvents": self.chrome_events(events)}, handle)


#: the process-global tracer; ``None`` = tracing disabled (the default)
_tracer: "Tracer | None" = None


def current() -> "Tracer | None":
    """The active tracer of *this* process, or ``None`` when disabled.

    A forked worker inherits the parent's module global but must not record
    into the parent's object (those spans would be lost — they live in the
    child's copy): a tracer whose pid is not ours reads as disabled, and
    the worker entry points install their own when the job asks for
    tracing.  This is the one branch every instrumented call site pays
    when tracing is off.
    """
    tracer = _tracer
    if tracer is None or tracer.pid != os.getpid():
        return None
    return tracer


def enable() -> Tracer:
    """Install (and return) a fresh tracer for this process."""
    global _tracer
    _tracer = Tracer()
    return _tracer


def disable() -> "Tracer | None":
    """Stop tracing; returns the tracer that was active, spans intact."""
    global _tracer
    tracer, _tracer = _tracer, None
    return tracer


@contextmanager
def tracing():
    """Context-managed :func:`enable`/:func:`disable` (tests, benchmarks)."""
    tracer = enable()
    try:
        yield tracer
    finally:
        disable()
