"""Unified telemetry for the explain stack: metrics, spans, events.

Three complementary instruments, all read-only observers of the run (they
never feed values back, so bit-identity of estimates is preserved with
telemetry enabled or disabled — the golden-determinism grid pins that):

* :mod:`~repro.observability.metrics` — the :class:`MetricsRegistry` of
  typed counters/timers/histograms.  The oracle's ad-hoc statistics
  attributes are registry-backed (every counter keeps its public name and
  attribute semantics), and the merge rules that used to be hard-coded in
  ``aggregate_oracle_statistics`` are views over the registry's declared
  metric kinds.
* :mod:`~repro.observability.trace` — span-based tracing of the hot path
  (``explain_job → cell → shard → walk_prime → repair_pass → pair_eval``)
  with deterministic span ids derived from shard coordinates, so parent and
  resident-worker spans stitch into one tree without any cross-process
  coordination.  Exportable as Chrome-trace JSON (``--trace-out``).
  Disabled by default: every call site guards on
  :func:`~repro.observability.trace.current` returning ``None``.
* :mod:`~repro.observability.events` — an always-on structured event log
  (JSON lines) for the *rare* worker-health lifecycle events: spawn,
  restart, requeue, poison, deadline expiry, snapshot seeding.  The chaos
  harness asserts these reconcile exactly with the health counters.

See ``docs/OBSERVABILITY.md`` for the counter/span/event glossary and a
worked trace-reading example.
"""

from repro.observability.events import EventLog
from repro.observability.metrics import (
    HISTOGRAM,
    MAX,
    SUM,
    TIMER,
    Metric,
    MetricsRegistry,
    NullMetricsRegistry,
    ORACLE_METRICS,
)
from repro.observability.trace import Span, Tracer, coordinate_span_id

__all__ = [
    "EventLog",
    "HISTOGRAM",
    "MAX",
    "Metric",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "ORACLE_METRICS",
    "SUM",
    "Span",
    "TIMER",
    "Tracer",
    "coordinate_span_id",
]
