"""Counterfactual repair explanations.

Shapley values answer "how much did each constraint / cell contribute?".
The complementary question a user acts on — "what is the smallest change to
my input that flips this repair?" — is a *counterfactual* explanation.  This
module computes two kinds, both by querying the same black-box oracle T-REx
already uses:

* :func:`minimal_constraint_counterfactuals` — the minimal subsets of the
  constraint set whose removal stops the cell of interest from being repaired
  to its current value (for the running example: remove {C3, C1} or {C3, C2});
* :func:`minimal_cell_counterfactuals` — the minimal sets of *other* cells
  whose removal (nulling) stops the repair, i.e. the cells the repair truly
  depends on.

Both are exponential in the worst case and therefore bounded by a
``max_size`` parameter; within that bound the enumeration is exact and only
minimal sets are reported.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.dataset.table import CellRef
from repro.repair.base import BinaryRepairOracle


def _minimal_sets(candidates: Sequence, predicate, max_size: int) -> list[frozenset]:
    """All inclusion-minimal subsets of ``candidates`` (up to ``max_size``)
    for which ``predicate(subset)`` is true."""
    minimal: list[frozenset] = []
    for size in range(1, max_size + 1):
        for combo in combinations(candidates, size):
            candidate = frozenset(combo)
            if any(existing <= candidate for existing in minimal):
                continue
            if predicate(candidate):
                minimal.append(candidate)
    return minimal


def minimal_constraint_counterfactuals(
    oracle: BinaryRepairOracle, max_size: int | None = None
) -> list[frozenset[str]]:
    """Minimal constraint subsets whose *removal* undoes the repair.

    A subset ``R`` is a counterfactual when running the repair with the
    constraints ``C \\ R`` no longer repairs the cell of interest to its
    reference clean value.  Returns the constraint names, smallest sets first.
    """
    names = [constraint.name for constraint in oracle.constraints]
    by_name = {constraint.name: constraint for constraint in oracle.constraints}
    limit = max_size if max_size is not None else len(names)

    def repair_fails_without(removed: frozenset) -> bool:
        remaining = [by_name[name] for name in names if name not in removed]
        return oracle.query_constraint_subset(remaining) == 0

    if not repair_fails_without(frozenset(names)):
        # even with no constraints at all the cell still ends up at the target
        # value, so no constraint-removal counterfactual exists
        return []
    return _minimal_sets(names, repair_fails_without, limit)


def minimal_cell_counterfactuals(
    oracle: BinaryRepairOracle,
    candidate_cells: Iterable[CellRef] | None = None,
    max_size: int = 2,
) -> list[frozenset[CellRef]]:
    """Minimal sets of cells whose nulling undoes the repair.

    ``candidate_cells`` bounds the search space (defaults to every cell except
    the cell of interest); ``max_size`` bounds the counterfactual size, which
    keeps the number of black-box queries polynomial.
    """
    table = oracle.dirty_table
    if candidate_cells is None:
        candidates = [cell for cell in table.cells() if cell != oracle.cell]
    else:
        candidates = [cell for cell in candidate_cells if cell != oracle.cell]

    def repair_fails_without(removed: frozenset) -> bool:
        perturbed = table.with_cells_nulled(removed)
        return oracle.query_table(perturbed) == 0

    if repair_fails_without(frozenset()):
        # the repair does not even happen on the unperturbed table: nothing to undo
        return []
    return _minimal_sets(candidates, repair_fails_without, max_size)


def counterfactual_report(
    oracle: BinaryRepairOracle,
    constraint_sets: Sequence[frozenset[str]],
    cell_sets: Sequence[frozenset[CellRef]] = (),
) -> str:
    """Render counterfactual sets as a short textual report."""
    lines = [
        f"Counterfactuals for the repair of {oracle.cell} "
        f"(currently repaired to {oracle.target_value!r}):",
    ]
    if constraint_sets:
        lines.append("  Removing any of these constraint sets undoes the repair:")
        for subset in sorted(constraint_sets, key=lambda s: (len(s), sorted(s))):
            lines.append(f"    - {{{', '.join(sorted(subset))}}}")
    else:
        lines.append("  No constraint-removal counterfactual exists.")
    if cell_sets:
        lines.append("  Nulling any of these cell sets undoes the repair:")
        for subset in sorted(cell_sets, key=lambda s: (len(s), sorted(str(c) for c in s))):
            lines.append(f"    - {{{', '.join(sorted(str(c) for c in subset))}}}")
    return "\n".join(lines)
