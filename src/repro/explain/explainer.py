"""The T-REx explainer.

``TRExExplainer`` is the library's main entry point and mirrors the
architecture of Figure 4: it owns the black-box repair algorithm, the
constraint set and the dirty table, runs the repair, and — for a repaired
cell chosen by the user — computes the Shapley values of the constraints
(exactly) and of the table cells (by sampling), returning both as ranked
:class:`Explanation` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.config import DEFAULT_CELL_SAMPLES, TRexConfig
from repro.constraints.dc import DenialConstraint
from repro.dataset.table import CellRef, RepairDelta, Table
from repro.errors import ExplanationError, NotRepairedError
from repro.explain.ranking import Ranking
from repro.repair.base import BinaryRepairOracle, RepairAlgorithm, RepairResult
from repro.shapley.cells import CellShapleyExplainer, relevant_cells
from repro.shapley.constraints import ConstraintShapleyExplainer
from repro.shapley.game import ShapleyResult


@dataclass
class Explanation:
    """A ranked explanation of one repaired cell.

    Attributes
    ----------
    cell:
        The cell of interest ``t[A]``.
    old_value / new_value:
        The value before and after the repair.
    constraint_shapley / cell_shapley:
        Raw Shapley results (``None`` until the corresponding part is computed).
    constraint_ranking / cell_ranking:
        The same values as rankings (highest contribution first).
    oracle_statistics:
        Black-box query counters (repair runs, cache hits, ...).
    """

    cell: CellRef
    old_value: Any
    new_value: Any
    constraint_shapley: ShapleyResult | None = None
    cell_shapley: ShapleyResult | None = None
    oracle_statistics: dict = field(default_factory=dict)

    @property
    def constraint_ranking(self) -> Ranking | None:
        if self.constraint_shapley is None:
            return None
        return Ranking(self.constraint_shapley.values)

    @property
    def cell_ranking(self) -> Ranking | None:
        if self.cell_shapley is None:
            return None
        return Ranking(self.cell_shapley.values)

    def top_constraints(self, k: int = 3) -> list[str]:
        ranking = self.constraint_ranking
        return ranking.top(k) if ranking is not None else []

    def top_cells(self, k: int = 5) -> list[CellRef]:
        ranking = self.cell_ranking
        return ranking.top(k) if ranking is not None else []


class TRExExplainer:
    """Explain the repairs of a black-box algorithm through Shapley values.

    Parameters
    ----------
    algorithm:
        Any :class:`~repro.repair.base.RepairAlgorithm` — T-REx never looks
        inside it.
    constraints:
        The denial constraints handed to the algorithm.
    dirty_table:
        The dirty input table ``T^d``.
    config:
        Optional :class:`~repro.config.TRexConfig` carrying seeds and defaults.
    """

    def __init__(
        self,
        algorithm: RepairAlgorithm,
        constraints: Sequence[DenialConstraint],
        dirty_table: Table,
        config: TRexConfig | None = None,
    ):
        names = [constraint.name for constraint in constraints]
        if len(names) != len(set(names)):
            raise ExplanationError(f"constraint names must be unique, got {names}")
        self.algorithm = algorithm
        self.constraints = list(constraints)
        self.dirty_table = dirty_table
        self.config = config or TRexConfig()
        self._repair_result: RepairResult | None = None

    # -- step 1: repair (the "Repair" button of Figure 3b) -----------------------------

    def repair(self, force: bool = False) -> RepairResult:
        """Run the black-box repair once and cache the result."""
        if self._repair_result is None or force:
            self._repair_result = self.algorithm.repair(self.constraints, self.dirty_table)
        return self._repair_result

    @property
    def clean_table(self) -> Table:
        return self.repair().clean

    @property
    def delta(self) -> RepairDelta:
        return self.repair().delta

    def repaired_cells(self) -> list[CellRef]:
        """Cells whose value changed — the cells a user may ask to explain."""
        return self.repair().delta.cells()

    # -- step 2: explanations (the "Explain" button of Figure 3c) ------------------------

    def _oracle_for(self, cell: CellRef) -> BinaryRepairOracle:
        repair_result = self.repair()
        if cell not in repair_result.delta:
            raise NotRepairedError(cell)
        return BinaryRepairOracle(
            algorithm=self.algorithm,
            constraints=self.constraints,
            dirty_table=self.dirty_table,
            cell=cell,
            target_value=repair_result.clean[cell],
            use_cache=self.config.cache_oracle,
            vectorized=self.config.vectorized,
        )

    def explain_constraints(self, cell: CellRef, exact: bool = True,
                            n_permutations: int = 200) -> Explanation:
        """Shapley value of every constraint for the repair of ``cell``."""
        oracle = self._oracle_for(cell)
        explainer = ConstraintShapleyExplainer(oracle)
        if exact:
            result = explainer.explain()
        else:
            result = explainer.explain_sampled(
                n_permutations=n_permutations, rng=self.config.seed
            )
        return Explanation(
            cell=cell,
            old_value=self.dirty_table[cell],
            new_value=self.clean_table[cell],
            constraint_shapley=result,
            oracle_statistics=oracle.statistics(),
        )

    def explain_cells(
        self,
        cell: CellRef,
        n_samples: int | None = None,
        cells: Iterable[CellRef] | None = None,
        only_relevant: bool = True,
        exclude_cell_of_interest: bool = False,
    ) -> Explanation:
        """Sampled Shapley value of table cells for the repair of ``cell``.

        Parameters
        ----------
        n_samples:
            Permutation samples per explained cell (defaults to the config).
        cells:
            Explicit cells to explain; overrides ``only_relevant``.
        only_relevant:
            Restrict the explained cells to those whose attribute appears in a
            constraint or that share the tuple of the cell of interest.
        exclude_cell_of_interest:
            Drop the explained cell itself from the ranking.
        """
        oracle = self._oracle_for(cell)
        explainer = CellShapleyExplainer(
            oracle, policy=self.config.replacement_policy, rng=self.config.seed,
            n_jobs=self.config.n_jobs, warm_pool=self.config.warm_pool,
            retry_policy=self.config.retry_policy(),
            deadline_seconds=self.config.deadline_seconds,
            speculate=self.config.speculate,
        )
        if cells is None and only_relevant:
            cells = relevant_cells(self.dirty_table, self.constraints, cell)
        # one explanation = one explainer lifetime: close the warm worker
        # pool (if the n_jobs path spawned one) as soon as the sampling is done
        with explainer:
            result = explainer.explain(
                cells=cells,
                n_samples=n_samples or self.config.cell_samples,
                exclude_cell_of_interest=exclude_cell_of_interest,
            )
        return Explanation(
            cell=cell,
            old_value=self.dirty_table[cell],
            new_value=self.clean_table[cell],
            cell_shapley=result,
            oracle_statistics=oracle.statistics(),
        )

    def explain(self, cell: CellRef, n_samples: int | None = None,
                only_relevant: bool = True) -> Explanation:
        """Full explanation: constraint Shapley (exact) + cell Shapley (sampled)."""
        constraint_part = self.explain_constraints(cell)
        cell_part = self.explain_cells(cell, n_samples=n_samples, only_relevant=only_relevant)
        statistics = {
            "constraints": constraint_part.oracle_statistics,
            "cells": cell_part.oracle_statistics,
        }
        return Explanation(
            cell=cell,
            old_value=self.dirty_table[cell],
            new_value=self.clean_table[cell],
            constraint_shapley=constraint_part.constraint_shapley,
            cell_shapley=cell_part.cell_shapley,
            oracle_statistics=statistics,
        )

    def explain_counterfactuals(self, cell: CellRef, max_constraint_sets: int | None = None,
                                max_cell_set_size: int = 2,
                                candidate_cells: Iterable[CellRef] | None = None) -> dict:
        """Counterfactual explanations for the repair of ``cell``.

        Returns a dictionary with the minimal constraint-removal sets and the
        minimal cell-nulling sets that undo the repair (see
        :mod:`repro.explain.counterfactual`).  Complements the Shapley ranking
        with directly actionable "what to change" answers.
        """
        from repro.explain.counterfactual import (
            minimal_cell_counterfactuals,
            minimal_constraint_counterfactuals,
        )

        oracle = self._oracle_for(cell)
        constraint_sets = minimal_constraint_counterfactuals(oracle, max_size=max_constraint_sets)
        cell_sets = minimal_cell_counterfactuals(
            oracle, candidate_cells=candidate_cells, max_size=max_cell_set_size
        )
        return {
            "cell": cell,
            "constraint_sets": constraint_sets,
            "cell_sets": cell_sets,
            "oracle_statistics": oracle.statistics(),
        }

    # -- iteration support (Section 4) -----------------------------------------------------

    def with_constraints(self, constraints: Sequence[DenialConstraint]) -> "TRExExplainer":
        """A new explainer with a modified constraint set (table unchanged)."""
        return TRExExplainer(self.algorithm, constraints, self.dirty_table, self.config)

    def with_table(self, dirty_table: Table) -> "TRExExplainer":
        """A new explainer with a modified dirty table (constraints unchanged)."""
        return TRExExplainer(self.algorithm, self.constraints, dirty_table, self.config)

    def with_algorithm(self, algorithm: RepairAlgorithm) -> "TRExExplainer":
        """A new explainer with a different black-box repair algorithm."""
        return TRExExplainer(algorithm, self.constraints, self.dirty_table, self.config)
