"""JSON serialisation of explanations.

The original demo keeps explanations inside the web session; a library needs
to persist them — to archive an audit trail of why a repair was accepted, to
diff explanations across algorithm versions, or to feed a separate UI.  This
module converts :class:`~repro.explain.explainer.Explanation` objects (and
the Shapley results inside them) to and from plain JSON-compatible
dictionaries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.dataset.table import CellRef
from repro.errors import ExplanationError
from repro.explain.explainer import Explanation
from repro.shapley.game import ShapleyResult

#: Format tag written into every serialised explanation.
FORMAT_VERSION = 1


def _encode_key(key: Any) -> str:
    """Encode a player key (constraint name or CellRef) as a string."""
    if isinstance(key, CellRef):
        return f"cell:{key.row}:{key.attribute}"
    return f"name:{key}"


def _decode_key(encoded: str) -> Any:
    kind, _, rest = encoded.partition(":")
    if kind == "cell":
        row_text, _, attribute = rest.partition(":")
        return CellRef(int(row_text), attribute)
    if kind == "name":
        return rest
    raise ExplanationError(f"cannot decode explanation key {encoded!r}")


def shapley_result_to_dict(result: ShapleyResult) -> dict:
    return {
        "values": {_encode_key(k): v for k, v in result.values.items()},
        "standard_errors": {_encode_key(k): v for k, v in result.standard_errors.items()},
        "n_samples": result.n_samples,
        "n_evaluations": result.n_evaluations,
        "method": result.method,
    }


def shapley_result_from_dict(payload: dict) -> ShapleyResult:
    return ShapleyResult(
        values={_decode_key(k): float(v) for k, v in payload.get("values", {}).items()},
        standard_errors={
            _decode_key(k): float(v) for k, v in payload.get("standard_errors", {}).items()
        },
        n_samples=int(payload.get("n_samples", 0)),
        n_evaluations=int(payload.get("n_evaluations", 0)),
        method=str(payload.get("method", "unknown")),
    )


def explanation_to_dict(explanation: Explanation) -> dict:
    """Convert an explanation to a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "cell": {"row": explanation.cell.row, "attribute": explanation.cell.attribute},
        "old_value": explanation.old_value,
        "new_value": explanation.new_value,
        "constraint_shapley": (
            shapley_result_to_dict(explanation.constraint_shapley)
            if explanation.constraint_shapley is not None
            else None
        ),
        "cell_shapley": (
            shapley_result_to_dict(explanation.cell_shapley)
            if explanation.cell_shapley is not None
            else None
        ),
        "oracle_statistics": explanation.oracle_statistics,
    }


def explanation_from_dict(payload: dict) -> Explanation:
    """Rebuild an explanation from :func:`explanation_to_dict` output."""
    if payload.get("format_version") != FORMAT_VERSION:
        raise ExplanationError(
            f"unsupported explanation format version {payload.get('format_version')!r}"
        )
    cell_payload = payload["cell"]
    constraint_part = payload.get("constraint_shapley")
    cell_part = payload.get("cell_shapley")
    return Explanation(
        cell=CellRef(int(cell_payload["row"]), str(cell_payload["attribute"])),
        old_value=payload.get("old_value"),
        new_value=payload.get("new_value"),
        constraint_shapley=shapley_result_from_dict(constraint_part) if constraint_part else None,
        cell_shapley=shapley_result_from_dict(cell_part) if cell_part else None,
        oracle_statistics=dict(payload.get("oracle_statistics", {})),
    )


def save_explanation(explanation: Explanation, path: str | Path) -> Path:
    """Write an explanation to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(explanation_to_dict(explanation), handle, indent=2, default=str)
    return path


def load_explanation(path: str | Path) -> Explanation:
    """Read an explanation previously written by :func:`save_explanation`."""
    with Path(path).open(encoding="utf-8") as handle:
        return explanation_from_dict(json.load(handle))
