"""Ranking utilities.

T-REx presents constraints and cells "ranked from highest to lowest in terms
of their Shapley value".  This module holds the ranking plumbing shared by the
explainer and the reports, plus the rank-comparison measures (Kendall tau,
top-k overlap) used by the algorithm-agnosticism experiment (E9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

Item = Hashable


@dataclass(frozen=True)
class RankedItem:
    """One entry of a ranking: the item, its score and its 1-based rank."""

    item: Item
    score: float
    rank: int


class Ranking:
    """A ranking of items by decreasing score with deterministic tie-breaks."""

    def __init__(self, scores: Mapping[Item, float]):
        ordered = sorted(scores.items(), key=lambda pair: (-pair[1], repr(pair[0])))
        self._entries = tuple(
            RankedItem(item=item, score=float(score), rank=index + 1)
            for index, (item, score) in enumerate(ordered)
        )
        self._by_item = {entry.item: entry for entry in self._entries}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __getitem__(self, index: int) -> RankedItem:
        return self._entries[index]

    def items(self) -> list[Item]:
        return [entry.item for entry in self._entries]

    def scores(self) -> dict[Item, float]:
        return {entry.item: entry.score for entry in self._entries}

    def rank_of(self, item: Item) -> int | None:
        entry = self._by_item.get(item)
        return entry.rank if entry is not None else None

    def score_of(self, item: Item, default: float = 0.0) -> float:
        entry = self._by_item.get(item)
        return entry.score if entry is not None else default

    def top(self, k: int = 1) -> list[Item]:
        return [entry.item for entry in self._entries[:k]]

    def nonzero(self, tolerance: float = 1e-12) -> "Ranking":
        """The sub-ranking of items with |score| above ``tolerance``."""
        return Ranking({e.item: e.score for e in self._entries if abs(e.score) > tolerance})


def rank_items(scores: Mapping[Item, float]) -> Ranking:
    """Build a :class:`Ranking` from a score mapping."""
    return Ranking(scores)


def top_k(scores: Mapping[Item, float], k: int) -> list[Item]:
    """The ``k`` highest-scoring items."""
    return Ranking(scores).top(k)


def normalised_scores(scores: Mapping[Item, float]) -> dict[Item, float]:
    """Scores rescaled to [0, 1] by the maximum absolute score (for colouring)."""
    if not scores:
        return {}
    maximum = max(abs(value) for value in scores.values())
    if maximum == 0:
        return {item: 0.0 for item in scores}
    return {item: abs(value) / maximum for item, value in scores.items()}


def kendall_tau(ranking_a: Sequence[Item] | Ranking, ranking_b: Sequence[Item] | Ranking) -> float:
    """Kendall rank-correlation between two rankings of the same item set.

    Items missing from either ranking are ignored; returns 1.0 for identical
    orders, -1.0 for reversed orders and 0.0 when fewer than two common items
    exist.
    """
    items_a = ranking_a.items() if isinstance(ranking_a, Ranking) else list(ranking_a)
    items_b = ranking_b.items() if isinstance(ranking_b, Ranking) else list(ranking_b)
    common = [item for item in items_a if item in set(items_b)]
    if len(common) < 2:
        return 0.0
    position_b = {item: index for index, item in enumerate(items_b)}
    concordant = 0
    discordant = 0
    for i in range(len(common)):
        for j in range(i + 1, len(common)):
            first, second = common[i], common[j]
            if position_b[first] < position_b[second]:
                concordant += 1
            else:
                discordant += 1
    total = concordant + discordant
    return (concordant - discordant) / total if total else 0.0


def ranking_overlap(ranking_a: Sequence[Item] | Ranking, ranking_b: Sequence[Item] | Ranking,
                    k: int = 3) -> float:
    """Jaccard overlap of the top-``k`` items of two rankings (0.0–1.0)."""
    top_a = set((ranking_a.top(k) if isinstance(ranking_a, Ranking) else list(ranking_a)[:k]))
    top_b = set((ranking_b.top(k) if isinstance(ranking_b, Ranking) else list(ranking_b)[:k]))
    if not top_a and not top_b:
        return 1.0
    union = top_a | top_b
    return len(top_a & top_b) / len(union) if union else 1.0
