"""The T-REx explanation layer.

This is the user-facing part of the system (Figure 4 of the paper): given a
repair algorithm, a constraint set, a dirty table and a repaired cell of
interest, compute the Shapley values of the constraints and of the table
cells, rank them, render reports (the textual stand-in for the web GUI of
Figure 3) and support the iterative repair → explain → edit loop of the demo
scenario (Section 4).
"""

from repro.explain.explainer import TRExExplainer, Explanation
from repro.explain.ranking import (
    Ranking,
    rank_items,
    top_k,
    kendall_tau,
    ranking_overlap,
    normalised_scores,
)
from repro.explain.report import ExplanationReport, render_table_with_highlights
from repro.explain.session import RepairSession, SessionStep
from repro.explain.counterfactual import (
    minimal_constraint_counterfactuals,
    minimal_cell_counterfactuals,
    counterfactual_report,
)
from repro.explain.serialize import (
    explanation_to_dict,
    explanation_from_dict,
    save_explanation,
    load_explanation,
)

__all__ = [
    "TRExExplainer",
    "Explanation",
    "Ranking",
    "rank_items",
    "top_k",
    "kendall_tau",
    "ranking_overlap",
    "normalised_scores",
    "ExplanationReport",
    "render_table_with_highlights",
    "RepairSession",
    "SessionStep",
    "minimal_constraint_counterfactuals",
    "minimal_cell_counterfactuals",
    "counterfactual_report",
    "explanation_to_dict",
    "explanation_from_dict",
    "save_explanation",
    "load_explanation",
]
