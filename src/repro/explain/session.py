"""Interactive repair/explanation sessions.

Section 4 of the paper describes the demo loop: repair the table, explain a
cell of interest, act on the explanation (remove or change the highest-ranked
constraint, or fix influential cells), re-repair, and check whether the
repair of the cell improved.  :class:`RepairSession` scripts that loop —
every step is recorded so examples and benchmarks can replay and report it.

Sessions are additionally *live* under base-table updates:
:meth:`RepairSession.update` applies a write to the dirty table and — with
``config.incremental_updates``, the default — delta-maintains the whole
session state in place (violation detector, statistics engines, encodings,
oracle caches, resident worker stacks) and invalidates only the Shapley
estimates whose sampled coalitions overlapped the changed cells (see
:mod:`repro.explain.live`).  ``update()`` followed by ``explain()`` is
bit-identical to a fresh session built on the post-update table;
``incremental_updates=False`` forces exactly that rebuild as the reference
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.config import TRexConfig
from repro.constraints.dc import DenialConstraint
from repro.dataset.table import CellRef, Table
from repro.errors import ExplanationError
from repro.explain.explainer import Explanation, TRExExplainer
from repro.repair.base import RepairAlgorithm, RepairResult
from repro.repair.updates import BaseCellUpdate, BaseUpdateDelta, BaseUpdateLog, collect_changes


@dataclass
class SessionStep:
    """One recorded step of an interactive session."""

    action: str
    detail: str
    repaired_cells: int
    cell_of_interest_value: Any = None
    explanation: Explanation | None = None


@dataclass
class SessionState:
    """The evolving inputs of the session."""

    constraints: list[DenialConstraint]
    dirty_table: Table


class RepairSession:
    """Drive the iterative repair → explain → edit workflow.

    Parameters
    ----------
    algorithm:
        The black-box repair algorithm.
    constraints, dirty_table:
        The initial inputs (the session keeps its own evolving copies).
    expected_value:
        Optional ground-truth value of the cell of interest; when provided the
        session can report whether an iteration improved the repair.
    config:
        Seeds and sampling defaults.
    """

    def __init__(
        self,
        algorithm: RepairAlgorithm,
        constraints: Sequence[DenialConstraint],
        dirty_table: Table,
        cell_of_interest: CellRef | None = None,
        expected_value: Any = None,
        config: TRexConfig | None = None,
    ):
        self.algorithm = algorithm
        self.state = SessionState(constraints=list(constraints), dirty_table=dirty_table)
        self.cell_of_interest = cell_of_interest
        self.expected_value = expected_value
        self.config = config or TRexConfig()
        self.steps: list[SessionStep] = []
        self._explainer: TRExExplainer | None = None
        #: applied base-update deltas, in order (see :meth:`update`)
        self.update_log = BaseUpdateLog()
        #: persistent cell-Shapley state on the incremental-updates path
        #: (:class:`~repro.explain.live.LiveExplainState`); ``None`` until the
        #: first full explain
        self._live = None

    # -- plumbing -------------------------------------------------------------------

    def _drop_live(self) -> None:
        if self._live is not None:
            self._live.close()
            self._live = None

    def _fresh_explainer(self) -> TRExExplainer:
        self._drop_live()
        self._explainer = TRExExplainer(
            self.algorithm, self.state.constraints, self.state.dirty_table, self.config
        )
        return self._explainer

    @property
    def explainer(self) -> TRExExplainer:
        return self._explainer if self._explainer is not None else self._fresh_explainer()

    def _record(self, action: str, detail: str, repair: RepairResult,
                explanation: Explanation | None = None) -> SessionStep:
        value = None
        if self.cell_of_interest is not None:
            value = repair.clean[self.cell_of_interest]
        step = SessionStep(
            action=action,
            detail=detail,
            repaired_cells=len(repair.delta),
            cell_of_interest_value=value,
            explanation=explanation,
        )
        self.steps.append(step)
        return step

    # -- the user actions of the demo -----------------------------------------------------

    def run_repair(self) -> SessionStep:
        """Press the "Repair" button: run the algorithm on the current inputs."""
        explainer = self._fresh_explainer()
        repair = explainer.repair()
        return self._record("repair", f"{self.algorithm.name} repaired {len(repair.delta)} cells", repair)

    def choose_cell(self, cell: CellRef) -> None:
        """Mark a repaired cell as the cell of interest."""
        repair = self.explainer.repair()
        if cell not in repair.delta:
            raise ExplanationError(
                f"cell {cell} was not repaired; repaired cells: "
                f"{[str(c) for c in repair.delta.cells()]}"
            )
        self.cell_of_interest = cell

    def explain(self, n_samples: int | None = None, constraints_only: bool = False,
                n_jobs: int | None = None,
                warm_pool: bool | None = None) -> Explanation:
        """Press the "Explain" button for the current cell of interest.

        ``n_jobs`` switches the session's cell-Shapley sampling onto the
        sharded multi-process scheduler (see :mod:`repro.parallel`) from this
        step on; ``warm_pool`` picks between the resident-worker warm pool
        (the default) and the cold rebuild-per-round pool on that path.
        Both update the session config, so later explain steps keep the
        settings until they are changed again.
        """
        if self.cell_of_interest is None:
            raise ExplanationError("choose a cell of interest before asking for an explanation")
        if n_jobs is not None:
            self.config.n_jobs = n_jobs
        if warm_pool is not None:
            self.config.warm_pool = bool(warm_pool)
        explainer = self.explainer
        if constraints_only:
            explanation = explainer.explain_constraints(self.cell_of_interest)
        elif self.config.incremental_updates:
            explanation = self._explain_live(n_samples)
        else:
            explanation = explainer.explain(self.cell_of_interest, n_samples=n_samples)
        self._record(
            "explain",
            f"explained {self.cell_of_interest}",
            explainer.repair(),
            explanation=explanation,
        )
        return explanation

    def _explain_live(self, n_samples: int | None) -> Explanation:
        """The incremental-updates explain path: serve from the live state.

        The live state's first run replicates the fresh explainer's sampling
        stream exactly (same construction, same submission order, same RNG),
        so without any intervening :meth:`update` the explanation is
        bit-identical to :meth:`TRExExplainer.explain`; after updates, only
        the invalidated estimates are re-sampled (see
        :mod:`repro.explain.live`).
        """
        from repro.explain.live import LiveExplainState

        cell = self.cell_of_interest
        resolved = n_samples or self.config.cell_samples
        if self._live is not None and not self._live.matches(cell, resolved, self.config):
            self._drop_live()
        if self._live is None:
            self._live = LiveExplainState(self, cell, resolved)
        live = self._live
        # same composition as TRExExplainer.explain: exact constraint Shapley
        # (RNG-free, own throwaway oracle) plus the sampled cell Shapley
        constraint_part = self.explainer.explain_constraints(cell)
        cell_result = live.result()
        return Explanation(
            cell=cell,
            old_value=self.state.dirty_table[cell],
            new_value=self.explainer.clean_table[cell],
            constraint_shapley=constraint_part.constraint_shapley,
            cell_shapley=cell_result,
            oracle_statistics={
                "constraints": constraint_part.oracle_statistics,
                "cells": live.oracle.statistics(),
            },
        )

    # -- live base updates -----------------------------------------------------------

    def update(self, cell: CellRef, value: Any) -> SessionStep:
        """Apply one base-table write and keep the session state live.

        Unlike :meth:`edit_cell` — the demo's "act on the explanation" step,
        which deliberately rebuilds the explainer stack — ``update`` models
        the base table changing *under* an explanation session: with
        ``config.incremental_updates`` every derived structure is
        delta-maintained in place and only the Shapley estimates whose
        sampled coalitions overlapped the write are re-sampled on the next
        :meth:`explain`.  The post-update explanation is bit-identical to a
        fresh session built on the post-update table.
        """
        return self.update_many({cell: value})

    def update_many(self, values: Mapping[CellRef, Any]) -> SessionStep:
        """Apply several base-table writes as one update (see :meth:`update`)."""
        if not self.config.incremental_updates:
            return self._update_rebuild(values)
        from repro.explain.live import apply_session_update

        info = apply_session_update(self, values)
        self.update_log.append(info["delta"] or BaseUpdateDelta(updates=()))
        repair = self.explainer.repair()
        return self._record(
            "update",
            f"updated {info['cells_written']} cells, "
            f"invalidated {info['estimates_invalidated']} estimates",
            repair,
        )

    def _update_rebuild(self, values: Mapping[CellRef, Any]) -> SessionStep:
        """The ``incremental_updates=False`` reference path: swap in a fresh
        table copy and a fresh explainer stack, exactly like starting a new
        session on the post-update table."""
        changes = collect_changes(self.state.dirty_table, values)
        self.update_log.append(BaseUpdateDelta(updates=tuple(
            BaseCellUpdate(cell=cell, old_value=old, new_value=new)
            for cell, (old, new) in changes.items()
        )))
        self.state.dirty_table = self.state.dirty_table.with_values(dict(values))
        explainer = self._fresh_explainer()
        repair = explainer.repair()
        return self._record(
            "update", f"updated {len(changes)} cells (rebuild path)", repair
        )

    def close(self) -> None:
        """Release the live state's persistent worker pools (if any)."""
        self._drop_live()

    def __enter__(self) -> "RepairSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def remove_constraint(self, name: str) -> SessionStep:
        """Remove a constraint (typically the top-ranked one) and re-repair."""
        remaining = [c for c in self.state.constraints if c.name != name]
        if len(remaining) == len(self.state.constraints):
            raise ExplanationError(f"no constraint named {name!r} in the current set")
        self.state.constraints = remaining
        explainer = self._fresh_explainer()
        repair = explainer.repair()
        return self._record("remove-constraint", f"removed {name}", repair)

    def replace_constraint(self, name: str, replacement: DenialConstraint) -> SessionStep:
        """Swap one constraint for a corrected version and re-repair."""
        names = [c.name for c in self.state.constraints]
        if name not in names:
            raise ExplanationError(f"no constraint named {name!r} in the current set")
        self.state.constraints = [
            replacement if c.name == name else c for c in self.state.constraints
        ]
        explainer = self._fresh_explainer()
        repair = explainer.repair()
        return self._record("replace-constraint", f"replaced {name} with {replacement.name}", repair)

    def edit_cell(self, cell: CellRef, value: Any) -> SessionStep:
        """Change a value of the dirty table (acting on a cell explanation) and re-repair."""
        self.state.dirty_table = self.state.dirty_table.with_values({cell: value})
        explainer = self._fresh_explainer()
        repair = explainer.repair()
        return self._record("edit-cell", f"set {cell} to {value!r}", repair)

    # -- progress measurement ---------------------------------------------------------------

    def cell_of_interest_is_correct(self) -> bool | None:
        """Whether the latest repair gives the expected value (None if unknown)."""
        if self.cell_of_interest is None or self.expected_value is None or not self.steps:
            return None
        return self.steps[-1].cell_of_interest_value == self.expected_value

    def history(self) -> list[SessionStep]:
        return list(self.steps)

    def summary(self) -> str:
        lines = ["Repair session summary", "----------------------"]
        for index, step in enumerate(self.steps, start=1):
            value_text = ""
            if step.cell_of_interest_value is not None:
                value_text = f" | cell of interest = {step.cell_of_interest_value!r}"
            lines.append(
                f"{index:2d}. [{step.action}] {step.detail} "
                f"({step.repaired_cells} repaired cells){value_text}"
            )
        if self.expected_value is not None and self.cell_of_interest is not None:
            verdict = self.cell_of_interest_is_correct()
            lines.append(
                f"Final value of {self.cell_of_interest} correct: {verdict}"
            )
        return "\n".join(lines)
