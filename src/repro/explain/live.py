"""Live explanation state under base-table updates.

A :class:`~repro.explain.session.RepairSession` with
``config.incremental_updates`` (the default) keeps one
:class:`LiveExplainState` per explained cell of interest: a persistent
:class:`~repro.repair.base.BinaryRepairOracle` and
:class:`~repro.shapley.cells.CellShapleyExplainer` whose warm worker pool is
*not* torn down between explains, the per-cell Shapley estimates, and — the
piece that makes selective refresh possible — each estimate's **touched-cell
fingerprint**: the union over its Monte-Carlo samples of the base cells whose
original values the sampled coalitions exposed (recorded RNG-free by the
sampler's ``touched_sink`` hook, shipped per shard on the parallel path).

:func:`apply_session_update` is the update orchestrator.  It applies a
base-table write *in place* and delta-maintains every derived structure —
the incremental violation detector and its persistent indexes
(:func:`~repro.repair.updates.apply_table_update`), every live
:class:`~repro.engine.stats.SharedStatistics` engine (the session oracle's
and the scheduler's in-process resident stack's), the oracle caches (rebased
onto the new table fingerprint, entries pinned on changed cells dropped),
and the resident worker stacks (patched through one
:meth:`~repro.parallel.ShardedExplainScheduler.apply_base_update` round —
``worker_rebuilds`` stays flat).  It then invalidates exactly the estimates
whose fingerprints overlap the changed cells; the next ``explain()``
refreshes only those.

The equivalence contract — property-tested in ``tests/test_base_updates.py``
and pinned by the golden fixture — is that ``update()`` followed by
``explain()`` is bit-identical to a fresh session built on the post-update
table, across the whole engine-flag grid.  Three situations force full
(rather than selective) invalidation because a replacement draw or the
target itself changed, never silently skipped:

* the ``sample`` policy draws replacement values from column distributions,
  so *every* estimate's RNG stream depends on the updated columns;
* the ``mode`` policy's replacement values change when an updated column's
  most-common value changes;
* the reference repair of the cell of interest produced a different target
  value (the game itself changed).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.config import make_rng
from repro.dataset.table import CellRef
from repro.engine.storage import values_differ
from repro.observability import trace as otrace
from repro.repair.updates import (
    BaseCellUpdate,
    BaseUpdateDelta,
    apply_table_update,
    collect_changes,
)
from repro.shapley.cells import CellShapleyExplainer, relevant_cells
from repro.shapley.convergence import RunningMean
from repro.shapley.game import ShapleyResult
from repro.shapley.sampling import ReplacementPolicy, SampledShapleyEstimate


class LiveExplainState:
    """The session's persistent cell-Shapley state for one cell of interest.

    Built lazily on the first ``explain()`` and kept across base updates;
    dropped (pool closed) whenever the cell of interest, the sample count,
    the seed, the policy or the parallel knobs change — a fresh state then
    reproduces the fresh-session stream exactly.
    """

    def __init__(self, session, cell: CellRef, n_samples: int):
        config = session.config
        self.cell = cell
        self.n_samples = int(n_samples)
        self.n_jobs = config.n_jobs
        self.warm_pool = bool(config.warm_pool)
        self.policy = ReplacementPolicy.from_name(config.replacement_policy)
        self.seed = config.seed
        # the same oracle/explainer construction as
        # TRExExplainer.explain_cells, except the explainer outlives the call
        # so its warm pool and resident worker stacks survive updates
        self.oracle = session.explainer._oracle_for(cell)
        self.explainer = CellShapleyExplainer(
            self.oracle, policy=config.replacement_policy, rng=config.seed,
            n_jobs=config.n_jobs, warm_pool=config.warm_pool,
            retry_policy=config.retry_policy(),
            deadline_seconds=config.deadline_seconds,
            speculate=config.speculate,
        )
        #: the explained cells in fresh-session submission order (the
        #: relevance pre-filter is content-independent: it reads constraint
        #: attributes and the row of the cell of interest, never cell values,
        #: so a base update cannot change this list)
        self.cells: list[CellRef] = relevant_cells(
            session.state.dirty_table, session.state.constraints, cell
        )
        self._position = {c: index for index, c in enumerate(self.cells)}
        self.estimates: dict[CellRef, SampledShapleyEstimate] = {}
        #: per-estimate touched-cell fingerprints (see module docstring)
        self.provenance: dict[CellRef, frozenset] = {}
        self.pending: set[CellRef] = set(self.cells)
        self.completed = True

    # -- lifecycle --------------------------------------------------------------------

    def matches(self, cell: CellRef, n_samples: int, config) -> bool:
        """Whether this state can serve an explain under the given knobs."""
        return (
            cell == self.cell
            and int(n_samples) == self.n_samples
            and config.n_jobs == self.n_jobs
            and bool(config.warm_pool) == self.warm_pool
            and ReplacementPolicy.from_name(config.replacement_policy) is self.policy
            and config.seed == self.seed
        )

    def close(self) -> None:
        """Shut down the persistent explainer's warm worker pools."""
        self.explainer.close()

    # -- invalidation -----------------------------------------------------------------

    def invalidate(self, changed: "set[CellRef]", everything: bool = False) -> int:
        """Mark estimates stale after a base update; return how many existing
        estimates were dropped.

        Selective mode keeps every estimate whose touched-cell fingerprint is
        disjoint from ``changed`` — its samples never looked at the updated
        cells, so replaying them on the new table would reproduce it bit for
        bit.  ``everything`` is the full-invalidation escape hatch for the
        policy/target situations listed in the module docstring.
        """
        invalid: set[CellRef] = set()
        for cell in self.cells:
            if everything:
                invalid.add(cell)
                continue
            fingerprint = self.provenance.get(cell)
            if fingerprint is None or fingerprint & changed:
                invalid.add(cell)
        dropped = sum(1 for cell in invalid if cell in self.estimates)
        for cell in invalid:
            self.estimates.pop(cell, None)
            self.provenance.pop(cell, None)
        self.pending |= invalid
        return dropped

    # -- estimation -------------------------------------------------------------------

    def result(self) -> ShapleyResult:
        """Refresh every pending estimate and assemble the merged result."""
        if self.pending:
            if self.n_jobs is not None:
                self._refresh_parallel()
            else:
                self._refresh_sequential()
            self.pending.clear()
        values = {cell: self.estimates[cell].value for cell in self.cells}
        errors = {cell: self.estimates[cell].standard_error for cell in self.cells}
        total = sum(self.estimates[cell].n_samples for cell in self.cells)
        return ShapleyResult(
            values=values,
            standard_errors=errors,
            n_samples=total,
            n_evaluations=self.oracle.calls,
            method=f"cell-sampling-{self.policy.value}",
            completed=self.completed,
        )

    def _refresh_sequential(self) -> None:
        """Replay the fresh-session sequential stream, re-estimating only
        pending cells.

        The sequential path drives every cell's draws off one serially
        entangled RNG stream, so a partial refresh must *replay* that stream
        from the seed: cells are walked in submission order, and a retained
        cell burns exactly the draws the fresh run would have spent on it —
        one permutation per sample.  That burn is only exact for the
        RNG-free replacement policies (``null``/``mode``); the ``sample``
        policy invalidates everything (see :func:`apply_session_update`), so
        a sample-policy refresh is always a full from-seed re-run and never
        reaches the burn branch.
        """
        explainer = self.explainer
        sampler = explainer.sampler
        sampler.reseed(make_rng(self.seed))
        for cell in self.cells:
            if cell not in self.pending:
                # retained estimate: burn this cell's permutation draws so
                # the stream position matches the fresh run for later cells
                for _ in range(self.n_samples):
                    sampler.sample_permutation()
                continue
            tracker = RunningMean()
            touched: set[CellRef] = set()
            sampler.touched_sink = touched
            try:
                explainer._accumulate_cell(cell, self.n_samples, tracker)
            finally:
                sampler.touched_sink = None
            self.estimates[cell] = explainer._estimate_from(cell, tracker)
            self.provenance[cell] = frozenset(touched)
        self.completed = True

    def _refresh_parallel(self) -> None:
        """Refresh pending cells through the sharded scheduler.

        Shard draws depend only on the job seed and the shard's
        ``(cell_position, chunk_index)`` coordinates, never on which other
        cells run alongside — so re-running just the invalid cells *at their
        original plan positions* reproduces exactly the estimates a fresh
        full run would compute for them.
        """
        cells = [cell for cell in self.cells if cell in self.pending]
        positions = [self._position[cell] for cell in cells]
        scheduler = self.explainer._scheduler(self.n_jobs)
        outcome = scheduler.run(
            cells, self.n_samples, absorb_into=self.oracle, positions=positions
        )
        for cell in cells:
            self.estimates[cell] = outcome.estimates[cell]
            self.provenance[cell] = frozenset(outcome.touched.get(cell, ()))
        self.completed = outcome.completed


def apply_session_update(session, values: Mapping[CellRef, Any]) -> dict:
    """Apply base-table writes to a live session, delta-maintaining everything.

    The update orchestration, in dependency order:

    1. normalise ``values`` into actual changes (no-op writes dropped);
    2. put every live :class:`~repro.engine.stats.SharedStatistics` engine —
       the session oracle's and each scheduler's in-process resident
       stack's — into its update window (``begin_base_update``);
    3. mutate the shared table (:func:`~repro.repair.updates.apply_table_update`
       delta-maintains the cached incremental violation detector and bumps
       the table version, invalidating fingerprints, null masks and lazily
       derived state);
    4. move each statistics engine by the same delta (``complete_base_update``);
    5. re-run the reference repair on the post-update table — the repaired
       value of the cell of interest is the game's target and may change;
    6. rebase the session oracle's cache onto the new table fingerprint
       (entries pinned on changed cells drop; ``base_updates_applied`` and
       ``cache_entries_invalidated`` count on this oracle);
    7. patch every scheduler: local resident stack, seed cache, and one
       resident-worker patch round (no stack rebuilds);
    8. drop the sampler's policy-precomputed replacement overlay and
       selectively invalidate estimates via their touched-cell fingerprints
       (full invalidation for the ``sample`` policy, a changed column mode
       under ``mode``, or a changed target).

    Returns a summary dict (``delta``, ``cells_written``,
    ``estimates_invalidated``, ``cache_entries_invalidated``,
    ``workers_patched``, ``target_changed``).
    """
    table = session.state.dirty_table
    changes = collect_changes(table, values)
    info = {
        "delta": None,
        "cells_written": len(changes),
        "estimates_invalidated": 0,
        "cache_entries_invalidated": 0,
        "workers_patched": 0,
        "target_changed": False,
    }
    if not changes:
        return info
    live = session._live
    tracer = otrace.current()
    span = tracer.start("base_update", cells=len(changes)) if tracer is not None else None
    try:
        engines = []
        schedulers = []
        if live is not None:
            if live.oracle.stats_engine is not None:
                engines.append(live.oracle.stats_engine)
            for scheduler in live.explainer._schedulers.values():
                schedulers.append(scheduler)
                local = scheduler.local_resident_oracle
                if local is not None and local.stats_engine is not None:
                    engines.append(local.stats_engine)
        updated_attributes = {cell.attribute for cell in changes}
        modes_before = None
        if live is not None and live.policy is ReplacementPolicy.MODE:
            modes_before = {
                attribute: table.stats.marginal(attribute).most_common()
                for attribute in updated_attributes
            }
        for engine in engines:
            engine.begin_base_update()
        old_fingerprint = apply_table_update(table, changes)
        for engine in engines:
            engine.complete_base_update(changes)
        # the reference repair — and with it the target value of the game —
        # must come from the post-update table
        repair = session.explainer.repair(force=True)
        updates = tuple(
            BaseCellUpdate(cell=cell, old_value=old, new_value=new)
            for cell, (old, new) in changes.items()
        )
        if live is not None and live.cell not in repair.delta:
            # the update un-repaired the explained cell: a fresh session on
            # this table could not explain it either, so the live state has
            # nothing left to maintain
            live.close()
            session._live = None
            live = None
        if live is None:
            info["delta"] = BaseUpdateDelta(updates=updates)
            return info
        new_target = repair.clean[live.cell]
        target_changed = values_differ(live.oracle.target_value, new_target)
        info["target_changed"] = target_changed
        delta = BaseUpdateDelta(updates=updates, target_value=new_target)
        info["delta"] = delta
        new_values = {
            (cell.row, cell.attribute): new for cell, (_old, new) in changes.items()
        }
        info["cache_entries_invalidated"] = live.oracle.finish_base_update(
            new_values, old_fingerprint, new_target, count=True
        )
        for scheduler in schedulers:
            patched = scheduler.apply_base_update(
                delta, new_values, old_fingerprint, target_changed=target_changed
            )
            info["workers_patched"] += patched.get("workers_patched", 0)
        live.explainer.sampler.invalidate_overlay()
        everything = target_changed or live.policy is ReplacementPolicy.SAMPLE
        if not everything and modes_before is not None:
            everything = any(
                values_differ(
                    modes_before[attribute],
                    table.stats.marginal(attribute).most_common(),
                )
                for attribute in updated_attributes
            )
        invalidated = live.invalidate(set(changes), everything=everything)
        live.oracle.estimates_invalidated += invalidated
        info["estimates_invalidated"] = invalidated
        if span is not None:
            span.meta.update(
                estimates_invalidated=invalidated,
                target_changed=bool(target_changed),
            )
        return info
    finally:
        if span is not None:
            tracer.finish(span)
