"""Textual explanation reports.

The original system presents its results in a web GUI (Figure 3): the repair
screen highlights repaired cells, the explanation screen colours constraints
and cells green with darker shades for higher Shapley values.  This module is
the library equivalent: plain-text and Markdown renderings with a
shade-bucket column standing in for the colour intensity.
"""

from __future__ import annotations

from typing import Iterable

from repro.constraints.dc import DenialConstraint
from repro.constraints.parser import format_dc
from repro.dataset.table import CellRef, Table
from repro.explain.explainer import Explanation
from repro.explain.ranking import Ranking, normalised_scores

#: Shade buckets mimicking the GUI's "darker green = more influential".
_SHADES = ("none", "light", "medium", "dark")


def _shade(normalised: float) -> str:
    if normalised <= 1e-12:
        return _SHADES[0]
    if normalised < 0.33:
        return _SHADES[1]
    if normalised < 0.66:
        return _SHADES[2]
    return _SHADES[3]


def render_table_with_highlights(table: Table, highlight: Iterable[CellRef],
                                 title: str = "") -> str:
    """Render a table with the given cells highlighted (``*value*``)."""
    header = f"{title}\n" if title else ""
    return header + table.to_text(highlight=highlight)


class ExplanationReport:
    """Render an :class:`~repro.explain.explainer.Explanation` as text/Markdown."""

    def __init__(self, explanation: Explanation, constraints: list[DenialConstraint] | None = None,
                 dirty_table: Table | None = None):
        self.explanation = explanation
        self.constraints = {c.name: c for c in (constraints or [])}
        self.dirty_table = dirty_table

    # -- constraint section ---------------------------------------------------------

    def _constraint_lines(self) -> list[str]:
        ranking = self.explanation.constraint_ranking
        if ranking is None:
            return []
        shades = normalised_scores(ranking.scores())
        lines = ["Constraint contributions (highest first):"]
        for entry in ranking:
            constraint = self.constraints.get(entry.item)
            rendered = format_dc(constraint, unicode_symbols=True) if constraint else ""
            lines.append(
                f"  {entry.rank}. {entry.item}: shapley={entry.score:.4f} "
                f"[{_shade(shades[entry.item])}]"
                + (f"  {rendered}" if rendered else "")
            )
        return lines

    # -- cell section ----------------------------------------------------------------

    def _cell_lines(self, top_k: int | None = 10) -> list[str]:
        ranking = self.explanation.cell_ranking
        if ranking is None:
            return []
        shades = normalised_scores(ranking.scores())
        entries = list(ranking)[: top_k if top_k is not None else len(ranking)]
        lines = [f"Cell contributions (top {len(entries)} of {len(ranking)}):"]
        for entry in entries:
            value_text = ""
            if self.dirty_table is not None:
                value_text = f" value={self.dirty_table[entry.item]!r}"
            lines.append(
                f"  {entry.rank}. {entry.item}: shapley={entry.score:.4f} "
                f"[{_shade(shades[entry.item])}]{value_text}"
            )
        return lines

    # -- oracle statistics section ----------------------------------------------------

    @staticmethod
    def _format_counters(counters: dict) -> str:
        """One compact ``key=value`` line from an oracle counter dict.

        Zero-valued batch/engine counters are dropped so runs without the
        batch scheduler (or without shared statistics) stay short.  Nested
        telemetry groups (the ``encoding`` dict) are skipped here — they get
        a dedicated line from :meth:`_format_group`.
        """
        always = ("oracle_calls", "repair_runs", "cache_hits", "cache_misses")
        parts = [f"{key}={value}" for key, value in counters.items()
                 if not isinstance(value, dict) and (key in always or value)]
        return " ".join(parts)

    @staticmethod
    def _format_group(counters: dict) -> str:
        """One nested telemetry group (e.g. ``encoding``) on a compact line.

        Leaf dicts — the per-column ``dictionary_sizes`` — render inline as
        ``name:size`` pairs so the CLI report shows the whole code layer at a
        glance.
        """
        parts = []
        for key, value in counters.items():
            if isinstance(value, dict):
                inner = ",".join(f"{name}:{size}" for name, size in value.items())
                parts.append(f"{key}=[{inner}]")
            else:
                parts.append(f"{key}={value}")
        return " ".join(parts)

    def _statistics_lines(self) -> list[str]:
        """Render the oracle's counters (cache, pair walks, batch scheduler).

        Surfacing ``BinaryRepairOracle.statistics()`` here makes perf
        regressions (cache thrash, vanished batching, silent pair fallbacks,
        vectorised checks falling back to the object path) visible in every
        CLI explain run without firing up the benchmark.
        """
        statistics = self.explanation.oracle_statistics
        if not statistics:
            return []
        lines = ["Oracle statistics:"]
        # explain() nests one counter dict per scope ("constraints"/"cells");
        # single-scope explanations carry a flat dict (plus nested telemetry
        # groups like "encoding", which are dicts but not scopes)
        scoped = all(isinstance(value, dict) for value in statistics.values())
        scopes = statistics.items() if scoped else [("", statistics)]
        for scope, counters in scopes:
            prefix = f"{scope:11s}: " if scope else ""
            lines.append(f"  {prefix}{self._format_counters(counters)}")
            for group, values in counters.items():
                if isinstance(values, dict):
                    label = f"{scope}.{group}" if scope else group
                    lines.append(f"    {label}: {self._format_group(values)}")
        return lines

    # -- full report -------------------------------------------------------------------

    def _incomplete_line(self) -> str | None:
        """A warning line when the cell sampling hit its deadline budget.

        ``ShapleyResult.completed`` is ``False`` only when a
        ``deadline_seconds`` budget expired mid-plan; the ranking below is
        then built from the merged *partial* estimates and must be read as
        a preview, not the converged explanation.
        """
        result = self.explanation.cell_shapley
        if result is None or result.completed:
            return None
        return (f"INCOMPLETE: deadline expired after {result.n_samples} "
                f"cell sample(s); cell values are partial estimates")

    def to_text(self, top_k_cells: int | None = 10) -> str:
        explanation = self.explanation
        lines = [
            "T-REx explanation",
            "=================",
            f"Cell of interest : {explanation.cell}",
            f"Repair           : {explanation.old_value!r} -> {explanation.new_value!r}",
        ]
        incomplete = self._incomplete_line()
        if incomplete:
            lines.append(f"!! {incomplete}")
        lines.extend(self._statistics_lines())
        constraint_lines = self._constraint_lines()
        if constraint_lines:
            lines.append("")
            lines.extend(constraint_lines)
        cell_lines = self._cell_lines(top_k=top_k_cells)
        if cell_lines:
            lines.append("")
            lines.extend(cell_lines)
        return "\n".join(lines)

    def to_markdown(self, top_k_cells: int | None = 10) -> str:
        explanation = self.explanation
        lines = [
            f"## T-REx explanation for `{explanation.cell}`",
            "",
            f"Repair: `{explanation.old_value!r}` → `{explanation.new_value!r}`",
            "",
        ]
        incomplete = self._incomplete_line()
        if incomplete:
            lines.append(f"> **{incomplete}**")
            lines.append("")
        statistics_lines = self._statistics_lines()
        if statistics_lines:
            lines.append("```")
            lines.extend(statistics_lines)
            lines.append("```")
            lines.append("")
        constraint_ranking = explanation.constraint_ranking
        if constraint_ranking is not None:
            shades = normalised_scores(constraint_ranking.scores())
            lines += ["| rank | constraint | Shapley | shade |", "| --- | --- | --- | --- |"]
            for entry in constraint_ranking:
                lines.append(
                    f"| {entry.rank} | {entry.item} | {entry.score:.4f} | {_shade(shades[entry.item])} |"
                )
            lines.append("")
        cell_ranking = explanation.cell_ranking
        if cell_ranking is not None:
            shades = normalised_scores(cell_ranking.scores())
            entries = list(cell_ranking)[: top_k_cells if top_k_cells is not None else len(cell_ranking)]
            lines += ["| rank | cell | Shapley | shade |", "| --- | --- | --- | --- |"]
            for entry in entries:
                lines.append(
                    f"| {entry.rank} | {entry.item} | {entry.score:.4f} | {_shade(shades[entry.item])} |"
                )
            lines.append("")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()


def repair_summary(dirty: Table, clean: Table) -> str:
    """A textual version of the repair screen (Figure 3b)."""
    delta = dirty.diff(clean)
    lines = [
        "Repair summary",
        "--------------",
        f"{len(delta)} cell(s) repaired.",
    ]
    for change in delta:
        lines.append(f"  {change}")
    lines.append("")
    lines.append(render_table_with_highlights(clean, delta.cells(), title="Repaired table:"))
    return "\n".join(lines)
