"""Reproducibility configuration.

Centralises the random seeds, numeric tolerances and sampling defaults used
throughout the library so experiments are repeatable and the benchmark
harness can tighten or loosen them from a single place.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

import numpy as np

#: Default seed used whenever a component needs randomness and the caller did
#: not provide an explicit seed or generator.
DEFAULT_SEED = 7_042_020  # arXiv id of the paper: 2007.04450

#: Absolute tolerance used when comparing Shapley values against the values
#: reported in the paper (which are exact rationals such as 1/6 and 2/3).
SHAPLEY_ATOL = 1e-9

#: Default number of permutation samples for the cell-Shapley estimator
#: (Example 2.5 of the paper leaves ``m`` as a user parameter).
DEFAULT_CELL_SAMPLES = 500


def default_vectorized() -> bool:
    """Library-wide default for the vectorised engine paths.

    ``True`` unless ``TREX_VECTORIZED=0`` is set — the CI matrix uses the
    environment switch to run the whole fast test set under both defaults
    (results are bit-identical either way; only the evaluation strategy
    changes).
    """
    return os.environ.get("TREX_VECTORIZED", "1") != "0"


@dataclass
class TRexConfig:
    """Bundle of knobs controlling a T-REx run.

    Parameters
    ----------
    seed:
        Seed for all stochastic components (sampling-based Shapley, error
        injection, dataset generation).
    cell_samples:
        Number of permutation samples ``m`` used by the cell-level Shapley
        estimator.
    replacement_policy:
        How out-of-coalition cells are filled when querying the black box:
        ``"sample"`` draws from the column distribution (the paper's
        algorithm, Example 2.5), ``"null"`` follows the formal definition in
        Section 2.2, ``"mode"`` uses the most frequent column value.
    max_repair_iterations:
        Upper bound on fixpoint iterations inside repair algorithms.
    cache_oracle:
        Whether black-box repair calls are memoised per coalition.
    n_jobs:
        Worker processes for the sampled cell-Shapley estimator.  ``None``
        (default) keeps the sequential engine; an integer routes estimation
        through the sharded scheduler (:mod:`repro.parallel`), whose results
        are bit-identical for every ``n_jobs >= 1``.
    warm_pool:
        Whether the ``n_jobs`` path keeps worker processes (and their
        resident oracle stacks) alive across rounds, shipping only new cache
        entries home (the default).  ``False`` forces the cold
        rebuild-per-round path; results are bit-identical either way.
    vectorized:
        Whether the engine evaluates FD checks, statistics builds and greedy
        ``count_if`` trials over dictionary-encoded code arrays (the
        default).  ``False`` forces the per-cell object path; results are
        bit-identical either way.
    deadline_seconds:
        Optional wall-clock budget for one sampled cell-Shapley explanation
        run on the ``n_jobs`` path.  On expiry the scheduler stops at a
        round boundary and returns the merged *partial* estimates with
        ``ShapleyResult.completed == False``.  ``None`` (default) means no
        budget.  Sequential runs ignore it.
    max_worker_restarts:
        Per-worker-slot cap on process restarts (crash-loop containment);
        once exceeded the slot stays dead and its work is requeued or run
        in-process.  ``None`` lifts the cap.
    max_shard_attempts:
        Cross-worker failure cap per sampling shard; a shard that fails this
        many times is quarantined to the in-process degrade path for the
        rest of the scheduler's lifetime (values unchanged — only where the
        shard is evaluated changes).  ``None`` lifts the cap.
    restart_backoff_seconds:
        Base delay of the bounded exponential backoff slept before each
        worker restart (doubles per consecutive restart of the same slot,
        capped).  ``0`` disables the backoff.
    speculate:
        Whether adaptive sampling on the ``n_jobs`` path draws up to
        ``n_jobs`` chunks ahead per unconverged cell each round,
        deterministically discarding overshoot past the merged stopping
        point.  Estimates are bit-identical to the default ``False``; only
        throughput and the speculation counters change.
    incremental_updates:
        Whether :meth:`RepairSession.update` delta-maintains the live
        session state — base violations, indexes, statistics, encoding,
        oracle cache — and selectively refreshes only the Shapley estimates
        whose sampled coalitions overlapped the changed cells (the
        default).  ``False`` forces the rebuild reference path: every
        update swaps in a fresh table copy and a fresh explainer, exactly
        like starting a new session on the post-update table.  Explanations
        are bit-identical either way.
    """

    seed: int = DEFAULT_SEED
    cell_samples: int = DEFAULT_CELL_SAMPLES
    replacement_policy: str = "sample"
    max_repair_iterations: int = 25
    cache_oracle: bool = True
    n_jobs: int | None = None
    warm_pool: bool = True
    vectorized: bool = field(default_factory=default_vectorized)
    deadline_seconds: float | None = None
    max_worker_restarts: int | None = 5
    max_shard_attempts: int | None = 3
    restart_backoff_seconds: float = 0.05
    speculate: bool = False
    incremental_updates: bool = True
    extra: dict = field(default_factory=dict)

    def rng(self) -> np.random.Generator:
        """Return a fresh generator seeded from this configuration."""
        return np.random.default_rng(self.seed)

    def with_seed(self, seed: int) -> "TRexConfig":
        """Return a copy of the configuration with a different seed."""
        return dataclasses.replace(self, seed=seed, extra=dict(self.extra))

    def retry_policy(self):
        """Build the pool :class:`~repro.parallel.pool.RetryPolicy` these knobs describe.

        Imported lazily: ``repro.parallel`` imports this module, so a
        top-level import here would be circular.
        """
        from repro.parallel.pool import RetryPolicy

        return RetryPolicy(
            max_worker_restarts=self.max_worker_restarts,
            max_shard_attempts=self.max_shard_attempts,
            backoff_base=self.restart_backoff_seconds,
        )


def make_rng(seed_or_rng=None) -> np.random.Generator:
    """Coerce ``seed_or_rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (use :data:`DEFAULT_SEED`), an integer seed, or an
    existing generator (returned unchanged so callers can share a stream).
    """
    if seed_or_rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)
