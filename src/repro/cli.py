"""Command-line interface.

The original T-REx is driven from a web GUI; this CLI is the library's
equivalent front end for scripted use:

``python -m repro.cli violations --table dirty.csv --constraints dcs.txt``
    List the denial-constraint violations of a table.

``python -m repro.cli repair --table dirty.csv --constraints dcs.txt --algorithm simple --output clean.csv``
    Repair a table with one of the bundled black-box algorithms and print the
    repair summary (optionally writing the clean table to a CSV).

``python -m repro.cli explain --table dirty.csv --constraints dcs.txt --cell "t5[Country]"``
    Repair, then explain the repair of one cell: constraint Shapley values
    (exact) and, unless ``--constraints-only`` is given, sampled cell Shapley
    values.  ``--jobs N`` runs the cell sampling on N warm worker processes
    (the sharded scheduler; results are identical for every worker count;
    ``--cold-pool`` forces the rebuild-per-round reference path).
    ``--json out.json`` persists the explanation.

``python -m repro.cli discover --table clean.csv``
    Discover the functional dependencies holding on a table and print them as
    denial constraints (a starting point for the constraint file).

The constraints file contains one DC per line in the ASCII syntax of
:func:`repro.constraints.parser.parse_dc`; blank lines and ``#`` comments are
ignored.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

import json as _json

from repro.config import TRexConfig
from repro.constraints.discovery import discover_fds
from repro.constraints.fd import fds_to_dcs
from repro.constraints.parser import format_dc, parse_dc
from repro.constraints.violations import find_all_violations
from repro.dataset.io import read_csv, write_csv
from repro.dataset.table import CellRef
from repro.errors import TRexError
from repro.explain.explainer import TRExExplainer
from repro.explain.report import ExplanationReport, repair_summary
from repro.explain.serialize import save_explanation
from repro.observability import trace as otrace
from repro.repair.greedy import GreedyHolisticRepair
from repro.repair.holoclean import HoloCleanRepair
from repro.repair.simple import SimpleRuleRepair

ALGORITHMS = {
    "simple": SimpleRuleRepair,
    "greedy": GreedyHolisticRepair,
    "holoclean": HoloCleanRepair,
}


def load_constraints(path: str | Path):
    """Parse a constraints file (one ASCII DC per line, ``#`` comments)."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    constraints = []
    for line in lines:
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        constraints.append(parse_dc(text, name=f"C{len(constraints) + 1}"))
    if not constraints:
        raise TRexError(f"no constraints found in {path}")
    return constraints


def _build_algorithm(name: str, vectorized: bool = True):
    if name not in ALGORITHMS:
        raise TRexError(f"unknown algorithm {name!r}; expected one of {sorted(ALGORITHMS)}")
    if name in ("simple", "greedy"):
        return ALGORITHMS[name](vectorized=vectorized)
    return ALGORITHMS[name]()


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--table", required=True, help="CSV file with the (dirty) table")
    parser.add_argument("--constraints", required=True, help="text file with one DC per line")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="trex", description="T-REx: table repair explanations (reproduction CLI)"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    violations_parser = subparsers.add_parser("violations", help="list constraint violations")
    _add_common_arguments(violations_parser)

    repair_parser = subparsers.add_parser("repair", help="repair a table")
    _add_common_arguments(repair_parser)
    repair_parser.add_argument("--algorithm", default="simple", choices=sorted(ALGORITHMS))
    repair_parser.add_argument("--output", help="write the repaired table to this CSV file")
    repair_parser.add_argument("--no-vectorized", action="store_true",
                               help="evaluate constraint checks on the per-cell object "
                                    "path instead of dictionary-encoded code arrays; "
                                    "results are identical, only slower")
    repair_parser.add_argument("--stats-json", metavar="PATH",
                               help="write the repair statistics (cells repaired, "
                                    "changes, table shape) to this JSON file")

    explain_parser = subparsers.add_parser("explain", help="explain the repair of one cell")
    _add_common_arguments(explain_parser)
    explain_parser.add_argument("--algorithm", default="simple", choices=sorted(ALGORITHMS))
    explain_parser.add_argument("--cell", required=True,
                                help="cell of interest, e.g. 't5[Country]' (1-based row)")
    explain_parser.add_argument("--samples", type=int, default=100,
                                help="permutation samples per cell (default 100)")
    explain_parser.add_argument("--jobs", type=int, default=None,
                                help="worker processes for the cell-Shapley sampling "
                                     "(default: sequential; any value >= 1 uses the "
                                     "sharded scheduler, identical results for every "
                                     "worker count)")
    explain_parser.add_argument("--cold-pool", action="store_true",
                                help="with --jobs: rebuild the worker pool and each "
                                     "worker's oracle stack every round instead of "
                                     "keeping them resident (the warm default); "
                                     "results are identical, only slower")
    explain_parser.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                                help="with --jobs: wall-clock budget for the cell "
                                     "sampling; on expiry the partial estimates "
                                     "computed so far are reported (marked "
                                     "INCOMPLETE) instead of hanging")
    explain_parser.add_argument("--max-worker-restarts", type=int, default=None,
                                metavar="N",
                                help="with --jobs: per-worker-slot restart cap before "
                                     "the slot is abandoned (crash-loop containment; "
                                     "default 5, -1 lifts the cap)")
    explain_parser.add_argument("--max-shard-attempts", type=int, default=None,
                                metavar="N",
                                help="with --jobs: cross-worker failures tolerated per "
                                     "sampling shard before it is quarantined to the "
                                     "in-process path (default 3, -1 lifts the cap)")
    explain_parser.add_argument("--restart-backoff", type=float, default=None,
                                metavar="SECONDS",
                                help="with --jobs: base delay of the exponential "
                                     "backoff slept before worker restarts "
                                     "(default 0.05, 0 disables)")
    explain_parser.add_argument("--speculate", action="store_true",
                                help="with --jobs: draw up to N sample chunks ahead "
                                     "per unconverged cell each adaptive round, "
                                     "discarding overshoot past the stopping point; "
                                     "results are identical, only faster when few "
                                     "cells remain active")
    explain_parser.add_argument("--no-vectorized", action="store_true",
                                help="evaluate constraint checks on the per-cell object "
                                     "path instead of dictionary-encoded code arrays "
                                     "(also settable via TREX_VECTORIZED=0); results "
                                     "are identical, only slower")
    explain_parser.add_argument("--policy", default="sample", choices=["sample", "null", "mode"],
                                help="replacement policy for out-of-coalition cells")
    explain_parser.add_argument("--update", action="append", default=[],
                                metavar="CELL=VALUE",
                                help="apply a base-table write (e.g. 't3[City]=Lyon'; "
                                     "empty VALUE writes a null) before explaining; "
                                     "repeatable, applied in order through the live "
                                     "session update path — the explanation is "
                                     "identical to running on the updated CSV")
    explain_parser.add_argument("--no-incremental-updates", action="store_true",
                                help="with --update: rebuild the session state from "
                                     "scratch per update instead of delta-maintaining "
                                     "it (the reference path; results are identical, "
                                     "only slower)")
    explain_parser.add_argument("--constraints-only", action="store_true",
                                help="skip the (slower) cell-level explanation")
    explain_parser.add_argument("--seed", type=int, default=None, help="random seed")
    explain_parser.add_argument("--json", help="write the explanation to this JSON file")
    explain_parser.add_argument("--stats-json", metavar="PATH",
                                help="write the merged oracle statistics (the counters "
                                     "of the report's 'Oracle statistics' section) to "
                                     "this JSON file")
    explain_parser.add_argument("--trace-out", metavar="PATH",
                                help="record spans for the explain run (explain_job → "
                                     "cell → shard → repair phases) and write them as "
                                     "Chrome traceEvents JSON; load in chrome://tracing "
                                     "or Perfetto.  Results are bit-identical with or "
                                     "without tracing")
    explain_parser.add_argument("--top-cells", type=int, default=10,
                                help="number of cells shown in the report")

    discover_parser = subparsers.add_parser("discover", help="discover FDs from a table")
    discover_parser.add_argument("--table", required=True, help="CSV file with a (clean) table")
    discover_parser.add_argument("--max-lhs", type=int, default=1,
                                 help="maximum left-hand-side size (default 1)")
    return parser


def _command_violations(args) -> int:
    table = read_csv(args.table)
    constraints = load_constraints(args.constraints)
    violations = find_all_violations(table, constraints)
    print(f"{len(violations)} violation(s) of {len(constraints)} constraint(s) "
          f"on {table.n_rows} rows.")
    for violation in violations:
        cells = ", ".join(str(cell) for cell in violation.cells())
        print(f"  {violation}: {cells}")
    return 0 if not violations else 1


def _write_stats_json(path: str, stats: dict) -> None:
    """Dump a statistics dict as pretty JSON (the ``--stats-json`` sink)."""
    Path(path).write_text(_json.dumps(stats, indent=2, sort_keys=False) + "\n",
                          encoding="utf-8")
    print(f"\nStatistics written to {path}")


def _command_repair(args) -> int:
    table = read_csv(args.table)
    constraints = load_constraints(args.constraints)
    vectorized = not args.no_vectorized and TRexConfig().vectorized
    algorithm = _build_algorithm(args.algorithm, vectorized=vectorized)
    result = algorithm.repair(constraints, table)
    print(repair_summary(table, result.clean))
    if args.output:
        write_csv(result.clean, args.output)
        print(f"\nRepaired table written to {args.output}")
    if args.stats_json:
        _write_stats_json(args.stats_json, {
            "algorithm": args.algorithm,
            "n_rows": table.n_rows,
            "n_constraints": len(constraints),
            "cells_repaired": len(result.delta),
            "changes": [str(change) for change in result.delta],
        })
    return 0


def _parse_update(text: str) -> "tuple[CellRef, object]":
    """Parse one ``--update`` operand: ``CELL=VALUE`` (empty VALUE = null)."""
    if "=" not in text:
        raise TRexError(f"--update expects CELL=VALUE, got {text!r}")
    cell_text, _, value = text.partition("=")
    return CellRef.parse(cell_text.strip()), (value if value != "" else None)


def _command_explain(args) -> int:
    table = read_csv(args.table)
    constraints = load_constraints(args.constraints)
    defaults = TRexConfig()
    # --no-vectorized wins over the TREX_VECTORIZED environment default
    vectorized = not args.no_vectorized and defaults.vectorized
    algorithm = _build_algorithm(args.algorithm, vectorized=vectorized)
    cell = CellRef.parse(args.cell)
    if args.jobs is not None and args.jobs < 1:
        raise TRexError(f"--jobs must be a positive integer, got {args.jobs}")
    if args.deadline is not None and args.deadline < 0:
        raise TRexError(f"--deadline must be non-negative, got {args.deadline}")

    def _cap(value, default):
        # -1 on the command line lifts a cap (None internally)
        if value is None:
            return default
        return None if value < 0 else value

    config = TRexConfig(
        seed=args.seed if args.seed is not None else defaults.seed,
        cell_samples=args.samples,
        replacement_policy=args.policy,
        n_jobs=args.jobs,
        warm_pool=not args.cold_pool,
        vectorized=vectorized,
        deadline_seconds=args.deadline,
        max_worker_restarts=_cap(args.max_worker_restarts, defaults.max_worker_restarts),
        max_shard_attempts=_cap(args.max_shard_attempts, defaults.max_shard_attempts),
        restart_backoff_seconds=(defaults.restart_backoff_seconds
                                 if args.restart_backoff is None
                                 else max(0.0, args.restart_backoff)),
        speculate=args.speculate,
        incremental_updates=not args.no_incremental_updates,
    )
    if args.update:
        # replay base-table writes through the live session update path, then
        # explain the post-update repair — identical to editing the CSV first
        from repro.explain.session import RepairSession

        updates = [_parse_update(text) for text in args.update]
        session = RepairSession(algorithm, constraints, table,
                                cell_of_interest=cell, config=config)
        with session:
            for update_cell, value in updates:
                step = session.update(update_cell, value)
                print(f"update: {step.detail}")
            explainer = session.explainer
            repaired_cells = explainer.repaired_cells()
            if cell not in explainer.delta:
                print(f"Cell {cell} was not repaired after the update(s). "
                      f"Repaired cells: "
                      f"{', '.join(str(c) for c in repaired_cells) or '(none)'}")
                return 1
            tracer = otrace.enable() if args.trace_out else None
            try:
                explanation = session.explain(constraints_only=args.constraints_only)
            finally:
                if tracer is not None:
                    otrace.disable()
    else:
        explainer = TRExExplainer(algorithm, constraints, table, config)
        repaired_cells = explainer.repaired_cells()
        if cell not in explainer.delta:
            print(f"Cell {cell} was not repaired. Repaired cells: "
                  f"{', '.join(str(c) for c in repaired_cells) or '(none)'}")
            return 1
        tracer = otrace.enable() if args.trace_out else None
        try:
            if args.constraints_only:
                explanation = explainer.explain_constraints(cell)
            else:
                explanation = explainer.explain(cell)
        finally:
            if tracer is not None:
                otrace.disable()
    report = ExplanationReport(explanation, constraints=constraints, dirty_table=table)
    print(report.to_text(top_k_cells=args.top_cells))
    if args.json:
        save_explanation(explanation, args.json)
        print(f"\nExplanation written to {args.json}")
    if args.stats_json:
        _write_stats_json(args.stats_json, explanation.oracle_statistics)
    if tracer is not None:
        tracer.write_chrome_trace(args.trace_out)
        print(f"\nChrome trace ({len(tracer.spans)} span(s)) written to {args.trace_out}")
    return 0


def _command_discover(args) -> int:
    table = read_csv(args.table)
    fds = discover_fds(table, max_lhs_size=args.max_lhs)
    constraints = fds_to_dcs(fds)
    print(f"Discovered {len(fds)} functional dependencies on {args.table}:")
    for fd, constraint in zip(fds, constraints):
        print(f"  # {fd}")
        print(f"  {format_dc(constraint)}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code (0 on success)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "violations": _command_violations,
        "repair": _command_repair,
        "explain": _command_explain,
        "discover": _command_discover,
    }
    try:
        return handlers[args.command](args)
    except TRexError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
