"""T-REx: Table Repair Explanations — a full reproduction.

This package re-implements the system demonstrated in *"T-REx: Table Repair
Explanations"* (Deutch, Frost, Gilad, Sheffer — SIGMOD 2020): Shapley-value
explanations for the output of a *black-box* data-repair algorithm, together
with every substrate the demo depends on (an in-memory table engine, a denial
constraint language with violation detection, three repair algorithms
including a HoloClean-style probabilistic cleaner, exact and sampling-based
Shapley engines, datasets and error injection).

Quickstart
----------
>>> from repro import (
...     la_liga_dirty_table, la_liga_constraints, paper_algorithm_1,
...     TRExExplainer, CellRef,
... )
>>> explainer = TRExExplainer(paper_algorithm_1(), la_liga_constraints(),
...                           la_liga_dirty_table())
>>> explainer.repaired_cells()
[CellRef(row=4, attribute='City'), CellRef(row=4, attribute='Country')]
>>> explanation = explainer.explain_constraints(CellRef(4, "Country"))
>>> [(name, round(value, 4)) for name, value in explanation.constraint_ranking.scores().items()]
[('C3', 0.6667), ('C1', 0.1667), ('C2', 0.1667), ('C4', 0.0)]

See ``examples/`` for end-to-end scenarios and ``DESIGN.md`` for the mapping
between the paper's figures/examples and the modules here.
"""

from repro.config import TRexConfig, DEFAULT_SEED
from repro.errors import (
    TRexError,
    SchemaError,
    ConstraintError,
    ConstraintParseError,
    RepairError,
    ExplanationError,
    NotRepairedError,
)
from repro.dataset import (
    AttributeSpec,
    Schema,
    Table,
    CellRef,
    PerturbationView,
    RepairDelta,
    read_csv,
    write_csv,
    table_from_records,
    la_liga_clean_table,
    la_liga_dirty_table,
    la_liga_constraints,
    SoccerLeagueGenerator,
    HospitalGenerator,
    FlightsGenerator,
    TaxGenerator,
    ErrorInjector,
    ErrorSpec,
    InjectionReport,
)
from repro.constraints import (
    Operator,
    Predicate,
    DenialConstraint,
    parse_dc,
    parse_dcs,
    format_dc,
    find_violations,
    find_all_violations,
    find_all_violations_auto,
    IncrementalViolationDetector,
    RepairWalk,
    repair_walk_for,
    FunctionalDependency,
    ConditionalFunctionalDependency,
    discover_fds,
    discover_dcs,
)
from repro.repair import (
    RepairAlgorithm,
    RepairResult,
    BinaryRepairOracle,
    FunctionRepairAlgorithm,
    SimpleRuleRepair,
    RepairRule,
    paper_algorithm_1,
    GreedyHolisticRepair,
    HoloCleanRepair,
    BaseCellUpdate,
    BaseUpdateDelta,
    BaseUpdateLog,
)
from repro.shapley import (
    CooperativeGame,
    CallableGame,
    ShapleyResult,
    exact_shapley,
    permutation_shapley,
    ConstraintShapleyExplainer,
    CellShapleyExplainer,
    ReplacementPolicy,
    shapley_interaction_index,
    all_pairwise_interactions,
    banzhaf_values,
)
from repro.parallel import (
    ParallelExplainResult,
    ShardedExplainScheduler,
)
from repro.explain import (
    TRExExplainer,
    Explanation,
    ExplanationReport,
    RepairSession,
    Ranking,
    kendall_tau,
    ranking_overlap,
    minimal_constraint_counterfactuals,
    minimal_cell_counterfactuals,
    counterfactual_report,
    save_explanation,
    load_explanation,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration & errors
    "TRexConfig",
    "DEFAULT_SEED",
    "TRexError",
    "SchemaError",
    "ConstraintError",
    "ConstraintParseError",
    "RepairError",
    "ExplanationError",
    "NotRepairedError",
    # dataset layer
    "AttributeSpec",
    "Schema",
    "Table",
    "CellRef",
    "PerturbationView",
    "RepairDelta",
    "read_csv",
    "write_csv",
    "table_from_records",
    "la_liga_clean_table",
    "la_liga_dirty_table",
    "la_liga_constraints",
    "SoccerLeagueGenerator",
    "HospitalGenerator",
    "FlightsGenerator",
    "TaxGenerator",
    "ErrorInjector",
    "ErrorSpec",
    "InjectionReport",
    # constraints
    "Operator",
    "Predicate",
    "DenialConstraint",
    "parse_dc",
    "parse_dcs",
    "format_dc",
    "find_violations",
    "find_all_violations",
    "find_all_violations_auto",
    "IncrementalViolationDetector",
    "RepairWalk",
    "repair_walk_for",
    "FunctionalDependency",
    "ConditionalFunctionalDependency",
    "discover_fds",
    "discover_dcs",
    # repair
    "RepairAlgorithm",
    "RepairResult",
    "BinaryRepairOracle",
    "FunctionRepairAlgorithm",
    "SimpleRuleRepair",
    "RepairRule",
    "paper_algorithm_1",
    "GreedyHolisticRepair",
    "HoloCleanRepair",
    "BaseCellUpdate",
    "BaseUpdateDelta",
    "BaseUpdateLog",
    # shapley
    "CooperativeGame",
    "CallableGame",
    "ShapleyResult",
    "exact_shapley",
    "permutation_shapley",
    "ConstraintShapleyExplainer",
    "CellShapleyExplainer",
    "ReplacementPolicy",
    "shapley_interaction_index",
    "all_pairwise_interactions",
    "banzhaf_values",
    # parallel execution
    "ParallelExplainResult",
    "ShardedExplainScheduler",
    # explanation layer
    "TRExExplainer",
    "Explanation",
    "ExplanationReport",
    "RepairSession",
    "Ranking",
    "kendall_tau",
    "ranking_overlap",
    "minimal_constraint_counterfactuals",
    "minimal_cell_counterfactuals",
    "counterfactual_report",
    "save_explanation",
    "load_explanation",
]
