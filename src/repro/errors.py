"""Exception hierarchy for the T-REx reproduction.

All library-specific errors derive from :class:`TRexError` so callers can
catch a single base class.  Specific subclasses signal which subsystem
rejected the input, which keeps error handling in the examples and the
interactive session precise.
"""

from __future__ import annotations


class TRexError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class SchemaError(TRexError):
    """A table, tuple or cell reference is inconsistent with the schema."""


class UnknownAttributeError(SchemaError):
    """An attribute name does not exist in the schema."""

    def __init__(self, attribute: str, known: tuple[str, ...] = ()):
        self.attribute = attribute
        self.known = tuple(known)
        message = f"unknown attribute {attribute!r}"
        if known:
            message += f" (schema attributes: {', '.join(known)})"
        super().__init__(message)


class UnknownRowError(SchemaError):
    """A row index is outside the table."""

    def __init__(self, row: int, n_rows: int):
        self.row = row
        self.n_rows = n_rows
        super().__init__(f"row {row} out of range for table with {n_rows} rows")


class ConstraintError(TRexError):
    """A denial constraint is malformed."""


class ConstraintParseError(ConstraintError):
    """The textual DC representation could not be parsed."""

    def __init__(self, text: str, reason: str):
        self.text = text
        self.reason = reason
        super().__init__(f"cannot parse denial constraint {text!r}: {reason}")


class RepairError(TRexError):
    """A repair algorithm failed to produce a valid output table."""


class ExplanationError(TRexError):
    """The explanation engine was asked an impossible question."""


class NotRepairedError(ExplanationError):
    """The cell of interest was not changed by the repair, so there is
    nothing to explain."""

    def __init__(self, cell) -> None:
        self.cell = cell
        super().__init__(
            f"cell {cell} was not repaired by the algorithm; "
            "choose a cell whose value changed between the dirty and clean table"
        )


class ConvergenceError(TRexError):
    """A Monte-Carlo estimator failed to reach the requested precision."""
