"""Denial constraints (DCs) and violation detection.

A denial constraint over a pair of tuples has the form

    ∀ t1, t2 . ¬( p_1 ∧ p_2 ∧ ... ∧ p_k )

where each predicate ``p_i`` compares an attribute of ``t1``/``t2`` with an
attribute of the other tuple or with a constant using one of
``=, ≠, <, ≤, >, ≥``.  This subpackage provides the constraint language
(S3 in DESIGN.md), the violation detection engine (S4), functional
dependencies as syntactic sugar, and a small discovery module (S5).

Violation detection comes in two flavours:

* the **full-rescan reference path** (:mod:`~repro.constraints.violations`) —
  :func:`find_violations` / :func:`find_all_violations` rebuild indexes and
  scan every candidate pair from scratch; and
* the **incremental path** (:mod:`~repro.constraints.incremental`) — an
  :class:`IncrementalViolationDetector` per base snapshot that, given a
  sparse :class:`~repro.dataset.table.PerturbationView` delta, retracts the
  violations involving touched rows and re-checks only those rows against
  delta-maintained equality indexes.  :func:`find_all_violations_auto`
  dispatches between the two; the Shapley/repair hot loop runs almost
  entirely on the incremental path and is cross-checked against the
  reference path by the test-suite.
"""

from repro.constraints.predicates import Operator, Predicate
from repro.constraints.dc import DenialConstraint
from repro.constraints.parser import parse_dc, parse_dcs, format_dc
from repro.constraints.violations import (
    Violation,
    ViolationSet,
    find_violations,
    find_all_violations,
    violating_rows,
    cells_in_violations,
)
from repro.constraints.incremental import (
    IncrementalViolationDetector,
    RepairWalk,
    detector_for,
    repair_walk_for,
    find_violations_auto,
    find_all_violations_auto,
    find_all_violations_fast,
)
from repro.constraints.fd import FunctionalDependency, ConditionalFunctionalDependency
from repro.constraints.discovery import discover_fds, discover_dcs

__all__ = [
    "Operator",
    "Predicate",
    "DenialConstraint",
    "parse_dc",
    "parse_dcs",
    "format_dc",
    "Violation",
    "ViolationSet",
    "find_violations",
    "find_all_violations",
    "violating_rows",
    "cells_in_violations",
    "IncrementalViolationDetector",
    "RepairWalk",
    "detector_for",
    "repair_walk_for",
    "find_violations_auto",
    "find_all_violations_auto",
    "find_all_violations_fast",
    "FunctionalDependency",
    "ConditionalFunctionalDependency",
    "discover_fds",
    "discover_dcs",
]
