"""Functional dependencies (FDs) and conditional functional dependencies (CFDs).

FDs and CFDs are the constraint subsets referenced by the paper ([1], [8]):
an FD ``X → Y`` is exactly the denial constraint

    ∀ t1, t2 . ¬( t1[X_1] = t2[X_1] ∧ ... ∧ t1[Y] ≠ t2[Y] )

and a CFD additionally fixes constants on some left-hand attributes.  Both
classes compile to :class:`~repro.constraints.dc.DenialConstraint`, so the
whole repair/explanation pipeline works on them unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.constraints.dc import DenialConstraint
from repro.constraints.predicates import Operator, Predicate, TUPLE_1
from repro.errors import ConstraintError


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``lhs → rhs`` (single right-hand attribute)."""

    lhs: tuple[str, ...]
    rhs: str
    name: str = ""

    def __init__(self, lhs: Sequence[str], rhs: str, name: str = ""):
        lhs = tuple(lhs)
        if not lhs:
            raise ConstraintError("a functional dependency needs at least one LHS attribute")
        if not rhs:
            raise ConstraintError("a functional dependency needs a RHS attribute")
        if rhs in lhs:
            raise ConstraintError(f"RHS attribute {rhs!r} also appears on the LHS")
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "rhs", rhs)
        object.__setattr__(self, "name", name or f"FD({','.join(lhs)}->{rhs})")

    def to_dc(self, name: str | None = None) -> DenialConstraint:
        """Compile the FD to its denial-constraint form."""
        predicates = [Predicate.between_tuples(attr, Operator.EQ) for attr in self.lhs]
        predicates.append(Predicate.between_tuples(self.rhs, Operator.NE))
        description = f"{' ,'.join(self.lhs)} functionally determines {self.rhs}"
        return DenialConstraint(name or self.name, predicates, description)

    def __str__(self) -> str:
        return f"{self.name}: {', '.join(self.lhs)} -> {self.rhs}"


@dataclass(frozen=True)
class ConditionalFunctionalDependency:
    """A CFD: an FD that only applies to tuples matching a constant pattern.

    ``pattern`` maps attributes to required constants on the left-hand side;
    pattern attributes with value ``None`` act as plain FD attributes
    (wildcards).  Example: ``(City='Madrid') → Country`` forces all Madrid
    rows to share one country.
    """

    lhs: tuple[str, ...]
    rhs: str
    pattern: tuple[tuple[str, Any], ...]
    name: str = ""

    def __init__(self, lhs: Sequence[str], rhs: str, pattern: Mapping[str, Any] | None = None,
                 name: str = ""):
        lhs = tuple(lhs)
        pattern_items = tuple(sorted((pattern or {}).items()))
        if not lhs and not pattern_items:
            raise ConstraintError("a CFD needs LHS attributes or a constant pattern")
        if not rhs:
            raise ConstraintError("a CFD needs a RHS attribute")
        unknown_pattern = [a for a, _ in pattern_items if a not in lhs]
        if unknown_pattern:
            # pattern attributes not in the LHS are simply added to it
            lhs = lhs + tuple(unknown_pattern)
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "rhs", rhs)
        object.__setattr__(self, "pattern", pattern_items)
        object.__setattr__(self, "name", name or f"CFD({','.join(lhs)}->{rhs})")

    def to_dc(self, name: str | None = None) -> DenialConstraint:
        """Compile the CFD to a denial constraint with constant predicates."""
        pattern = dict(self.pattern)
        predicates: list[Predicate] = []
        for attribute in self.lhs:
            predicates.append(Predicate.between_tuples(attribute, Operator.EQ))
            constant = pattern.get(attribute)
            if constant is not None:
                predicates.append(
                    Predicate.with_constant(TUPLE_1, attribute, Operator.EQ, constant)
                )
        predicates.append(Predicate.between_tuples(self.rhs, Operator.NE))
        condition = ", ".join(f"{a}={v!r}" for a, v in pattern.items() if v is not None)
        description = f"{', '.join(self.lhs)} determines {self.rhs}"
        if condition:
            description += f" when {condition}"
        return DenialConstraint(name or self.name, predicates, description)

    def __str__(self) -> str:
        pattern = dict(self.pattern)
        lhs_text = ", ".join(
            f"{a}={pattern[a]!r}" if pattern.get(a) is not None else a for a in self.lhs
        )
        return f"{self.name}: ({lhs_text}) -> {self.rhs}"


def fds_to_dcs(fds: Sequence[FunctionalDependency], prefix: str = "C") -> list[DenialConstraint]:
    """Compile a list of FDs into named denial constraints ``C1, C2, ...``."""
    return [fd.to_dc(name=f"{prefix}{index + 1}") for index, fd in enumerate(fds)]
